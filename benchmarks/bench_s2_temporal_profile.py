"""S2 (supplementary) — temporal profile of the Fig. 5 query.

The range slider (§IV-C.2) lets the researcher scrub through time and
watch the highlight move; this bench quantifies what she saw when
combining the west-edge brush with different windows: west-edge
occupancy by group as a function of (fractional) time.  Expected
shape: the east group's curve rises steeply toward the end of the runs
(homing ants arriving at the west rim), on-trail stays flat and low,
the west group (already there, heading away) stays lowest.  Also
reports the permutation significance of the end-window reading.
"""

import numpy as np
import pytest

from repro.analytics.significance import support_permutation_test
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.profile import temporal_profile
from repro.core.temporal import TimeWindow
from repro.layout.cells import assign_groups_to_cells
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups


@pytest.fixture(scope="module")
def setup(full_dataset, viewport, arena):
    grid = preset("3").build(viewport)
    groups = TrajectoryGroups.fig3_scheme(grid)
    assignment = assign_groups_to_cells(full_dataset, grid, groups)
    engine = CoordinatedBrushingEngine(full_dataset)
    canvas = BrushCanvas()
    r = arena.radius
    canvas.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
    return engine, canvas, assignment


def test_s2_temporal_profile(setup, full_dataset, report_sink, benchmark):
    engine, canvas, assignment = setup
    prof = benchmark.pedantic(
        temporal_profile,
        args=(engine, canvas, "red"),
        kwargs=dict(n_bins=8, assignment=assignment),
        rounds=1,
        iterations=1,
    )

    lines = [
        "west-edge occupancy vs fractional time (window = 1/8 of each run)",
        "bin centers: " + " ".join(f"{c:5.2f}" for c in prof.centers),
    ]
    for name in ("east", "on", "west"):
        series = prof.group_support[name]
        bar = " ".join(f"{v:5.0%}" for v in series)
        lines.append(f"{name:>5}: {bar}")
    east_peak_c, east_peak_s = prof.peak_of("east")

    # significance of the end-window reading
    res = engine.query(canvas, "red", window=TimeWindow.end(0.15))
    target = np.array(
        [t.meta.capture_zone == "east" for t in full_dataset], dtype=bool
    )
    perm = support_permutation_test(res.traj_mask, target)
    lines += [
        f"east-group peak: {east_peak_s:.0%} at t={east_peak_c:.2f} "
        "(the end of the runs — homing ants arriving)",
        f"end-window reading significance: {perm}",
        "paper: the researcher 'set the temporal filter to only show the "
        "last few seconds of the experiment'",
    ]
    report_sink("S2", "temporal profile of the Fig. 5 query", lines)

    east = prof.group_support["east"]
    on = prof.group_support["on"]
    # expected shape: east rises to a late peak, dominates on-trail late
    assert east_peak_c > 0.5
    assert east[-1] > east[0]
    assert east[-1] > 2 * on[-1]
    assert perm.significant(0.001)
