"""Q7 — lock-free multi-tenant read path over epoch snapshots.

The tentpole claim of the snapshot refactor: N concurrent sessions over
one :class:`DatasetService` should cost roughly one session's wall time
(queries parallelize across the GIL-releasing numpy kernels), not N
sessions' — the pre-refactor service serialized every query behind the
service RLock, and BENCH_Q3 measured the 8-session wall at ~24x solo.
This bench quantifies the new read path on the paper-scale dataset:

* **solo vs 8 sessions** — each scripted user is first timed *solo* on
  a fresh service (the 8 users' brushes differ in cost by ~8x, so one
  user's wall is not a fair yardstick), then all 8 run concurrently.
  The acceptance gate is 8-session wall ≤ 3x the CPU-bound ideal
  ``max(sum(solo) / n_cpus, max(solo))`` — on a multicore box that
  collapses to "8 sessions ≈ the slowest user's solo wall", the
  tentpole claim, while on a single-CPU CI runner (where 8 sessions'
  distinct work is ≥ 8x wall by physics, lock or no lock) it still
  fails loudly if anything serializes *beyond* the CPU itself.  The
  raw 8-vs-mean-solo ratio is recorded alongside for continuity with
  the pre-refactor ~24x figure;
* **scaling curve** — 1 → 64 concurrent sessions, exact p50/p95/p99
  per-query latency plus wall time per scale, each scale on a fresh
  service (cold shared cache) so scales are comparable;
* **scripted analyst traffic** — N concurrent
  :class:`~repro.sensemaking.analyst.AnalystSimulator` users replaying
  the pilot-study script, with p50/p95/p99 of ``query.seconds``
  reported from the live :mod:`repro.obs` histogram (the same numbers
  an operator's exporter would see);
* **frame render baseline** — serial vs pooled
  ``render_viewport_parallel`` over a published store, bit-identity
  checked, tracked in the Q7 JSON so render-path regressions show up
  alongside the query-path numbers.

Emits human-readable ``out/Q7.txt`` and machine-readable
``out/BENCH_Q7.json`` (CI artifact; the multitenant-bench job gates on
the 8-session p95/solo ratio recorded here).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core.brush import stroke_from_rect
from repro.core.temporal import TimeWindow
from repro.sensemaking.analyst import AnalystSimulator, default_study_script
from repro.store import DatasetService, SharedArenaStore

OUT_DIR = Path(__file__).parent / "out"

N_QUERIES_PER_SESSION = 6
SESSION_SCALES = (1, 2, 4, 8, 16, 32, 64)
SCALE_QUERIES = 4  # per session on the scaling curve (64x4 = 256 queries)
N_ANALYSTS = 8
WALL_RATIO_GATE = 3.0


@pytest.fixture(autouse=True)
def _restore_registry():
    previous = obs.get_registry()
    yield
    obs.set_registry(previous)


def _stroke(arena, i: int = 0):
    r = arena.radius
    x0 = -r + 0.12 * r * (i % 12)
    return stroke_from_rect((x0, -0.6 * r), (x0 + 0.3 * r, 0.5 * r), 0.1 * r, "red")


def _drive_session(session, arena, i: int, n_queries: int) -> list[float]:
    """One user's brushing script; returns per-query latencies."""
    session.brush(_stroke(arena, i))
    latencies = []
    for q in range(n_queries):
        session.set_time_window(TimeWindow.end(0.12 + 0.1 * ((i + q) % 7)))
        t0 = time.perf_counter()
        session.run_query("red")
        latencies.append(time.perf_counter() - t0)
    return latencies


def _run_concurrent(service, viewport, arena, n_sessions: int, n_queries: int):
    """N barrier-started session threads; returns (wall_s, latencies)."""
    views = [service.session(viewport) for _ in range(n_sessions)]
    all_lat: list[list[float]] = [[] for _ in range(n_sessions)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_sessions)

    def run(i: int) -> None:
        try:
            barrier.wait(timeout=120)
            all_lat[i] = _drive_session(views[i], arena, i, n_queries)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_sessions)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    assert errors == [], errors
    for view in views:
        view.close()
    return wall, [x for lat in all_lat for x in lat]


def _percentiles(latencies: list[float]) -> dict[str, float]:
    arr = np.asarray(latencies)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 3),
        "p95_ms": round(float(np.percentile(arr, 95)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 3),
    }


def test_q7_multitenant(full_dataset, viewport, arena, report_sink):
    registry = obs.enable()
    n_cpus = len(os.sched_getaffinity(0))

    # --- per-user solo baselines (fresh service each: cold cache) --------
    solo_walls: list[float] = []
    solo_lat: list[float] = []
    for i in range(8):
        with DatasetService(full_dataset) as service:
            view = service.session(viewport)
            t0 = time.perf_counter()
            solo_lat.extend(_drive_session(view, arena, i, N_QUERIES_PER_SESSION))
            solo_walls.append(time.perf_counter() - t0)
            view.close()

    # --- the same 8 users, concurrently (the acceptance gate) ------------
    with DatasetService(full_dataset) as service:
        multi_wall, multi_lat = _run_concurrent(service, viewport, arena, 8,
                                                N_QUERIES_PER_SESSION)
    # CPU-bound ideal: the aggregate solo work spread over the cores,
    # floored by the slowest user (the critical path)
    ideal_wall = max(sum(solo_walls) / n_cpus, max(solo_walls))
    wall_ratio = multi_wall / ideal_wall
    mean_solo = sum(solo_walls) / len(solo_walls)
    solo_p = _percentiles(solo_lat)
    multi_p = _percentiles(multi_lat)
    headline = {
        "queries_per_session": N_QUERIES_PER_SESSION,
        "n_cpus": n_cpus,
        "solo_walls_s": [round(w, 4) for w in solo_walls],
        "solo": {"wall_mean_s": round(mean_solo, 4), **solo_p},
        "concurrent_8": {"wall_s": round(multi_wall, 4), **multi_p},
        "ideal_wall_s": round(ideal_wall, 4),
        "wall_ratio_8_vs_ideal": round(wall_ratio, 2),
        "wall_ratio_8_vs_mean_solo": round(multi_wall / mean_solo, 2),
        "p95_ratio_8_vs_solo": round(multi_p["p95_ms"] / solo_p["p95_ms"], 2),
        "gate_wall_ratio_max": WALL_RATIO_GATE,
    }

    # --- scaling curve: 1 -> 64 sessions, fresh (cold) service each ------
    scaling = {}
    for n in SESSION_SCALES:
        with DatasetService(full_dataset) as service:
            wall, lat = _run_concurrent(service, viewport, arena, n, SCALE_QUERIES)
        scaling[str(n)] = {
            "wall_s": round(wall, 4),
            "queries": len(lat),
            "throughput_qps": round(len(lat) / wall, 1),
            **_percentiles(lat),
        }

    # --- scripted analyst traffic (pilot-study replay, N users) ----------
    with DatasetService(full_dataset) as service:
        sessions = [service.session(viewport) for _ in range(N_ANALYSTS)]
        script = default_study_script(arena)
        replays: list = [None] * N_ANALYSTS
        errors: list[BaseException] = []
        barrier = threading.Barrier(N_ANALYSTS)

        def analyse(i: int) -> None:
            try:
                barrier.wait(timeout=120)
                replays[i] = AnalystSimulator(sessions[i], arena).run(script)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=analyse, args=(i,)) for i in range(N_ANALYSTS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        analyst_wall = time.perf_counter() - t0
        assert errors == [], errors
        assert all(r is not None for r in replays)
        for view in sessions:
            view.close()
        cache = service.engine.cache_stats()

    snap = registry.snapshot()
    q_hist = None
    for (name, _), hist in snap.histograms.items():
        if name == "query.seconds":
            q_hist = hist if q_hist is None else q_hist  # first strategy bucket
    # merged across strategies via counter totals; quantiles from the
    # dominant (indexed) histogram — the operator's-eye view
    obs_quantiles = (
        {
            "p50_ms": round(q_hist.quantile(0.50) * 1e3, 3),
            "p95_ms": round(q_hist.quantile(0.95) * 1e3, 3),
            "p99_ms": round(q_hist.quantile(0.99) * 1e3, 3),
        }
        if q_hist is not None
        else {}
    )
    analysts = {
        "n_users": N_ANALYSTS,
        "wall_s": round(analyst_wall, 4),
        "hypotheses_per_user": replays[0].hypotheses_tested(),
        "verdicts_agree_across_users": all(
            [v.kind for v in r.verdicts] == [v.kind for v in replays[0].verdicts]
            for r in replays
        ),
        "obs_query_seconds": obs_quantiles,
        "cache": cache,
    }
    assert analysts["verdicts_agree_across_users"], (
        "concurrent analysts diverged from the solo replay"
    )

    # --- lock-free proof: every query attributed to an epoch snapshot ----
    snapshot_proof = {
        "snapshot_queries": snap.counter_total("service.snapshot.queries"),
        "session_queries": snap.counter_total("session.queries"),
        "pinned": snap.counter_total("service.snapshot.pinned"),
        "released": snap.counter_total("service.snapshot.released"),
        "lock_wait_gauge_present": snap.gauge("service.lock.wait_seconds")
        is not None,
    }
    assert snapshot_proof["snapshot_queries"] == snapshot_proof["session_queries"]
    assert snapshot_proof["pinned"] == snapshot_proof["released"]
    assert not snapshot_proof["lock_wait_gauge_present"]

    # --- tracked baseline: serial vs pooled frame render -----------------
    from repro.display.bezel import BezelSpec
    from repro.display.viewport import Viewport
    from repro.display.wall import DisplayWall
    from repro.layout.cells import assign_sequential
    from repro.layout.grid import BezelAwareGrid
    from repro.parallel.tilerender import render_viewport_parallel
    from repro.render.pipeline import WallRenderer
    from repro.stereo.camera import Eye
    from repro.synth.arena import Arena

    with SharedArenaStore.publish(full_dataset) as store:
        small_wall = DisplayWall(
            cols=2, rows=1, panel_width=0.3, panel_height=0.16875,
            panel_px_width=160, panel_px_height=90, bezel=BezelSpec(),
        )
        small_viewport = Viewport(small_wall)
        grid = BezelAwareGrid(small_viewport, 4, 2)
        renderer = WallRenderer(full_dataset, Arena(), small_viewport)
        assignment = assign_sequential(full_dataset, grid)
        serial = render_viewport_parallel(renderer, assignment, max_workers=0)
        pooled = render_viewport_parallel(
            renderer, assignment, max_workers=4, store=store
        )
        assert not pooled.degraded, pooled.degradation.summary()
        for eye in (Eye.LEFT, Eye.RIGHT):  # bit-identity: tracked, not timed
            for key in serial.frames[eye]:
                np.testing.assert_array_equal(
                    serial.frames[eye][key].data, pooled.frames[eye][key].data
                )
        frame = {
            "serial_s": round(serial.elapsed_s, 4),
            "pooled_shm_s": round(pooled.elapsed_s, 4),
            "workers": pooled.workers,
            "bit_identical": True,
        }

    payload = {
        "bench": "Q7",
        "title": "lock-free multi-tenant read path over epoch snapshots",
        "dataset": {
            "n_trajectories": len(full_dataset),
            "n_segments": int(full_dataset.packed().n_segments),
        },
        "headline": headline,
        "scaling": scaling,
        "analyst_traffic": analysts,
        "snapshot_proof": snapshot_proof,
        "frame_render": frame,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_Q7.json").write_text(json.dumps(payload, indent=2))

    lines = [
        f"dataset: {len(full_dataset)} trajectories, "
        f"{int(full_dataset.packed().n_segments)} segments  "
        f"({n_cpus} cpu{'s' if n_cpus != 1 else ''})",
        f"solo (per-user, fresh service): mean wall {mean_solo * 1e3:7.1f} ms, "
        f"range {min(solo_walls) * 1e3:.0f}-{max(solo_walls) * 1e3:.0f} ms  "
        f"p50 {solo_p['p50_ms']:.2f} / p95 {solo_p['p95_ms']:.2f} / "
        f"p99 {solo_p['p99_ms']:.2f} ms",
        f"8 sessions: wall {multi_wall * 1e3:8.1f} ms  p50 {multi_p['p50_ms']:.2f} / "
        f"p95 {multi_p['p95_ms']:.2f} / p99 {multi_p['p99_ms']:.2f} ms",
        f"8-session wall: {wall_ratio:.2f}x the cpu-bound ideal "
        f"{ideal_wall * 1e3:.0f} ms (gate <= {WALL_RATIO_GATE:.0f}x), "
        f"{multi_wall / mean_solo:.1f}x mean solo (pre-refactor ~24x)",
        "scaling (fresh service per scale, cold shared cache):",
    ]
    for n in SESSION_SCALES:
        s = scaling[str(n)]
        lines.append(
            f"  {n:3d} sessions: wall {s['wall_s'] * 1e3:8.1f} ms | "
            f"p50 {s['p50_ms']:7.2f} | p95 {s['p95_ms']:7.2f} | "
            f"p99 {s['p99_ms']:7.2f} ms | {s['throughput_qps']:7.1f} q/s"
        )
    lines += [
        f"analyst traffic: {N_ANALYSTS} users x "
        f"{analysts['hypotheses_per_user']} hypotheses in "
        f"{analyst_wall:.2f} s, verdicts identical across users",
        f"lock-free proof: {int(snapshot_proof['snapshot_queries'])} queries "
        "all epoch-attributed, pins conserved, no lock-wait gauge",
        f"frame render baseline: serial {frame['serial_s'] * 1e3:.1f} ms vs "
        f"pooled {frame['pooled_shm_s'] * 1e3:.1f} ms, bit-identical",
        "machine-readable: out/BENCH_Q7.json",
    ]
    report_sink("Q7", "lock-free multi-tenant read path", lines)

    # acceptance: 8 concurrent sessions cost <= 3x one session's wall
    assert wall_ratio <= WALL_RATIO_GATE, headline
    # acceptance: the curve reaches 64 sessions and answered every query
    assert scaling["64"]["queries"] == 64 * SCALE_QUERIES
