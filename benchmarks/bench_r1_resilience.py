"""R1 — frame-completion latency under injected worker failure.

The resilience counterpart of E11: renders the same share-nothing
tile-eye jobs through :class:`SupervisedPool` while a seeded
:class:`FaultPlan` hard-crashes a fraction of first attempts (0%, 10%,
30%).  The claim under test is the layer's contract: failure moves
*latency*, never *pixels* — every run must produce framebuffers
bit-identical to the serial render, with the degradation report
accounting for each injected crash.

A deliberately small wall (6 panels, 120x68 px each) keeps the jobs
cheap so the timing differences are dominated by respawn/retry
overhead, which is what R1 measures.
"""

import numpy as np
import pytest

from repro.display.bezel import BezelSpec
from repro.display.viewport import Viewport
from repro.display.wall import DisplayWall
from repro.layout.cells import assign_sequential
from repro.layout.grid import BezelAwareGrid
from repro.parallel.tilerender import render_viewport_parallel
from repro.render.pipeline import WallRenderer
from repro.resilience import FaultPlan, RetryPolicy
from repro.stereo.camera import Eye
from repro.synth.arena import Arena

pytestmark = pytest.mark.resilience

#: Crash fraction per scenario; seed 2 fires on 1/12 jobs at p=0.1 and
#: 3/12 at p=0.3 — close to nominal on this small job count.
SCENARIOS = (0.0, 0.1, 0.3)
SEED = 2
POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0)


@pytest.fixture(scope="module")
def setup(full_dataset):
    wall = DisplayWall(
        cols=6, rows=1, panel_width=0.3, panel_height=0.16875,
        panel_px_width=120, panel_px_height=68, bezel=BezelSpec(),
    )
    viewport = Viewport(wall)
    grid = BezelAwareGrid(viewport, 12, 2)
    renderer = WallRenderer(full_dataset, Arena(), viewport)
    assignment = assign_sequential(full_dataset, grid)
    return renderer, assignment


def _check_identical(serial, report):
    for eye in (Eye.LEFT, Eye.RIGHT):
        for key in serial.frames[eye]:
            np.testing.assert_array_equal(
                serial.frames[eye][key].data, report.frames[eye][key].data
            )


def test_r1_latency_under_failure(setup, report_sink, benchmark):
    renderer, assignment = setup
    serial = render_viewport_parallel(renderer, assignment, max_workers=0)

    # headline number: the healthy parallel render
    healthy = benchmark.pedantic(
        render_viewport_parallel,
        args=(renderer, assignment),
        kwargs=dict(max_workers=2, retry_policy=POLICY),
        rounds=1,
        iterations=1,
    )
    _check_identical(serial, healthy)

    lines = [
        f"{serial.n_jobs} tile-eye jobs, 2 workers, "
        f"retry {POLICY.max_attempts} attempts / {POLICY.base_delay_s * 1000:.0f} ms base delay",
        f"serial reference:        {serial.elapsed_s:6.3f} s",
    ]
    for p in SCENARIOS:
        if p == 0.0:
            report, plan = healthy, None
        else:
            plan = FaultPlan.crash_fraction(p, seed=SEED)
            report = render_viewport_parallel(
                renderer, assignment, max_workers=2,
                fault_plan=plan, retry_policy=POLICY,
            )
            _check_identical(serial, report)
        # fault job indices address batches (one submit per worker)
        n_injected = len(plan.planned_jobs(report.n_batches)) if plan else 0
        degr = report.degradation
        lines.append(
            f"crash fraction {p:4.0%}:      {report.elapsed_s:6.3f} s   "
            f"({n_injected} injected crash(es), {degr.n_retried} retried, "
            f"{degr.n_fallbacks} serial fallback(s))"
        )
        # the contract: failures cost time, never correctness
        assert not plan or set(plan.planned_jobs(report.n_batches)) <= degr.jobs_touched()
    lines += [
        "(every run bit-identical to the serial reference; injected",
        " crashes are absorbed by pool respawn + retry, exhausted jobs",
        " fall back to in-process serial execution)",
    ]
    report_sink("R1", "frame latency under injected worker crashes", lines)
