"""R6 — query latency under live ingest rollover (with and without
injected coordinator crashes).

The crash-safety claim of the streaming-ingest layer (DESIGN.md §11)
is that epoch rollover is *invisible* to interactive querying: eight
concurrent sessions keep answering within their deadline budget while
the coordinator republishes the shared arena underneath them at 0, 1,
and 4 Hz — and keeps doing so when a seeded :class:`FaultPlan` kills a
fraction of rollovers mid-flight.

Headline acceptance: at 1 Hz rollover the 8-session query p95 stays
within 2x the no-rollover baseline (plus a 50 ms absolute floor so a
sub-millisecond baseline cannot fail on scheduler noise), and no query
blows its deadline.

Outputs ``out/R6.txt`` (human table) and ``out/BENCH_R6.json``
(machine-readable, CI artifact).
"""

from __future__ import annotations

import json
import statistics
import threading
import time
from pathlib import Path

import pytest

from repro.core.brush import stroke_from_rect
from repro.core.temporal import TimeWindow
from repro.resilience import ChaosInterrupt, ChaosMonkey, FaultPlan, InjectedFault
from repro.store import DatasetService, IngestBuffer, RolloverCoordinator
from repro.synth import AntStudyConfig, BehaviorParams, generate_study_dataset

pytestmark = pytest.mark.perf

OUT_DIR = Path(__file__).parent / "out"

N_SESSIONS = 8
DEADLINE_S = 2.0
DURATION_S = 2.0
#: Interactive think-time between a session's queries: real wall users
#: re-query on brush/slider events, not in a busy spin; without this
#: the shared-engine lock queue measures contention, not rollover cost.
THINK_S = 0.01
#: Short walks keep a cold (post-rollover) query cheap enough that the
#: scenario timing is dominated by rollover effects, not raw query cost.
BEHAVIOR = BehaviorParams(max_duration_s=40.0, min_duration_s=5.0)
#: (label, rollover rate in Hz, chaos monkey factory or None)
SCENARIOS = (
    ("0hz", 0.0, None),
    ("1hz", 1.0, None),
    ("4hz", 4.0, None),
    (
        "1hz+faults",
        1.0,
        lambda: ChaosMonkey(
            {
                "post_stage": FaultPlan.crash_fraction(0.3, seed=6),
                "pre_swap": FaultPlan.crash_fraction(0.2, seed=7),
            }
        ),
    ),
)


def _brush(session, i: int, edit: int) -> None:
    """User i's edit-th brush stroke (erase + repaint, slightly moved)."""
    x0 = -0.45 + 0.08 * i + 0.02 * (edit % 5)
    session.erase()
    session.brush(stroke_from_rect((x0, -0.4), (x0 + 0.2, 0.3), 0.05, "red"))


def _run_scenario(rate_hz: float, monkey, viewport) -> dict:
    dataset = generate_study_dataset(
        AntStudyConfig(n_trajectories=120, seed=31, behavior=BEHAVIOR)
    )
    stream = list(
        generate_study_dataset(
            AntStudyConfig(n_trajectories=64, seed=32, behavior=BEHAVIOR)
        )
    )
    service = DatasetService(dataset)
    buffer = IngestBuffer()
    coordinator = RolloverCoordinator(service, buffer, chaos=monkey)

    stop = threading.Event()
    stats_lock = threading.Lock()
    latencies: list[float] = []
    counts = {"queries": 0, "deadline_exceeded": 0, "stale": 0,
              "rollovers": 0, "crashes": 0, "rebinds": 0}

    def querier(i: int) -> None:
        session = service.session(viewport)
        _brush(session, i, 0)
        k = 0
        try:
            while not stop.is_set():
                # interactive workload: every query drags the time
                # slider; every 8th repaints the brush (a cold-ish
                # query), so the baseline includes the same kind of
                # recompute a rollover forces
                k += 1
                if k % 8 == 0:
                    _brush(session, i, k // 8)
                session.set_time_window(
                    TimeWindow.end(0.3 + 0.05 * (k % 8) + 0.02 * i)
                )
                t0 = time.perf_counter()
                result = session.run_query("red", deadline_s=DEADLINE_S)
                dt = time.perf_counter() - t0
                kinds = (
                    {e.kind for e in result.degradation.events}
                    if result.degradation
                    else set()
                )
                with stats_lock:
                    latencies.append(dt)
                    counts["queries"] += 1
                    if "deadline-exceeded" in kinds:
                        counts["deadline_exceeded"] += 1
                    if "stale-epoch" in kinds:
                        counts["stale"] += 1
                if "stale-epoch" in kinds and session.rebind():
                    with stats_lock:
                        counts["rebinds"] += 1
                time.sleep(THINK_S)
        finally:
            session.close()

    def ingester() -> None:
        fed = 0
        while not stop.is_set():
            time.sleep(1.0 / rate_hz)
            take = min(2, len(stream) - fed)
            if take <= 0:
                return
            buffer.extend(stream[fed:fed + take])
            fed += take
            try:
                if coordinator.rollover() is not None:
                    with stats_lock:
                        counts["rollovers"] += 1
            except (ChaosInterrupt, InjectedFault):
                with stats_lock:
                    counts["crashes"] += 1

    threads = [
        threading.Thread(target=querier, args=(i,), name=f"r6-session-{i}")
        for i in range(N_SESSIONS)
    ]
    if rate_hz > 0:
        threads.append(threading.Thread(target=ingester, name="r6-ingest"))
    for t in threads:
        t.start()
    time.sleep(DURATION_S)
    stop.set()
    for t in threads:
        t.join()
    n_final = len(service.dataset)
    service.close()

    return {
        "rate_hz": rate_hz,
        "p50_ms": statistics.median(latencies) * 1e3,
        "p95_ms": statistics.quantiles(latencies, n=20)[-1] * 1e3,
        "n_final": n_final,
        **counts,
    }


def test_r6_query_latency_under_rollover(viewport, report_sink):
    results = {}
    for label, rate_hz, monkey_factory in SCENARIOS:
        monkey = monkey_factory() if monkey_factory else None
        results[label] = _run_scenario(rate_hz, monkey, viewport)

    base, one_hz = results["0hz"], results["1hz"]
    lines = [
        f"{N_SESSIONS} concurrent sessions, {DEADLINE_S:.1f} s deadline budget, "
        f"{DURATION_S:.0f} s per scenario",
    ]
    for label, r in results.items():
        lines.append(
            f"rollover {label:>10}:  p50 {r['p50_ms']:7.2f} ms   "
            f"p95 {r['p95_ms']:7.2f} ms   "
            f"({r['queries']} queries, {r['rollovers']} rollovers, "
            f"{r['crashes']} crashes, {r['stale']} stale, "
            f"{r['rebinds']} rebinds, "
            f"{r['deadline_exceeded']} over deadline)"
        )

    # acceptance: rollover moves latency a bounded amount, never
    # correctness or availability
    budget_ms = max(2.0 * base["p95_ms"], base["p95_ms"] + 50.0)
    lines.append(
        f"acceptance: 1 Hz p95 {one_hz['p95_ms']:.2f} ms "
        f"<= {budget_ms:.2f} ms (2x baseline, 50 ms floor)"
    )
    assert one_hz["p95_ms"] <= budget_ms
    assert one_hz["deadline_exceeded"] == 0
    assert one_hz["rollovers"] > 0  # the ingester actually ran
    assert results["1hz+faults"]["queries"] > 0
    lines += [
        "(faulted scenario: coordinator crashes absorbed mid-rollover;",
        " sessions keep answering on their pinned epoch and rebind up)",
        "machine-readable: out/BENCH_R6.json",
    ]

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "n_sessions": N_SESSIONS,
        "deadline_s": DEADLINE_S,
        "duration_s": DURATION_S,
        "scenarios": results,
    }
    (OUT_DIR / "BENCH_R6.json").write_text(json.dumps(payload, indent=2))
    report_sink("R6", "query latency under live ingest rollover", lines)
