"""E1 — Fig. 3 / §IV-C layout-configuration table.

Regenerates the paper's layout facts: the three keypad presets (15x4,
24x6, 36x12) on the 6x3 wall's 2/3-surface viewport, their cell
counts, dataset coverage, bezel-straddle count (zero by design), and
pixels per trajectory cell.  The benchmark times grid construction —
the operation behind the paper's instant keypad layout switching.
"""

import pytest

from repro.layout.configs import LAYOUT_PRESETS
from repro.layout.grid import BezelAwareGrid


def layout_table(viewport, dataset_size: int) -> list[dict]:
    rows = []
    for key, config in sorted(LAYOUT_PRESETS.items()):
        grid = config.build(viewport)
        rows.append(
            {
                "key": key,
                "grid": f"{config.n_cols}x{config.n_rows}",
                "cells": config.n_cells,
                "coverage": config.coverage(dataset_size),
                "bezel_straddles": grid.straddle_count(),
                "px_per_cell": grid.mean_cell_pixels(),
            }
        )
    return rows


def test_e1_layout_table(viewport, full_dataset, report_sink, benchmark):
    rows = benchmark(layout_table, viewport, len(full_dataset))

    lines = [
        f"wall: {viewport.wall.summary()}",
        f"viewport: {viewport.summary()}",
        f"{'key':>3} {'grid':>7} {'cells':>6} {'coverage':>9} "
        f"{'straddles':>10} {'px/cell':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r['key']:>3} {r['grid']:>7} {r['cells']:>6} "
            f"{r['coverage']:>8.1%} {r['bezel_straddles']:>10} {r['px_per_cell']:>9.0f}"
        )
    lines.append("paper: presets 15x4 / 24x6 / 36x12; 432 cells cover ~85% of ~500")
    report_sink("E1", "layout configurations (Fig. 3, §IV-C)", lines)

    # expected shape: the paper's presets, bezel-free, 432 @ ~85 %
    assert [r["grid"] for r in rows] == ["15x4", "24x6", "36x12"]
    assert all(r["bezel_straddles"] == 0 for r in rows)
    assert rows[-1]["cells"] == 432
    assert rows[-1]["coverage"] == pytest.approx(0.864, abs=0.01)


def test_e1_layout_switch_speed(viewport, benchmark):
    """Layout switching must be interactive (well under a frame)."""
    result = benchmark(BezelAwareGrid, viewport, 36, 12)
    assert result.n_cells == 432
