"""Q3 — zero-copy shared-memory data plane: ship handles, not datasets.

The tentpole claim of the store refactor: a worker (render node, batch
query shard) should receive an O(handle-bytes) address of the resident
arrays instead of an O(dataset-bytes) pickle.  This bench quantifies it
on the paper-scale 500-trajectory dataset:

* **init payload** — ``pickle.dumps`` size of the pool initializer
  arguments, pickle-ship vs store-handle ship;
* **pool warm-up** — wall time to spin up a *spawn*-context pool (the
  honest transport: fork inherits pages for free) at 1/4/8 workers
  under each transport, until every worker is initialized and drained
  (``mp.Pool`` spawns eagerly, so all N workers really boot — a lazy
  executor would let the first worker up absorb the probe tasks and
  quietly skip the other N-1 initializer payloads);
* **frame latency** — ``render_viewport_parallel`` serial vs pooled
  over the store, with the bit-identity acceptance check;
* **sessions** — the same brushing script run by 1 vs 8 concurrent
  :class:`SessionView` threads over one :class:`DatasetService`
  (one resident copy of the packed arrays, one stage cache).

Emits human-readable ``out/Q3.txt`` and machine-readable
``out/BENCH_Q3.json`` (CI artifact).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import pickle
import statistics
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.temporal import TimeWindow
from repro.parallel.batch import _init_batch_worker, _init_batch_worker_shm
from repro.store import DatasetService, SharedArenaStore
from repro.synth import AntStudyConfig, generate_study_dataset

OUT_DIR = Path(__file__).parent / "out"

WORKER_COUNTS = (1, 4, 8)
N_SHIP_TRAJ = 3000  # ~45 MB pickled: payload must dominate worker boot
N_SESSIONS = 8
N_QUERIES_PER_SESSION = 6


@pytest.fixture(scope="module")
def ship_dataset():
    """The dataset whose transport cost the warm-up comparison measures
    (larger than the paper-scale set so shipping, not interpreter boot,
    is what differs between the two transports)."""
    return generate_study_dataset(AntStudyConfig(n_trajectories=N_SHIP_TRAJ, seed=13))


def _pid_probe(_: int) -> int:
    """Trivial pool task (module-level so spawn children can import it)."""
    return os.getpid()


def _stroke(arena, i: int = 0):
    r = arena.radius
    x0 = -r + 0.12 * r * i
    return stroke_from_rect((x0, -0.6 * r), (x0 + 0.3 * r, 0.5 * r), 0.1 * r, "red")


def _pool_warmup_s(n_workers: int, initializer, initargs) -> float:
    """Seconds to bring up a spawn pool, run every initializer, drain a
    trivial task per worker, and shut back down.

    Uses ``mp.Pool`` deliberately: it starts all ``n_workers`` processes
    in the constructor, and ``close()``/``join()`` cannot finish until
    each worker has run its initializer and reached the task loop — so
    the measurement always covers N full initializer payloads.
    ``ProcessPoolExecutor`` spawns lazily and would reuse the first
    booted worker for every probe while the others are still shipping.
    """
    ctx = mp.get_context("spawn")
    t0 = time.perf_counter()
    pool = ctx.Pool(n_workers, initializer, initargs)
    try:
        pool.map(_pid_probe, range(n_workers))
    finally:
        pool.close()
        pool.join()
    return time.perf_counter() - t0


def _drive_session(session, arena, i: int) -> list[float]:
    """One user's brushing script; returns per-query latencies."""
    session.brush(_stroke(arena, i))
    latencies = []
    for q in range(N_QUERIES_PER_SESSION):
        session.set_time_window(TimeWindow.end(0.12 + 0.1 * ((i + q) % 7)))
        t0 = time.perf_counter()
        session.run_query("red")
        latencies.append(time.perf_counter() - t0)
    return latencies


def test_q3_shared_store(full_dataset, ship_dataset, viewport, arena, report_sink):
    strokes = [_stroke(arena)]
    window = TimeWindow.all()

    with SharedArenaStore.publish(ship_dataset) as ship_store:
        # --- init payload: what each worker ship costs on the wire ------
        pickle_args = (ship_dataset, strokes, "red", window)
        shm_args = (ship_store.handle, strokes, "red", window)
        pickle_bytes = len(pickle.dumps(pickle_args))
        shm_bytes = len(pickle.dumps(shm_args))

        # --- spawn-pool warm-up at 1/4/8 workers ------------------------
        warmup = {}
        for n in WORKER_COUNTS:
            t_pickle = _pool_warmup_s(n, _init_batch_worker, pickle_args)
            t_shm = _pool_warmup_s(n, _init_batch_worker_shm, shm_args)
            warmup[str(n)] = {
                "pickle_ship_s": round(t_pickle, 4),
                "shm_attach_s": round(t_shm, 4),
                "speedup": round(t_pickle / t_shm, 2) if t_shm > 0 else float("inf"),
            }

    with SharedArenaStore.publish(full_dataset) as store:
        # --- parallel frame render over the store -----------------------
        # Wall-size brushed frames: a 4x2-panel wall at 256x144 px per
        # panel, an 8x4 small-multiple grid, and a 6-stamp 3-color brush
        # with its highlights evaluated once in the parent.  This is the
        # workload the batched shared-framebuffer transport is built
        # for: batches amortize the per-(cell size, color) footprint
        # raster across each worker's tile list, and slot writes replace
        # the per-tile pixel ship-back.
        from repro.core.engine import CoordinatedBrushingEngine
        from repro.display.bezel import BezelSpec
        from repro.display.viewport import Viewport
        from repro.display.wall import DisplayWall
        from repro.layout.cells import assign_sequential
        from repro.layout.grid import BezelAwareGrid
        from repro.parallel.tilerender import render_viewport_parallel
        from repro.render.pipeline import WallRenderer
        from repro.stereo.camera import Eye
        from repro.synth.arena import Arena

        wall = DisplayWall(
            cols=4, rows=2, panel_width=0.3, panel_height=0.16875,
            panel_px_width=256, panel_px_height=144, bezel=BezelSpec(),
        )
        frame_viewport = Viewport(wall)
        grid = BezelAwareGrid(frame_viewport, 8, 4)
        renderer = WallRenderer(full_dataset, Arena(), frame_viewport)
        assignment = assign_sequential(full_dataset, grid)
        canvas = BrushCanvas()
        colors = ("red", "blue", "green")
        r = arena.radius
        for i in range(6):
            x0 = -r + 0.22 * r * i
            canvas.add(
                stroke_from_rect(
                    (x0, -0.6 * r), (x0 + 0.3 * r, 0.5 * r),
                    0.1 * r, colors[i % 3],
                )
            )
        results = CoordinatedBrushingEngine(full_dataset).query_all_colors(
            canvas, assignment=assignment
        )

        def _best_of(n_reps, **kw):
            best = None
            for _ in range(n_reps):
                report = render_viewport_parallel(
                    renderer, assignment, canvas=canvas, results=results, **kw
                )
                if best is None or report.elapsed_s < best.elapsed_s:
                    best = report
            return best

        serial = _best_of(3, max_workers=0)
        shipback = _best_of(3, max_workers=4, store=store, shared_fb=False)
        pooled = _best_of(3, max_workers=4, store=store, shared_fb=True)
        for run in (shipback, pooled):
            assert not run.degraded, run.degradation.summary()
            for eye in (Eye.LEFT, Eye.RIGHT):  # acceptance: bit-identical
                for key in serial.frames[eye]:
                    np.testing.assert_array_equal(
                        serial.frames[eye][key].data, run.frames[eye][key].data
                    )

        def _stages(report):
            s = report.stage_seconds
            return {
                "dispatch_s": round(s.get("dispatch", 0.0), 4),
                "render_worker_total_s": round(s.get("render", 0.0), 4),
                "shipback_s": round(s.get("shipback", 0.0), 4),
                "assemble_s": round(s.get("assemble", 0.0), 4),
            }

        frame = {
            "serial_s": round(serial.elapsed_s, 4),
            "pooled_shipback_s": round(shipback.elapsed_s, 4),
            "pooled_sharedfb_s": round(pooled.elapsed_s, 4),
            "workers": pooled.workers,
            "n_jobs": pooled.n_jobs,
            "n_batches": pooled.n_batches,
            "bit_identical": True,
            # the CI render-bench gate: the default pooled transport
            # (batched + shared framebuffer) must not lose to serial on
            # a wall-size brushed frame
            "pooled_beats_serial": bool(pooled.elapsed_s <= serial.elapsed_s),
            "speedup": round(serial.elapsed_s / pooled.elapsed_s, 2),
            "shipback_stages": _stages(shipback),
            "sharedfb_stages": _stages(pooled),
            "serial_render_s": round(
                serial.stage_seconds.get("render", serial.elapsed_s), 4
            ),
        }

    # --- 1 vs 8 concurrent sessions over one DatasetService -------------
    with DatasetService(full_dataset) as service:
        solo = service.session(viewport)
        t0 = time.perf_counter()
        solo_lat = _drive_session(solo, arena, 0)
        solo_wall = time.perf_counter() - t0

        views = [service.session(viewport) for _ in range(N_SESSIONS)]
        all_lat: list[list[float]] = [[] for _ in range(N_SESSIONS)]
        barrier = threading.Barrier(N_SESSIONS)

        def run(i: int) -> None:
            barrier.wait(timeout=60)
            all_lat[i] = _drive_session(views[i], arena, i)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(N_SESSIONS)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        multi_wall = time.perf_counter() - t0
        flat = [x for lat in all_lat for x in lat]
        sessions = {
            "queries_per_session": N_QUERIES_PER_SESSION,
            "solo": {
                "median_query_s": round(statistics.median(solo_lat), 5),
                "wall_s": round(solo_wall, 4),
            },
            "concurrent_8": {
                "median_query_s": round(statistics.median(flat), 5),
                "wall_s": round(multi_wall, 4),
            },
            "resident_packed_copies": 1,
            "cache": service.engine.cache_stats(),
        }

    payload = {
        "bench": "Q3",
        "title": "zero-copy shared-memory data plane",
        "dataset": {
            "n_trajectories": len(full_dataset),
            "n_segments": int(full_dataset.packed().n_segments),
        },
        "ship_dataset": {"n_trajectories": len(ship_dataset)},
        "init_payload": {
            "pickle_ship_bytes": pickle_bytes,
            "shm_handle_bytes": shm_bytes,
            "reduction": round(pickle_bytes / shm_bytes, 1),
        },
        "pool_warmup_spawn": warmup,
        "frame_render": frame,
        "sessions": sessions,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_Q3.json").write_text(json.dumps(payload, indent=2))

    lines = [
        f"ship dataset: {len(ship_dataset)} trajectories "
        f"(sessions/frames: {len(full_dataset)})",
        f"init payload: pickle-ship {pickle_bytes / 1e6:.1f} MB vs "
        f"handle {shm_bytes} B  ({pickle_bytes / shm_bytes:.0f}x smaller)",
        "spawn-pool warm-up (all workers initialized + drained):",
    ]
    for n in WORKER_COUNTS:
        w = warmup[str(n)]
        lines.append(
            f"  {n} workers: pickle {w['pickle_ship_s'] * 1e3:8.1f} ms | "
            f"shm {w['shm_attach_s'] * 1e3:8.1f} ms | {w['speedup']:.1f}x"
        )
    lines += [
        f"parallel frame render ({frame['workers']} workers, "
        f"{frame['n_jobs']} jobs in {frame['n_batches']} batches, "
        f"best of 3): serial {frame['serial_s'] * 1e3:.1f} ms vs "
        f"ship-back {frame['pooled_shipback_s'] * 1e3:.1f} ms vs "
        f"shared-fb {frame['pooled_sharedfb_s'] * 1e3:.1f} ms "
        f"({frame['speedup']:.2f}x, bit-identical, "
        f"pooled_beats_serial={frame['pooled_beats_serial']})",
        f"  shared-fb stages: dispatch "
        f"{frame['sharedfb_stages']['dispatch_s'] * 1e3:.1f} ms | "
        f"render (worker total) "
        f"{frame['sharedfb_stages']['render_worker_total_s'] * 1e3:.1f} ms | "
        f"ship-back {frame['sharedfb_stages']['shipback_s'] * 1e3:.1f} ms | "
        f"assemble {frame['sharedfb_stages']['assemble_s'] * 1e3:.1f} ms",
        f"sessions: solo median query "
        f"{sessions['solo']['median_query_s'] * 1e3:.2f} ms vs 8 concurrent "
        f"{sessions['concurrent_8']['median_query_s'] * 1e3:.2f} ms "
        f"(one resident copy, shared stage cache)",
        "machine-readable: out/BENCH_Q3.json",
    ]
    report_sink("Q3", "zero-copy shared-memory data plane", lines)

    # acceptance: per-worker init payload is O(handle), not O(dataset)
    assert shm_bytes < 16_384, f"handle ship unexpectedly large: {shm_bytes}B"
    assert pickle_bytes > 100 * shm_bytes
    # acceptance: >= 2x faster pool warm-up at 8 workers
    assert warmup["8"]["speedup"] >= 2.0, warmup["8"]
