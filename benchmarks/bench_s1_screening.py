"""S1 (supplementary) — hypothesis-space screening (§VI-B).

"The researcher spent most of the time contemplating a variety of
theories and scenarios and evaluating them with quick visual queries
... explore a larger number of hypotheses and identify the promising
ones."  This bench runs the machine-side version: the full 21-member
zone x exit-side battery (plus seed dwell) evaluated as visual queries,
ranked by support margin.  Expected shape: the 5 planted-true
hypotheses rank at the top, everything else refuted, total screening
time interactive (~seconds for 21 hypotheses x 500 trajectories).
"""

import pytest

from repro.analytics.screening import exit_side_battery, screen_hypotheses
from repro.core.engine import CoordinatedBrushingEngine
from repro.layout.cells import assign_groups_to_cells
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups


@pytest.fixture(scope="module")
def setup(full_dataset, viewport):
    grid = preset("3").build(viewport)
    groups = TrajectoryGroups.fig3_scheme(grid)
    assignment = assign_groups_to_cells(full_dataset, grid, groups)
    engine = CoordinatedBrushingEngine(full_dataset)
    return engine, assignment


def test_s1_screening(setup, arena, report_sink, benchmark):
    engine, assignment = setup
    battery = exit_side_battery(arena)
    screened = benchmark(screen_hypotheses, engine, battery, assignment)

    supported = [s for s in screened if s.verdict.supported]
    lines = [
        f"battery: {len(battery)} hypotheses "
        f"(5 zones x 4 exit sides + seed dwell)",
        f"{'rank':>4} {'score':>7} {'verdict':>10}  statement",
    ]
    for rank, s in enumerate(screened[:8], start=1):
        lines.append(
            f"{rank:>4} {s.score:>+7.2f} {s.verdict.kind.value:>10}  "
            f"{s.hypothesis.statement}"
        )
    lines += [
        f"... {len(screened) - 8} more",
        f"supported: {len(supported)}/{len(screened)} — exactly the "
        "planted effects",
        "paper: visual queries 'identify the promising ones for further "
        "analysis'",
    ]
    report_sink("S1", "hypothesis-space screening (§VI-B)", lines)

    assert len(supported) == 5
    top_statements = {s.hypothesis.statement for s in screened[:5]}
    assert all(s.verdict.supported for s in screened[:5])
    assert {
        "ants captured east of the trail exit west",
        "seed-droppers linger centrally early on",
    } <= top_statements | {s.hypothesis.statement for s in supported}
