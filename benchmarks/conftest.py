"""Shared benchmark fixtures and the experiment-report sink.

Every benchmark regenerates one table/figure of the paper (see
DESIGN.md §4).  Besides timing, each writes its reproduction table to
``benchmarks/out/<exp>.txt`` and echoes it to stdout (visible with
``pytest -s`` or in the captured output of a failing run) so the
paper-vs-measured comparison in EXPERIMENTS.md can be regenerated from
the files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.display.presets import cyber_commons_wall, paper_viewport
from repro.synth import AntStudyConfig, Arena, generate_study_dataset

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def arena() -> Arena:
    return Arena()


@pytest.fixture(scope="session")
def full_dataset():
    """The paper-scale dataset: ~500 trajectories, default seed."""
    return generate_study_dataset(AntStudyConfig(n_trajectories=500))


@pytest.fixture(scope="session")
def wall():
    return cyber_commons_wall()


@pytest.fixture(scope="session")
def viewport(wall):
    return paper_viewport(wall)


@pytest.fixture(scope="session")
def report_sink():
    """Write an experiment table to benchmarks/out/ and stdout."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(exp_id: str, title: str, lines: list[str]) -> None:
        text = "\n".join([f"=== {exp_id}: {title} ===", *lines, ""])
        (OUT_DIR / f"{exp_id}.txt").write_text(text)
        print("\n" + text)

    return write
