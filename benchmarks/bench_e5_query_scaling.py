"""E5 — §VI-B query scalability: coordinated brush vs. one-at-a-time.

The paper's speed argument: with coordinated brushing "the original
query is reduced to searching for red segments ... perceived in a
matter of few seconds", while "with a traditional desktop screen,
checking this is still a tedious, slow task given the large number of
instances that need to be checked one by one."

Series: N displayed trajectories in {60, 144, 432} (the three layout
presets).  For each N: coordinated-brush compute time, the sequential
baseline's compute time, and the modeled end-to-end desktop time with
a 3 s/view human cost.  Expected shape: the brush is roughly constant
and interactive; the baseline grows linearly and is minutes at N=432.
"""

import numpy as np
import pytest

from repro.analytics.baseline import SequentialInspectionBaseline
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow

SERIES = (60, 144, 432)


def west_canvas(arena):
    r = arena.radius
    c = BrushCanvas()
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
    return c


def test_e5_query_scaling(full_dataset, arena, report_sink, benchmark):
    canvas = west_canvas(arena)
    window = TimeWindow.end(0.15)
    engine = CoordinatedBrushingEngine(full_dataset)
    baseline = SequentialInspectionBaseline(full_dataset, per_view_s=3.0)

    rows = []
    for n in SERIES:
        indices = np.arange(n)
        brush_res = engine.query(canvas, "red", window=window)
        base_rep = baseline.run(canvas, "red", window=window, indices=indices)
        rows.append(
            {
                "n": n,
                "brush_s": brush_res.elapsed_s,
                "baseline_compute_s": base_rep.compute_s,
                "baseline_total_s": base_rep.total_s,
            }
        )

    # benchmark the headline operation: one full-dataset brush query
    benchmark(engine.query, canvas, "red", window=window)

    lines = [
        f"{'N':>5} {'brush (s)':>10} {'seq compute (s)':>16} "
        f"{'seq modeled total':>18} {'speedup':>9}",
    ]
    for r in rows:
        speedup = r["baseline_total_s"] / max(r["brush_s"], 1e-9)
        lines.append(
            f"{r['n']:>5} {r['brush_s']:>10.4f} {r['baseline_compute_s']:>16.4f} "
            f"{r['baseline_total_s']:>15.0f} s {speedup:>8.0f}x"
        )
    lines += [
        "(modeled total = compute + 3 s/view one-at-a-time inspection)",
        "paper: visual query results 'perceived in a matter of few "
        "seconds' vs 'tedious, slow' desktop checking",
    ]
    report_sink("E5", "coordinated brush vs sequential inspection (§VI-B)", lines)

    # expected shape: brush query interactive at every N; baseline total
    # grows linearly; at 432 the gap is orders of magnitude
    assert all(r["brush_s"] < 1.0 for r in rows)
    totals = [r["baseline_total_s"] for r in rows]
    assert totals[0] < totals[1] < totals[2]
    assert totals[2] > 100 * rows[2]["brush_s"]
    # linear growth of the modeled baseline in N
    assert totals[2] / totals[0] == pytest.approx(SERIES[2] / SERIES[0], rel=0.05)
