"""A1 — ablation: bezel-aware vs. naive layout.

The paper chose its grids "to avoid a trajectory overlapping with a
bezel" because stereo content across a bezel causes discomfort.  The
ablation quantifies what that design choice buys: the number of cells
(trajectories) straddling a mullion under a naive uniform grid vs. the
bezel-aware grid, across the three presets — and what it costs (pixel
budget lost to per-panel quantization).
"""

import pytest

from repro.layout.configs import LAYOUT_PRESETS
from repro.layout.grid import BezelAwareGrid, NaiveGrid


def ablation_rows(viewport):
    rows = []
    for key, config in sorted(LAYOUT_PRESETS.items()):
        aware = BezelAwareGrid(viewport, config.n_cols, config.n_rows)
        naive = NaiveGrid(viewport, config.n_cols, config.n_rows)
        rows.append(
            {
                "grid": f"{config.n_cols}x{config.n_rows}",
                "cells": config.n_cells,
                "naive_straddles": naive.straddle_count(),
                "aware_straddles": aware.straddle_count(),
                "naive_px": naive.mean_cell_pixels(),
                "aware_px": aware.mean_cell_pixels(),
            }
        )
    return rows


def test_a1_bezel_ablation(viewport, report_sink, benchmark):
    rows = benchmark(ablation_rows, viewport)

    lines = [
        f"{'grid':>7} {'cells':>6} {'naive straddles':>16} "
        f"{'aware straddles':>16} {'px cost':>8}",
    ]
    for r in rows:
        px_cost = 1.0 - r["aware_px"] / r["naive_px"]
        lines.append(
            f"{r['grid']:>7} {r['cells']:>6} "
            f"{r['naive_straddles']:>9} ({r['naive_straddles'] / r['cells']:>4.0%}) "
            f"{r['aware_straddles']:>10} ({0:>4.0%}) {px_cost:>7.1%}"
        )
    lines += [
        "(px cost: mean cell pixels given up by constraining cells to",
        " single panels — the price of zero bezel straddles)",
        "paper: 'users reported discomfort when stereoscopic 3D content",
        " overlaps a bezel'; bezels double as natural group dividers",
    ]
    report_sink("A1", "bezel-aware vs naive layout (ablation)", lines)

    for r in rows:
        assert r["aware_straddles"] == 0
        assert r["naive_straddles"] > 0
        # the cost of bezel-awareness stays modest
        assert r["aware_px"] > 0.7 * r["naive_px"]
    # the naive problem affects a substantial share of cells
    worst = max(r["naive_straddles"] / r["cells"] for r in rows)
    assert worst > 0.2
