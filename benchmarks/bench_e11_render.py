"""E11 — wall-render throughput (the substrate behind Fig. 3's frame).

Times the software rasterizer on the paper's full setup: the 36x12
layout with Fig. 3 grouping, brush footprint and query highlights, per
tile per eye — serial vs. process-parallel over the viewport's 12
panels (the unit of distribution on a real cluster-driven wall).
Reported: seconds per stereo frame, megapixels per second, and the
parallel speedup.
"""

import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.layout.cells import assign_groups_to_cells
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups
from repro.parallel.pool import default_workers
from repro.parallel.tilerender import render_viewport_parallel
from repro.render.pipeline import WallRenderer
from repro.stereo.camera import Eye
from repro.synth.arena import Arena


@pytest.fixture(scope="module")
def setup(full_dataset, viewport, arena):
    grid = preset("3").build(viewport)
    groups = TrajectoryGroups.fig3_scheme(grid)
    assignment = assign_groups_to_cells(full_dataset, grid, groups)
    canvas = BrushCanvas()
    r = arena.radius
    canvas.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
    engine = CoordinatedBrushingEngine(full_dataset)
    results = {"red": engine.query(canvas, "red", window=TimeWindow.end(0.15))}
    renderer = WallRenderer(full_dataset, Arena(), viewport)
    return renderer, assignment, canvas, results


def test_e11_render_throughput(setup, viewport, report_sink, benchmark):
    renderer, assignment, canvas, results = setup
    workers = min(4, default_workers())

    serial = benchmark.pedantic(
        render_viewport_parallel,
        args=(renderer, assignment),
        kwargs=dict(
            eyes=(Eye.LEFT, Eye.RIGHT), canvas=canvas, results=results, max_workers=0
        ),
        rounds=1,
        iterations=1,
    )
    parallel = render_viewport_parallel(
        renderer, assignment, eyes=(Eye.LEFT, Eye.RIGHT),
        canvas=canvas, results=results, max_workers=workers,
    )
    stereo_mpx = 2 * viewport.megapixels
    speedup = serial.elapsed_s / parallel.elapsed_s

    report_sink(
        "E11",
        "wall render throughput (Fig. 3 frame substrate)",
        [
            f"frame: 432 cells, stereo, brush + highlights, "
            f"{viewport.px_width}x{viewport.px_height} px per eye",
            f"serial:   {serial.elapsed_s:6.2f} s "
            f"({stereo_mpx / serial.elapsed_s:5.2f} Mpx/s, "
            f"{serial.n_jobs} tile-eye jobs)",
            f"parallel: {parallel.elapsed_s:6.2f} s with {workers} workers "
            f"({stereo_mpx / parallel.elapsed_s:5.2f} Mpx/s)",
            f"speedup:  {speedup:.2f}x",
            "(tiles are share-nothing render units, as on the real",
            " cluster-driven wall; worker startup + state shipping is the",
            " overhead the initializer amortizes)",
        ],
    )

    # expected shape: parallel never slower than ~serial, and with >= 2
    # workers it should show a real speedup on this embarrassingly
    # parallel workload
    assert parallel.workers == workers
    if workers >= 2:
        assert speedup > 1.2


def test_e11_single_tile_bench(setup, benchmark):
    """pytest-benchmark timing for one tile/eye job (the unit of work)."""
    renderer, assignment, canvas, results = setup
    job = renderer.make_jobs(assignment, (Eye.LEFT,))[0]
    fb = benchmark(renderer.render_job, job, canvas=canvas, results=results)
    assert fb.data.max() > 0
