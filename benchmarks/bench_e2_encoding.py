"""E2 — Fig. 4 / §IV-C.1 space-time-cube stereo encoding.

Regenerates the single-trajectory encoding facts: per-eye projected
polylines, screen parallax as a function of trajectory time, agreement
of the sheared-orthographic render with exact physical parallax, and
the overlap-disambiguation property (two segments crossing in mono
XY separate in the stereo views when their times differ).
"""

import numpy as np
import pytest

from repro.display.coords import CoordinateMapper
from repro.stereo.camera import Eye, StereoCamera
from repro.stereo.parallax import screen_parallax
from repro.stereo.projection import SpaceTimeProjection
from repro.trajectory.model import Trajectory


def _figure4_trajectory(full_dataset):
    """A mid-length trajectory to play the role of Fig. 4's example."""
    by_len = sorted(full_dataset, key=lambda t: abs(t.duration - 90.0))
    return by_len[0]


def encoding_report(traj, mapper, projection):
    left, right = projection.stereo_pair(traj, mapper)
    z = projection.depth_of(traj.times, float(traj.times[0]))
    rendered = left[:, 0] - right[:, 0]
    exact = screen_parallax(
        z, projection.camera.eye_separation, projection.camera.viewer_distance
    )
    rel_err = np.abs(rendered[1:] - exact[1:]) / np.maximum(np.abs(exact[1:]), 1e-12)
    return {
        "duration_s": traj.duration,
        "depth_extent_m": float(z.max() - z.min()),
        "max_parallax_mm": float(np.abs(rendered).max() * 1000),
        "max_rel_err_vs_exact": float(rel_err.max()),
    }


def test_e2_encoding_report(full_dataset, arena, report_sink, benchmark):
    traj = _figure4_trajectory(full_dataset)
    mapper = CoordinateMapper(arena, (0.0, 0.0, 0.3, 0.17))
    projection = SpaceTimeProjection(
        camera=StereoCamera(), time_scale=0.001, depth_offset=0.0
    )
    rep = benchmark(encoding_report, traj, mapper, projection)

    report_sink(
        "E2",
        "space-time-cube stereo encoding (Fig. 4)",
        [
            f"trajectory duration: {rep['duration_s']:.1f} s "
            f"(paper range 10 s - 3 min)",
            f"depth extent at 1 mm/s exaggeration: {rep['depth_extent_m'] * 100:.1f} cm",
            f"max screen parallax: {rep['max_parallax_mm']:.2f} mm",
            f"sheared-ortho vs exact parallax, max rel. error: "
            f"{rep['max_rel_err_vs_exact']:.1%}",
            "paper: trajectories 'float' in front of the display; "
            "orthographic projection avoids perspective distortion",
        ],
    )
    # rendered parallax tracks physical parallax to first order
    assert rep["max_rel_err_vs_exact"] < 0.08
    assert rep["depth_extent_m"] > 0


def test_e2_overlap_disambiguation(arena, report_sink, benchmark):
    """Stereo separates segments that coincide in mono XY (§V-C)."""
    # an ant crossing the same spot twice, 60 s apart
    pos = np.array([[0.0, -0.2], [0.0, 0.2], [0.1, 0.2], [0.1, -0.2], [0.0, -0.2], [0.0, 0.2]])
    t = np.array([0.0, 10.0, 20.0, 30.0, 40.0, 70.0])
    traj = Trajectory(pos, t)
    mapper = CoordinateMapper(arena, (0.0, 0.0, 0.3, 0.17))
    projection = SpaceTimeProjection(time_scale=0.002)
    left, right = benchmark(projection.stereo_pair, traj, mapper)
    # samples 1 and 5 share XY; mono views of a zero-depth projection
    # would coincide, but the per-eye views separate them
    mono = mapper.arena_to_wall(traj.positions)
    assert np.allclose(mono[1], mono[5])
    sep_left = abs(left[1, 0] - left[5, 0])
    assert sep_left > 0
    disparity_1 = left[1, 0] - right[1, 0]
    disparity_5 = left[5, 0] - right[5, 0]
    assert disparity_5 > disparity_1  # later visit floats further out
    report_sink(
        "E2b",
        "overlap disambiguation via stereo (§V-C)",
        [
            f"mono XY positions identical: {np.allclose(mono[1], mono[5])}",
            f"per-eye x separation of the two visits: {sep_left * 1000:.2f} mm",
            f"disparity first visit: {disparity_1 * 1000:.2f} mm, "
            f"second visit: {disparity_5 * 1000:.2f} mm",
        ],
    )
