"""E6 — §IV-C/§VI-B visibility and coverage series.

Regenerates the paper's headline coverage claims with the realized
(grouped) assignment, not just raw cell counts: trajectories visible
per layout, the fraction of the dataset instantly queryable, and the
pixel budget per trajectory — wall vs. the 24-inch desktop baseline.
"""

import pytest

from repro.display.presets import DESKTOP_24INCH
from repro.display.viewport import Viewport
from repro.layout.cells import assign_groups_to_cells, assign_sequential
from repro.layout.configs import LAYOUT_PRESETS
from repro.layout.groups import TrajectoryGroups


def coverage_rows(full_dataset, viewport):
    rows = []
    for key, config in sorted(LAYOUT_PRESETS.items()):
        grid = config.build(viewport)
        seq = assign_sequential(full_dataset, grid)
        groups = TrajectoryGroups.fig3_scheme(grid)
        grouped = assign_groups_to_cells(full_dataset, grid, groups)
        rows.append(
            {
                "grid": f"{config.n_cols}x{config.n_rows}",
                "cells": config.n_cells,
                "visible_seq": seq.n_displayed,
                "visible_grouped": grouped.n_displayed,
                "coverage_seq": seq.coverage(len(full_dataset)),
                "coverage_grouped": grouped.coverage(len(full_dataset)),
                "px_per_traj": grid.mean_cell_pixels(),
            }
        )
    return rows


def test_e6_coverage(full_dataset, viewport, report_sink, benchmark):
    rows = benchmark(coverage_rows, full_dataset, viewport)

    # the desktop comparison: same px/trajectory budget as the finest
    # wall layout -> how many trajectories fit a 24-inch monitor?
    desktop = Viewport(DESKTOP_24INCH)
    finest_px = rows[-1]["px_per_traj"]
    desktop_capacity = int(desktop.pixels // finest_px)

    lines = [
        f"{'grid':>7} {'cells':>6} {'visible(seq)':>13} {'visible(grouped)':>17} "
        f"{'coverage':>9} {'px/traj':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r['grid']:>7} {r['cells']:>6} {r['visible_seq']:>13} "
            f"{r['visible_grouped']:>17} {r['coverage_seq']:>8.1%} "
            f"{r['px_per_traj']:>8.0f}"
        )
    lines += [
        f"desktop 24in ({desktop.px_width}x{desktop.px_height}) at the same "
        f"px/traj budget: ~{desktop_capacity} trajectories",
        f"wall advantage: {rows[-1]['visible_seq'] / max(desktop_capacity, 1):.1f}x "
        "more simultaneous trajectories",
        "paper: 432 simultaneous trajectories = queries cover 85% of the data",
    ]
    report_sink("E6", "visibility & coverage (§IV-C, §VI-B)", lines)

    assert rows[-1]["visible_seq"] == 432
    assert rows[-1]["coverage_seq"] == pytest.approx(0.864, abs=0.01)
    # the wall shows several times more than the desktop at equal detail
    assert rows[-1]["visible_seq"] > 3 * desktop_capacity
