"""E7 — §IV-C.2 ergonomic-control sweep.

Regenerates the comfort story behind the two sliders: max binocular
disparity (visual degrees) and accommodation-convergence conflict as
functions of the depth-offset and time-exaggeration settings for the
study's longest (3-minute) trajectory, plus the auto-fitted maximal
comfortable exaggeration.
"""

import numpy as np
import pytest

from repro.stereo.comfort import ComfortModel
from repro.stereo.controls import ErgonomicControls

MAX_DURATION_S = 180.0  # the study's 3-minute cap


def comfort_sweep():
    model = ComfortModel()
    rows = []
    for time_scale in (0.0005, 0.001, 0.002, 0.004, 0.008):
        for depth_offset in (-0.2, 0.0, 0.2):
            z0 = depth_offset
            z1 = depth_offset + time_scale * MAX_DURATION_S
            rep = model.assess(min(z0, z1), max(z0, z1))
            rows.append(
                {
                    "time_scale": time_scale,
                    "depth_offset": depth_offset,
                    "max_disparity_deg": rep.max_disparity_deg,
                    "max_ac_diopters": rep.max_ac_conflict_diopters,
                    "comfortable": rep.comfortable,
                    "fraction": rep.fraction_comfortable,
                }
            )
    return rows


def test_e7_comfort_sweep(report_sink, benchmark):
    rows = benchmark(comfort_sweep)

    controls = ErgonomicControls()
    controls.fit_to_comfort(MAX_DURATION_S, center=False)
    fitted_front = controls.time_scale
    controls.fit_to_comfort(MAX_DURATION_S, center=True)
    fitted_centered = controls.time_scale

    lines = [
        f"{'scale m/s':>10} {'offset m':>9} {'disp deg':>9} "
        f"{'AC dpt':>7} {'comfortable':>12} {'fraction':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r['time_scale']:>10.4f} {r['depth_offset']:>9.2f} "
            f"{r['max_disparity_deg']:>9.3f} {r['max_ac_diopters']:>7.3f} "
            f"{str(r['comfortable']):>12} {r['fraction']:>8.0%}"
        )
    lines += [
        f"auto-fit max comfortable exaggeration (front-of-screen): "
        f"{fitted_front * 1000:.2f} mm/s",
        f"auto-fit spanning the full (front+behind) budget: "
        f"{fitted_centered * 1000:.2f} mm/s ({fitted_centered / fitted_front:.2f}x; "
        f"the uncrossed side is far more forgiving)",
        "paper: sliders 'control the maximum amount of binocular parallax "
        "and keep it within a comfortable range'",
    ]
    report_sink("E7", "stereoscopic comfort sweep (§IV-C.2)", lines)

    # expected shape: disparity grows with both sliders; small settings
    # comfortable, extreme settings not; centering buys extra budget
    disp = np.array([r["max_disparity_deg"] for r in rows])
    assert rows[0]["comfortable"]
    assert not rows[-1]["comfortable"]
    assert fitted_centered > fitted_front
    # monotone in time_scale at fixed offset 0
    at_zero = [r for r in rows if r["depth_offset"] == 0.0]
    d = [r["max_disparity_deg"] for r in at_zero]
    assert all(a < b for a, b in zip(d[:-1], d[1:]))
    assert disp.max() > 1.0  # the sweep actually crosses the comfort limit
