"""O5 — telemetry plane: overhead, fast path, and export shape.

The observability subsystem's cost contract (DESIGN.md §10): telemetry
is an observer, not a participant.  Concretely:

* **enabled overhead** — a warm query with a live registry must run
  within 10% of the same query against the no-op registry (the 12-ish
  guarded emits a warm query makes are the entire difference);
* **disabled is free** — ``obs.span()`` under the null registry
  returns the same shared object every call (zero allocation), and a
  facade emit is one attribute check;
* **snapshot/export cost** — folding the registry and rendering the
  Prometheus exposition stays far off the query path's timescale.

Methodology matches tests/obs/test_overhead_perf.py: one registry
throughout, interleaved samples with alternating within-pair order,
min-of-N (for a CPU-bound section every perturbation only adds time).
Emits machine-readable ``out/BENCH_O5.json`` for CI trend tracking.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

OUT_DIR = Path(__file__).parent / "out"

SAMPLES = 60
MAX_OVERHEAD = 1.10


@pytest.fixture(scope="module")
def canvas(arena):
    c = BrushCanvas()
    r = arena.radius
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), radius=0.12 * r, color="red"))
    return c


@pytest.fixture(autouse=True)
def _restore_registry():
    previous = obs.get_registry()
    yield
    obs.set_registry(previous)


def _interleaved_warm_queries(engine, canvas, registry) -> tuple[list[float], list[float]]:
    window = TimeWindow.end(0.2)
    for reg in (registry, NULL_REGISTRY):  # warm cache, shard, both paths
        obs.set_registry(reg)
        engine.query(canvas, "red", window=window)
    disabled: list[float] = []
    enabled: list[float] = []
    for k in range(SAMPLES):
        pairs = [(registry, enabled), (NULL_REGISTRY, disabled)]
        for reg, samples in pairs if k % 2 else reversed(pairs):
            obs.set_registry(reg)
            t0 = time.perf_counter()
            engine.query(canvas, "red", window=window)
            samples.append(time.perf_counter() - t0)
    obs.set_registry(NULL_REGISTRY)
    return disabled, enabled


def test_o5_telemetry_overhead(full_dataset, canvas, report_sink):
    engine = CoordinatedBrushingEngine(full_dataset)
    registry = MetricsRegistry()
    disabled, enabled = _interleaved_warm_queries(engine, canvas, registry)
    best_off, best_on = min(disabled), min(enabled)
    overhead = best_on / best_off

    # disabled fast path: span() is the shared no-op object, every call
    obs.set_registry(NULL_REGISTRY)
    null_ids = {id(obs.span(f"s{i}")) for i in range(1000)}
    zero_alloc_fast_path = null_ids == {id(obs.NULL_SPAN)}

    t0 = time.perf_counter()
    snapshot = registry.snapshot()
    snapshot_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    exposition = obs.render_prometheus(snapshot)
    render_s = time.perf_counter() - t0

    packed = full_dataset.packed()
    payload = {
        "bench": "O5",
        "title": "telemetry plane overhead (repro.obs)",
        "dataset": {
            "name": "S1 synthetic ensemble",
            "n_trajectories": len(full_dataset),
            "n_segments": int(packed.n_segments),
        },
        "samples_per_arm": SAMPLES,
        "disabled": {
            "min_s": best_off,
            "median_s": statistics.median(disabled),
        },
        "enabled": {
            "min_s": best_on,
            "median_s": statistics.median(enabled),
        },
        "overhead_ratio": round(overhead, 4),
        "max_overhead_ratio": MAX_OVERHEAD,
        "zero_alloc_disabled_span_fast_path": zero_alloc_fast_path,
        "snapshot_s": snapshot_s,
        "prometheus_render_s": render_s,
        "exposition_lines": len(exposition.splitlines()),
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_O5.json").write_text(json.dumps(payload, indent=2))

    lines = [
        f"dataset: {len(full_dataset)} trajectories / {packed.n_segments} segments",
        f"warm query, telemetry off: min {best_off * 1e6:7.1f} us",
        f"warm query, telemetry on:  min {best_on * 1e6:7.1f} us",
        f"enabled overhead: {overhead:.3f}x (budget {MAX_OVERHEAD:.2f}x)",
        f"disabled span fast path zero-alloc: {zero_alloc_fast_path}",
        f"registry snapshot: {snapshot_s * 1e6:.1f} us, "
        f"prometheus render: {render_s * 1e6:.1f} us "
        f"({len(exposition.splitlines())} lines)",
        "machine-readable: out/BENCH_O5.json",
    ]
    report_sink("O5", "telemetry plane overhead", lines)

    assert zero_alloc_fast_path, "disabled span() must return the shared NULL_SPAN"
    assert overhead <= MAX_OVERHEAD, (
        f"enabled telemetry overhead {overhead:.3f}x exceeds {MAX_OVERHEAD:.2f}x"
    )
