"""E3 — Fig. 5 / §V-B: the worked visual query.

"Ants that were captured east of the colony's foraging trail will exit
the experimental arena from the west side."  The researcher brushed the
west part of the arena red and read a red concentration in the east
group.  This bench regenerates the per-group support table of Fig. 5
and times the coordinated-brush query.
"""

import pytest

from repro.analytics.verify import ground_truth_east_west, verify_query_against_truth
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.layout.cells import assign_groups_to_cells
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups


def west_brush(arena):
    r = arena.radius
    return stroke_from_rect(
        (-r, -0.6 * r), (-0.7 * r, 0.6 * r), radius=0.12 * r, color="red"
    )


@pytest.fixture(scope="module")
def setup(full_dataset, viewport, arena):
    grid = preset("3").build(viewport)
    groups = TrajectoryGroups.fig3_scheme(grid)
    assignment = assign_groups_to_cells(full_dataset, grid, groups)
    engine = CoordinatedBrushingEngine(full_dataset)
    canvas = BrushCanvas()
    canvas.add(west_brush(arena))
    return engine, canvas, assignment


def test_e3_fig5_query(setup, full_dataset, arena, report_sink, benchmark):
    engine, canvas, assignment = setup
    window = TimeWindow.end(0.15)

    result = benchmark(
        engine.query, canvas, "red", window=window, assignment=assignment
    )

    truth = ground_truth_east_west(full_dataset, arena)
    fidelity = verify_query_against_truth(result, truth)

    lines = [
        "brush: red, west edge of the arena; window: last 15% of each run",
        f"{'group':>6} {'displayed':>10} {'highlighted':>12} {'support':>8}",
    ]
    for name in ("on", "west", "east", "north", "south"):
        gs = result.group_support[name]
        lines.append(
            f"{name:>6} {gs.n_displayed:>10} {gs.n_highlighted:>12} {gs.support:>7.0%}"
        )
    lines += [
        f"verdict: east group majority highlighted -> hypothesis "
        f"{'SUPPORTED' if result.group_support['east'].majority else 'refuted'}",
        f"fidelity vs exact exit-side analysis: {fidelity}",
        "paper: 'A red highlight in majority of trajectories indicates "
        "the hypothesis is supported by the data' (Fig. 5)",
    ]
    report_sink("E3", "east-captured ants exit west (Fig. 5, §V-B)", lines)

    # expected shape: east dominates, all other groups are minorities
    east = result.group_support["east"].support
    assert result.group_support["east"].majority
    for other in ("on", "west", "north", "south"):
        assert result.group_support[other].support < 0.5
        assert east > 2 * result.group_support[other].support
    assert fidelity.verdict_match
