"""Q8 — aggregate-first query planning over the summary pyramid.

The tentpole claim of the aggregate refactor: most of a brushing query
can be answered from per-supernode sufficient statistics (tri-state
classification over grid-cell × time-bucket summaries), with the exact
per-segment kernels run only where the summaries are inconclusive —
and the answer stays **bit-identical** to the legacy per-segment route
(``tests/core/test_aggregate_parity.py`` holds that line; this bench
assumes it and measures the payoff).

Measured per scale (1x = the paper's ~500 trajectories, 10x = 5000;
100x = 50 000 behind ``REPRO_BENCH_100X=1`` — minutes of synth +
legacy-route time on CI hardware):

* **cold query** — median wall over fresh-cache queries, legacy
  (indexed per-segment) vs aggregate route, same brush + window;
* **warm slider sweep** — median per-query wall while only the time
  window moves (the interaction loop the wall optimizes for: the
  window-independent ``agg_brush`` mask is cached, so each slider tick
  re-runs only the temporal classification + drill-down);
* **pyramid build** — one-time summarization cost and table bytes,
  amortized over every query of an epoch.

Acceptance gates (the issue's targets):

* aggregate cold ≥ 5x faster than legacy cold at 1x;
* aggregate cold < 100 ms at 10x;
* the warm slider path is preserved (aggregate warm median no worse
  than 3x legacy warm + 1 ms timer floor — in practice it is faster).

Emits human-readable ``out/Q8.txt`` and machine-readable
``out/BENCH_Q8.json`` (CI artifact; the aggregate-bench job gates on
the headline ratios recorded here).
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.synth import AntStudyConfig, generate_study_dataset

pytestmark = pytest.mark.perf

OUT_DIR = Path(__file__).parent / "out"

COLD_REPS = 5
SLIDER_TICKS = 20
SCALES = {"1x": 500, "10x": 5000}
if os.environ.get("REPRO_BENCH_100X") == "1":
    SCALES["100x"] = 50_000

GATE_COLD_SPEEDUP_1X = 5.0
GATE_COLD_AGG_S_10X = 0.100


def _brush(arena) -> BrushCanvas:
    r = arena.radius
    c = BrushCanvas()
    c.add(
        stroke_from_rect(
            (-r, -0.6 * r), (-0.55 * r, 0.6 * r), radius=0.12 * r, color="red"
        )
    )
    return c


def _cold_median_s(engine, canvas, window) -> float:
    walls = []
    for _ in range(COLD_REPS):
        engine.cache.clear()
        t0 = time.perf_counter()
        engine.query(canvas, "red", window=window)
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls)


def _slider_median_s(engine, canvas) -> float:
    """Median per-tick wall of a time-slider sweep on a warm engine
    (first query pays the window-independent stages; each tick then
    moves only the window)."""
    engine.cache.clear()
    engine.query(canvas, "red", window=TimeWindow.fraction(0.1, 0.8))
    walls = []
    for i in range(SLIDER_TICKS):
        window = TimeWindow.fraction(0.0, 0.05 + 0.9 * i / SLIDER_TICKS)
        t0 = time.perf_counter()
        engine.query(canvas, "red", window=window)
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls)


def test_q8_aggregate_first(arena, report_sink):
    canvas = _brush(arena)
    window = TimeWindow.fraction(0.1, 0.8)
    scales: dict[str, dict] = {}

    for label, n_traj in SCALES.items():
        dataset = generate_study_dataset(AntStudyConfig(n_trajectories=n_traj))
        legacy = CoordinatedBrushingEngine(dataset)
        t0 = time.perf_counter()
        agg = CoordinatedBrushingEngine(dataset, use_aggregate=True)
        build_s = time.perf_counter() - t0
        assert agg.pyramid is not None, agg._pyramid_error

        cold_legacy = _cold_median_s(legacy, canvas, window)
        cold_agg = _cold_median_s(agg, canvas, window)
        warm_legacy = _slider_median_s(legacy, canvas)
        warm_agg = _slider_median_s(agg, canvas)

        # what the classifier spares the exact kernels: segments
        # refined vs total, read from the cold trace
        agg.cache.clear()
        res = agg.query(canvas, "red", window=window)
        drill = {
            s.stage: s.detail for s in res.trace.stages if "refined" in s.detail
        }
        assert res.trace.strategy == "aggregate"

        scales[label] = {
            "n_trajectories": n_traj,
            "n_segments": int(dataset.packed().n_segments),
            "pyramid_build_s": round(build_s, 4),
            "pyramid_bytes": int(agg.pyramid.nbytes),
            "cold_legacy_s": round(cold_legacy, 5),
            "cold_aggregate_s": round(cold_agg, 5),
            "cold_speedup": round(cold_legacy / cold_agg, 2),
            "warm_slider_legacy_s": round(warm_legacy, 6),
            "warm_slider_aggregate_s": round(warm_agg, 6),
            "drilldown": drill,
        }

    headline = {
        "cold_speedup_1x": scales["1x"]["cold_speedup"],
        "gate_cold_speedup_1x_min": GATE_COLD_SPEEDUP_1X,
        "cold_aggregate_s_10x": scales["10x"]["cold_aggregate_s"],
        "gate_cold_aggregate_s_10x_max": GATE_COLD_AGG_S_10X,
        "scales_run": sorted(SCALES),
    }
    payload = {
        "bench": "Q8",
        "title": "aggregate-first query planning (summary pyramid)",
        "headline": headline,
        "scales": scales,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_Q8.json").write_text(json.dumps(payload, indent=2))

    lines = []
    for label, s in scales.items():
        lines += [
            f"{label}: {s['n_trajectories']} trajectories "
            f"({s['n_segments']} segments), pyramid build "
            f"{s['pyramid_build_s'] * 1e3:.0f} ms / {s['pyramid_bytes'] / 1e6:.1f} MB",
            f"  cold: legacy {s['cold_legacy_s'] * 1e3:8.1f} ms | aggregate "
            f"{s['cold_aggregate_s'] * 1e3:7.1f} ms | {s['cold_speedup']:.1f}x",
            f"  warm slider tick: legacy {s['warm_slider_legacy_s'] * 1e3:6.2f} ms"
            f" | aggregate {s['warm_slider_aggregate_s'] * 1e3:6.2f} ms",
        ]
    if "100x" not in SCALES:
        lines.append("100x scale skipped (set REPRO_BENCH_100X=1 to run it)")
    lines.append("machine-readable: out/BENCH_Q8.json")
    report_sink("Q8", "aggregate-first query planning", lines)

    # acceptance gates -------------------------------------------------
    assert scales["1x"]["cold_speedup"] >= GATE_COLD_SPEEDUP_1X, scales["1x"]
    assert scales["10x"]["cold_aggregate_s"] < GATE_COLD_AGG_S_10X, scales["10x"]
    for label, s in scales.items():
        assert (
            s["warm_slider_aggregate_s"] <= 3.0 * s["warm_slider_legacy_s"] + 0.001
        ), (label, s)
