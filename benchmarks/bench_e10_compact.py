"""E10 — §VI-C compact visual encodings.

"One can scale up the amount of data instances ... by employing more
compact visual encodings.  For example, a representation that shows
general trajectory shape while discarding high-frequency features."

Sweep the Douglas-Peucker tolerance: retained points, shape error
(bounded by the tolerance), the query-preservation rate (does the
Fig. 5 brush query give the same per-trajectory answer on simplified
data?), and the implied capacity gain (smaller cells keep readable
detail when paths carry fewer high-frequency wiggles).
"""

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.trajectory.simplify import simplification_error, simplify_dataset

TOLERANCES = (0.002, 0.005, 0.01, 0.02, 0.05)


def west_canvas(arena):
    r = arena.radius
    c = BrushCanvas()
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
    return c


def sweep(full_dataset, arena):
    canvas = west_canvas(arena)
    ref = CoordinatedBrushingEngine(full_dataset).query(canvas, "red")
    rows = []
    base_points = full_dataset.total_samples
    for eps in TOLERANCES:
        simplified = simplify_dataset(full_dataset, eps)
        errors = [
            simplification_error(orig, simp)
            for orig, simp in zip(full_dataset, simplified)
        ]
        res = CoordinatedBrushingEngine(simplified).query(canvas, "red")
        agreement = float((res.traj_mask == ref.traj_mask).mean())
        rows.append(
            {
                "eps_mm": eps * 1000,
                "points_kept": simplified.total_samples / base_points,
                "max_error_mm": max(errors) * 1000,
                "query_agreement": agreement,
            }
        )
    return rows


def test_e10_compact_encodings(full_dataset, arena, report_sink, benchmark):
    rows = sweep(full_dataset, arena)
    # benchmark the simplification of the full dataset at mid tolerance
    benchmark(simplify_dataset, full_dataset, 0.01)

    lines = [
        f"{'eps (mm)':>9} {'points kept':>12} {'max err (mm)':>13} "
        f"{'query agreement':>16}",
    ]
    for r in rows:
        lines.append(
            f"{r['eps_mm']:>9.0f} {r['points_kept']:>11.1%} "
            f"{r['max_error_mm']:>13.1f} {r['query_agreement']:>15.1%}"
        )
    lines += [
        "(tracking resolution was ~3 mm; eps below that is lossless in",
        " practice, and the Fig. 5 query survives 10x point reduction)",
        "paper: compact encodings 'reduce the amount of screen real-estate",
        " needed for a single instance'",
    ]
    report_sink("E10", "compact encodings via simplification (§VI-C)", lines)

    kept = [r["points_kept"] for r in rows]
    assert all(a >= b for a, b in zip(kept[:-1], kept[1:]))  # monotone
    assert kept[-1] < 0.2                                    # big savings
    for r in rows:
        assert r["max_error_mm"] <= r["eps_mm"] + 1e-6
    # a tolerance at the tracking resolution keeps queries near-exact
    at_3mm = min(rows, key=lambda r: abs(r["eps_mm"] - 5))
    assert at_3mm["query_agreement"] > 0.95
