"""E8 — §V/§VI pilot-study replay.

Replays the documented analysis sequence through the real application
and regenerates the study's coded-event statistics: event counts by
kind, tool usage, hypotheses per minute ("several hypotheses could be
formulated and tested within a span of few minutes"), queries per
hypothesis, hypothesis-to-query latencies, verdicts, and sensemaking
stage coverage.
"""

import pytest

from repro.core.session import ExplorationSession
from repro.sensemaking import AnalystSimulator
from repro.sensemaking.model import SensemakingModel


def run_replay(full_dataset, viewport):
    session = ExplorationSession(full_dataset, viewport)
    return AnalystSimulator(session).run()


def test_e8_study_replay(full_dataset, viewport, report_sink, benchmark):
    replay = benchmark(run_replay, full_dataset, viewport)

    coding = replay.coding
    counts = coding.counts()
    usage = coding.tool_usage()
    lat = coding.hypothesis_latencies()
    model = SensemakingModel()
    mix = model.transition_mix(coding.stage_trace())

    lines = [
        f"session length (modeled): {coding.duration_s / 60:.1f} min",
        f"coded events: {counts}",
        f"tool usage: {usage}",
        f"hypotheses tested: {replay.hypotheses_tested()}, "
        f"supported: {replay.supported_count()}",
        "verdicts:",
    ]
    for schema, verdict in zip(replay.schemas, replay.verdicts):
        lines.append(f"  [{verdict.kind.value:9s}] {schema.theory}")
    lines += [
        f"hypotheses per minute: {coding.hypotheses_per_minute():.2f}",
        f"hypothesis -> first query latency: "
        f"mean {lat.mean():.0f} s (n={len(lat)})",
        f"queries per hypothesis: {coding.queries_per_hypothesis()}",
        f"sensemaking stage coverage: {coding.stage_coverage(model):.0%}; "
        f"transition mix: {mix}",
        f"evidence file: {len(replay.evidence)} items, "
        f"tags {replay.evidence.tag_histogram()}",
        "paper: researcher 'spent most of the time contemplating a "
        "variety of theories and evaluating them with quick visual queries'",
    ]
    report_sink("E8", "pilot-study replay (§V, §VI)", lines)

    # expected shape: 5 hypotheses, all supported (the paper's outcomes),
    # tested at a rate of ~1+/minute, brushing used once per hypothesis
    assert replay.hypotheses_tested() == 5
    assert replay.supported_count() == 5
    assert coding.hypotheses_per_minute() > 0.5
    assert usage["coordinated_brush"] == 5
    assert coding.stage_coverage(model) >= 4 / 7
    # the opportunistic mix: both bottom-up and top-down moves occur
    assert mix["forward"] > 0 and mix["back"] > 0
