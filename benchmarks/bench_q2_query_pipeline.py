"""Q2 — staged query-plan pipeline: cold vs warm latency.

The paper's headline interaction claim is that a brush or time-slider
tweak answers "in a matter of few seconds" across ~500 trajectories.
The staged pipeline makes the *warm* path structurally cheaper: a
slider-only change re-executes just ``temporal_mask → combine →
aggregate`` and an unchanged query is pure cache lookups.  This bench
quantifies it on the S1 synthetic ensemble (the paper-scale
500-trajectory dataset):

* cold vs warm single-query latency (stage cache emptied vs primed);
* a slider-sweep replay at ~0 / 50 / 90 % cache-hit rates, emulating a
  researcher scrubbing the temporal slider with varying amounts of
  revisiting.

Besides the human-readable ``out/Q2.txt`` table, the run emits
machine-readable ``out/BENCH_Q2.json`` for CI trend tracking.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow

OUT_DIR = Path(__file__).parent / "out"

N_SWEEP = 20
WINDOW_WIDTH = 0.2


@pytest.fixture(scope="module")
def canvas(arena):
    c = BrushCanvas()
    r = arena.radius
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), radius=0.12 * r, color="red"))
    return c


def _timed_query(engine, canvas, window) -> float:
    t0 = time.perf_counter()
    engine.query(canvas, "red", window=window)
    return time.perf_counter() - t0


def _sweep_windows(n: int, offset: float = 0.0) -> list[TimeWindow]:
    """n sliding fractional windows across the experiment."""
    out = []
    for i in range(n):
        lo = (i / max(1, n)) * (1.0 - WINDOW_WIDTH) + offset
        out.append(TimeWindow.fraction(lo, lo + WINDOW_WIDTH))
    return out


def _replay(engine, canvas, positions: list[TimeWindow], *, cold_each: bool) -> dict:
    """Run one slider-sweep replay; returns latency + hit-rate stats."""
    hits0 = engine.cache.stats.hits
    lookups0 = engine.cache.stats.hits + engine.cache.stats.misses
    latencies = []
    for window in positions:
        if cold_each:
            engine.invalidate_cache()
        latencies.append(_timed_query(engine, canvas, window))
    hits = engine.cache.stats.hits - hits0
    lookups = (engine.cache.stats.hits + engine.cache.stats.misses) - lookups0
    return {
        "n_queries": len(positions),
        "observed_hit_rate": round(hits / lookups, 3) if lookups else 0.0,
        "median_s": statistics.median(latencies),
        "mean_s": statistics.fmean(latencies),
        "total_s": sum(latencies),
    }


def test_q2_query_pipeline(full_dataset, canvas, report_sink):
    engine = CoordinatedBrushingEngine(full_dataset)
    window = TimeWindow.fraction(0.3, 0.5)

    # --- cold vs warm single-query latency -----------------------------
    cold = []
    for _ in range(5):
        engine.invalidate_cache()
        cold.append(_timed_query(engine, canvas, window))
    engine.invalidate_cache()
    _timed_query(engine, canvas, window)  # prime every stage
    warm = [_timed_query(engine, canvas, window) for _ in range(10)]
    cold_median = statistics.median(cold)
    warm_median = statistics.median(warm)
    speedup = cold_median / warm_median if warm_median > 0 else float("inf")

    # --- slider-sweep replay at three revisit rates --------------------
    sweeps = {}
    # ~0%: every position new, cache dropped before each step
    eng0 = CoordinatedBrushingEngine(full_dataset)
    sweeps["0"] = {
        "target_hit_rate": 0.0,
        **_replay(eng0, canvas, _sweep_windows(N_SWEEP), cold_each=True),
    }
    # ~50%: every distinct position visited twice back to back
    eng50 = CoordinatedBrushingEngine(full_dataset)
    positions_50 = [w for w in _sweep_windows(N_SWEEP // 2) for _ in (0, 1)]
    sweeps["50"] = {
        "target_hit_rate": 0.5,
        **_replay(eng50, canvas, positions_50, cold_each=False),
    }
    # ~90%: two distinct positions revisited for the whole sweep
    eng90 = CoordinatedBrushingEngine(full_dataset)
    two = _sweep_windows(2)
    positions_90 = [two[i % 2] for i in range(N_SWEEP)]
    sweeps["90"] = {
        "target_hit_rate": 0.9,
        **_replay(eng90, canvas, positions_90, cold_each=False),
    }

    packed = full_dataset.packed()
    payload = {
        "bench": "Q2",
        "title": "staged query-plan pipeline (plan/execute split)",
        "dataset": {
            "name": "S1 synthetic ensemble",
            "n_trajectories": len(full_dataset),
            "n_segments": int(packed.n_segments),
        },
        "cold": {"n": len(cold), "median_s": cold_median, "min_s": min(cold)},
        "warm": {"n": len(warm), "median_s": warm_median, "min_s": min(warm)},
        "speedup_warm_over_cold": round(speedup, 2),
        "slider_sweep": sweeps,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_Q2.json").write_text(json.dumps(payload, indent=2))

    lines = [
        f"dataset: {len(full_dataset)} trajectories / {packed.n_segments} segments",
        f"cold query median: {cold_median * 1e3:8.2f} ms  (cache emptied per query)",
        f"warm query median: {warm_median * 1e3:8.2f} ms  (all stages cached)",
        f"warm speedup: {speedup:.1f}x",
        "slider-sweep replay (20 steps, fractional window scrub):",
    ]
    for label, s in sweeps.items():
        lines.append(
            f"  ~{label:>2}% revisits: median {s['median_s'] * 1e3:7.2f} ms, "
            f"observed stage hit rate {s['observed_hit_rate']:.0%}, "
            f"total {s['total_s'] * 1e3:.1f} ms"
        )
    lines.append("machine-readable: out/BENCH_Q2.json")
    report_sink("Q2", "staged query-plan pipeline", lines)

    # acceptance: warm path at least 3x faster than cold
    assert speedup >= 3.0, f"warm/cold speedup {speedup:.2f} < 3"
    # incremental scrubbing must beat the fully cold sweep
    assert sweeps["90"]["total_s"] < sweeps["0"]["total_s"]
