"""E9 — §VI-C scalability: SOM cluster-level exploration.

"Instead of showing individual trajectories, we can cluster those
trajectories ... The unit of exploration becomes a cluster ...
Coordinated brushing can still be employed ... a user can
interactively 'zoom in' on a particular cluster."

Series over dataset size N in {2 000, 10 000}: SOM fit time, cluster
count (= a 24x6 wall layout), compression ratio, cluster-level brush
query time, zoom-in query time, cluster-vs-exact support fidelity, and
the k-means quantization comparison.  (The paper speculates up to 1M
traces; we sweep to 10k here to keep the bench minutes-scale and check
the scaling *shape* — fit time roughly linear in N, query time at the
cluster level independent of N.)
"""

import time

import numpy as np
import pytest

from repro.cluster.features import dataset_features
from repro.cluster.kmeans import kmeans
from repro.cluster.model import fit_som_clusters
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.multiscale import MultiscaleExplorer
from repro.synth import generate_scaled_dataset

SERIES = (2_000, 10_000)
ROWS, COLS = 6, 24  # the paper's 24x6 layout as the SOM lattice


def west_canvas(arena):
    r = arena.radius
    c = BrushCanvas()
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
    return c


@pytest.fixture(scope="module")
def datasets():
    return {
        n: generate_scaled_dataset(n, seed=13, max_duration_s=40.0) for n in SERIES
    }


def test_e9_som_scaling(datasets, arena, report_sink, benchmark):
    canvas = west_canvas(arena)
    rows = benchmark.pedantic(
        _som_scaling_rows, args=(datasets, canvas), rounds=1, iterations=1
    )
    _report_and_assert(rows, report_sink)


def _som_scaling_rows(datasets, canvas):
    rows = []
    for n in SERIES:
        ds = datasets[n]
        t0 = time.perf_counter()
        model = fit_som_clusters(ds, ROWS, COLS, epochs=8, seed=0)
        fit_s = time.perf_counter() - t0

        explorer = MultiscaleExplorer(model)
        overview = explorer.query_overview(canvas, "red")
        clusters = explorer.interesting_clusters(canvas, "red")
        t0 = time.perf_counter()
        drill = explorer.drill_down(canvas, "red", max_clusters=3)
        drill_s = time.perf_counter() - t0
        fidelity = explorer.support_estimate_error(
            canvas, exact_engine=CoordinatedBrushingEngine(ds)
        )

        # k-means comparison at equal unit count
        feats, _ = dataset_features(ds)
        km = kmeans(feats, ROWS * COLS, seed=0, max_iter=20)
        som_qe = model.som.quantization_error(feats)

        rows.append(
            {
                "n": n,
                "fit_s": fit_s,
                "nonempty": model.n_nonempty,
                "compression": model.compression_ratio(),
                "overview_query_s": overview.elapsed_s,
                "n_interesting": len(clusters),
                "drill_s": drill_s,
                "cluster_support": fidelity["cluster_level_support"],
                "exact_support": fidelity["exact_support"],
                "abs_err": fidelity["abs_error"],
                "som_qe": som_qe,
                "kmeans_qe": km.inertia,
            }
        )
    return rows


def _report_and_assert(rows, report_sink):
    lines = [
        f"SOM lattice: {COLS}x{ROWS} = {ROWS * COLS} units (one wall layout)",
        f"{'N':>7} {'fit (s)':>8} {'clusters':>9} {'compress':>9} "
        f"{'ovw qry (s)':>12} {'drill (s)':>10} {'cl supp':>8} "
        f"{'exact':>6} {'err':>5}",
    ]
    for r in rows:
        lines.append(
            f"{r['n']:>7} {r['fit_s']:>8.2f} {r['nonempty']:>9} "
            f"{r['compression']:>8.0f}x {r['overview_query_s']:>12.4f} "
            f"{r['drill_s']:>10.3f} {r['cluster_support']:>7.0%} "
            f"{r['exact_support']:>6.0%} {r['abs_err']:>5.2f}"
        )
    for r in rows:
        lines.append(
            f"quantization error at N={r['n']}: SOM {r['som_qe']:.3f} vs "
            f"k-means {r['kmeans_qe']:.3f} "
            f"(topology costs {(r['som_qe'] / r['kmeans_qe'] - 1) * 100:+.0f}%)"
        )
    lines.append(
        "paper: cluster averages in the small multiples; brushing still "
        "works; zoom-in reaches individual trajectories"
    )
    report_sink("E9", "SOM multi-scale scaling (§VI-C)", lines)

    # expected shape: overview query time does not grow with N (it runs
    # on <=144 averages); fit time grows with N; fidelity indicative
    assert rows[-1]["overview_query_s"] < 0.5
    assert rows[-1]["fit_s"] > rows[0]["fit_s"]
    for r in rows:
        assert r["abs_err"] < 0.35
        assert r["nonempty"] > 10
        # k-means (unconstrained) never quantizes worse than the SOM
        assert r["kmeans_qe"] <= r["som_qe"] * 1.05


def test_e9_overview_query_bench(datasets, arena, benchmark):
    """Benchmark the cluster-level brush on the 10k dataset."""
    ds = datasets[SERIES[-1]]
    model = fit_som_clusters(ds, ROWS, COLS, epochs=6, seed=0)
    explorer = MultiscaleExplorer(model)
    canvas = west_canvas(arena)
    result = benchmark(explorer.query_overview, canvas, "red")
    assert result.n_displayed == len(model.averages)
