"""A2 — ablation: spatial index on/off.

Quantifies what the uniform-grid segment index buys the coordinated-
brushing engine at growing dataset sizes: query latency with and
without the index for a localized brush (the Fig. 5 west-edge stroke),
plus the index's candidate selectivity.  Expected shape: identical
results, with the indexed query ~constant-factor faster and the gap
widening with N.
"""

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.spatial_index import UniformGridIndex
from repro.synth import generate_scaled_dataset

SERIES = (500, 2_000, 8_000)


def west_canvas(arena):
    r = arena.radius
    c = BrushCanvas()
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
    return c


@pytest.fixture(scope="module")
def datasets():
    return {n: generate_scaled_dataset(n, seed=29, max_duration_s=40.0) for n in SERIES}


def test_a2_index_ablation(datasets, arena, report_sink, benchmark):
    canvas = west_canvas(arena)
    centers, radii = canvas.stamps_of("red")

    # register the headline indexed query with pytest-benchmark
    fast_large = CoordinatedBrushingEngine(datasets[SERIES[-1]], use_index=True)
    benchmark(fast_large.query, canvas, "red")

    rows = []
    for n in SERIES:
        ds = datasets[n]
        fast = CoordinatedBrushingEngine(ds, use_index=True)
        slow = CoordinatedBrushingEngine(ds, use_index=False)
        # median of 3 runs to de-noise
        fast_t = np.median([fast.query(canvas, "red").elapsed_s for _ in range(3)])
        slow_t = np.median([slow.query(canvas, "red").elapsed_s for _ in range(3)])
        r_fast = fast.query(canvas, "red")
        r_slow = slow.query(canvas, "red")
        np.testing.assert_array_equal(r_fast.traj_mask, r_slow.traj_mask)
        selectivity = fast.index.candidate_fraction(centers, radii)
        rows.append(
            {
                "n": n,
                "segments": ds.packed().n_segments,
                "with_s": fast_t,
                "without_s": slow_t,
                "speedup": slow_t / max(fast_t, 1e-9),
                "selectivity": selectivity,
            }
        )

    lines = [
        f"{'N':>6} {'segments':>9} {'indexed (s)':>12} {'linear (s)':>11} "
        f"{'speedup':>8} {'candidates':>11}",
    ]
    for r in rows:
        lines.append(
            f"{r['n']:>6} {r['segments']:>9} {r['with_s']:>12.4f} "
            f"{r['without_s']:>11.4f} {r['speedup']:>7.1f}x "
            f"{r['selectivity']:>10.1%}"
        )
    lines += [
        "(identical query results asserted; the index tests only the",
        " segments in grid cells the brush touches)",
    ]
    report_sink("A2", "spatial index on/off (ablation)", lines)

    # expected shape: index helps, more at larger N, results identical
    assert rows[-1]["speedup"] > 1.5
    assert rows[-1]["selectivity"] < 0.5


def test_a2_index_build_bench(datasets, benchmark):
    ds = datasets[SERIES[-1]]
    packed = ds.packed()
    index = benchmark(UniformGridIndex, packed, 64)
    assert index.n_entries >= packed.n_segments
