"""E4 — §V-B spatio-temporal query: seed-droppers search centrally.

"To determine whether ants that have dropped the seed they were
carrying spend more time in the center searching for the seed before
deciding which direction to take, the user would brush the center of
the experimental arena with green and set the temporal filter to
display the beginning of the experiment."  The stereo reading —
near-perpendicular green segments — corresponds to long highlighted
time; the bench regenerates both the visual-query contrast and the
exact dwell table.
"""

import numpy as np
import pytest

from repro.analytics.dwell import central_dwell_table
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.stereo.projection import SpaceTimeProjection


def center_brush(arena):
    r = 0.15 * arena.radius
    return stroke_from_rect((-r / 2, -r / 2), (r / 2, r / 2), radius=r, color="green")


def seed_dwell_query(engine, canvas):
    return engine.query(canvas, "green", window=TimeWindow.beginning(0.2))


def test_e4_seed_dwell(full_dataset, arena, report_sink, benchmark):
    engine = CoordinatedBrushingEngine(full_dataset)
    canvas = BrushCanvas()
    canvas.add(center_brush(arena))

    result = benchmark(seed_dwell_query, engine, canvas)

    droppers = np.array([t.meta.seed_dropped for t in full_dataset])
    long_highlight = result.traj_highlight_time >= 8.0
    support_droppers = float(long_highlight[droppers].mean())
    support_others = float(long_highlight[~droppers].mean())

    exact = central_dwell_table(
        full_dataset, radius=0.15 * arena.radius, early_fraction=0.2
    )

    report_sink(
        "E4",
        "seed-drop central search (§V-B spatio-temporal query)",
        [
            "brush: green, arena center; window: first 20% of each run;",
            "criterion: highlighted time >= 8 s (long, near-perpendicular",
            "green run in the stereo view = stationary ant)",
            f"seed-droppers with long green run: {support_droppers:.0%} "
            f"(n={int(droppers.sum())})",
            f"all other ants:                   {support_others:.0%} "
            f"(n={int((~droppers).sum())})",
            "exact early central dwell (seconds):",
            f"  seed-droppers: mean {exact['seed_dropped']['mean_s']:.1f}, "
            f"median {exact['seed_dropped']['median_s']:.1f}",
            f"  others:        mean {exact['others']['mean_s']:.1f}, "
            f"median {exact['others']['median_s']:.1f}",
            "paper: hypothesis verified by 'green segments roughly "
            "perpendicular to the display surface'",
        ],
    )

    # expected shape: droppers dominate on both visual and exact readings
    assert support_droppers > support_others + 0.3
    assert exact["seed_dropped"]["mean_s"] > 1.5 * exact["others"]["mean_s"]
    assert exact["seed_dropped"]["median_s"] > 1.5 * exact["others"]["median_s"]


def test_e4_perpendicularity_signature(full_dataset, arena, report_sink, benchmark):
    """The stereo cue itself: seed-droppers' early segments are far
    steeper (depth/XY ratio) than other ants'."""
    projection = SpaceTimeProjection(time_scale=0.001)

    def collect():
        steep_dropper, steep_other = [], []
        for traj in full_dataset:
            early = traj.time_slice(
                float(traj.times[0]), float(traj.times[0]) + 0.2 * traj.duration
            )
            if early is None:
                continue
            ratio = np.median(projection.apparent_motion_ratio(early))
            (steep_dropper if traj.meta.seed_dropped else steep_other).append(ratio)
        return steep_dropper, steep_other

    steep_dropper, steep_other = benchmark.pedantic(collect, rounds=1, iterations=1)
    med_d = float(np.median(steep_dropper))
    med_o = float(np.median(steep_other))
    report_sink(
        "E4b",
        "perpendicular-segment signature (stereo cue)",
        [
            f"median early depth/XY ratio, seed-droppers: {med_d:.3f}",
            f"median early depth/XY ratio, others:        {med_o:.3f}",
            f"contrast: {med_d / max(med_o, 1e-9):.1f}x steeper",
        ],
    )
    assert med_d > 1.5 * med_o
