#!/usr/bin/env python
"""Multi-scale exploration of a large trajectory collection (§VI-C).

The paper's scalability path: cluster 10 000+ trajectories with a
self-organizing map whose lattice matches a wall layout, show cluster
averages in the small multiples, brush at the cluster level, then zoom
into the interesting clusters and query at the individual level.

Run:  python examples/scalability_som.py [--n 10000]
"""

import argparse
import time

from repro import CoordinatedBrushingEngine, generate_scaled_dataset
from repro.cluster.model import fit_som_clusters
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.multiscale import MultiscaleExplorer
from repro.synth.arena import Arena


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=10_000, help="trajectory count")
    parser.add_argument("--rows", type=int, default=6)
    parser.add_argument("--cols", type=int, default=24)
    args = parser.parse_args()

    arena = Arena()
    print(f"generating {args.n} trajectories ...")
    t0 = time.perf_counter()
    dataset = generate_scaled_dataset(args.n, seed=13, max_duration_s=40.0)
    print(f"  {time.perf_counter() - t0:.1f} s, "
          f"{dataset.total_segments} segments total")

    # --- cluster to a wall-layout-sized SOM --------------------------
    print(f"fitting a {args.cols}x{args.rows} SOM "
          f"({args.rows * args.cols} cluster cells) ...")
    t0 = time.perf_counter()
    model = fit_som_clusters(dataset, args.rows, args.cols, epochs=8, seed=0)
    print(f"  {time.perf_counter() - t0:.1f} s; "
          f"{model.n_nonempty} non-empty clusters, "
          f"compression {model.compression_ratio():.0f}x, "
          f"final quantization error "
          f"{model.train_log.quantization_error[-1]:.3f}")

    # --- the same Fig. 5 brush, now at the cluster level -------------
    canvas = BrushCanvas()
    r = arena.radius
    canvas.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r),
                                0.12 * r, "red"))
    explorer = MultiscaleExplorer(model)

    overview = explorer.query_overview(canvas, "red")
    print(f"\ncluster-level query: {overview.n_highlighted}/"
          f"{overview.n_displayed} cluster averages highlighted "
          f"in {overview.elapsed_s * 1000:.1f} ms")

    clusters = explorer.interesting_clusters(canvas, "red")
    print(f"interesting clusters: {len(clusters)}")

    # --- zoom into the three biggest hits -----------------------------
    drill = explorer.drill_down(canvas, "red", max_clusters=3)
    for cluster, result in drill.items():
        size = len(model.members_of(cluster))
        print(f"  zoom cluster {cluster:3d} ({size:4d} members): "
              f"{result.n_highlighted}/{result.n_displayed} highlighted "
              f"({result.overall_support:.0%})")

    # --- fidelity of the cluster-level reading ------------------------
    fidelity = explorer.support_estimate_error(
        canvas, "red", exact_engine=CoordinatedBrushingEngine(dataset)
    )
    print(
        f"\ncluster-level support {fidelity['cluster_level_support']:.0%} vs "
        f"exact {fidelity['exact_support']:.0%} "
        f"(abs. error {fidelity['abs_error']:.2f}) — the granularity "
        "trade-off §VI-C accepts"
    )


if __name__ == "__main__":
    main()
