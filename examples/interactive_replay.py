#!/usr/bin/env python
"""Input-event-driven session: record, save, and replay.

Drives the application purely through the interaction layer — keypad
layout switching, a pointer-drag brush stroke resolved through a cell
into shared arena coordinates, color cycling — then saves the raw
input stream to JSON and replays it into a second application
instance, verifying both end in the same state (the determinism the
§V video-coding analysis depends on).

Run:  python examples/interactive_replay.py
"""

import tempfile
from pathlib import Path

from repro import TrajectoryExplorer, generate_study_dataset
from repro.interaction.events import KeyEvent, PointerEvent, PointerPhase
from repro.interaction.recorder import SessionRecorder


def drive(app: TrajectoryExplorer) -> None:
    """A short scripted interaction session."""
    events = [
        KeyEvent(0.0, "2"),                                   # 24x6 layout
        KeyEvent(1.0, "g"),                                   # Fig. 3 groups
        PointerEvent(2.0, 40.0, 40.0, PointerPhase.DOWN),     # drag a brush
        PointerEvent(2.2, 60.0, 45.0, PointerPhase.MOVE),
        PointerEvent(2.4, 80.0, 50.0, PointerPhase.MOVE),
        PointerEvent(2.6, 95.0, 52.0, PointerPhase.UP),
        KeyEvent(3.0, "b"),                                   # next color
        PointerEvent(4.0, 400.0, 300.0, PointerPhase.DOWN),   # second stroke
        PointerEvent(4.3, 430.0, 310.0, PointerPhase.UP),
    ]
    for e in events:
        app.handle_event(e)


def main() -> None:
    dataset = generate_study_dataset()

    # --- live session --------------------------------------------------
    app = TrajectoryExplorer(dataset, layout_key="1")
    drive(app)
    print("live session state:", app.status())
    print(f"recorded {len(app.recorder)} input events "
          f"({app.recorder.duration_s:.1f} s of interaction)")

    # --- persist the recording ------------------------------------------
    path = Path(tempfile.gettempdir()) / "repro_session.json"
    app.recorder.save(path)
    print(f"saved input stream -> {path}")

    # --- replay into a fresh instance ------------------------------------
    replayed = TrajectoryExplorer(dataset, layout_key="1")
    loaded = SessionRecorder.load(path)
    loaded.replay(replayed.handle_event)
    print("replayed session state:", replayed.status())

    assert replayed.status() == app.status(), "replay diverged!"
    assert replayed.session.canvas.n_strokes == app.session.canvas.n_strokes
    strokes_a = app.session.canvas.strokes()
    strokes_b = replayed.session.canvas.strokes()
    for sa, sb in zip(strokes_a, strokes_b):
        assert sa.color == sb.color and sa.n_stamps == sb.n_stamps
    print("\nreplay is bit-identical: state, stroke count and colors match")


if __name__ == "__main__":
    main()
