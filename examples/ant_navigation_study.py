#!/usr/bin/env python
"""The full pilot-study case (§IV-§VI), end to end.

Replays the behavioral-ecology analysis session the paper evaluated:
grouping by capture zone, comparison observations, all five documented
hypotheses tested as visual queries, the coded-event analysis of §V,
and a cross-check of every verdict against exact analytics.  Also
renders the Fig. 3/Fig. 5 wall frame to a PPM image.

Run:  python examples/ant_navigation_study.py [--render out.ppm]
"""

import argparse

from repro import generate_study_dataset, paper_viewport
from repro.analytics.exits import exit_side_table
from repro.analytics.dwell import central_dwell_table
from repro.analytics.stats import zone_straightness_table
from repro.core.session import ExplorationSession
from repro.sensemaking import AnalystSimulator
from repro.sensemaking.model import SensemakingModel
from repro.synth.arena import Arena


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--render", metavar="OUT.ppm", default=None,
                        help="also render the queried wall frame to a PPM file")
    parser.add_argument("--n", type=int, default=500, help="dataset size")
    args = parser.parse_args()

    arena = Arena()
    dataset = generate_study_dataset()
    if args.n != 500:
        from repro.synth import AntStudyConfig

        dataset = generate_study_dataset(AntStudyConfig(n_trajectories=args.n))

    print(f"== dataset: {len(dataset)} ant trajectories ==")
    print("capture zones:", dataset.zones())

    # --- the researcher's session, replayed through the real app -----
    session = ExplorationSession(dataset, paper_viewport())
    simulator = AnalystSimulator(session, arena)
    replay = simulator.run()

    print("\n== hypotheses tested (visual queries) ==")
    for schema, verdict in zip(replay.schemas, replay.verdicts):
        print(f"  [{verdict!s:45s}] {schema.theory}")

    print("\n== §V coding-scheme analysis of the session ==")
    coding = replay.coding
    print(f"  events: {coding.counts()}")
    print(f"  tools:  {coding.tool_usage()}")
    print(f"  hypotheses/minute: {coding.hypotheses_per_minute():.2f}")
    model = SensemakingModel()
    print(f"  sensemaking stage coverage: {coding.stage_coverage(model):.0%}")
    print(f"  transition mix: {model.transition_mix(coding.stage_trace())}")

    print("\n== exact analytics cross-check ==")
    table = exit_side_table(dataset, arena)
    for zone in ("east", "west", "north", "south"):
        row = table[zone]
        total = sum(row.values())
        opposite = {"east": "west", "west": "east", "north": "south", "south": "north"}[zone]
        print(
            f"  {zone:>5}-captured: {row[opposite] / total:.0%} exit {opposite} "
            f"(n={total})"
        )
    straight = zone_straightness_table(dataset)
    print(f"  straightness by zone: "
          + ", ".join(f"{z}={v:.2f}" for z, v in straight.items()))
    dwell = central_dwell_table(dataset, radius=0.15 * arena.radius)
    print(
        f"  early central dwell: seed-droppers "
        f"{dwell['seed_dropped']['mean_s']:.1f} s vs others "
        f"{dwell['others']['mean_s']:.1f} s"
    )

    # evidence & provenance artifacts (the paper's future-work feature)
    print(f"\n== evidence file: {len(replay.evidence)} items ==")
    for ev in list(replay.evidence)[:4]:
        print(f"  - {ev.text}")

    if args.render:
        from repro import TrajectoryExplorer
        from repro.core.temporal import TimeWindow
        from repro.core.brush import stroke_from_rect

        app = TrajectoryExplorer(dataset, layout_key="3")
        app.group_by_capture_zone()
        r = arena.radius
        app.brush(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r),
                                   0.12 * r, "red"))
        app.set_time_window(TimeWindow.end(0.15))
        app.query("red")
        app.save_frame(args.render, mode="left", scale=0.25)
        print(f"\nrendered wall frame -> {args.render}")


if __name__ == "__main__":
    main()
