#!/usr/bin/env python
"""Render the wall: Fig. 3's frame, stereo pair, and anaglyph.

Builds the queried application state (groups + west brush + end
window), renders every tile of the 2/3-surface viewport for both eyes
— serially and across a process pool, the way a cluster-driven wall
distributes tiles — and writes PPM images you can open in any viewer.

Run:  python examples/wall_rendering.py [--outdir frames] [--workers 4]
"""

import argparse
import time
from pathlib import Path

from repro import TimeWindow, TrajectoryExplorer, generate_study_dataset
from repro.core.brush import stroke_from_rect
from repro.parallel.pool import default_workers
from repro.parallel.tilerender import render_viewport_parallel
from repro.render.compose import anaglyph, compose_wall, stereo_pair_side_by_side
from repro.render.image_io import write_ppm
from repro.stereo.camera import Eye


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="frames", help="output directory")
    parser.add_argument("--workers", type=int, default=min(4, default_workers()))
    parser.add_argument("--layout", default="2", choices=("1", "2", "3"))
    parser.add_argument("--scale", type=float, default=0.25,
                        help="output downscale factor")
    args = parser.parse_args()

    outdir = Path(args.outdir)
    outdir.mkdir(exist_ok=True)

    # application state: Fig. 3 groups + the Fig. 5 query
    dataset = generate_study_dataset()
    app = TrajectoryExplorer(dataset, layout_key=args.layout)
    app.group_by_capture_zone()
    r = app.arena.radius
    app.brush(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r),
                               0.12 * r, "red"))
    app.set_time_window(TimeWindow.end(0.15))
    result = app.query("red")
    print("query:", result.summary())

    renderer = app.renderer()
    assignment = app.session.assignment
    canvas = app.session.canvas
    results = {"red": result}

    # serial vs parallel tile rendering -------------------------------
    serial = render_viewport_parallel(
        renderer, assignment, canvas=canvas, results=results, max_workers=0
    )
    print(f"serial render:   {serial.elapsed_s:6.2f} s "
          f"({serial.n_jobs} tile-eye jobs)")
    if args.workers > 1:
        parallel = render_viewport_parallel(
            renderer, assignment, canvas=canvas, results=results,
            max_workers=args.workers,
        )
        print(f"parallel render: {parallel.elapsed_s:6.2f} s "
              f"with {args.workers} workers "
              f"({serial.elapsed_s / parallel.elapsed_s:.2f}x)")
        frames = parallel.frames
    else:
        frames = serial.frames

    # compose & write --------------------------------------------------
    wall = app.viewport.wall
    t0 = time.perf_counter()
    left = compose_wall(wall, frames[Eye.LEFT], scale=args.scale)
    right = compose_wall(wall, frames[Eye.RIGHT], scale=args.scale)
    write_ppm(left, outdir / "wall_left.ppm")
    write_ppm(stereo_pair_side_by_side(left, right), outdir / "wall_pair.ppm")
    write_ppm(anaglyph(left, right), outdir / "wall_anaglyph.ppm")
    print(f"composed + wrote 3 frames in {time.perf_counter() - t0:.2f} s:")
    for name in ("wall_left.ppm", "wall_pair.ppm", "wall_anaglyph.ppm"):
        print(f"  {outdir / name}")


if __name__ == "__main__":
    main()
