#!/usr/bin/env python
"""Exploring a simulation ensemble with visual queries (§VII).

The paper's closing claim: "the concept of scalable visual queries
could be generalized to other applications ... such as ensembles of
simulation runs under different conditions."  This example does exactly
that: an ensemble of damped-oscillator phase-plane runs with swept
damping ratios, laid out in the same small multiples, queried with the
same brush machinery — "which runs are still ringing (out at the rim)
late in the simulation?" — and cross-checked against the known physics.

Run:  python examples/ensemble_exploration.py
"""

import numpy as np

from repro import TimeWindow, TrajectoryExplorer
from repro.core.brush import BrushStroke
from repro.synth import EnsembleConfig, generate_oscillator_ensemble


def ring_stroke(radius: float, width: float, color: str) -> BrushStroke:
    """Brush an annulus at ``radius`` (phase-plane 'still oscillating
    at this amplitude')."""
    theta = np.linspace(0.0, 2.0 * np.pi, 48, endpoint=False)
    centers = radius * np.stack([np.cos(theta), np.sin(theta)], axis=1)
    return BrushStroke(centers, width, color)


def main(n_runs: int = 288) -> None:
    config = EnsembleConfig(n_runs=n_runs, duration_s=30.0, seed=11)
    ensemble = generate_oscillator_ensemble(config)
    zetas = np.array([t.meta.extra["zeta"] for t in ensemble])
    print(f"ensemble: {len(ensemble)} damped-oscillator runs, "
          f"zeta in [{zetas.min():.2f}, {zetas.max():.2f}]")

    # the same application, different science domain
    app = TrajectoryExplorer(ensemble, layout_key="2")   # 24x6 = 144 cells
    print("status:", app.status())

    # visual query: are any runs still ringing at >= 30 % of their
    # release amplitude in the last 30 % of the simulation?
    app.brush(ring_stroke(0.15, 0.05, "red"))
    app.set_time_window(TimeWindow.end(0.3))
    result = app.query("red")
    print(f"\nlate 30%-amplitude annulus query: {result.n_highlighted}/"
          f"{result.n_displayed} runs highlighted "
          f"({result.overall_support:.0%})")

    # the physics the highlight encodes: light damping keeps ringing
    displayed = np.flatnonzero(result.displayed)
    hit = result.traj_mask[displayed]
    z_disp = zetas[displayed]
    if hit.any() and (~hit).any():
        print(f"median zeta of highlighted runs: {np.median(z_disp[hit]):.2f}")
        print(f"median zeta of dark runs:        {np.median(z_disp[~hit]):.2f}")
        assert np.median(z_disp[hit]) < np.median(z_disp[~hit]), (
            "light damping should dominate the late-ringing highlight"
        )

    # second query, second color: who *starts* near the center? (inner
    # brush + beginning window) — initial-condition sweep structure
    app.brush(ring_stroke(0.08, 0.06, "green"))
    app.set_time_window(TimeWindow.beginning(0.1))
    early = app.query("green")
    print(f"\nearly inner-region query: {early.n_highlighted}/"
          f"{early.n_displayed} runs highlighted")

    # sweep the annulus radius: the 'amplitude survival' curve, one
    # visual query per radius — the rapid-hypothesis pattern of §VI-B
    print("\namplitude-survival sweep (late window):")
    app.set_time_window(TimeWindow.end(0.3))
    for radius in (0.1, 0.2, 0.3, 0.45):
        app.erase("blue")
        app.brush(ring_stroke(radius, 0.05, "blue"))
        res = app.query("blue")
        bar = "#" * int(40 * res.overall_support)
        print(f"  r={radius:4.2f}: {res.overall_support:6.1%} {bar}")

    # formalize the finding as a hypothesis: provenance gets the chain
    from repro.core.hypothesis import Hypothesis
    from repro.trajectory.filters import PredicateFilter

    hyp = Hypothesis(
        statement="lightly damped runs (zeta < 0.3) still ring at 30% "
                  "amplitude late in the simulation",
        strokes=(ring_stroke(0.15, 0.05, "red"),),
        window=TimeWindow.end(0.3),
        target_filter=PredicateFilter(
            lambda t: t.meta.extra["zeta"] < 0.3, "zeta<0.3"
        ),
        contrast=True,
    )
    verdict = app.test_hypothesis(hyp)
    print(f"\nhypothesis: {verdict}")
    print(f"provenance/insight records: {len(app.provenance)}")
    print(f"  last insight: {app.provenance[len(app.provenance) - 1].insight}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=288, help="ensemble size")
    main(parser.parse_args().n)
