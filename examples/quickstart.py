#!/usr/bin/env python
"""Quickstart: the Fig. 5 visual query in ~30 lines.

Generates the study-shaped ant dataset, puts it on the paper's wall in
the 36x12 small-multiple layout with the Fig. 3 five-zone grouping,
paints the west edge of the arena red, restricts to the end of each
experiment, and reads the per-group highlight support — the visual
query that tests "ants captured east of the trail exit west".

Run:  python examples/quickstart.py
"""

from repro import TimeWindow, TrajectoryExplorer, generate_study_dataset
from repro.core.brush import stroke_from_rect

def main() -> None:
    # 1. the ~500-trajectory capture-and-release dataset (synthetic
    #    stand-in for the paper's field data; see DESIGN.md §2)
    dataset = generate_study_dataset()
    print(f"dataset: {len(dataset)} trajectories, "
          f"durations {dataset.duration_range()[0]:.0f}-"
          f"{dataset.duration_range()[1]:.0f} s")

    # 2. the application on the paper's 6x3 wall (2/3-surface viewport)
    app = TrajectoryExplorer(dataset, layout_key="3")   # 36x12 = 432 cells
    app.group_by_capture_zone()                          # Fig. 3 bins
    print("status:", app.status())

    # 3. the visual query: brush the west edge red, look at the end of
    #    each experiment
    arena_r = app.arena.radius
    app.brush(
        stroke_from_rect(
            (-arena_r, -0.6 * arena_r),
            (-0.7 * arena_r, 0.6 * arena_r),
            radius=0.12 * arena_r,
            color="red",
        )
    )
    app.set_time_window(TimeWindow.end(0.15))

    # 4. read the answer off the wall
    result = app.query("red")
    print(result.summary())
    east = result.group_support["east"]
    print(
        f"\n'east-captured ants exit west' -> "
        f"{'SUPPORTED' if east.majority else 'refuted'} "
        f"({east.n_highlighted}/{east.n_displayed} highlighted)"
    )


if __name__ == "__main__":
    main()
