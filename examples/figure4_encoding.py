#!/usr/bin/env python
"""Figure 4 close-up: one trajectory as a stereoscopic space-time cube.

Renders a single ant trajectory at panel resolution — left/right eye
pair and a red-cyan anaglyph — with an exaggerated time scale so the
stereo shear is plainly visible, plus a depth-exaggeration sweep
showing the ergonomic-slider effect.  Output is PPM (openable anywhere,
or view the anaglyph with paper 3D glasses).

Run:  python examples/figure4_encoding.py [--outdir frames]
"""

import argparse
from pathlib import Path

import numpy as np

from repro import generate_study_dataset
from repro.display.bezel import BezelSpec
from repro.display.coords import CoordinateMapper
from repro.display.wall import DisplayWall
from repro.render.compose import anaglyph, stereo_pair_side_by_side
from repro.render.framebuffer import Framebuffer
from repro.render.font import draw_text
from repro.render.image_io import write_ppm
from repro.render.raster import CellRenderer, CellStyle
from repro.stereo.camera import Eye
from repro.stereo.comfort import ComfortModel
from repro.stereo.projection import SpaceTimeProjection
from repro.synth.arena import Arena


def pick_interesting(dataset):
    """A long, windy trajectory — the kind Fig. 4 illustrates."""
    from repro.trajectory.metrics import sinuosity

    candidates = [t for t in dataset if t.duration > 100.0]
    return max(candidates, key=sinuosity)


def render_eye(traj, arena, projection, eye, px=540, label=True):
    """One eye's view of the trajectory on a single virtual panel."""
    panel_w_m = 0.45
    wall = DisplayWall(
        cols=1, rows=1,
        panel_width=panel_w_m, panel_height=panel_w_m,
        panel_px_width=px, panel_px_height=px,
        bezel=BezelSpec(0, 0, 0, 0),
    )
    tile = wall.tile(0, 0)
    fb = Framebuffer(px, px, background=(0.06, 0.06, 0.08))
    cell_rect = (0.0, 0.0, panel_w_m, panel_w_m)
    mapper = CoordinateMapper(arena, cell_rect)
    style = CellStyle(line_width=2.2, step_px=0.5)
    renderer = CellRenderer(tile, projection, style)
    renderer.draw_arena_rim(fb, mapper)
    renderer.draw_trajectory(fb, traj, mapper, eye, cell_rect)
    if label:
        text = "LEFT EYE" if eye is Eye.LEFT else "RIGHT EYE"
        draw_text(fb, 8, 8, text, scale=2, alpha=0.8)
    return fb


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="frames")
    args = parser.parse_args()
    outdir = Path(args.outdir)
    outdir.mkdir(exist_ok=True)

    arena = Arena()
    dataset = generate_study_dataset()
    traj = pick_interesting(dataset)
    print(f"trajectory #{traj.traj_id}: {traj.duration:.0f} s, "
          f"{traj.n_samples} samples, zone {traj.meta.capture_zone}")

    # exaggerated time scale so the shear shows at image scale
    projection = SpaceTimeProjection(time_scale=0.004)
    comfort = ComfortModel()
    z0, z1 = projection.depth_range(traj)
    report = comfort.assess(z0, z1)
    print(f"depth range {z0 * 100:.0f}-{z1 * 100:.0f} cm; "
          f"max disparity {report.max_disparity_deg:.2f} deg "
          f"({'comfortable' if report.comfortable else 'UNCOMFORTABLE'})")

    left = render_eye(traj, arena, projection, Eye.LEFT)
    right = render_eye(traj, arena, projection, Eye.RIGHT)
    pair = stereo_pair_side_by_side(left.data, right.data)
    ana = anaglyph(
        render_eye(traj, arena, projection, Eye.LEFT, label=False).data,
        render_eye(traj, arena, projection, Eye.RIGHT, label=False).data,
    )
    write_ppm(pair, outdir / "fig4_pair.ppm")
    write_ppm(ana, outdir / "fig4_anaglyph.ppm")
    print(f"wrote {outdir / 'fig4_pair.ppm'} and {outdir / 'fig4_anaglyph.ppm'}")

    # the exaggeration slider: same trajectory at three time scales
    sweeps = []
    for ts in (0.001, 0.004, 0.012):
        proj = SpaceTimeProjection(time_scale=ts)
        fb = render_eye(traj, arena, proj, Eye.LEFT, px=360)
        draw_text(fb, 8, 336, f"{ts * 1000:.0f} MM/S", scale=2, alpha=0.9)
        sweeps.append(fb.data)
    strip = np.concatenate(sweeps, axis=1)
    write_ppm(strip, outdir / "fig4_exaggeration_sweep.ppm")
    print(f"wrote {outdir / 'fig4_exaggeration_sweep.ppm'}")


if __name__ == "__main__":
    main()
