"""Tests for condition-dependent ant behaviour."""

import numpy as np
import pytest

from repro.synth.arena import Arena
from repro.synth.behavior import BehaviorParams, homing_goal, simulate_ant
from repro.synth.conditions import CaptureCondition
from repro.util.rng import derive_rng


class TestBehaviorParams:
    def test_defaults_valid(self):
        BehaviorParams()

    def test_fidelity_range(self):
        with pytest.raises(ValueError):
            BehaviorParams(homing_fidelity=1.2)

    def test_duration_ordering(self):
        with pytest.raises(ValueError):
            BehaviorParams(max_duration_s=5.0, min_duration_s=10.0)

    def test_search_radius_fraction(self):
        with pytest.raises(ValueError):
            BehaviorParams(search_radius=1.5)


class TestHomingGoal:
    def test_on_trail_has_no_goal(self, arena):
        cond = CaptureCondition("on", "outbound", False)
        assert homing_goal(arena, cond, derive_rng(0), BehaviorParams()) is None

    def test_east_goal_points_west(self, arena):
        cond = CaptureCondition("east", "inbound", False)
        params = BehaviorParams(homing_fidelity=1.0)
        goals = [
            homing_goal(arena, cond, derive_rng(0, i), params) for i in range(20)
        ]
        for g in goals:
            assert g is not None
            assert g[0] < 0  # westward

    def test_zero_fidelity_never_homes(self, arena):
        cond = CaptureCondition("east", "outbound", False)
        params = BehaviorParams(homing_fidelity=0.0)
        # outbound subtracts another 0.1, clamped at 0
        for i in range(20):
            assert homing_goal(arena, cond, derive_rng(1, i), params) is None


class TestSimulateAnt:
    def test_starts_at_center(self, arena):
        cond = CaptureCondition("east", "inbound", False)
        traj = simulate_ant(arena, cond, derive_rng(2), traj_id=5)
        np.testing.assert_array_equal(traj.positions[0], [0.0, 0.0])
        assert traj.traj_id == 5

    def test_meta_matches_condition(self, arena):
        cond = CaptureCondition("south", "inbound", True, True)
        traj = simulate_ant(arena, cond, derive_rng(3))
        assert traj.meta.capture_zone == "south"
        assert traj.meta.seed_dropped

    def test_terminates_at_rim_or_timeout(self, arena):
        cond = CaptureCondition("west", "outbound", False)
        params = BehaviorParams()
        for i in range(10):
            traj = simulate_ant(arena, cond, derive_rng(4, i), params)
            exited = not arena.contains_point(traj.end)
            timed_out = traj.duration >= params.max_duration_s - 1.0
            assert exited or timed_out
            # interior samples stay inside until the exit sample
            inside = arena.contains(traj.positions[:-1])
            assert inside.all()

    def test_duration_bounds(self, arena):
        params = BehaviorParams()
        for i in range(10):
            cond = CaptureCondition("north", "inbound", False)
            traj = simulate_ant(arena, cond, derive_rng(5, i), params)
            assert params.min_duration_s - 1e-6 <= traj.duration
            assert traj.duration <= params.max_duration_s + 1e-6

    def test_seed_dropper_lingers_centrally(self, arena):
        from repro.trajectory.metrics import dwell_time_in_disc

        params = BehaviorParams()
        dropper = CaptureCondition("east", "inbound", True, True)
        plain = CaptureCondition("east", "inbound", False)
        r = params.search_radius * arena.radius
        d_dwell = np.mean(
            [
                dwell_time_in_disc(simulate_ant(arena, dropper, derive_rng(6, i)), (0, 0), r)
                for i in range(12)
            ]
        )
        p_dwell = np.mean(
            [
                dwell_time_in_disc(simulate_ant(arena, plain, derive_rng(6, i)), (0, 0), r)
                for i in range(12)
            ]
        )
        assert d_dwell > p_dwell

    def test_determinism(self, arena):
        cond = CaptureCondition("east", "outbound", False)
        t1 = simulate_ant(arena, cond, derive_rng(7))
        t2 = simulate_ant(arena, cond, derive_rng(7))
        np.testing.assert_array_equal(t1.positions, t2.positions)
        np.testing.assert_array_equal(t1.times, t2.times)
