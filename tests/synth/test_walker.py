"""Tests for the correlated random walk kernel."""

import numpy as np
import pytest

from repro.synth.walker import CorrelatedRandomWalk, WalkParams


class TestWalkParams:
    def test_defaults_valid(self):
        WalkParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"speed_mean": 0.0},
            {"speed_std": -1.0},
            {"turn_std": -0.1},
            {"bias_strength": 1.5},
            {"dt": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            WalkParams(**kwargs)


class TestWalk:
    def _walker(self, seed=0, **kwargs):
        return CorrelatedRandomWalk(WalkParams(**kwargs), np.random.default_rng(seed))

    def test_shapes_and_times(self):
        pos, t = self._walker().walk(np.zeros(2), 100, 0.0)
        assert pos.shape == (101, 2)
        assert t.shape == (101,)
        np.testing.assert_allclose(np.diff(t), WalkParams().dt)

    def test_starts_at_start(self):
        start = np.array([0.1, -0.2])
        pos, _ = self._walker().walk(start, 10, 0.0)
        np.testing.assert_array_equal(pos[0], start)

    def test_deterministic_given_seed(self):
        p1, _ = self._walker(5).walk(np.zeros(2), 64, 1.0)
        p2, _ = self._walker(5).walk(np.zeros(2), 64, 1.0)
        np.testing.assert_array_equal(p1, p2)

    def test_step_lengths_near_speed(self):
        pos, _ = self._walker(1, speed_std=0.0).walk(np.zeros(2), 200, 0.0)
        steps = np.linalg.norm(np.diff(pos, axis=0), axis=1)
        np.testing.assert_allclose(steps, 0.02 * 0.15, rtol=1e-6)

    def test_zero_turn_std_walks_straight(self):
        pos, _ = self._walker(2, turn_std=0.0, speed_std=0.0).walk(np.zeros(2), 50, 0.0)
        # heading 0: pure +x movement
        np.testing.assert_allclose(pos[:, 1], 0.0, atol=1e-12)
        assert pos[-1, 0] > 0

    def test_bias_pulls_toward_goal(self):
        goal = np.array([10.0, 0.0])
        biased, _ = self._walker(3, bias_strength=0.5).walk(
            np.zeros(2), 400, np.pi, goal=goal
        )
        free, _ = self._walker(3, bias_strength=0.0).walk(np.zeros(2), 400, np.pi)
        assert biased[-1, 0] > free[-1, 0]

    def test_stop_predicate_halts(self):
        def past_x(chunk):
            return chunk[:, 0] > 0.05

        pos, _ = self._walker(4, turn_std=0.0, speed_std=0.0).walk(
            np.zeros(2), 10_000, 0.0, stop_predicate=past_x
        )
        assert pos[-1, 0] > 0.05
        # exactly one sample past the boundary
        assert np.sum(pos[:, 0] > 0.05) == 1

    def test_n_steps_validated(self):
        with pytest.raises(ValueError):
            self._walker().walk(np.zeros(2), 0, 0.0)

    def test_turning_correlation(self):
        # small turn_std yields positively correlated headings
        pos, _ = self._walker(6, turn_std=0.05).walk(np.zeros(2), 500, 0.0)
        d = np.diff(pos, axis=0)
        headings = np.arctan2(d[:, 1], d[:, 0])
        corr = np.corrcoef(headings[:-1], headings[1:])[0, 1]
        assert corr > 0.8
