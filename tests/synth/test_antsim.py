"""Tests for study-scale dataset generation and its planted effects."""

from collections import Counter

import numpy as np
import pytest

from repro.synth import AntStudyConfig, generate_scaled_dataset, generate_study_dataset
from repro.synth.antsim import single_condition_dataset
from repro.synth.arena import Arena
from repro.synth.conditions import CaptureCondition


class TestGenerateStudyDataset:
    def test_cardinality(self, study_dataset):
        assert len(study_dataset) == 150

    def test_validation(self):
        with pytest.raises(ValueError):
            AntStudyConfig(n_trajectories=0)

    def test_deterministic(self):
        a = generate_study_dataset(AntStudyConfig(n_trajectories=20, seed=11))
        b = generate_study_dataset(AntStudyConfig(n_trajectories=20, seed=11))
        for ta, tb in zip(a, b):
            np.testing.assert_array_equal(ta.positions, tb.positions)

    def test_seed_changes_data(self):
        a = generate_study_dataset(AntStudyConfig(n_trajectories=5, seed=1))
        b = generate_study_dataset(AntStudyConfig(n_trajectories=5, seed=2))
        assert not np.array_equal(a[0].positions, b[0].positions)

    def test_prefix_stability(self):
        """Generating more trajectories never changes earlier ones
        (per-ant RNG streams)."""
        small = generate_study_dataset(AntStudyConfig(n_trajectories=10, seed=3))
        large = generate_study_dataset(AntStudyConfig(n_trajectories=20, seed=3))
        for i in range(10):
            np.testing.assert_array_equal(small[i].positions, large[i].positions)

    def test_duration_matches_study_range(self, full_dataset):
        lo, hi = full_dataset.duration_range()
        assert lo >= 10.0 - 1e-6   # paper: 10 seconds minimum
        assert hi <= 180.0 + 1e-6  # paper: 3 minutes maximum

    def test_all_zones_represented(self, full_dataset):
        assert set(full_dataset.zones()) == {"on", "east", "west", "north", "south"}


class TestPlantedEffects:
    def test_east_majority_exits_west(self, full_dataset, arena):
        east = full_dataset.by_zone("east")
        sides = Counter(arena.exit_side(t.end) for t in east)
        assert sides["west"] / len(east) > 0.5

    def test_all_homing_directions(self, full_dataset, arena):
        expectations = {"east": "west", "west": "east", "north": "south", "south": "north"}
        for zone, opposite in expectations.items():
            group = full_dataset.by_zone(zone)
            sides = Counter(arena.exit_side(t.end) for t in group)
            assert sides[opposite] / len(group) > 0.5, (zone, sides)

    def test_on_trail_has_no_dominant_side(self, full_dataset, arena):
        on = full_dataset.by_zone("on")
        sides = Counter(arena.exit_side(t.end) for t in on)
        assert max(sides.values()) / len(on) < 0.5

    def test_on_trail_windier(self, full_dataset):
        from repro.analytics.stats import zone_straightness_table

        table = zone_straightness_table(full_dataset)
        off_mean = np.mean([v for z, v in table.items() if z != "on"])
        assert table["on"] < off_mean


class TestScaledDataset:
    def test_size_and_cap(self):
        ds = generate_scaled_dataset(200, seed=5, max_duration_s=30.0)
        assert len(ds) == 200
        assert ds.duration_range()[1] <= 30.0 + 1e-6

    def test_effect_survives_scaling(self, arena):
        ds = generate_scaled_dataset(300, seed=6, max_duration_s=60.0)
        east = ds.by_zone("east")
        sides = Counter(arena.exit_side(t.end) for t in east)
        assert sides["west"] / len(east) > 0.5


class TestSingleCondition:
    def test_uniform_condition(self):
        cond = CaptureCondition("north", "outbound", False)
        ds = single_condition_dataset(cond, 8, seed=1)
        assert len(ds) == 8
        assert all(t.meta.capture_zone == "north" for t in ds)
