"""Tests for the arena model."""

import numpy as np
import pytest

from repro.synth.arena import Arena, EXIT_SIDES, bearing_to_side


class TestBearingToSide:
    @pytest.mark.parametrize(
        "angle,side",
        [
            (0.0, "east"),
            (np.pi / 2, "north"),
            (np.pi, "west"),
            (-np.pi / 2, "south"),
            (np.pi / 4 - 0.01, "east"),
            (np.pi / 4 + 0.01, "north"),
            (-np.pi + 0.01, "west"),
        ],
    )
    def test_quadrants(self, angle, side):
        assert str(bearing_to_side(angle)) == side

    def test_vectorized(self):
        sides = bearing_to_side(np.array([0.0, np.pi / 2, np.pi]))
        assert list(sides) == ["east", "north", "west"]


class TestArena:
    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            Arena(radius=0.0)

    def test_contains(self, arena):
        pts = np.array([[0, 0], [0.49, 0], [0.51, 0]])
        np.testing.assert_array_equal(arena.contains(pts), [True, True, False])

    def test_contains_point_scalar(self, arena):
        assert arena.contains_point((0.1, 0.1))
        assert not arena.contains_point((1.0, 1.0))

    def test_exit_side(self, arena):
        assert arena.exit_side((-0.5, 0.0)) == "west"
        assert arena.exit_side((0.0, 0.5)) == "north"

    def test_clamp_inside(self, arena):
        pts = np.array([[1.0, 0.0], [0.1, 0.1]])
        clamped = arena.clamp_inside(pts)
        assert np.linalg.norm(clamped[0]) == pytest.approx(arena.radius)
        np.testing.assert_array_equal(clamped[1], [0.1, 0.1])

    def test_clamp_with_margin(self, arena):
        pts = np.array([[1.0, 0.0]])
        clamped = arena.clamp_inside(pts, margin=0.1)
        assert np.linalg.norm(clamped[0]) == pytest.approx(arena.radius - 0.1)

    def test_random_boundary_point_on_rim(self, arena):
        rng = np.random.default_rng(0)
        for _ in range(20):
            p = arena.random_boundary_point(rng)
            assert np.linalg.norm(p) == pytest.approx(arena.radius)

    def test_random_boundary_point_side(self, arena):
        rng = np.random.default_rng(1)
        for side in EXIT_SIDES:
            for _ in range(10):
                p = arena.random_boundary_point(rng, side)
                assert arena.exit_side(p) == side

    def test_random_boundary_bad_side(self, arena):
        with pytest.raises(ValueError):
            arena.random_boundary_point(np.random.default_rng(0), "up")
