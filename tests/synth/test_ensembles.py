"""Tests for simulation-ensemble workloads (§VII generalization)."""

import numpy as np
import pytest

from repro.synth.ensembles import (
    EnsembleConfig,
    damped_oscillator_run,
    generate_oscillator_ensemble,
    generate_vdp_ensemble,
    van_der_pol_run,
)


class TestConfig:
    def test_defaults_valid(self):
        EnsembleConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_runs": 0},
            {"duration_s": 0.0},
            {"dt": 0.0},
            {"duration_s": 0.01, "dt": 0.05},
            {"scale": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            EnsembleConfig(**kwargs)


class TestDampedOscillator:
    def test_run_shape(self):
        cfg = EnsembleConfig(duration_s=5.0, dt=0.05)
        traj = damped_oscillator_run(0.2, 1.0, (1.0, 0.0), cfg, run_id=3)
        assert traj.n_samples == 101
        assert traj.traj_id == 3
        assert traj.meta.extra["regime"] == "under"

    def test_parameter_validation(self):
        cfg = EnsembleConfig()
        with pytest.raises(ValueError):
            damped_oscillator_run(0.2, 0.0, (1, 0), cfg)
        with pytest.raises(ValueError):
            damped_oscillator_run(-0.1, 1.0, (1, 0), cfg)

    def test_normalized_into_arena_square(self):
        cfg = EnsembleConfig(duration_s=10.0, scale=0.5)
        traj = damped_oscillator_run(0.1, 1.5, (1.0, 0.5), cfg)
        r = np.linalg.norm(traj.positions, axis=1)
        assert r.max() <= 0.5 + 1e-9

    def test_underdamped_decays_and_oscillates(self):
        cfg = EnsembleConfig(duration_s=30.0)
        traj = damped_oscillator_run(0.1, 1.0, (1.0, 0.0), cfg)
        r = np.linalg.norm(traj.positions, axis=1)
        assert r[-1] < 0.3 * r[0]             # decays
        x = traj.positions[:, 0]
        sign_changes = int(np.sum(np.diff(np.sign(x)) != 0))
        assert sign_changes >= 4              # oscillates

    def test_overdamped_no_ringing(self):
        cfg = EnsembleConfig(duration_s=30.0)
        traj = damped_oscillator_run(2.5, 1.0, (1.0, 0.0), cfg)
        assert traj.meta.extra["regime"] == "over"
        x = traj.positions[:, 0]
        sign_changes = int(np.sum(np.diff(np.sign(x[np.abs(x) > 1e-6])) != 0))
        assert sign_changes <= 1

    def test_energy_never_increases(self):
        cfg = EnsembleConfig(duration_s=20.0)
        traj = damped_oscillator_run(0.3, 1.0, (1.0, 0.0), cfg)
        # normalized phase radius ~ sqrt(energy); must be non-increasing
        r = np.linalg.norm(traj.positions, axis=1)
        assert np.all(np.diff(r) <= 1e-6)


class TestVanDerPol:
    def test_run_shape(self):
        cfg = EnsembleConfig(duration_s=5.0)
        traj = van_der_pol_run(1.0, (0.1, 0.0), cfg)
        assert traj.meta.extra["system"] == "van_der_pol"

    def test_converges_to_limit_cycle(self):
        cfg = EnsembleConfig(duration_s=60.0, scale=0.5)
        inner = van_der_pol_run(1.0, (0.05, 0.0), cfg)
        r_late = np.linalg.norm(inner.positions[-100:], axis=1)
        r_early = np.linalg.norm(inner.positions[:20], axis=1)
        # grows out of the small start toward the cycle
        assert r_late.mean() > 3 * r_early.mean()

    def test_mu_validation(self):
        with pytest.raises(ValueError):
            van_der_pol_run(-1.0, (1, 0), EnsembleConfig())


class TestEnsembles:
    @pytest.fixture(scope="class")
    def osc(self):
        return generate_oscillator_ensemble(
            EnsembleConfig(n_runs=40, duration_s=15.0, seed=3)
        )

    def test_cardinality_and_meta(self, osc):
        assert len(osc) == 40
        zetas = [t.meta.extra["zeta"] for t in osc]
        assert min(zetas) < 0.3 and max(zetas) > 1.0  # sweep covers regimes

    def test_deterministic(self):
        cfg = EnsembleConfig(n_runs=5, duration_s=5.0, seed=9)
        a = generate_oscillator_ensemble(cfg)
        b = generate_oscillator_ensemble(cfg)
        np.testing.assert_array_equal(a[2].positions, b[2].positions)

    def test_vdp_ensemble(self):
        ds = generate_vdp_ensemble(EnsembleConfig(n_runs=10, duration_s=10.0))
        assert len(ds) == 10
        mus = [t.meta.extra["mu"] for t in ds]
        assert all(0.1 <= m <= 4.0 for m in mus)

    def test_query_machinery_applies(self, osc):
        """The whole point of §VII: the same visual-query stack works."""
        from repro.core.brush import BrushStroke
        from repro.core.canvas import BrushCanvas
        from repro.core.engine import CoordinatedBrushingEngine
        from repro.core.temporal import TimeWindow

        engine = CoordinatedBrushingEngine(osc)
        canvas = BrushCanvas()
        # outer annulus, late window: who is still ringing at the end?
        theta = np.linspace(0, 2 * np.pi, 24, endpoint=False)
        ring = 0.4 * np.stack([np.cos(theta), np.sin(theta)], axis=1)
        canvas.add(BrushStroke(ring, 0.06, "red"))
        res = engine.query(canvas, "red", window=TimeWindow.end(0.3))
        hit_zeta = [osc[i].meta.extra["zeta"] for i in res.highlighted_indices()]
        miss_zeta = [
            osc[i].meta.extra["zeta"]
            for i in range(len(osc))
            if not res.traj_mask[i]
        ]
        if hit_zeta and miss_zeta:
            # lightly damped runs stay out at the rim late; heavily
            # damped ones have collapsed to the center
            assert np.median(hit_zeta) < np.median(miss_zeta)
