"""Tests for the capture-condition taxonomy and study mix."""

import numpy as np
import pytest

from repro.synth.conditions import (
    CaptureCondition,
    STUDY_CONDITION_MIX,
    condition_mix,
    sample_conditions,
)


class TestCaptureCondition:
    def test_valid(self):
        c = CaptureCondition("east", "inbound", True, True)
        assert c.label == "east/inbound/seed-dropped"

    def test_invalid_zone(self):
        with pytest.raises(ValueError):
            CaptureCondition("middle", "inbound", False)

    def test_drop_requires_seed(self):
        with pytest.raises(ValueError):
            CaptureCondition("on", "inbound", False, True)

    def test_to_meta(self):
        c = CaptureCondition("west", "outbound", True)
        m = c.to_meta(batch=3)
        assert m.capture_zone == "west"
        assert m.carrying_seed
        assert m.extra["batch"] == 3


class TestStudyMix:
    def test_probabilities_sum_to_one(self):
        assert sum(STUDY_CONDITION_MIX.values()) == pytest.approx(1.0)

    def test_all_zones_present(self):
        zones = {c.capture_zone for c in STUDY_CONDITION_MIX}
        assert zones == {"on", "east", "west", "north", "south"}

    def test_copy_is_independent(self):
        mix = condition_mix()
        key = next(iter(mix))
        mix[key] = 0.0
        assert STUDY_CONDITION_MIX[key] > 0.0

    def test_inbound_carries_seed_more_often(self):
        def seed_mass(direction):
            return sum(
                w
                for c, w in STUDY_CONDITION_MIX.items()
                if c.direction == direction and c.carrying_seed
            )

        assert seed_mass("inbound") > seed_mass("outbound")


class TestSampleConditions:
    def test_count_and_determinism(self):
        a = sample_conditions(50, np.random.default_rng(3))
        b = sample_conditions(50, np.random.default_rng(3))
        assert len(a) == 50
        assert a == b

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sample_conditions(-1, np.random.default_rng(0))

    def test_respects_reweighted_mix(self):
        mix = {c: (1.0 if c.capture_zone == "east" else 0.0) for c in condition_mix()}
        conds = sample_conditions(30, np.random.default_rng(0), mix)
        assert all(c.capture_zone == "east" for c in conds)

    def test_zero_mass_mix_rejected(self):
        mix = {c: 0.0 for c in condition_mix()}
        with pytest.raises(ValueError):
            sample_conditions(5, np.random.default_rng(0), mix)

    def test_empirical_zone_shares(self):
        conds = sample_conditions(5000, np.random.default_rng(9))
        on_share = sum(1 for c in conds if c.capture_zone == "on") / len(conds)
        assert 0.25 < on_share < 0.35  # nominal 0.30
