"""Tests for the batch self-organizing map."""

import numpy as np
import pytest

from repro.cluster.som import SelfOrganizingMap


@pytest.fixture()
def blobs():
    """Four well-separated Gaussian blobs in 2-D."""
    rng = np.random.default_rng(0)
    centers = np.array([[0, 0], [10, 0], [0, 10], [10, 10]], dtype=float)
    data = np.concatenate(
        [c + rng.normal(0, 0.5, size=(50, 2)) for c in centers], axis=0
    )
    return data


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SelfOrganizingMap(0, 3, 2)
        with pytest.raises(ValueError):
            SelfOrganizingMap(2, 2, 0)

    def test_unit_positions(self):
        som = SelfOrganizingMap(3, 4, 2)
        assert som.n_units == 12
        assert som.unit_position(0) == (0, 0)
        assert som.unit_position(5) == (1, 1)
        with pytest.raises(IndexError):
            som.unit_position(12)


class TestTraining:
    def test_fit_reduces_quantization_error(self, blobs):
        som = SelfOrganizingMap(4, 4, 2, seed=1)
        qe_before = som.quantization_error(blobs)
        log = som.fit(blobs, epochs=15)
        assert log.quantization_error[-1] < qe_before
        assert log.epochs == 15

    def test_error_non_increasing_in_tail(self, blobs):
        som = SelfOrganizingMap(4, 4, 2, seed=2)
        log = som.fit(blobs, epochs=20)
        tail = log.quantization_error[-5:]
        assert all(b <= a + 1e-9 for a, b in zip(tail[:-1], tail[1:]))

    def test_radius_anneals(self, blobs):
        som = SelfOrganizingMap(4, 4, 2, seed=0)
        log = som.fit(blobs, epochs=10, radius_end=0.5)
        assert log.radius[0] > log.radius[-1]
        assert log.radius[-1] >= 0.5

    def test_fit_validation(self, blobs):
        som = SelfOrganizingMap(2, 2, 2)
        with pytest.raises(ValueError):
            som.fit(blobs, epochs=0)
        with pytest.raises(ValueError):
            som.fit(blobs[:, :1])
        with pytest.raises(ValueError):
            som.fit(np.empty((0, 2)))
        with pytest.raises(ValueError):
            som.fit(blobs, radius_start=0.1, radius_end=0.5)

    def test_separated_blobs_use_separate_units(self, blobs):
        som = SelfOrganizingMap(4, 4, 2, seed=3)
        som.fit(blobs, epochs=25)
        labels = som.bmu(blobs)
        # each blob of 50 samples maps to a dominant unit distinct from
        # the other blobs' dominant units
        dominants = []
        for i in range(4):
            lab = labels[i * 50 : (i + 1) * 50]
            dominants.append(np.bincount(lab).argmax())
        assert len(set(dominants)) == 4

    def test_determinism(self, blobs):
        a = SelfOrganizingMap(3, 3, 2, seed=7)
        b = SelfOrganizingMap(3, 3, 2, seed=7)
        a.fit(blobs, epochs=5)
        b.fit(blobs, epochs=5)
        np.testing.assert_array_equal(a.weights, b.weights)


class TestAssignment:
    def test_bmu_shape_and_range(self, blobs):
        som = SelfOrganizingMap(3, 3, 2, seed=0)
        labels = som.bmu(blobs)
        assert labels.shape == (len(blobs),)
        assert labels.min() >= 0 and labels.max() < 9

    def test_bmu_chunking_invariant(self, blobs):
        som = SelfOrganizingMap(3, 3, 2, seed=0)
        som.fit(blobs, epochs=3)
        np.testing.assert_array_equal(
            som.bmu(blobs, chunk=7), som.bmu(blobs, chunk=10_000)
        )

    def test_bmu_dim_check(self, blobs):
        som = SelfOrganizingMap(3, 3, 5)
        with pytest.raises(ValueError):
            som.bmu(blobs)


class TestTopology:
    def test_topographic_error_reasonable(self, blobs):
        som = SelfOrganizingMap(4, 4, 2, seed=0)
        som.fit(blobs, epochs=25)
        te = som.topographic_error(blobs)
        assert 0.0 <= te <= 1.0

    def test_trained_som_preserves_topology_better_than_random(self, blobs):
        trained = SelfOrganizingMap(4, 4, 2, seed=0)
        trained.fit(blobs, epochs=25)
        untrained = SelfOrganizingMap(4, 4, 2, seed=0)
        assert trained.topographic_error(blobs) <= untrained.topographic_error(blobs)
