"""Tests for the fitted cluster model."""

import numpy as np
import pytest

from repro.cluster.model import ClusterModel, fit_som_clusters
from repro.trajectory.dataset import TrajectoryDataset


@pytest.fixture(scope="module")
def model(study_dataset):
    return fit_som_clusters(study_dataset, rows=3, cols=4, epochs=6, seed=0)


class TestFit:
    def test_structure(self, model, study_dataset):
        assert model.n_clusters == 12
        assert len(model.labels) == len(study_dataset)
        assert model.som is not None
        assert model.train_log is not None and model.train_log.epochs == 6

    def test_labels_in_range(self, model):
        assert model.labels.min() >= 0
        assert model.labels.max() < 12

    def test_averages_ids_are_cluster_indices(self, model):
        for avg in model.averages:
            assert 0 <= avg.traj_id < model.n_clusters
            assert len(model.members_of(avg.traj_id)) > 0

    def test_validation(self, study_dataset):
        with pytest.raises(ValueError):
            ClusterModel(
                source=study_dataset,
                labels=np.zeros(3, dtype=int),
                n_clusters=2,
                averages=TrajectoryDataset(),
            )
        with pytest.raises(ValueError):
            ClusterModel(
                source=study_dataset,
                labels=np.full(len(study_dataset), 5, dtype=int),
                n_clusters=2,
                averages=TrajectoryDataset(),
            )


class TestMembership:
    def test_members_partition_dataset(self, model, study_dataset):
        total = sum(len(model.members_of(c)) for c in range(model.n_clusters))
        assert total == len(study_dataset)

    def test_member_dataset(self, model, study_dataset):
        sizes = model.cluster_sizes()
        c = int(np.argmax(sizes))
        members = model.member_dataset(c)
        assert len(members) == sizes[c]
        for t in members:
            assert model.labels[t.traj_id] == c

    def test_members_bounds(self, model):
        with pytest.raises(IndexError):
            model.members_of(99)

    def test_cluster_sizes_sum(self, model, study_dataset):
        assert model.cluster_sizes().sum() == len(study_dataset)

    def test_compression_ratio(self, model, study_dataset):
        ratio = model.compression_ratio()
        assert ratio == pytest.approx(len(study_dataset) / model.n_nonempty)
        assert ratio >= 1.0


class TestDeterminism:
    def test_same_seed_same_labels(self, study_dataset):
        a = fit_som_clusters(study_dataset, 2, 3, epochs=3, seed=4)
        b = fit_som_clusters(study_dataset, 2, 3, epochs=3, seed=4)
        np.testing.assert_array_equal(a.labels, b.labels)
