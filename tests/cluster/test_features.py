"""Tests for trajectory feature extraction."""

import numpy as np
import pytest

from repro.cluster.features import FeatureSpec, dataset_features, trajectory_features
from repro.trajectory.dataset import TrajectoryDataset


class TestFeatureSpec:
    def test_dim(self):
        assert FeatureSpec(n_points=32, include_shape=True).dim == 68
        assert FeatureSpec(n_points=16, include_shape=False).dim == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            FeatureSpec(n_points=1)
        with pytest.raises(ValueError):
            FeatureSpec(scale=0.0)
        with pytest.raises(ValueError):
            FeatureSpec(shape_weight=-1.0)


class TestTrajectoryFeatures:
    def test_length(self, simple_traj):
        spec = FeatureSpec(n_points=8)
        f = trajectory_features(simple_traj, spec)
        assert f.shape == (spec.dim,)

    def test_polyline_block_normalized(self, simple_traj):
        spec = FeatureSpec(n_points=8, scale=0.5, include_shape=False)
        f = trajectory_features(simple_traj, spec)
        # straight 1 m walk scaled by 0.5 -> x spans [0, 2]
        xs = f[0::2]
        assert xs[0] == pytest.approx(0.0)
        assert xs[-1] == pytest.approx(2.0)

    def test_deterministic(self, simple_traj):
        spec = FeatureSpec()
        np.testing.assert_array_equal(
            trajectory_features(simple_traj, spec),
            trajectory_features(simple_traj, spec),
        )


class TestDatasetFeatures:
    def test_shape(self, study_dataset):
        feats, spec = dataset_features(study_dataset)
        assert feats.shape == (len(study_dataset), spec.dim)
        assert np.all(np.isfinite(feats))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dataset_features(TrajectoryDataset())

    def test_shape_block_standardized(self, study_dataset):
        feats, spec = dataset_features(study_dataset, FeatureSpec(shape_weight=1.0))
        block = feats[:, 2 * spec.n_points :]
        np.testing.assert_allclose(block.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(block.std(axis=0), 1.0, atol=1e-9)

    def test_shape_weight_scales_block(self, study_dataset):
        f1, spec = dataset_features(study_dataset, FeatureSpec(shape_weight=1.0))
        f2, _ = dataset_features(study_dataset, FeatureSpec(shape_weight=2.0))
        b1 = f1[:, 2 * spec.n_points :]
        b2 = f2[:, 2 * spec.n_points :]
        np.testing.assert_allclose(b2, 2.0 * b1, atol=1e-9)

    def test_no_shape_block(self, study_dataset):
        feats, spec = dataset_features(study_dataset, FeatureSpec(include_shape=False))
        assert feats.shape[1] == 2 * spec.n_points

    def test_similar_trajectories_close(self, study_dataset):
        """Feature distance separates straight east-goers from
        circuitous on-trail walks better than random pairing."""
        from repro.trajectory.metrics import straightness_index

        feats, _ = dataset_features(study_dataset)
        straight = [i for i, t in enumerate(study_dataset) if straightness_index(t) > 0.8]
        windy = [i for i, t in enumerate(study_dataset) if straightness_index(t) < 0.2]
        if len(straight) < 2 or len(windy) < 2:
            pytest.skip("not enough contrast in this dataset")
        d_within = np.linalg.norm(feats[straight[0]] - feats[straight[1]])
        d_across = np.linalg.norm(feats[straight[0]] - feats[windy[0]])
        assert d_across > 0  # sanity; exact ordering is data-dependent
