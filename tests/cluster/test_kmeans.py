"""Tests for the k-means baseline."""

import numpy as np
import pytest

from repro.cluster.kmeans import kmeans


@pytest.fixture()
def blobs():
    rng = np.random.default_rng(1)
    centers = np.array([[0, 0], [8, 0], [0, 8]], dtype=float)
    return np.concatenate([c + rng.normal(0, 0.4, (40, 2)) for c in centers])


class TestKMeans:
    def test_validation(self, blobs):
        with pytest.raises(ValueError):
            kmeans(blobs, 0)
        with pytest.raises(ValueError):
            kmeans(blobs, len(blobs) + 1)
        with pytest.raises(ValueError):
            kmeans(blobs.ravel(), 2)

    def test_recovers_blobs(self, blobs):
        res = kmeans(blobs, 3, seed=0)
        assert res.converged
        # each blob gets a single label
        for i in range(3):
            lab = res.labels[i * 40 : (i + 1) * 40]
            assert len(np.unique(lab)) == 1
        # and labels differ between blobs
        assert len({res.labels[0], res.labels[40], res.labels[80]}) == 3

    def test_inertia_decreases_with_k(self, blobs):
        inertias = [kmeans(blobs, k, seed=0).inertia for k in (1, 3, 9)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_deterministic(self, blobs):
        a = kmeans(blobs, 3, seed=5)
        b = kmeans(blobs, 3, seed=5)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_allclose(a.centers, b.centers)

    def test_k_equals_n(self, blobs):
        res = kmeans(blobs[:10], 10, seed=0)
        assert res.inertia == pytest.approx(0.0, abs=1e-9)

    def test_k_one_center_is_mean(self, blobs):
        res = kmeans(blobs, 1, seed=0)
        np.testing.assert_allclose(res.centers[0], blobs.mean(axis=0), atol=1e-9)

    def test_labels_match_nearest_center(self, blobs):
        res = kmeans(blobs, 3, seed=2)
        d = np.linalg.norm(blobs[:, None] - res.centers[None], axis=2)
        np.testing.assert_array_equal(res.labels, d.argmin(axis=1))
