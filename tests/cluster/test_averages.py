"""Tests for cluster-average trajectories."""

import numpy as np
import pytest

from repro.cluster.averages import cluster_average_dataset, cluster_average_trajectory
from repro.trajectory.model import Trajectory, TrajectoryMeta


def _traj(offset, zone="east", n=20, dur=10.0):
    xs = np.linspace(0, 1, n) + offset
    pos = np.stack([xs, np.full(n, offset)], axis=1)
    return Trajectory(pos, np.linspace(0, dur, n), TrajectoryMeta(capture_zone=zone))


class TestAverageTrajectory:
    def test_validation(self):
        with pytest.raises(ValueError):
            cluster_average_trajectory([])
        with pytest.raises(ValueError):
            cluster_average_trajectory([_traj(0.0)], n_points=1)

    def test_mean_of_two(self):
        avg = cluster_average_trajectory([_traj(0.0), _traj(1.0)], n_points=10)
        assert avg.n_samples == 10
        # y should be the mean offset 0.5 everywhere
        np.testing.assert_allclose(avg.positions[:, 1], 0.5, atol=1e-9)

    def test_single_member_identity_shape(self):
        t = _traj(0.0, n=40)
        avg = cluster_average_trajectory([t], n_points=40)
        np.testing.assert_allclose(avg.positions, t.positions, atol=1e-9)

    def test_majority_zone(self):
        members = [_traj(0, "east"), _traj(0, "east"), _traj(0, "west")]
        avg = cluster_average_trajectory(members)
        assert avg.meta.capture_zone == "east"
        assert avg.meta.extra["cluster_size"] == 3

    def test_times_strictly_increasing(self):
        members = [_traj(0.0, dur=5.0), _traj(0.0, dur=50.0)]
        avg = cluster_average_trajectory(members, n_points=30)
        assert np.all(np.diff(avg.times) > 0)

    def test_cluster_id_stored(self):
        avg = cluster_average_trajectory([_traj(0.0)], cluster_id=9)
        assert avg.traj_id == 9


class TestAverageDataset:
    def test_skips_empty_clusters(self, study_dataset):
        labels = np.zeros(len(study_dataset), dtype=np.int64)
        labels[: len(study_dataset) // 2] = 3
        out = cluster_average_dataset(study_dataset, labels, n_clusters=5)
        assert len(out) == 2
        assert sorted(t.traj_id for t in out) == [0, 3]

    def test_label_length_checked(self, study_dataset):
        with pytest.raises(ValueError):
            cluster_average_dataset(study_dataset, np.zeros(3, dtype=int), 2)

    def test_average_in_arena(self, study_dataset, arena):
        labels = np.zeros(len(study_dataset), dtype=np.int64)
        out = cluster_average_dataset(study_dataset, labels, 1)
        # mean of in-arena paths stays in the arena
        assert arena.contains(out[0].positions).all()
