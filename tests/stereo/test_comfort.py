"""Tests for the stereoscopic comfort model."""

import numpy as np
import pytest

from repro.stereo.comfort import ComfortModel


class TestComfortModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ComfortModel(limit_deg=0.0)
        with pytest.raises(ValueError):
            ComfortModel(viewer_distance=-1.0)

    def test_screen_plane_is_comfortable(self):
        m = ComfortModel()
        assert m.depth_in_comfort(0.0)

    def test_ac_conflict_zero_at_screen(self):
        m = ComfortModel()
        assert float(m.ac_conflict(0.0)) == pytest.approx(0.0)

    def test_ac_conflict_grows_with_depth(self):
        m = ComfortModel()
        z = np.linspace(0.0, 1.0, 10)
        ac = m.ac_conflict(z)
        assert np.all(np.diff(ac) > 0)

    def test_far_depth_uncomfortable(self):
        m = ComfortModel()
        assert not m.depth_in_comfort(2.5)


class TestBudget:
    def test_budget_brackets_zero(self):
        behind, front = ComfortModel().comfort_depth_budget()
        assert behind < 0 < front

    def test_budget_bounds_are_tight(self):
        m = ComfortModel()
        behind, front = m.comfort_depth_budget()
        assert m.depth_in_comfort(front * 0.999)
        assert not m.depth_in_comfort(front * 1.01)
        assert m.depth_in_comfort(behind * 0.999)
        assert not m.depth_in_comfort(behind * 1.01)

    def test_tighter_limits_smaller_budget(self):
        loose = ComfortModel(limit_deg=1.0).comfort_depth_budget()
        tight = ComfortModel(limit_deg=0.5).comfort_depth_budget()
        assert tight[1] < loose[1]
        assert tight[0] > loose[0]

    def test_ac_constraint_can_bind(self):
        # very tight AC limit should bind before the disparity limit
        m = ComfortModel(ac_limit_diopters=0.01)
        _, front = m.comfort_depth_budget()
        d, L = m.viewer_distance, 0.01
        ac_bound = d - 1.0 / (1.0 / d + L)
        assert front == pytest.approx(ac_bound)


class TestAssess:
    def test_comfortable_interval(self):
        m = ComfortModel()
        rep = m.assess(0.0, 0.05)
        assert rep.comfortable
        assert rep.fraction_comfortable == 1.0
        assert rep.max_disparity_deg < m.limit_deg

    def test_partially_comfortable(self):
        m = ComfortModel()
        _, front = m.comfort_depth_budget()
        rep = m.assess(0.0, 2 * front)
        assert not rep.comfortable
        assert 0.0 < rep.fraction_comfortable < 1.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ComfortModel().assess(0.1, 0.0)
