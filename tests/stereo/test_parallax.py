"""Tests for exact parallax formulas and their inversion."""

import numpy as np
import pytest

from repro.stereo.camera import StereoCamera
from repro.stereo.parallax import (
    depth_for_parallax,
    parallax_visual_angle_deg,
    screen_parallax,
)


class TestScreenParallax:
    def test_zero_at_screen_plane(self):
        assert float(screen_parallax(0.0)) == 0.0

    def test_sign_convention(self):
        assert float(screen_parallax(0.1)) > 0   # in front: crossed
        assert float(screen_parallax(-0.1)) < 0  # behind: uncrossed

    def test_exact_formula(self):
        p = float(screen_parallax(0.5, eye_separation=0.06, viewer_distance=3.0))
        assert p == pytest.approx(0.06 * 0.5 / 2.5)

    def test_depth_beyond_viewer_rejected(self):
        with pytest.raises(ValueError):
            screen_parallax(3.5, viewer_distance=3.0)

    def test_sheared_render_is_first_order_accurate(self):
        """Rendered parallax e*z/d matches physical e*z/(d-z) to
        O((z/d)^2) — under 7 % relative error at the study's depth."""
        cam = StereoCamera()
        z = np.linspace(0.01, 0.2, 20)
        exact = screen_parallax(z, cam.eye_separation, cam.viewer_distance)
        rendered = cam.rendered_parallax(z)
        rel_err = np.abs(rendered - exact) / exact
        assert np.all(rel_err < 0.07)


class TestVisualAngle:
    def test_zero_at_screen(self):
        assert float(parallax_visual_angle_deg(0.0)) == pytest.approx(0.0)

    def test_monotone_in_depth(self):
        z = np.linspace(-0.5, 0.5, 11)
        eta = parallax_visual_angle_deg(z)
        assert np.all(np.diff(eta) > 0)

    def test_antisymmetric_near_screen(self):
        # for small z the angle is odd in z
        a = float(parallax_visual_angle_deg(0.05))
        b = float(parallax_visual_angle_deg(-0.05))
        assert a == pytest.approx(-b, rel=0.05)

    def test_one_degree_depth_scale(self):
        """At e=6.5 cm, d=3 m, one degree of disparity needs tens of
        centimeters of depth — the comfort budget is generous."""
        z = depth_for_parallax(1.0)
        assert 0.5 < z < 2.5


class TestDepthForParallax:
    def test_inverts_visual_angle(self):
        for angle in (-0.8, -0.2, 0.2, 0.5, 1.0):
            z = depth_for_parallax(angle)
            back = float(parallax_visual_angle_deg(z))
            assert back == pytest.approx(angle, abs=1e-9)

    def test_zero_angle_zero_depth(self):
        assert depth_for_parallax(0.0) == pytest.approx(0.0, abs=1e-12)

    def test_unreachable_angle(self):
        with pytest.raises(ValueError):
            depth_for_parallax(-179.0)
