"""Tests for the ergonomic slider controls."""

import pytest

from repro.stereo.comfort import ComfortModel
from repro.stereo.controls import ErgonomicControls


class TestSliders:
    def test_set_depth(self):
        c = ErgonomicControls()
        c.set_depth(-0.05)
        assert c.depth_offset == -0.05

    def test_set_exaggeration_validates(self):
        c = ErgonomicControls()
        with pytest.raises(ValueError):
            c.set_exaggeration(-0.1)

    def test_projection_snapshot(self):
        c = ErgonomicControls(time_scale=0.002, depth_offset=0.01)
        p = c.projection()
        assert p.time_scale == 0.002
        assert p.depth_offset == 0.01
        assert p.camera.viewer_distance == c.comfort.viewer_distance

    def test_depth_range_for(self):
        c = ErgonomicControls(time_scale=0.001, depth_offset=0.02)
        z0, z1 = c.depth_range_for(180.0)
        assert z0 == pytest.approx(0.02)
        assert z1 == pytest.approx(0.2)


class TestFitToComfort:
    def test_front_fit_is_comfortable(self):
        c = ErgonomicControls()
        c.fit_to_comfort(180.0, center=False)
        assert c.depth_offset == 0.0
        assert c.is_comfortable(180.0)

    def test_centered_fit_is_comfortable_and_larger(self):
        front = ErgonomicControls()
        front.fit_to_comfort(180.0, center=False)
        centered = ErgonomicControls()
        centered.fit_to_comfort(180.0, center=True)
        assert centered.is_comfortable(180.0)
        # splitting the budget front/behind buys more exaggeration
        assert centered.time_scale > front.time_scale
        assert centered.depth_offset < 0

    def test_fit_maximal(self):
        """The fitted exaggeration is maximal: 5 % more is uncomfortable."""
        c = ErgonomicControls()
        c.fit_to_comfort(120.0, center=False)
        c.set_exaggeration(c.time_scale * 1.05)
        assert not c.is_comfortable(120.0)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            ErgonomicControls().fit_to_comfort(0.0)

    def test_tighter_comfort_model_fits_smaller(self):
        loose = ErgonomicControls(comfort=ComfortModel(limit_deg=1.0))
        tight = ErgonomicControls(comfort=ComfortModel(limit_deg=0.3))
        loose.fit_to_comfort(60.0, center=False)
        tight.fit_to_comfort(60.0, center=False)
        assert tight.time_scale < loose.time_scale
