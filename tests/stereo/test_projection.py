"""Tests for the space-time-cube projection."""

import numpy as np
import pytest

from repro.display.coords import CoordinateMapper
from repro.stereo.camera import Eye
from repro.stereo.projection import SpaceTimeProjection
from repro.synth.arena import Arena
from repro.trajectory.model import Trajectory


@pytest.fixture()
def mapper(arena):
    return CoordinateMapper(arena, (0.0, 0.0, 0.2, 0.15))


@pytest.fixture()
def proj():
    return SpaceTimeProjection(time_scale=0.001, depth_offset=0.0)


class TestDepthMapping:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceTimeProjection(time_scale=-1.0)

    def test_depth_of(self, proj):
        t = np.array([0.0, 10.0, 20.0])
        np.testing.assert_allclose(proj.depth_of(t), [0.0, 0.01, 0.02])

    def test_depth_offset(self):
        proj = SpaceTimeProjection(time_scale=0.001, depth_offset=0.05)
        t = np.array([0.0, 10.0])
        np.testing.assert_allclose(proj.depth_of(t), [0.05, 0.06])

    def test_trajectory_starts_at_display_surface(self, proj, mapper, simple_traj):
        """Fig. 4: trajectories start at the display surface (z=0) and
        float forward as time advances."""
        pts = proj.to_display_3d(simple_traj, mapper)
        assert pts[0, 2] == pytest.approx(0.0)
        assert np.all(np.diff(pts[:, 2]) > 0)

    def test_depth_range(self, proj, simple_traj):
        lo, hi = proj.depth_range(simple_traj)
        assert lo == pytest.approx(0.0)
        assert hi == pytest.approx(0.01)


class TestStereoPair:
    def test_eyes_differ_only_in_x(self, proj, mapper, simple_traj):
        left, right = proj.stereo_pair(simple_traj, mapper)
        np.testing.assert_array_equal(left[:, 1], right[:, 1])
        # first sample at z=0: identical; later samples diverge
        np.testing.assert_allclose(left[0], right[0])
        assert abs(left[-1, 0] - right[-1, 0]) > 0

    def test_disparity_grows_with_time(self, proj, mapper, simple_traj):
        left, right = proj.stereo_pair(simple_traj, mapper)
        disparity = left[:, 0] - right[:, 0]
        assert np.all(np.diff(disparity) > 0)

    def test_zero_time_scale_mono(self, mapper, simple_traj):
        proj = SpaceTimeProjection(time_scale=0.0)
        left, right = proj.stereo_pair(simple_traj, mapper)
        np.testing.assert_allclose(left, right)


class TestStationaryAntSignature:
    def test_perpendicular_segments_flagged(self, proj, arena):
        """A stationary period shows as near-infinite depth/XY ratio —
        the visual cue the §V-B query reads."""
        pos = np.array([[0.0, 0.0], [0.001, 0.0], [0.0011, 0.0], [0.3, 0.0]])
        t = np.array([0.0, 10.0, 40.0, 50.0])
        traj = Trajectory(pos, t)
        ratio = proj.apparent_motion_ratio(traj)
        assert ratio[1] > ratio[0]       # dwell segment is steepest
        assert ratio[1] > ratio[2] * 10  # and dramatically so

    def test_zero_xy_step_infinite(self, proj):
        pos = np.array([[0.0, 0.0], [0.0, 0.0 + 1e-300], [1.0, 0.0]])
        t = np.array([0.0, 1.0, 2.0])
        # exactly repeated position is not constructible (times strictly
        # increase but positions can repeat) — use identical XY
        pos[1] = pos[0]
        traj = Trajectory(pos, t)
        ratio = proj.apparent_motion_ratio(traj)
        assert np.isinf(ratio[0])


class TestWithControls:
    def test_updates_fields(self, proj):
        p2 = proj.with_controls(time_scale=0.002)
        assert p2.time_scale == 0.002
        assert p2.depth_offset == proj.depth_offset
        p3 = proj.with_controls(depth_offset=-0.05)
        assert p3.depth_offset == -0.05
        assert p3.time_scale == proj.time_scale

    def test_projection_uses_camera(self, mapper, simple_traj):
        from repro.stereo.camera import StereoCamera

        wide = SpaceTimeProjection(
            camera=StereoCamera(eye_separation=0.13), time_scale=0.001
        )
        narrow = SpaceTimeProjection(
            camera=StereoCamera(eye_separation=0.065), time_scale=0.001
        )
        lw, rw = wide.stereo_pair(simple_traj, mapper)
        ln, rn = narrow.stereo_pair(simple_traj, mapper)
        assert abs(lw[-1, 0] - rw[-1, 0]) > abs(ln[-1, 0] - rn[-1, 0])
