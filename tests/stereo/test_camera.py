"""Tests for the stereo camera and sheared-orthographic projection."""

import numpy as np
import pytest

from repro.stereo.camera import Eye, StereoCamera


class TestStereoCamera:
    def test_defaults_match_study(self):
        cam = StereoCamera()
        assert cam.eye_separation == pytest.approx(0.065)
        assert cam.viewer_distance == pytest.approx(3.0)  # desk ~3 m away

    def test_validation(self):
        with pytest.raises(ValueError):
            StereoCamera(eye_separation=0.0)
        with pytest.raises(ValueError):
            StereoCamera(viewer_distance=-1.0)

    def test_shear(self):
        cam = StereoCamera(eye_separation=0.06, viewer_distance=3.0)
        assert cam.shear == pytest.approx(0.01)

    def test_eye_offsets_antisymmetric(self):
        cam = StereoCamera()
        assert cam.eye_offset(Eye.LEFT) == -cam.eye_offset(Eye.RIGHT)


class TestProjection:
    def test_zero_depth_identity(self):
        cam = StereoCamera()
        pts = np.array([[1.0, 2.0, 0.0]])
        for eye in Eye:
            out = cam.project_points(pts, eye)
            np.testing.assert_allclose(out, [[1.0, 2.0]])

    def test_y_never_changes(self):
        cam = StereoCamera()
        pts = np.random.default_rng(0).normal(size=(20, 3))
        for eye in Eye:
            out = cam.project_points(pts, eye)
            np.testing.assert_array_equal(out[:, 1], pts[:, 1])

    def test_crossed_disparity_for_front_content(self):
        """Content in front of the screen: left-eye image shifts right,
        right-eye image shifts left (crossed)."""
        cam = StereoCamera()
        pts = np.array([[0.0, 0.0, 0.1]])  # 10 cm in front
        left = cam.project_points(pts, Eye.LEFT)[0, 0]
        right = cam.project_points(pts, Eye.RIGHT)[0, 0]
        assert left > 0 > right

    def test_parallax_antisymmetric_between_eyes(self):
        cam = StereoCamera()
        pts = np.array([[0.0, 0.0, 0.07]])
        left = cam.project_points(pts, Eye.LEFT)[0, 0]
        right = cam.project_points(pts, Eye.RIGHT)[0, 0]
        assert left == pytest.approx(-right)

    def test_rendered_parallax_formula(self):
        cam = StereoCamera(eye_separation=0.065, viewer_distance=3.0)
        z = 0.12
        expected = 0.065 * z / 3.0
        assert float(cam.rendered_parallax(z)) == pytest.approx(expected)
        # and matches the actual projected eye difference
        pts = np.array([[0.0, 0.0, z]])
        diff = (
            cam.project_points(pts, Eye.LEFT)[0, 0]
            - cam.project_points(pts, Eye.RIGHT)[0, 0]
        )
        assert diff == pytest.approx(expected)

    def test_behind_screen_uncrossed(self):
        cam = StereoCamera()
        pts = np.array([[0.0, 0.0, -0.1]])
        left = cam.project_points(pts, Eye.LEFT)[0, 0]
        right = cam.project_points(pts, Eye.RIGHT)[0, 0]
        assert left < 0 < right

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            StereoCamera().project_points(np.zeros((3, 2)), Eye.LEFT)
