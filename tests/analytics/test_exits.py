"""Tests for exit-side analysis."""

import numpy as np
import pytest

from repro.analytics.exits import exit_side_of, exit_side_table, exit_sides, opposite_side
from repro.synth.arena import EXIT_SIDES
from repro.trajectory.model import Trajectory


class TestOppositeSide:
    def test_pairs(self):
        assert opposite_side("east") == "west"
        assert opposite_side("west") == "east"
        assert opposite_side("north") == "south"
        assert opposite_side("south") == "north"

    def test_involution(self):
        for s in EXIT_SIDES:
            assert opposite_side(opposite_side(s)) == s

    def test_unknown(self):
        with pytest.raises(ValueError):
            opposite_side("up")


class TestExitSide:
    def test_straight_east_walker(self, simple_traj, arena):
        assert exit_side_of(simple_traj, arena) == "east"

    def test_synthetic_exit(self, arena):
        pos = np.array([[0.0, 0.0], [0.0, -0.6]])
        traj = Trajectory(pos, np.array([0.0, 1.0]))
        assert exit_side_of(traj, arena) == "south"

    def test_vectorized(self, study_dataset, arena):
        sides = exit_sides(study_dataset, arena)
        assert len(sides) == len(study_dataset)
        assert set(np.unique(sides)).issubset(set(EXIT_SIDES))


class TestExitTable:
    def test_rows_sum_to_group_sizes(self, study_dataset, arena):
        table = exit_side_table(study_dataset, arena)
        zones = study_dataset.zones()
        for zone, row in table.items():
            assert sum(row.values()) == zones[zone]

    def test_all_sides_keyed(self, study_dataset, arena):
        table = exit_side_table(study_dataset, arena)
        for row in table.values():
            assert set(row) == set(EXIT_SIDES)

    def test_planted_effect_visible(self, full_dataset, arena):
        table = exit_side_table(full_dataset, arena)
        east_row = table["east"]
        assert east_row["west"] > sum(east_row.values()) / 2
