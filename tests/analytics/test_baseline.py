"""Tests for the sequential one-at-a-time inspection baseline."""

import numpy as np
import pytest

from repro.analytics.baseline import SequentialInspectionBaseline
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow


@pytest.fixture()
def west_canvas(arena):
    c = BrushCanvas()
    r = arena.radius
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
    return c


class TestSemantics:
    def test_matches_engine_exactly(self, study_dataset, west_canvas):
        """The baseline computes the same per-trajectory outcome as the
        vectorized engine — only the execution schedule differs."""
        engine = CoordinatedBrushingEngine(study_dataset)
        for window in (None, TimeWindow.end(0.15), TimeWindow.absolute(5.0, 20.0)):
            res = engine.query(west_canvas, "red", window=window)
            base = SequentialInspectionBaseline(study_dataset).run(
                west_canvas, "red", window=window
            )
            np.testing.assert_array_equal(base.per_traj, res.traj_mask)

    def test_empty_canvas(self, study_dataset):
        base = SequentialInspectionBaseline(study_dataset).run(BrushCanvas(), "red")
        assert not base.per_traj.any()

    def test_subset_indices(self, study_dataset, west_canvas):
        idx = np.arange(10)
        base = SequentialInspectionBaseline(study_dataset).run(
            west_canvas, "red", indices=idx
        )
        assert base.n_inspected == 10
        assert not base.per_traj[10:].any()


class TestCostModel:
    def test_interaction_dominates(self, study_dataset, west_canvas):
        base = SequentialInspectionBaseline(study_dataset, per_view_s=3.0).run(
            west_canvas, "red"
        )
        assert base.interaction_s == 3.0 * len(study_dataset)
        assert base.total_s > base.compute_s

    def test_zero_view_cost(self, study_dataset, west_canvas):
        base = SequentialInspectionBaseline(study_dataset, per_view_s=0.0).run(
            west_canvas, "red"
        )
        assert base.interaction_s == 0.0
        assert base.total_s == pytest.approx(base.compute_s)

    def test_negative_view_cost_rejected(self, study_dataset):
        with pytest.raises(ValueError):
            SequentialInspectionBaseline(study_dataset, per_view_s=-1.0)

    def test_coordinated_brush_beats_baseline(self, study_dataset, west_canvas):
        """E5's shape: the visual query is orders of magnitude faster
        than one-at-a-time inspection with any plausible human cost."""
        engine = CoordinatedBrushingEngine(study_dataset)
        res = engine.query(west_canvas, "red")
        base = SequentialInspectionBaseline(study_dataset, per_view_s=3.0).run(
            west_canvas, "red"
        )
        assert base.total_s / max(res.elapsed_s, 1e-9) > 100
