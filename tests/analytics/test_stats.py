"""Tests for group-level movement statistics."""

import pytest

from repro.analytics.stats import group_statistics, zone_straightness_table


class TestGroupStatistics:
    def test_grouping_by_zone(self, study_dataset):
        stats = group_statistics(study_dataset, "capture_zone")
        assert set(stats) == set(study_dataset.zones())
        n_total = sum(m["straightness"]["n"] for m in stats.values())
        assert n_total == len(study_dataset)

    def test_metric_keys(self, study_dataset):
        stats = group_statistics(study_dataset)
        some = next(iter(stats.values()))
        assert {
            "path_length_m",
            "net_displacement_m",
            "straightness",
            "sinuosity",
            "mean_speed_mps",
            "duration_s",
        } == set(some)

    def test_grouping_by_direction(self, study_dataset):
        stats = group_statistics(study_dataset, "direction")
        assert set(stats) == {"inbound", "outbound"}

    def test_grouping_by_bool_field(self, study_dataset):
        stats = group_statistics(study_dataset, "carrying_seed")
        assert set(stats) == {"True", "False"}

    def test_values_sane(self, study_dataset):
        stats = group_statistics(study_dataset)
        for metrics in stats.values():
            assert 0.0 <= metrics["straightness"]["mean"] <= 1.0
            assert metrics["duration_s"]["mean"] > 0
            assert metrics["mean_speed_mps"]["mean"] > 0


class TestStraightnessTable:
    def test_windy_vs_direct_inference(self, full_dataset):
        """§VI-A: on-trail 'more windy', off-trail 'more direct'."""
        table = zone_straightness_table(full_dataset)
        for zone in ("east", "west", "north", "south"):
            assert table[zone] > table["on"], zone

    def test_zone_order_stable(self, study_dataset):
        table = zone_straightness_table(study_dataset)
        assert list(table) == ["on", "east", "west", "north", "south"]
