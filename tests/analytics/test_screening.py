"""Tests for hypothesis-space screening."""

import pytest

from repro.analytics.screening import (
    exit_side_battery,
    screen_hypotheses,
)
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.hypothesis import VerdictKind
from repro.layout.cells import assign_groups_to_cells
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups


@pytest.fixture(scope="module")
def engine(full_dataset):
    return CoordinatedBrushingEngine(full_dataset)


@pytest.fixture(scope="module")
def assignment(full_dataset, viewport):
    grid = preset("3").build(viewport)
    groups = TrajectoryGroups.fig3_scheme(grid)
    return assign_groups_to_cells(full_dataset, grid, groups)


class TestBattery:
    def test_size(self, arena):
        battery = exit_side_battery(arena)
        assert len(battery) == 5 * 4 + 1

    def test_without_seed(self, arena):
        battery = exit_side_battery(arena, include_seed_dwell=False)
        assert len(battery) == 20
        assert all(h.target_group is not None for h in battery)

    def test_statements_unique(self, arena):
        battery = exit_side_battery(arena)
        statements = [h.statement for h in battery]
        assert len(set(statements)) == len(statements)


class TestScreening:
    @pytest.fixture(scope="class")
    def screened(self, engine, assignment, arena):
        return screen_hypotheses(engine, exit_side_battery(arena), assignment)

    def test_everything_evaluated(self, screened, arena):
        assert len(screened) == len(exit_side_battery(arena))

    def test_sorted_by_score(self, screened):
        scores = [s.score for s in screened]
        assert scores == sorted(scores, reverse=True)

    def test_promising_hypotheses_are_the_planted_ones(self, screened):
        """The four true homing hypotheses (+ seed dwell) surface at the
        top; everything else is refuted — §VI-B's 'identify the
        promising ones'."""
        supported = [s for s in screened if s.verdict.supported]
        statements = {s.hypothesis.statement for s in supported}
        expected = {
            "ants captured east of the trail exit west",
            "ants captured west of the trail exit east",
            "ants captured north of the trail exit south",
            "ants captured south of the trail exit north",
            "seed-droppers linger centrally early on",
        }
        assert statements == expected
        # and they are exactly the top of the ranking
        top = {s.hypothesis.statement for s in screened[: len(expected)]}
        assert top == expected

    def test_false_hypotheses_refuted(self, screened):
        refuted = [s for s in screened if s.verdict.kind is VerdictKind.REFUTED]
        assert len(refuted) == len(screened) - 5

    def test_score_semantics(self, screened):
        best = screened[0]
        if best.verdict.comparison_support is not None:
            expected = best.verdict.support - best.verdict.comparison_support
        else:
            expected = best.verdict.support - best.hypothesis.threshold
        assert best.score == pytest.approx(expected)

    def test_without_assignment_group_hypotheses_skipped(self, engine, arena):
        screened = screen_hypotheses(engine, exit_side_battery(arena), None)
        # only the group-free seed-dwell hypothesis survives
        assert len(screened) == 1
        assert "seed" in screened[0].hypothesis.statement
