"""Tests for ground-truth verification of visual queries."""

import numpy as np
import pytest

from repro.analytics.verify import (
    ground_truth_east_west,
    ground_truth_seed_dwell,
    verify_query_against_truth,
)
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow


@pytest.fixture(scope="module")
def engine(full_dataset):
    return CoordinatedBrushingEngine(full_dataset)


class TestGroundTruthEastWest:
    def test_support_matches_table(self, full_dataset, arena):
        from repro.analytics.exits import exit_side_table

        truth = ground_truth_east_west(full_dataset, arena)
        table = exit_side_table(full_dataset, arena)["east"]
        expected = table["west"] / sum(table.values())
        assert truth.support == pytest.approx(expected)

    def test_supported(self, full_dataset, arena):
        assert ground_truth_east_west(full_dataset, arena).supported

    def test_control_not_supported(self, full_dataset, arena):
        truth = ground_truth_east_west(
            full_dataset, arena, capture_zone="on", exit_side="west"
        )
        assert not truth.supported

    def test_empty_target(self, tiny_dataset, arena):
        truth = ground_truth_east_west(tiny_dataset, arena, capture_zone="north")
        assert truth.support == 0.0


class TestGroundTruthSeedDwell:
    def test_supported(self, full_dataset):
        truth = ground_truth_seed_dwell(full_dataset, radius=0.075)
        assert truth.supported

    def test_threshold_monotone(self, full_dataset):
        lax = ground_truth_seed_dwell(full_dataset, radius=0.075, dwell_threshold_s=1.0)
        strict = ground_truth_seed_dwell(full_dataset, radius=0.075, dwell_threshold_s=30.0)
        assert lax.support >= strict.support


class TestQueryFidelity:
    def test_visual_agrees_with_exact(self, engine, full_dataset, arena):
        """The paper's central fidelity claim: the visual query gives
        the same verdict as exact analysis, with high per-item
        agreement."""
        r = arena.radius
        canvas = BrushCanvas()
        canvas.add(
            stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red")
        )
        result = engine.query(canvas, "red", window=TimeWindow.end(0.15))
        truth = ground_truth_east_west(full_dataset, arena)
        fidelity = verify_query_against_truth(result, truth)
        assert fidelity.verdict_match
        assert fidelity.agreement > 0.8
        assert abs(fidelity.visual_support - fidelity.exact_support) < 0.25

    def test_empty_target_perfect_agreement(self, engine, full_dataset, arena):
        truth = ground_truth_east_west(full_dataset, arena)
        result = engine.query(BrushCanvas(), "red")
        # restrict to an impossible population
        empty_truth = type(truth)(
            statement="x",
            per_traj=truth.per_traj,
            target=np.zeros(len(full_dataset), dtype=bool),
        )
        fid = verify_query_against_truth(result, empty_truth)
        assert fid.agreement == 1.0
        assert fid.verdict_match

    def test_str_readable(self, engine, full_dataset, arena):
        truth = ground_truth_east_west(full_dataset, arena)
        r = arena.radius
        canvas = BrushCanvas()
        canvas.add(stroke_from_rect((-r, -0.5), (-0.7 * r, 0.5), 0.06, "red"))
        fid = verify_query_against_truth(engine.query(canvas, "red"), truth)
        assert "agreement" in str(fid)
