"""Tests for dwell analysis."""

import numpy as np
import pytest

from repro.analytics.dwell import central_dwell_table, early_dwell_seconds
from repro.trajectory.model import Trajectory, TrajectoryMeta


class TestEarlyDwell:
    def test_validation(self, simple_traj):
        with pytest.raises(ValueError):
            early_dwell_seconds(simple_traj, (0, 0), 0.1, early_fraction=0.0)

    def test_full_fraction_equals_plain_dwell(self, simple_traj):
        from repro.trajectory.metrics import dwell_time_in_disc

        a = early_dwell_seconds(simple_traj, (0.0, 0.0), 0.3, early_fraction=1.0)
        b = dwell_time_in_disc(simple_traj, (0.0, 0.0), 0.3)
        assert a == pytest.approx(b)

    def test_window_restricts(self, simple_traj):
        # whole walk inside a huge disc; early 20 % of 10 s = 2 s
        dwell = early_dwell_seconds(simple_traj, (0.0, 0.0), 10.0, early_fraction=0.2)
        assert dwell == pytest.approx(2.0, abs=0.6)

    def test_outside_disc_zero(self, simple_traj):
        assert early_dwell_seconds(simple_traj, (0.0, 9.0), 0.1) == 0.0

    def test_stationary_ant_full_dwell(self):
        pos = np.zeros((11, 2))
        pos[:, 0] = np.linspace(0, 1e-4, 11)
        traj = Trajectory(pos, np.linspace(0, 50, 11))
        dwell = early_dwell_seconds(traj, (0, 0), 0.05, early_fraction=0.5)
        assert dwell == pytest.approx(25.0, abs=3.0)


class TestCentralDwellTable:
    def test_keys_and_counts(self, full_dataset):
        table = central_dwell_table(full_dataset, radius=0.075)
        assert set(table) == {"seed_dropped", "others"}
        total = table["seed_dropped"]["count"] + table["others"]["count"]
        assert total == len(full_dataset)

    def test_seed_droppers_dwell_more(self, full_dataset):
        table = central_dwell_table(full_dataset, radius=0.075)
        assert table["seed_dropped"]["mean_s"] > table["others"]["mean_s"]
        assert table["seed_dropped"]["median_s"] > table["others"]["median_s"]

    def test_empty_population_handled(self, tiny_dataset):
        table = central_dwell_table(tiny_dataset, radius=0.1)
        assert table["seed_dropped"]["count"] == 0
        assert table["seed_dropped"]["mean_s"] == 0.0
