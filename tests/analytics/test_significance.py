"""Tests for the permutation significance test."""

import numpy as np
import pytest

from repro.analytics.significance import support_permutation_test


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            support_permutation_test(np.ones(5, bool), np.ones(4, bool))

    def test_degenerate_target(self):
        h = np.ones(5, dtype=bool)
        with pytest.raises(ValueError):
            support_permutation_test(h, np.zeros(5, bool))
        with pytest.raises(ValueError):
            support_permutation_test(h, np.ones(5, bool))

    def test_permutation_count(self):
        h = np.ones(6, dtype=bool)
        t = np.array([1, 1, 0, 0, 0, 0], dtype=bool)
        with pytest.raises(ValueError):
            support_permutation_test(h, t, n_permutations=0)


class TestStatistics:
    def test_strong_effect_significant(self):
        rng = np.random.default_rng(0)
        target = np.zeros(200, dtype=bool)
        target[:50] = True
        highlighted = np.where(target, rng.uniform(size=200) < 0.8,
                               rng.uniform(size=200) < 0.1)
        rep = support_permutation_test(highlighted, target, rng=rng)
        assert rep.significant()
        assert rep.observed_diff > 0.5
        assert rep.target_support > rep.complement_support

    def test_null_effect_not_significant(self):
        rng = np.random.default_rng(1)
        target = np.zeros(200, dtype=bool)
        target[:50] = True
        highlighted = rng.uniform(size=200) < 0.4  # same rate everywhere
        rep = support_permutation_test(highlighted, target, rng=rng)
        assert rep.p_value > 0.05

    def test_p_value_range(self):
        rng = np.random.default_rng(2)
        target = np.zeros(40, dtype=bool)
        target[:10] = True
        highlighted = rng.uniform(size=40) < 0.5
        rep = support_permutation_test(highlighted, target, n_permutations=500, rng=rng)
        assert 0.0 < rep.p_value <= 1.0

    def test_deterministic_with_seeded_rng(self):
        target = np.zeros(60, dtype=bool)
        target[:20] = True
        highlighted = np.zeros(60, dtype=bool)
        highlighted[:15] = True
        a = support_permutation_test(highlighted, target, rng=np.random.default_rng(3))
        b = support_permutation_test(highlighted, target, rng=np.random.default_rng(3))
        assert a.p_value == b.p_value

    def test_str_readable(self):
        target = np.array([1, 1, 0, 0], dtype=bool)
        highlighted = np.array([1, 1, 0, 0], dtype=bool)
        rep = support_permutation_test(highlighted, target, n_permutations=100)
        assert "p =" in str(rep)


class TestOnStudyData:
    def test_fig5_reading_is_significant(self, full_dataset, arena):
        """The east group's red concentration is not a sampling
        artifact: permutation p << 0.05."""
        from repro.core.brush import stroke_from_rect
        from repro.core.canvas import BrushCanvas
        from repro.core.engine import CoordinatedBrushingEngine
        from repro.core.temporal import TimeWindow

        canvas = BrushCanvas()
        r = arena.radius
        canvas.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
        res = CoordinatedBrushingEngine(full_dataset).query(
            canvas, "red", window=TimeWindow.end(0.15)
        )
        target = np.array(
            [t.meta.capture_zone == "east" for t in full_dataset], dtype=bool
        )
        rep = support_permutation_test(res.traj_mask, target)
        assert rep.significant(0.001)

    def test_on_trail_reading_is_null(self, full_dataset, arena):
        from repro.core.brush import stroke_from_rect
        from repro.core.canvas import BrushCanvas
        from repro.core.engine import CoordinatedBrushingEngine
        from repro.core.temporal import TimeWindow

        canvas = BrushCanvas()
        r = arena.radius
        canvas.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
        res = CoordinatedBrushingEngine(full_dataset).query(
            canvas, "red", window=TimeWindow.end(0.15)
        )
        target = np.array(
            [t.meta.capture_zone == "on" for t in full_dataset], dtype=bool
        )
        rep = support_permutation_test(res.traj_mask, target)
        # on-trail ants are at (or below) the base rate — never a
        # significant positive effect
        assert rep.p_value > 0.05
