"""Tests for the TrajectoryExplorer application facade."""

import numpy as np
import pytest

from repro.app import TrajectoryExplorer
from repro.core.brush import stroke_from_rect
from repro.core.temporal import TimeWindow
from repro.display.bezel import BezelSpec
from repro.display.viewport import Viewport
from repro.display.wall import DisplayWall
from repro.interaction.events import KeyEvent, PointerEvent, PointerPhase


@pytest.fixture()
def small_viewport():
    wall = DisplayWall(
        cols=2, rows=1, panel_width=0.3, panel_height=0.16875,
        panel_px_width=120, panel_px_height=68, bezel=BezelSpec(),
    )
    return Viewport(wall)


@pytest.fixture()
def app(study_dataset, small_viewport):
    return TrajectoryExplorer(study_dataset, viewport=small_viewport, layout_key="1")


class TestHighLevelOps:
    def test_status(self, app, study_dataset):
        s = app.status()
        assert s["dataset"] == len(study_dataset)
        assert s["layout"] == "15x4"

    def test_comfort_fitted_on_init(self, app, study_dataset):
        max_dur = max(t.duration for t in study_dataset)
        assert app.controls.is_comfortable(max_dur)

    def test_fig5_workflow(self, app, arena):
        app.group_by_capture_zone()
        r = arena.radius
        app.brush(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
        app.set_time_window(TimeWindow.end(0.15))
        result = app.query("red")
        assert result.group_support["east"].support > result.group_support["on"].support

    def test_erase_clears_results(self, app):
        app.brush(stroke_from_rect((0, 0), (0.1, 0.1), 0.05, "red"))
        app.query("red")
        app.erase()
        assert app.session.canvas.is_empty()
        assert not app._last_results


class TestEventDriven:
    def test_key_layout_switch(self, app):
        app.handle_event(KeyEvent(1.0, "2"))
        assert app.status()["layout"] == "24x6"

    def test_key_grouping(self, app):
        app.handle_event(KeyEvent(1.0, "g"))
        assert app.status()["groups"] is not None

    def test_brush_color_cycle(self, app):
        first = app.brush_color
        app.handle_event(KeyEvent(1.0, "b"))
        assert app.brush_color != first

    def test_pointer_drag_paints(self, app):
        app.handle_event(PointerEvent(0.0, 20, 20, PointerPhase.DOWN))
        app.handle_event(PointerEvent(0.5, 40, 20, PointerPhase.MOVE))
        app.handle_event(PointerEvent(1.0, 60, 20, PointerPhase.UP))
        assert app.session.canvas.n_strokes == 1

    def test_unbound_key_ignored(self, app):
        before = app.status()
        app.handle_event(KeyEvent(0.0, "q"))
        assert app.status() == before

    def test_events_recorded(self, app):
        app.handle_event(KeyEvent(0.0, "2"))
        app.handle_event(KeyEvent(1.0, "g"))
        assert len(app.recorder) == 2

    def test_sliders_via_keys(self, app):
        d0 = app.controls.depth_offset
        app.handle_event(KeyEvent(0.0, "]"))
        assert app.controls.depth_offset > d0
        t0 = app.controls.time_scale
        app.handle_event(KeyEvent(1.0, "-"))
        assert app.controls.time_scale < t0

    def test_reset_temporal(self, app):
        app.set_time_window(TimeWindow.end(0.1))
        app.handle_event(KeyEvent(0.0, "t"))
        assert app.session.window.is_everything


class TestRendering:
    def test_render_modes(self, app):
        left = app.render_frame(mode="left", scale=0.5)
        assert left.ndim == 3 and left.shape[2] == 3
        pair = app.render_frame(mode="pair", scale=0.5)
        assert pair.shape[1] == 2 * left.shape[1]
        ana = app.render_frame(mode="anaglyph", scale=0.5)
        assert ana.shape == left.shape

    def test_unknown_mode(self, app):
        with pytest.raises(ValueError):
            app.render_frame(mode="hologram")

    def test_save_frame(self, app, tmp_path):
        from repro.render.image_io import read_ppm

        path = tmp_path / "frame.ppm"
        app.save_frame(path, mode="left", scale=0.5)
        img = read_ppm(path)
        assert img.size > 0

    def test_query_results_rendered(self, app, arena):
        r = arena.radius
        app.brush(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
        plain = app.render_frame(mode="left", scale=0.5)
        app.query("red")
        highlighted = app.render_frame(mode="left", scale=0.5)
        assert not np.allclose(plain, highlighted)
