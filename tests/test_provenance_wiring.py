"""Tests for insight-provenance integration (the §VII future work)."""

import pytest

from repro.app import TrajectoryExplorer
from repro.core.brush import stroke_from_rect
from repro.core.hypothesis import Hypothesis
from repro.core.temporal import TimeWindow


@pytest.fixture()
def app(study_dataset):
    from repro.display.bezel import BezelSpec
    from repro.display.viewport import Viewport
    from repro.display.wall import DisplayWall

    wall = DisplayWall(
        cols=2, rows=1, panel_width=0.3, panel_height=0.16875,
        panel_px_width=120, panel_px_height=68, bezel=BezelSpec(),
    )
    a = TrajectoryExplorer(study_dataset, viewport=Viewport(wall), layout_key="1")
    a.group_by_capture_zone()
    return a


def _east_hyp(arena_r=0.5):
    return Hypothesis(
        statement="east ants exit west",
        strokes=(
            stroke_from_rect((-arena_r, -0.3), (-0.7 * arena_r, 0.3), 0.06, "red"),
        ),
        window=TimeWindow.end(0.15),
        target_group="east",
    )


class TestAppProvenance:
    def test_record_created_per_hypothesis(self, app):
        assert len(app.provenance) == 0
        app.test_hypothesis(_east_hyp())
        assert len(app.provenance) == 1
        rec = app.provenance[0]
        assert rec.hypothesis == "east ants exit west"
        assert rec.verdict["kind"] in ("supported", "refuted", "inconclusive")
        assert rec.query_spec["color"] == "red"
        assert rec.query_spec["target_group"] == "east"

    def test_custom_insight_and_parents(self, app):
        app.test_hypothesis(_east_hyp())
        app.test_hypothesis(
            _east_hyp(), insight="homing confirmed twice", parents=(0,)
        )
        assert app.provenance[1].insight == "homing confirmed twice"
        assert app.provenance.lineage(1) == [0]

    def test_provenance_serializable(self, app, tmp_path):
        from repro.sensemaking.provenance import ProvenanceLog

        app.test_hypothesis(_east_hyp())
        path = tmp_path / "prov.json"
        app.provenance.save(path)
        loaded = ProvenanceLog.load(path)
        assert loaded[0].hypothesis == app.provenance[0].hypothesis


class TestReplayProvenance:
    def test_replay_populates_chain(self, study_dataset, viewport):
        from repro.core.session import ExplorationSession
        from repro.sensemaking import AnalystSimulator

        session = ExplorationSession(study_dataset, viewport)
        replay = AnalystSimulator(session).run()
        assert len(replay.provenance) == replay.hypotheses_tested() == 5
        for rec in replay.provenance:
            assert rec.verdict["kind"]
            assert rec.evidence_ids  # linked back to the evidence file


class TestTemporalSlider:
    def test_slider_drives_window(self, app):
        app.temporal_slider.set(0.8, 1.0)
        assert app.session.window.describe() == "t=[0.8,1]frac"
        app.temporal_slider.set_low(0.0)
        lo, hi = app.session.window.lo, app.session.window.hi
        assert (lo, hi) == (0.0, 1.0)
        assert app.session.window.is_everything
