"""Telemetry overhead regression test (wall-clock; ``-m perf``).

The tentpole's cost contract: a warm query with a live registry must
run within 10% of the same query with telemetry disabled.  Timing on
shared CI boxes is noisy, so the measurement is defensive:

* **interleaved, alternating order** — enabled/disabled samples pair
  up with the within-pair order flipped each iteration, so clock
  drift and cache effects hit both arms equally;
* **one registry throughout** — toggled via ``set_registry`` so the
  enabled arm never pays registry/shard construction inside a sample;
* **min-of-N** — for a CPU-bound section the minimum is the noise-free
  estimate (every perturbation only adds time);
* **best-of-attempts** — the assertion passes if *any* attempt meets
  the bound, failing only on a reproducible regression.

Excluded from tier-1 (``addopts = -m "not perf"``); the CI bench job
runs it explicitly.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

SAMPLES = 30
ATTEMPTS = 3
MAX_OVERHEAD = 1.10


def _canvas(arena) -> BrushCanvas:
    c = BrushCanvas()
    r = arena.radius
    c.add(
        stroke_from_rect(
            (-r, -0.6 * r), (-0.7 * r, 0.6 * r), radius=0.12 * r, color="red"
        )
    )
    return c


def _measure_warm_query_pair(engine, canvas, registry) -> tuple[float, float]:
    """Interleaved minima of (disabled, enabled) warm-query times."""
    window = TimeWindow.end(0.2)
    for reg in (registry, NULL_REGISTRY):  # warm cache, shard, both paths
        obs.set_registry(reg)
        engine.query(canvas, "red", window=window)

    disabled: list[float] = []
    enabled: list[float] = []
    for k in range(SAMPLES):
        pairs = [(registry, enabled), (NULL_REGISTRY, disabled)]
        for reg, samples in pairs if k % 2 else reversed(pairs):
            obs.set_registry(reg)
            t0 = time.perf_counter()
            engine.query(canvas, "red", window=window)
            samples.append(time.perf_counter() - t0)
    obs.disable()
    return min(disabled), min(enabled)


@pytest.mark.perf
def test_enabled_telemetry_within_10_percent_of_disabled(study_dataset, arena):
    engine = CoordinatedBrushingEngine(study_dataset)
    canvas = _canvas(arena)
    registry = MetricsRegistry()
    ratios = []
    for _ in range(ATTEMPTS):
        best_off, best_on = _measure_warm_query_pair(engine, canvas, registry)
        ratio = best_on / best_off
        ratios.append(round(ratio, 3))
        if ratio <= MAX_OVERHEAD:
            return
    pytest.fail(
        f"telemetry overhead above {MAX_OVERHEAD:.0%} in every attempt: "
        f"enabled/disabled ratios {ratios}"
    )


@pytest.mark.perf
def test_disabled_span_fast_path_allocates_nothing():
    """The off switch really is free: span() returns the same object
    every call (no allocation) and a facade emit is just a flag check."""
    obs.disable()
    spans = {id(obs.span(f"name-{i}")) for i in range(1000)}
    assert spans == {id(obs.NULL_SPAN)}
