"""Span API tests: timing, null fast path, trace back-fill."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.plan.trace import QueryTrace
from repro.obs.spans import NULL_SPAN, NullSpan, Span


# Disabled fast path ------------------------------------------------------

def test_disabled_span_is_the_shared_null_singleton():
    obs.disable()
    a = obs.span("stage.brush_hit")
    b = obs.span("anything.else", {"k": "v"})
    assert a is b is NULL_SPAN  # identity = zero-allocation contract


def test_null_span_is_a_working_context_manager():
    with obs.span("x") as sp:
        assert isinstance(sp, NullSpan)
        assert sp.annotate(k=1) is sp
    assert sp.elapsed_s == 0.0


def test_null_span_swallows_nothing():
    # exceptions propagate straight through the no-op span
    with pytest.raises(ValueError):
        with obs.span("x"):
            raise ValueError("real error")


# Live spans --------------------------------------------------------------

def test_live_span_records_duration_histogram(registry):
    with obs.span("stage.brush_hit") as sp:
        assert isinstance(sp, Span)
    assert sp.elapsed_s > 0.0
    hist = obs.telemetry_snapshot().histogram("span.seconds", name="stage.brush_hit")
    assert hist is not None and hist.count == 1
    assert hist.sum == pytest.approx(sp.elapsed_s)


def test_span_annotations_become_labels(registry):
    with obs.span("render.frame", {"workers": 4}) as sp:
        sp.annotate(mode="pooled")
    hist = obs.telemetry_snapshot().histogram(
        "span.seconds", name="render.frame", workers="4", mode="pooled"
    )
    assert hist is not None and hist.count == 1


def test_span_forwards_end_event_to_sink(registry):
    events: list[dict] = []

    class Sink:
        def write_event(self, event, *, ts=None):
            events.append(dict(event))

    registry.event_sink = Sink()
    with obs.span("stage.combine"):
        pass
    assert len(events) == 1
    (event,) = events
    assert event["type"] == "span"
    assert event["name"] == "stage.combine"
    assert event["seconds"] > 0.0
    assert event["error"] is None


def test_span_event_records_exception_type(registry):
    events: list[dict] = []

    class Sink:
        def write_event(self, event, *, ts=None):
            events.append(dict(event))

    registry.event_sink = Sink()
    with pytest.raises(KeyError):
        with obs.span("stage.fails"):
            raise KeyError("missing")
    assert events[0]["error"] == "KeyError"


def test_span_emission_failure_never_raises(registry):
    class Sink:
        def write_event(self, event, *, ts=None):
            raise OSError("disk full")

    registry.event_sink = Sink()
    with obs.span("x"):
        pass  # sink blew up on exit; traced section must not notice


# StageSpan ---------------------------------------------------------------

def test_stage_span_backfills_trace_without_registry():
    obs.disable()
    trace = QueryTrace()
    with obs.stage_span(trace, "brush_hit") as sp:
        sp.n_in = 100
        sp.n_out = 40
        sp.detail = "d=2.0"
    assert len(trace.stages) == 1
    rec = trace.stages[0]
    assert rec.stage == "brush_hit"
    assert rec.n_in == 100 and rec.n_out == 40
    assert rec.elapsed_s > 0.0
    assert rec.cache_hit is False and rec.degraded is False
    assert rec.detail == "d=2.0"
    # disabled registry → no metric emission
    assert obs.telemetry_snapshot().histograms == {}


def test_stage_span_cache_hit_records_exact_zero():
    obs.disable()
    trace = QueryTrace()
    with obs.stage_span(trace, "combine") as sp:
        sp.cache_hit = True
        sp.n_out = 7
    assert trace.stages[0].elapsed_s == 0.0  # exact, pre-telemetry contract
    assert trace.stages[0].cache_hit is True


def test_stage_span_records_nothing_on_exception():
    obs.disable()
    trace = QueryTrace()
    with pytest.raises(RuntimeError):
        with obs.stage_span(trace, "spatial_candidates"):
            raise RuntimeError("stage blew up")
    assert trace.stages == []


def test_stage_span_emits_stage_metrics_when_enabled(registry):
    trace = QueryTrace()
    with obs.stage_span(trace, "brush_hit") as sp:
        sp.n_out = 3
    with obs.stage_span(trace, "brush_hit") as sp:
        sp.cache_hit = True
    with obs.stage_span(trace, "combine") as sp:
        sp.degraded = True
    snap = obs.telemetry_snapshot()
    assert snap.counter("query.stage.cache_misses", stage="brush_hit") == 1.0
    assert snap.counter("query.stage.cache_hits", stage="brush_hit") == 1.0
    assert snap.counter("query.stage.taints", stage="combine") == 1.0
    hist = snap.histogram("query.stage.seconds", stage="brush_hit")
    assert hist is not None and hist.count == 2
