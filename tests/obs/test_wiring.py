"""Telemetry wiring tests: emission points and trace parity.

Two contracts:

* **Trace parity** — routing per-stage timing through the span API
  must reproduce exactly the :class:`QueryTrace` the pre-telemetry
  executor built: same stage names in order, same cache-hit flags,
  same taint flags, zero elapsed on hits — with telemetry on or off.
* **Emission** — each instrumented layer (engine, executor, service,
  pool, resilience) lands its documented metrics in the registry, and
  a disabled registry observes nothing.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.parallel.pool import WorkerPool
from repro.resilience.health import DegradationReport
from repro.store.service import DatasetService

# the planned stage sequence for an indexed query without a cell
# assignment (group_support is planned only when cells are assigned)
STAGES = [
    "temporal_mask",
    "spatial_candidates",
    "brush_hit",
    "combine",
    "aggregate",
]


@pytest.fixture()
def west_canvas(arena):
    c = BrushCanvas()
    r = arena.radius
    c.add(
        stroke_from_rect(
            (-r, -0.6 * r), (-0.7 * r, 0.6 * r), radius=0.12 * r, color="red"
        )
    )
    return c


def _trace_shape(trace):
    """The structural fingerprint parity tests compare (no timings)."""
    return [
        (r.stage, r.cache_hit, r.degraded, r.n_in, r.n_out, r.detail)
        for r in trace.stages
    ]


# Trace parity ------------------------------------------------------------

class TestTraceParity:
    def test_cold_trace_structure(self, study_dataset, west_canvas):
        engine = CoordinatedBrushingEngine(study_dataset)
        trace = engine.query(west_canvas, "red", window=TimeWindow.end(0.2)).trace
        assert trace.stage_names() == STAGES
        assert all(not r.cache_hit for r in trace.stages)
        assert all(not r.degraded for r in trace.stages)
        assert all(r.elapsed_s > 0.0 for r in trace.stages)

    def test_warm_trace_hits_record_exact_zero(self, study_dataset, west_canvas):
        engine = CoordinatedBrushingEngine(study_dataset)
        w = TimeWindow.end(0.2)
        engine.query(west_canvas, "red", window=w)
        warm = engine.query(west_canvas, "red", window=w).trace
        assert warm.stage_names() == STAGES
        hits = [r for r in warm.stages if r.cache_hit]
        assert len(hits) == warm.cache_hits > 0
        assert all(r.elapsed_s == 0.0 for r in hits)

    def test_degraded_trace_taint_flags(self, study_dataset, west_canvas):
        class _SabotagedIndex:
            def candidates_for_discs(self, centers, radii):
                raise RuntimeError("index sabotaged")

        engine = CoordinatedBrushingEngine(study_dataset)
        engine.index = _SabotagedIndex()
        trace = engine.query(west_canvas, "red", window=TimeWindow.end(0.2)).trace
        flags = {r.stage: r.degraded for r in trace.stages}
        # the failing stage and everything downstream of it is tainted;
        # the temporal mask is index-independent and stays clean
        assert flags == {
            "temporal_mask": False,
            "spatial_candidates": True,
            "brush_hit": True,
            "combine": True,
            "aggregate": True,
        }

    def test_trace_identical_with_telemetry_on_and_off(
        self, study_dataset, west_canvas
    ):
        w = TimeWindow.end(0.2)
        obs.disable()
        engine_off = CoordinatedBrushingEngine(study_dataset)
        off_cold = _trace_shape(engine_off.query(west_canvas, "red", window=w).trace)
        off_warm = _trace_shape(engine_off.query(west_canvas, "red", window=w).trace)
        obs.enable()
        engine_on = CoordinatedBrushingEngine(study_dataset)
        on_cold = _trace_shape(engine_on.query(west_canvas, "red", window=w).trace)
        on_warm = _trace_shape(engine_on.query(west_canvas, "red", window=w).trace)
        assert on_cold == off_cold
        assert on_warm == off_warm


# Emission points ---------------------------------------------------------

class TestEmission:
    def test_disabled_by_default_and_observes_nothing(
        self, study_dataset, west_canvas
    ):
        assert obs.enabled() is False
        engine = CoordinatedBrushingEngine(study_dataset)
        engine.query(west_canvas, "red")
        snap = obs.telemetry_snapshot()
        assert snap.counters == {} and snap.histograms == {}

    def test_engine_emits_query_metrics(self, registry, study_dataset, west_canvas):
        engine = CoordinatedBrushingEngine(study_dataset)
        engine.query(west_canvas, "red", window=TimeWindow.end(0.2))
        snap = obs.telemetry_snapshot()
        assert snap.counter("query.count", strategy="indexed") == 1.0
        hist = snap.histogram("query.seconds", strategy="indexed")
        assert hist is not None and hist.count == 1
        # cold query: every stage missed
        assert snap.counter_total("query.stage.cache_misses") == len(STAGES)
        assert snap.counter_total("query.stage.cache_hits") == 0.0

    def test_executor_emits_per_stage_hits_on_warm_query(
        self, registry, study_dataset, west_canvas
    ):
        engine = CoordinatedBrushingEngine(study_dataset)
        w = TimeWindow.end(0.2)
        engine.query(west_canvas, "red", window=w)
        warm = engine.query(west_canvas, "red", window=w)
        snap = obs.telemetry_snapshot()
        assert snap.counter_total("query.stage.cache_hits") == warm.trace.cache_hits
        for record in warm.trace.stages:
            hist = snap.histogram("query.stage.seconds", stage=record.stage)
            assert hist is not None and hist.count == 2

    def test_degraded_query_emits_taint_counters(
        self, registry, study_dataset, west_canvas
    ):
        class _SabotagedIndex:
            def candidates_for_discs(self, centers, radii):
                raise RuntimeError("index sabotaged")

        engine = CoordinatedBrushingEngine(study_dataset)
        engine.index = _SabotagedIndex()
        res = engine.query(west_canvas, "red", window=TimeWindow.end(0.2))
        snap = obs.telemetry_snapshot()
        assert res.degraded
        assert snap.counter_total("query.degraded") == 1.0
        n_tainted = sum(1 for r in res.trace.stages if r.degraded)
        assert snap.counter_total("query.stage.taints") == n_tainted

    def test_service_emits_session_attribution(
        self, registry, study_dataset, viewport
    ):
        service = DatasetService(study_dataset)
        a = service.session(viewport)
        b = service.session(viewport)
        a.run_query("red")
        a.run_query("red")
        b.run_query("red")
        snap = obs.telemetry_snapshot()
        assert snap.counter("service.sessions.opened") == 2.0
        assert snap.counter("session.queries", session=a.session_id) == 2.0
        assert snap.counter("session.queries", session=b.session_id) == 1.0
        assert snap.counter_total("session.queries") == 3.0
        assert snap.counter("query.count", strategy="empty-brush") == 3.0
        # the lock-free read path: every query lands on a pinned epoch
        # snapshot and no lock-wait gauge exists anymore
        assert snap.counter_total("service.snapshot.queries") == 3.0
        assert snap.counter("service.snapshot.pinned") == 2.0
        assert snap.gauge("service.snapshot.pins") == 2.0
        assert snap.gauge("service.snapshot.active_epoch") is not None
        assert snap.gauge("service.lock.wait_seconds") is None

    def test_pool_map_emits_call_and_item_counters(self, registry):
        with WorkerPool(0) as pool:
            pool.map(str, [1, 2, 3])
        snap = obs.telemetry_snapshot()
        assert snap.counter("pool.map.calls", mode="serial") == 1.0
        assert snap.counter("pool.map.items", mode="serial") == 3.0

    def test_resilience_faults_route_through_report(self, registry):
        report = DegradationReport()
        report.record("index-failure", scope="index", action="degraded-brute-force")
        report.record("worker-crash", scope="tile", action="respawned")
        snap = obs.telemetry_snapshot()
        assert (
            snap.counter(
                "resilience.faults",
                kind="index-failure",
                scope="index",
                action="degraded-brute-force",
            )
            == 1.0
        )
        assert snap.counter("pool.worker.respawns", kind="worker-crash") == 1.0

    def test_app_telemetry_surfaces_snapshot(self, registry, study_dataset):
        from repro.app import TrajectoryExplorer

        explorer = TrajectoryExplorer(study_dataset)
        explorer.session.run_query("red")
        doc = explorer.telemetry()
        assert doc["enabled"] is True
        assert doc["counters"]["query.count{strategy=empty-brush}"] == 1.0

    def test_app_telemetry_reports_disabled(self, study_dataset):
        from repro.app import TrajectoryExplorer

        obs.disable()
        explorer = TrajectoryExplorer(study_dataset)
        doc = explorer.telemetry()
        assert doc["enabled"] is False
        assert doc["counters"] == {}


class TestAggregateEmission:
    """The aggregate route's documented metrics: pyramid build time,
    per-class supernode counts, and drill-down workload size."""

    def test_build_and_classification_metrics(
        self, registry, study_dataset, west_canvas
    ):
        engine = CoordinatedBrushingEngine(study_dataset, use_aggregate=True)
        engine.query(west_canvas, "red", window=TimeWindow.end(0.2))
        snap = obs.telemetry_snapshot()
        build = snap.histogram("service.aggregate.build_seconds")
        assert build is not None and build.count == 1
        assert snap.counter("query.count", strategy="aggregate") == 1.0
        # the three classes partition the occupied supernodes exactly
        per_class = {
            label: snap.counter("service.aggregate.supernodes", **{"class": label})
            for label in ("all_in", "inconclusive", "all_out")
        }
        occupied = int((engine.pyramid.node_counts > 0).sum())
        assert sum(per_class.values()) == occupied
        assert any(
            name == "service.aggregate.drilldown_segments"
            for name, _ in snap.counters
        )

    def test_warm_query_does_not_recount(self, registry, study_dataset, west_canvas):
        engine = CoordinatedBrushingEngine(study_dataset, use_aggregate=True)
        w = TimeWindow.end(0.2)
        engine.query(west_canvas, "red", window=w)
        cold = obs.telemetry_snapshot().counter_total("service.aggregate.supernodes")
        engine.query(west_canvas, "red", window=w)  # all stages cache-hit
        warm = obs.telemetry_snapshot().counter_total("service.aggregate.supernodes")
        assert warm == cold
