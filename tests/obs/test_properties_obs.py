"""Property-based tests (hypothesis) on histogram and snapshot algebra.

The telemetry plane's correctness rests on a small algebra:
bucketing conserves counts, snapshot merge is a commutative monoid
(so cross-thread/cross-process aggregation order never matters), and
quantile estimates are monotone.  These properties pin it.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    HistogramSnapshot,
    MetricsRegistry,
    Snapshot,
)

finite_floats = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(finite_floats, max_size=60)

bucket_bounds = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
    unique=True,
).map(lambda bs: tuple(sorted(bs)))


@st.composite
def histograms(draw, bounds=DEFAULT_BOUNDS):
    return HistogramSnapshot.of(draw(value_lists), bounds=bounds)


@st.composite
def snapshots(draw):
    names = st.sampled_from(["q.count", "q.seconds", "inflight"])
    labels = st.sampled_from([(), (("stage", "combine"),)])
    counters = draw(
        st.dictionaries(st.tuples(names, labels), finite_floats, max_size=4)
    )
    gauges = draw(st.dictionaries(st.tuples(names, labels), finite_floats, max_size=4))
    hists = draw(st.dictionaries(st.tuples(names, labels), histograms(), max_size=3))
    return Snapshot(counters=counters, gauges=gauges, histograms=hists)


# Bucketing ---------------------------------------------------------------

@given(value_lists, bucket_bounds)
def test_bucketing_conserves_count_and_sum(values, bounds):
    hist = HistogramSnapshot.of(values, bounds=bounds)
    assert sum(hist.counts) == hist.count == len(values)
    assert abs(hist.sum - sum(values)) < 1e-9 * max(1.0, abs(sum(values)))
    assert len(hist.counts) == len(bounds) + 1


@given(value_lists, bucket_bounds)
def test_bucketing_respects_le_semantics(values, bounds):
    hist = HistogramSnapshot.of(values, bounds=bounds)
    # cumulative count at bound b == number of observations <= b
    cum = 0
    for bound, count in zip(hist.bounds, hist.counts):
        cum += count
        assert cum == sum(1 for v in values if v <= bound)


# Merge algebra -----------------------------------------------------------
#
# Bucket counts merge by integer addition — exactly commutative and
# associative.  Sums are float additions, associative only up to
# rounding, so the algebra asserts counts bit-exact and sums approx.

def _hists_equal(a: HistogramSnapshot, b: HistogramSnapshot) -> bool:
    return (
        a.bounds == b.bounds
        and a.counts == b.counts
        and a.count == b.count
        and abs(a.sum - b.sum) < 1e-9 * max(1.0, abs(a.sum), abs(b.sum))
    )


def _snapshots_equal(a: Snapshot, b: Snapshot) -> bool:
    if set(a.counters) != set(b.counters) or set(a.gauges) != set(b.gauges):
        return False
    if set(a.histograms) != set(b.histograms):
        return False
    tol = 1e-9
    return (
        all(abs(a.counters[k] - b.counters[k]) < tol for k in a.counters)
        and all(abs(a.gauges[k] - b.gauges[k]) < tol for k in a.gauges)
        and all(_hists_equal(a.histograms[k], b.histograms[k]) for k in a.histograms)
    )


@given(histograms(), histograms())
def test_histogram_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(histograms(), histograms(), histograms())
def test_histogram_merge_associative(a, b, c):
    assert _hists_equal(a.merge(b).merge(c), a.merge(b.merge(c)))


@given(histograms())
def test_histogram_merge_identity(h):
    empty = HistogramSnapshot.empty(h.bounds)
    assert h.merge(empty) == h == empty.merge(h)


@given(value_lists, value_lists)
def test_histogram_merge_equals_joint_observation(xs, ys):
    merged = HistogramSnapshot.of(xs).merge(HistogramSnapshot.of(ys))
    joint = HistogramSnapshot.of(xs + ys)
    assert merged.counts == joint.counts
    assert merged.count == joint.count
    assert abs(merged.sum - joint.sum) < 1e-9 * max(1.0, abs(joint.sum))


@given(snapshots(), snapshots())
def test_snapshot_merge_conserves_counters(a, b):
    merged = a.merge(b)
    for name in {n for n, _ in {**a.counters, **b.counters}}:
        assert abs(
            merged.counter_total(name)
            - (a.counter_total(name) + b.counter_total(name))
        ) < 1e-9


@given(snapshots(), snapshots(), snapshots())
def test_snapshot_merge_associative(a, b, c):
    assert _snapshots_equal(a.merge(b).merge(c), a.merge(b.merge(c)))


@given(snapshots())
def test_snapshot_merge_identity(s):
    empty = Snapshot()
    assert s.merge(empty) == s == empty.merge(s)


# Quantiles ---------------------------------------------------------------

@given(histograms(), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
def test_quantile_monotone_in_q(h, q1, q2):
    lo, hi = sorted((q1, q2))
    assert h.quantile(lo) <= h.quantile(hi)


@given(value_lists.filter(bool), st.floats(0.0, 1.0))
def test_quantile_is_conservative_upper_bound(values, q):
    """The estimate never undershoots the true quantile (within the
    covered range): at least ceil(q*n) observations are <= estimate."""
    hist = HistogramSnapshot.of(values)
    estimate = hist.quantile(q)
    if max(values) <= DEFAULT_BOUNDS[-1]:  # inside the covered range
        n_below = sum(1 for v in values if v <= estimate)
        assert n_below >= q * len(values)


@given(value_lists, value_lists, st.floats(0.0, 1.0))
def test_quantile_monotone_under_merge_with_larger_data(xs, ys, q):
    """Merging in data that is >= everything seen cannot lower any
    quantile (and merging smaller data cannot raise it)."""
    base = HistogramSnapshot.of(xs)
    bigger = base.merge(HistogramSnapshot.of([v + 100.0 for v in ys]))
    smaller = base.merge(HistogramSnapshot.of([0.0 for _ in ys]))
    assert bigger.quantile(q) >= base.quantile(q) or base.count == 0
    assert smaller.quantile(q) <= base.quantile(q) or base.count == 0


# Registry round-trip -----------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["a", "b"]), finite_floats), max_size=40))
def test_registry_counters_match_direct_sum(increments):
    reg = MetricsRegistry()
    totals: dict[str, float] = {}
    for name, value in increments:
        reg.counter_add(name, value)
        totals[name] = totals.get(name, 0.0) + value
    snap = reg.snapshot()
    for name, total in totals.items():
        assert abs(snap.counter(name) - total) < 1e-9
