"""Golden-file tests pinning exporter output byte-for-byte.

Mirrors the reprolint fixture pattern: a deterministic snapshot is
rendered and compared against committed fixture files, so any change
to the exposition or JSONL schema shows up as a reviewable fixture
diff rather than a silent scrape break.

Regenerate (after a *deliberate* format change)::

    PYTHONPATH=src python tests/obs/test_export_golden.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.export import (
    JsonlExporter,
    render_jsonl_event,
    render_jsonl_snapshot,
    render_prometheus,
)
from repro.obs.metrics import HistogramSnapshot, Snapshot

FIXTURES = Path(__file__).parent / "fixtures"

GOLDEN_TS = 1700000000.25


def golden_snapshot() -> Snapshot:
    """A hand-built snapshot exercising every renderer feature:
    label-free and labelled series, escaping, integral and fractional
    values, and a histogram with overflow observations."""
    bounds = (0.001, 0.01, 0.1, 1.0)
    return Snapshot(
        counters={
            ("query.count", ()): 7.0,
            ("query.count", (("strategy", "indexed"),)): 5.0,
            ("query.count", (("strategy", "brute-force"),)): 2.0,
            ("resilience.faults", (("kind", 'shm "page"\nloss'),)): 1.0,
        },
        gauges={
            ("service.lock.wait_seconds", ()): 0.00025,
            ("pool.workers", (("mode", "pooled"),)): 4.0,
        },
        histograms={
            ("query.seconds", (("strategy", "indexed"),)): HistogramSnapshot(
                bounds=bounds, counts=(2, 1, 1, 0, 1), sum=3.6185, count=5
            ),
            ("query.stage.seconds", (("stage", "brush_hit"),)): HistogramSnapshot(
                bounds=bounds, counts=(3, 0, 0, 0, 0), sum=0.0021, count=3
            ),
        },
    )


def golden_events() -> list[dict]:
    return [
        {
            "type": "span",
            "name": "stage.brush_hit",
            "seconds": 0.0125,
            "error": None,
            "attrs": {"strategy": "indexed"},
        },
        {"type": "fault", "kind": "worker-crash", "scope": "tile", "action": "respawned"},
    ]


def render_all() -> tuple[str, str]:
    prom = render_prometheus(golden_snapshot())
    lines = [render_jsonl_snapshot(golden_snapshot(), ts=GOLDEN_TS)]
    lines += [render_jsonl_event(e) for e in golden_events()]
    return prom, "\n".join(lines) + "\n"


# Golden comparisons ------------------------------------------------------

def test_prometheus_exposition_matches_golden():
    prom, _ = render_all()
    assert prom == (FIXTURES / "telemetry_golden.prom").read_text()


def test_jsonl_log_matches_golden():
    _, jsonl = render_all()
    assert jsonl == (FIXTURES / "telemetry_golden.jsonl").read_text()


# Schema/format assertions (belt to the golden braces) --------------------

def test_prometheus_counter_names_get_total_suffix():
    prom, _ = render_all()
    assert '# TYPE repro_query_count_total counter' in prom
    assert 'repro_query_count_total{strategy="indexed"} 5' in prom
    assert 'repro_query_count_total 7' in prom  # label-free series


def test_prometheus_escapes_label_values():
    prom, _ = render_all()
    assert 'kind="shm \\"page\\"\\nloss"' in prom


def test_prometheus_histogram_buckets_are_cumulative_with_inf():
    prom, _ = render_all()
    series = [
        line
        for line in prom.splitlines()
        if line.startswith("repro_query_seconds_bucket")
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in series]
    assert counts == sorted(counts)  # cumulative → non-decreasing
    assert series[-1].startswith('repro_query_seconds_bucket{le="+Inf"')
    assert counts[-1] == 5
    assert "repro_query_seconds_sum" in prom
    assert "repro_query_seconds_count" in prom


def test_jsonl_lines_are_valid_sorted_compact_json():
    _, jsonl = render_all()
    for line in jsonl.splitlines():
        doc = json.loads(line)
        assert json.dumps(doc, sort_keys=True, separators=(",", ":")) == line
    first = json.loads(jsonl.splitlines()[0])
    assert first["type"] == "snapshot"
    assert first["ts"] == GOLDEN_TS
    hists = {h["name"]: h for h in first["histograms"]}
    h = hists["query.seconds"]
    assert sum(h["counts"]) == h["count"] == 5
    assert len(h["counts"]) == len(h["bounds"]) + 1


def test_empty_snapshot_renders_empty_exposition():
    assert render_prometheus(Snapshot()) == ""
    doc = json.loads(render_jsonl_snapshot(Snapshot(), ts=0.0))
    assert doc["counters"] == [] and doc["gauges"] == [] and doc["histograms"] == []


def test_jsonl_exporter_appends_to_disk(tmp_path):
    log = tmp_path / "events.jsonl"
    exporter = JsonlExporter(log)
    exporter.write_event({"type": "span", "name": "x"}, ts=1.0)
    exporter.write_snapshot(golden_snapshot(), ts=2.0)
    exporter.write_event({"type": "span", "name": "y"}, ts=3.0)
    lines = log.read_text().splitlines()
    assert len(lines) == 3  # appended, not rewritten
    assert json.loads(lines[0]) == {"type": "span", "name": "x", "ts": 1.0}
    assert json.loads(lines[1])["type"] == "snapshot"
    assert json.loads(lines[2])["name"] == "y"


if __name__ == "__main__":  # pragma: no cover - regen helper
    import sys

    if "--regen" in sys.argv:
        prom, jsonl = render_all()
        (FIXTURES / "telemetry_golden.prom").write_text(prom)
        (FIXTURES / "telemetry_golden.jsonl").write_text(jsonl)
        print("regenerated golden fixtures")
