"""Telemetry-test fixtures.

Telemetry is process-global state; every test here must leave the
process exactly as it found it (disabled, NULL registry) or unrelated
suites would start emitting.  The autouse guard enforces that.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _restore_registry():
    """Snapshot and restore the installed registry around every test."""
    previous = obs.get_registry()
    yield
    obs.set_registry(previous)


@pytest.fixture()
def registry() -> obs.MetricsRegistry:
    """A fresh live registry installed for the duration of one test."""
    return obs.enable()
