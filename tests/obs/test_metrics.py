"""MetricsRegistry unit tests: instruments, shards, lifecycle, guards."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    NULL_REGISTRY,
    HistogramSnapshot,
    MetricsRegistry,
    NullRegistry,
    Snapshot,
    labels_key,
)

# labels_key --------------------------------------------------------------

def test_labels_key_sorts_and_stringifies():
    assert labels_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
    assert labels_key(None) == ()
    assert labels_key({}) == ()


def test_labels_key_is_order_independent():
    assert labels_key({"a": 1, "b": 2}) == labels_key({"b": 2, "a": 1})


# Counters / gauges / histograms ------------------------------------------

def test_counter_add_accumulates():
    reg = MetricsRegistry()
    reg.counter_add("q.count")
    reg.counter_add("q.count", 2.0)
    reg.counter_add("q.count", 1.0, {"strategy": "indexed"})
    snap = reg.snapshot()
    assert snap.counter("q.count") == 3.0
    assert snap.counter("q.count", strategy="indexed") == 1.0
    assert snap.counter_total("q.count") == 4.0
    assert snap.counter("never.touched") == 0.0


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge_set("inflight", 3)
    reg.gauge_set("inflight", 1)
    snap = reg.snapshot()
    assert snap.gauge("inflight") == 1.0
    assert snap.gauge("missing") is None


def test_histogram_observe_buckets_and_sum():
    reg = MetricsRegistry()
    for v in (0.0001, 0.0002, 5.0, 100.0):
        reg.observe("lat", v)
    hist = reg.snapshot().histogram("lat")
    assert hist is not None
    assert hist.count == 4
    assert hist.sum == pytest.approx(105.0002)
    assert sum(hist.counts) == hist.count
    # 100.0 exceeds every default bound → overflow bucket
    assert hist.counts[-1] == 1
    assert hist.bounds == DEFAULT_BOUNDS


def test_observation_on_bucket_boundary_lands_in_that_bucket():
    # bisect_right: a value equal to a bound belongs to that bound's
    # bucket (Prometheus `le` semantics are inclusive)
    hist = HistogramSnapshot.of([0.001], bounds=(0.001, 0.01))
    assert hist.counts == (1, 0, 0)


def test_declare_histogram_fixes_custom_bounds():
    reg = MetricsRegistry()
    reg.declare_histogram("items", (10, 100, 1000))
    reg.observe("items", 50)
    hist = reg.snapshot().histogram("items")
    assert hist is not None
    assert hist.bounds == (10.0, 100.0, 1000.0)
    assert hist.counts == (0, 1, 0, 0)


def test_declare_histogram_rejects_empty_bounds():
    with pytest.raises(ValueError):
        MetricsRegistry().declare_histogram("x", ())


# Thread shards -----------------------------------------------------------

def test_each_thread_gets_its_own_shard_and_nothing_is_lost():
    reg = MetricsRegistry()
    n_threads, per_thread = 8, 500

    def work():
        for _ in range(per_thread):
            reg.counter_add("hits")
            reg.observe("lat", 0.001)

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = reg.snapshot()
    assert snap.counter("hits") == n_threads * per_thread
    hist = snap.histogram("lat")
    assert hist is not None and hist.count == n_threads * per_thread


def test_snapshot_is_immutable_view_not_live():
    reg = MetricsRegistry()
    reg.counter_add("c")
    snap = reg.snapshot()
    reg.counter_add("c")
    assert snap.counter("c") == 1.0
    assert reg.snapshot().counter("c") == 2.0


def test_reset_clears_all_instruments():
    reg = MetricsRegistry()
    reg.counter_add("c")
    reg.gauge_set("g", 1.0)
    reg.observe("h", 0.5)
    reg.reset()
    snap = reg.snapshot()
    assert snap.counters == {} and snap.gauges == {} and snap.histograms == {}
    # the shard survives a reset and keeps working
    reg.counter_add("c")
    assert reg.snapshot().counter("c") == 1.0


# Snapshot rendering helpers ----------------------------------------------

def test_as_dict_renders_labelled_keys_and_quantiles():
    reg = MetricsRegistry()
    reg.counter_add("q.count", 2, {"strategy": "indexed"})
    reg.gauge_set("inflight", 3)
    for v in (0.001, 0.002, 0.004):
        reg.observe("lat", v)
    doc = reg.snapshot().as_dict()
    assert doc["counters"] == {"q.count{strategy=indexed}": 2.0}
    assert doc["gauges"] == {"inflight": 3.0}
    hist = doc["histograms"]["lat"]
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(0.007)
    assert hist["p50"] <= hist["p95"]


# NullRegistry / facade lifecycle ----------------------------------------

def test_null_registry_is_inert():
    NULL_REGISTRY.counter_add("c")
    NULL_REGISTRY.gauge_set("g", 1.0)
    NULL_REGISTRY.observe("h", 0.5)
    NULL_REGISTRY.emit_event({"type": "x"})
    NULL_REGISTRY.declare_histogram("h", (1.0,))
    NULL_REGISTRY.reset()
    snap = NULL_REGISTRY.snapshot()
    assert snap.counters == {} and snap.gauges == {} and snap.histograms == {}
    assert NULL_REGISTRY.enabled is False
    assert isinstance(NULL_REGISTRY, NullRegistry)


def test_telemetry_is_disabled_by_default():
    assert obs.enabled() is False
    assert obs.get_registry() is NULL_REGISTRY


def test_enable_disable_roundtrip():
    reg = obs.enable()
    assert obs.enabled() is True
    assert obs.get_registry() is reg
    assert isinstance(reg, MetricsRegistry)
    obs.disable()
    assert obs.enabled() is False
    assert obs.get_registry() is NULL_REGISTRY


def test_facade_emits_reach_installed_registry(registry):
    obs.counter_add("q.count", 1, strategy="indexed")
    obs.gauge_set("inflight", 2)
    obs.observe("lat", 0.001, stage="brush_hit")
    snap = obs.telemetry_snapshot()
    assert snap.counter("q.count", strategy="indexed") == 1.0
    assert snap.gauge("inflight") == 2.0
    hist = snap.histogram("lat", stage="brush_hit")
    assert hist is not None and hist.count == 1


def test_facade_emits_are_noops_when_disabled():
    obs.disable()
    obs.counter_add("q.count")
    obs.observe("lat", 0.5)
    obs.gauge_set("g", 1.0)
    assert obs.telemetry_snapshot() == Snapshot()


def test_guarded_emits_never_raise():
    class BrokenRegistry:
        enabled = True
        event_sink = None

        def counter_add(self, *a, **k):
            raise RuntimeError("boom")

        gauge_set = observe = emit_event = counter_add

        def snapshot(self):
            return Snapshot()

    obs.set_registry(BrokenRegistry())  # type: ignore[arg-type]
    obs.counter_add("c")
    obs.gauge_set("g", 1.0)
    obs.observe("h", 0.5)
    obs.emit_event({"type": "x"})


def test_event_sink_failures_do_not_escape_facade(registry):
    class BrokenSink:
        def write_event(self, event, *, ts=None):
            raise OSError("disk full")

    registry.event_sink = BrokenSink()
    obs.emit_event({"type": "x"})  # must not raise
