"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dance"])


class TestInfo:
    def test_prints_wall_facts(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "6x3" in out
        assert "432 cells" in out
        assert "straddles=0" in out


class TestDataset:
    def test_npz_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        assert main(["dataset", str(out), "--n", "12", "--seed", "5"]) == 0
        from repro.trajectory import io

        ds = io.load_npz(out)
        assert len(ds) == 12

    def test_csv_format(self, tmp_path):
        out = tmp_path / "ds.csv"
        assert main(["dataset", str(out), "--n", "5", "--format", "csv"]) == 0
        assert out.exists()


class TestQuery:
    def test_supported_exit_code(self, capsys):
        rc = main(["query", "--n", "150", "--zone", "east", "--layout", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "supported" in out

    def test_refuted_exit_code(self, capsys):
        # on-trail ants have no directional preference -> refuted -> rc 1
        rc = main(["query", "--n", "150", "--zone", "on", "--side", "west",
                   "--layout", "1"])
        assert rc == 1


class TestStudy:
    def test_study_with_provenance(self, tmp_path, capsys):
        prov = tmp_path / "prov.json"
        rc = main(["study", "--n", "150", "--provenance", str(prov)])
        assert rc == 0
        records = json.loads(prov.read_text())
        assert len(records) == 5
        out = capsys.readouterr().out
        assert out.count("[supported") >= 4


class TestRender:
    def test_render_writes_ppm(self, tmp_path, capsys):
        out = tmp_path / "frame.ppm"
        rc = main(["render", str(out), "--n", "60", "--layout", "1",
                   "--scale", "0.2"])
        assert rc == 0
        from repro.render.image_io import read_ppm

        img = read_ppm(out)
        assert img.size > 0
