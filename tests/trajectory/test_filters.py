"""Tests for the metadata filter algebra and its parser."""

import pytest

from repro.trajectory.filters import (
    AndFilter,
    CaptureZoneFilter,
    DirectionFilter,
    DurationFilter,
    NotFilter,
    OrFilter,
    PredicateFilter,
    SeedFilter,
    TrueFilter,
    parse_filter,
)
from repro.trajectory.model import Trajectory, TrajectoryMeta

import numpy as np


def _traj(**meta_kwargs):
    n = max(2, int(meta_kwargs.pop("n", 2)))
    dur = meta_kwargs.pop("duration", 10.0)
    return Trajectory(
        np.zeros((n, 2)) + np.arange(n)[:, None],
        np.linspace(0.0, dur, n),
        TrajectoryMeta(**meta_kwargs),
    )


class TestPrimitives:
    def test_true_filter(self):
        assert TrueFilter()(_traj())

    def test_zone(self):
        f = CaptureZoneFilter("east")
        assert f(_traj(capture_zone="east"))
        assert not f(_traj(capture_zone="west"))

    def test_zone_validation(self):
        with pytest.raises(ValueError):
            CaptureZoneFilter("up")

    def test_direction(self):
        f = DirectionFilter("inbound")
        assert f(_traj(direction="inbound"))
        assert not f(_traj(direction="outbound"))

    def test_seed(self):
        assert SeedFilter()(_traj(carrying_seed=True))
        assert not SeedFilter()(_traj())
        assert SeedFilter(dropped=True)(_traj(carrying_seed=True, seed_dropped=True))
        assert not SeedFilter(dropped=True)(_traj(carrying_seed=True))

    def test_duration(self):
        f = DurationFilter(5.0, 15.0)
        assert f(_traj(duration=10.0))
        assert not f(_traj(duration=20.0))

    def test_predicate(self):
        f = PredicateFilter(lambda t: t.duration > 5, "long")
        assert f(_traj(duration=10))
        assert f.describe() == "long"


class TestComposition:
    def test_and(self):
        f = CaptureZoneFilter("east") & SeedFilter()
        assert f(_traj(capture_zone="east", carrying_seed=True))
        assert not f(_traj(capture_zone="east"))

    def test_or(self):
        f = CaptureZoneFilter("east") | CaptureZoneFilter("west")
        assert f(_traj(capture_zone="west"))
        assert not f(_traj(capture_zone="on"))

    def test_not(self):
        f = ~SeedFilter()
        assert f(_traj())
        assert not f(_traj(carrying_seed=True))

    def test_describe_nested(self):
        f = (CaptureZoneFilter("east") & ~SeedFilter()) | DirectionFilter("inbound")
        assert "zone=east" in f.describe()
        assert "!seed" in f.describe()


class TestParser:
    def test_atoms(self):
        assert isinstance(parse_filter("*"), TrueFilter)
        assert isinstance(parse_filter("seed"), SeedFilter)
        assert isinstance(parse_filter("zone=north"), CaptureZoneFilter)
        assert isinstance(parse_filter("direction=inbound"), DirectionFilter)

    def test_negation(self):
        f = parse_filter("!seed")
        assert isinstance(f, NotFilter)
        assert f(_traj())

    def test_double_negation(self):
        f = parse_filter("!!seed")
        assert f(_traj(carrying_seed=True))

    def test_and_or_precedence(self):
        f = parse_filter("zone=east & seed | zone=west")
        # west matches regardless of seed (| binds looser than &)
        assert f(_traj(capture_zone="west"))
        assert not f(_traj(capture_zone="east"))
        assert f(_traj(capture_zone="east", carrying_seed=True))

    def test_duration_syntax(self):
        f = parse_filter("duration[5,15]")
        assert isinstance(f, DurationFilter)
        assert f(_traj(duration=10.0))

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            parse_filter("duration(5,15)")

    def test_unknown_atom(self):
        with pytest.raises(ValueError, match="unrecognized"):
            parse_filter("color=red")

    def test_semantics_match_manual(self, study_dataset):
        parsed = parse_filter("zone=east & direction=inbound")
        manual = AndFilter(CaptureZoneFilter("east"), DirectionFilter("inbound"))
        for t in study_dataset:
            assert parsed(t) == manual(t)
