"""Tests for Douglas-Peucker simplification and low-pass smoothing."""

import numpy as np
import pytest

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory
from repro.trajectory.simplify import (
    douglas_peucker,
    lowpass_smooth,
    simplification_error,
    simplify_dataset,
)


def _zigzag(n=101, amp=0.05):
    x = np.linspace(0.0, 1.0, n)
    y = amp * np.sin(20 * np.pi * x)
    return Trajectory(np.stack([x, y], axis=1), np.linspace(0, 10, n))


class TestDouglasPeucker:
    def test_endpoints_kept(self):
        traj = _zigzag()
        s = douglas_peucker(traj, 0.01)
        np.testing.assert_array_equal(s.positions[0], traj.positions[0])
        np.testing.assert_array_equal(s.positions[-1], traj.positions[-1])

    def test_error_bounded_by_eps(self):
        traj = _zigzag()
        for eps in (0.005, 0.02, 0.08):
            s = douglas_peucker(traj, eps)
            assert simplification_error(traj, s) <= eps + 1e-9

    def test_larger_eps_fewer_points(self):
        traj = _zigzag()
        n = [douglas_peucker(traj, e).n_samples for e in (0.001, 0.01, 0.1)]
        assert n[0] >= n[1] >= n[2]

    def test_straight_line_collapses(self, simple_traj):
        s = douglas_peucker(simple_traj, 1e-6)
        assert s.n_samples == 2

    def test_eps_zero_identity(self, simple_traj):
        assert douglas_peucker(simple_traj, 0.0) is simple_traj

    def test_negative_eps_rejected(self, simple_traj):
        with pytest.raises(ValueError):
            douglas_peucker(simple_traj, -0.1)

    def test_times_follow_kept_points(self):
        traj = _zigzag()
        s = douglas_peucker(traj, 0.02)
        # every kept (position, time) pair exists in the original
        for p, t in zip(s.positions, s.times):
            idx = np.flatnonzero(np.isclose(traj.times, t))
            assert len(idx) == 1
            np.testing.assert_array_equal(traj.positions[idx[0]], p)


class TestLowpass:
    def test_endpoints_pinned(self):
        traj = _zigzag()
        s = lowpass_smooth(traj, 5)
        np.testing.assert_array_equal(s.positions[0], traj.positions[0])
        np.testing.assert_array_equal(s.positions[-1], traj.positions[-1])

    def test_reduces_wiggle(self):
        traj = _zigzag()
        s = lowpass_smooth(traj, 9)
        assert np.abs(s.positions[:, 1]).max() < np.abs(traj.positions[:, 1]).max()

    def test_window_one_identity(self, simple_traj):
        assert lowpass_smooth(simple_traj, 1) is simple_traj

    def test_even_window_rejected(self, simple_traj):
        with pytest.raises(ValueError, match="odd"):
            lowpass_smooth(simple_traj, 4)

    def test_sample_count_preserved(self):
        traj = _zigzag()
        assert lowpass_smooth(traj, 7).n_samples == traj.n_samples

    def test_matches_naive_moving_average(self):
        traj = _zigzag(31)
        s = lowpass_smooth(traj, 5)
        # check one interior sample against a hand-computed window mean
        i = 10
        expected = traj.positions[i - 2 : i + 3].mean(axis=0)
        np.testing.assert_allclose(s.positions[i], expected, atol=1e-12)


class TestSimplifyDataset:
    def test_applies_to_all(self, study_dataset):
        sub = TrajectoryDataset(list(study_dataset)[:5], name="sub")
        out = simplify_dataset(sub, 0.01)
        assert len(out) == 5
        assert out.total_samples < sub.total_samples

    def test_with_smoothing(self, study_dataset):
        sub = TrajectoryDataset(list(study_dataset)[:3], name="sub")
        out = simplify_dataset(sub, 0.005, smooth_window=5)
        assert len(out) == 3
