"""Tests for tracking-noise injection and query robustness."""

import numpy as np
import pytest

from repro.trajectory.noise import add_jitter, degrade_dataset, drop_samples, inject_gaps
from repro.util.rng import derive_rng


class TestJitter:
    def test_zero_sigma_identity(self, simple_traj):
        assert add_jitter(simple_traj, 0.0, derive_rng(0)) is simple_traj

    def test_negative_rejected(self, simple_traj):
        with pytest.raises(ValueError):
            add_jitter(simple_traj, -0.1, derive_rng(0))

    def test_noise_scale(self, study_dataset):
        traj = study_dataset[0]
        noisy = add_jitter(traj, 0.003, derive_rng(1))
        diff = noisy.positions - traj.positions
        assert 0.001 < diff.std() < 0.006
        np.testing.assert_array_equal(noisy.times, traj.times)

    def test_metadata_preserved(self, simple_traj):
        noisy = add_jitter(simple_traj, 0.01, derive_rng(2))
        assert noisy.meta == simple_traj.meta
        assert noisy.traj_id == simple_traj.traj_id


class TestDropSamples:
    def test_endpoints_kept(self, study_dataset):
        traj = study_dataset[0]
        dropped = drop_samples(traj, 0.5, derive_rng(3))
        np.testing.assert_array_equal(dropped.positions[0], traj.positions[0])
        np.testing.assert_array_equal(dropped.positions[-1], traj.positions[-1])

    def test_fraction_roughly_respected(self, study_dataset):
        traj = study_dataset[1]
        dropped = drop_samples(traj, 0.3, derive_rng(4))
        ratio = dropped.n_samples / traj.n_samples
        assert 0.6 < ratio < 0.8

    def test_zero_identity(self, simple_traj):
        assert drop_samples(simple_traj, 0.0, derive_rng(0)) is simple_traj

    def test_validation(self, simple_traj):
        with pytest.raises(ValueError):
            drop_samples(simple_traj, 1.0, derive_rng(0))

    def test_times_still_monotone(self, study_dataset):
        dropped = drop_samples(study_dataset[2], 0.4, derive_rng(5))
        assert np.all(np.diff(dropped.times) > 0)


class TestGaps:
    def test_gap_removes_contiguous_run(self, study_dataset):
        traj = study_dataset[3]
        gapped = inject_gaps(traj, 1, 0.2, derive_rng(6))
        assert gapped.n_samples < traj.n_samples
        # a large dt appears where the gap was cut
        assert np.diff(gapped.times).max() > np.diff(traj.times).max() * 5

    def test_zero_gaps_identity(self, simple_traj):
        assert inject_gaps(simple_traj, 0, 0.1, derive_rng(0)) is simple_traj

    def test_validation(self, simple_traj):
        with pytest.raises(ValueError):
            inject_gaps(simple_traj, -1, 0.1, derive_rng(0))
        with pytest.raises(ValueError):
            inject_gaps(simple_traj, 1, 0.7, derive_rng(0))


class TestQueryRobustness:
    def test_fig5_verdict_survives_degradation(self, full_dataset, arena):
        """The study's conclusion is robust to realistic tracking noise:
        the degraded dataset yields the same Fig. 5 verdict with nearly
        the same support."""
        from repro.core.brush import stroke_from_rect
        from repro.core.canvas import BrushCanvas
        from repro.core.engine import CoordinatedBrushingEngine
        from repro.core.temporal import TimeWindow

        degraded = degrade_dataset(full_dataset, derive_rng(7))
        canvas = BrushCanvas()
        r = arena.radius
        canvas.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
        window = TimeWindow.end(0.15)

        def east_support(ds):
            res = CoordinatedBrushingEngine(ds).query(canvas, "red", window=window)
            east = [i for i, t in enumerate(ds) if t.meta.capture_zone == "east"]
            return float(res.traj_mask[east].mean())

        clean = east_support(full_dataset)
        noisy = east_support(degraded)
        assert clean > 0.5 and noisy > 0.5           # same verdict
        assert abs(clean - noisy) < 0.15              # similar support

    def test_degrade_preserves_cardinality(self, study_dataset):
        degraded = degrade_dataset(study_dataset, derive_rng(8))
        assert len(degraded) == len(study_dataset)
        assert degraded.total_samples < study_dataset.total_samples
