"""Tests for dataset I/O round-trips."""

import numpy as np
import pytest

from repro.trajectory import io
from repro.trajectory.dataset import TrajectoryDataset


def _assert_datasets_equal(a: TrajectoryDataset, b: TrajectoryDataset, atol=0.0):
    assert len(a) == len(b)
    for ta, tb in zip(a, b):
        assert ta.traj_id == tb.traj_id
        np.testing.assert_allclose(ta.positions, tb.positions, atol=atol)
        np.testing.assert_allclose(ta.times, tb.times, atol=atol)
        assert ta.meta.capture_zone == tb.meta.capture_zone
        assert ta.meta.direction == tb.meta.direction
        assert ta.meta.carrying_seed == tb.meta.carrying_seed
        assert ta.meta.seed_dropped == tb.meta.seed_dropped


@pytest.fixture()
def small_ds(study_dataset):
    return study_dataset[:8]


class TestNpz:
    def test_roundtrip_exact(self, small_ds, tmp_path):
        path = tmp_path / "ds.npz"
        io.save_npz(small_ds, path)
        loaded = io.load_npz(path)
        _assert_datasets_equal(small_ds, loaded)
        assert loaded.name == small_ds.name

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.npz"
        io.save_npz(TrajectoryDataset(name="none"), path)
        loaded = io.load_npz(path)
        assert len(loaded) == 0


class TestCsv:
    def test_roundtrip(self, small_ds, tmp_path):
        path = tmp_path / "ds.csv"
        io.save_csv(small_ds, path)
        loaded = io.load_csv(path)
        _assert_datasets_equal(small_ds, loaded, atol=1e-7)

    def test_sidecar_written(self, small_ds, tmp_path):
        path = tmp_path / "ds.csv"
        io.save_csv(small_ds, path)
        assert (tmp_path / "ds.csv.meta.json").exists()

    def test_load_without_sidecar_defaults_meta(self, small_ds, tmp_path):
        path = tmp_path / "ds.csv"
        io.save_csv(small_ds, path)
        (tmp_path / "ds.csv.meta.json").unlink()
        loaded = io.load_csv(path)
        assert len(loaded) == len(small_ds)
        assert loaded[0].meta.capture_zone == "on"  # default

    def test_header_present(self, small_ds, tmp_path):
        path = tmp_path / "ds.csv"
        io.save_csv(small_ds, path)
        assert path.read_text().splitlines()[0] == "traj_id,x,y,t"


class TestJson:
    def test_roundtrip(self, small_ds, tmp_path):
        path = tmp_path / "ds.json"
        io.save_json(small_ds, path)
        loaded = io.load_json(path)
        _assert_datasets_equal(small_ds, loaded, atol=1e-12)


class TestCrossFormat:
    def test_npz_equals_json(self, small_ds, tmp_path):
        io.save_npz(small_ds, tmp_path / "a.npz")
        io.save_json(small_ds, tmp_path / "a.json")
        _assert_datasets_equal(
            io.load_npz(tmp_path / "a.npz"),
            io.load_json(tmp_path / "a.json"),
            atol=1e-12,
        )


def _write_csv(tmp_path, body):
    path = tmp_path / "bad.csv"
    path.write_text("traj_id,x,y,t\n" + body)
    return path


class TestCsvHardening:
    """Malformed input raises an informative DatasetFormatError (or, in
    skip mode, quarantines) instead of a bare numpy/ValueError."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(io.DatasetFormatError, match="does not exist"):
            io.load_csv(tmp_path / "nope.csv")

    def test_wrong_field_count_names_row(self, tmp_path):
        path = _write_csv(tmp_path, "0,1.0,2.0,0.0\n0,1.0,2.0\n")
        with pytest.raises(io.DatasetFormatError) as ei:
            io.load_csv(path)
        assert ei.value.row == 3
        assert "expected 4" in ei.value.reason
        assert str(path) in str(ei.value)

    def test_unparseable_value_names_row_and_field(self, tmp_path):
        path = _write_csv(tmp_path, "0,1.0,oops,0.0\n0,1.0,2.0,1.0\n")
        with pytest.raises(io.DatasetFormatError) as ei:
            io.load_csv(path)
        assert (ei.value.row, ei.value.field) == (2, "y")

    def test_nan_rejected(self, tmp_path):
        path = _write_csv(tmp_path, "0,1.0,nan,0.0\n0,1.0,2.0,1.0\n")
        with pytest.raises(io.DatasetFormatError, match="non-finite"):
            io.load_csv(path)

    def test_non_monotonic_time(self, tmp_path):
        path = _write_csv(tmp_path, "0,0.0,0.0,0.0\n0,1.0,0.0,2.0\n0,2.0,0.0,1.0\n")
        with pytest.raises(io.DatasetFormatError) as ei:
            io.load_csv(path)
        assert ei.value.field == "t"
        assert "non-monotonic" in ei.value.reason

    def test_skip_mode_quarantines_bad_trajectory(self, tmp_path):
        body = (
            "0,0.0,0.0,0.0\n0,1.0,0.0,1.0\n"       # good trajectory 0
            "1,0.0,bad,0.0\n1,1.0,0.0,1.0\n"        # bad y poisons trajectory 1
            "2,0.0,0.0,0.0\n2,1.0,0.0,1.0\n"        # good trajectory 2
        )
        loaded = io.load_csv(_write_csv(tmp_path, body), on_error="skip")
        assert [t.traj_id for t in loaded] == [0, 2]
        report = loaded.load_report
        assert not report.clean
        assert report.n_quarantined == 1
        assert 1 in report.quarantined
        assert "quarantined" in report.summary()

    def test_skip_mode_unattributable_row(self, tmp_path):
        body = "0,0.0,0.0,0.0\n0,1.0,0.0,1.0\nnope,1.0,1.0,1.0\n"
        loaded = io.load_csv(_write_csv(tmp_path, body), on_error="skip")
        assert len(loaded) == 1
        [(row_no, reason)] = loaded.load_report.skipped_rows
        assert row_no == 4
        assert "traj_id" in reason

    def test_too_few_samples(self, tmp_path):
        path = _write_csv(tmp_path, "0,0.0,0.0,0.0\n")
        with pytest.raises(io.DatasetFormatError, match="at least 2"):
            io.load_csv(path)
        loaded = io.load_csv(path, on_error="skip")
        assert len(loaded) == 0 and loaded.load_report.n_quarantined == 1

    def test_clean_load_report(self, small_ds, tmp_path):
        path = tmp_path / "ds.csv"
        io.save_csv(small_ds, path)
        loaded = io.load_csv(path, on_error="skip")
        assert loaded.load_report.clean
        assert "clean" in loaded.load_report.summary()

    def test_invalid_on_error(self, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            io.load_csv(tmp_path / "x.csv", on_error="ignore")


class TestJsonHardening:
    def test_unreadable_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(io.DatasetFormatError, match="unreadable"):
            io.load_json(path)

    def test_missing_trajectories_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x"}')
        with pytest.raises(io.DatasetFormatError, match="trajectories"):
            io.load_json(path)

    def test_record_missing_field(self, small_ds, tmp_path):
        import json as _json

        path = tmp_path / "ds.json"
        io.save_json(small_ds, path)
        doc = _json.loads(path.read_text())
        del doc["trajectories"][1]["times"]
        path.write_text(_json.dumps(doc))
        with pytest.raises(io.DatasetFormatError) as ei:
            io.load_json(path)
        assert ei.value.row == 2
        assert ei.value.field == "times"
        loaded = io.load_json(path, on_error="skip")
        assert len(loaded) == len(small_ds) - 1
        assert loaded.load_report.n_quarantined == 1


class TestNpzHardening:
    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(io.DatasetFormatError, match="unreadable npz"):
            io.load_npz(path)

    def test_missing_array(self, small_ds, tmp_path):
        path = tmp_path / "ds.npz"
        io.save_npz(small_ds, path)
        import zipfile

        trimmed = tmp_path / "trimmed.npz"
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(trimmed, "w") as dst:
            for name in src.namelist():
                if name != "times.npy":
                    dst.writestr(name, src.read(name))
        with pytest.raises(io.DatasetFormatError, match="missing array"):
            io.load_npz(trimmed)
