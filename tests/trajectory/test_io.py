"""Tests for dataset I/O round-trips."""

import numpy as np
import pytest

from repro.trajectory import io
from repro.trajectory.dataset import TrajectoryDataset


def _assert_datasets_equal(a: TrajectoryDataset, b: TrajectoryDataset, atol=0.0):
    assert len(a) == len(b)
    for ta, tb in zip(a, b):
        assert ta.traj_id == tb.traj_id
        np.testing.assert_allclose(ta.positions, tb.positions, atol=atol)
        np.testing.assert_allclose(ta.times, tb.times, atol=atol)
        assert ta.meta.capture_zone == tb.meta.capture_zone
        assert ta.meta.direction == tb.meta.direction
        assert ta.meta.carrying_seed == tb.meta.carrying_seed
        assert ta.meta.seed_dropped == tb.meta.seed_dropped


@pytest.fixture()
def small_ds(study_dataset):
    return study_dataset[:8]


class TestNpz:
    def test_roundtrip_exact(self, small_ds, tmp_path):
        path = tmp_path / "ds.npz"
        io.save_npz(small_ds, path)
        loaded = io.load_npz(path)
        _assert_datasets_equal(small_ds, loaded)
        assert loaded.name == small_ds.name

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.npz"
        io.save_npz(TrajectoryDataset(name="none"), path)
        loaded = io.load_npz(path)
        assert len(loaded) == 0


class TestCsv:
    def test_roundtrip(self, small_ds, tmp_path):
        path = tmp_path / "ds.csv"
        io.save_csv(small_ds, path)
        loaded = io.load_csv(path)
        _assert_datasets_equal(small_ds, loaded, atol=1e-7)

    def test_sidecar_written(self, small_ds, tmp_path):
        path = tmp_path / "ds.csv"
        io.save_csv(small_ds, path)
        assert (tmp_path / "ds.csv.meta.json").exists()

    def test_load_without_sidecar_defaults_meta(self, small_ds, tmp_path):
        path = tmp_path / "ds.csv"
        io.save_csv(small_ds, path)
        (tmp_path / "ds.csv.meta.json").unlink()
        loaded = io.load_csv(path)
        assert len(loaded) == len(small_ds)
        assert loaded[0].meta.capture_zone == "on"  # default

    def test_header_present(self, small_ds, tmp_path):
        path = tmp_path / "ds.csv"
        io.save_csv(small_ds, path)
        assert path.read_text().splitlines()[0] == "traj_id,x,y,t"


class TestJson:
    def test_roundtrip(self, small_ds, tmp_path):
        path = tmp_path / "ds.json"
        io.save_json(small_ds, path)
        loaded = io.load_json(path)
        _assert_datasets_equal(small_ds, loaded, atol=1e-12)


class TestCrossFormat:
    def test_npz_equals_json(self, small_ds, tmp_path):
        io.save_npz(small_ds, tmp_path / "a.npz")
        io.save_json(small_ds, tmp_path / "a.json")
        _assert_datasets_equal(
            io.load_npz(tmp_path / "a.npz"),
            io.load_json(tmp_path / "a.json"),
            atol=1e-12,
        )
