"""Tests for the Trajectory data model."""

import numpy as np
import pytest

from repro.trajectory.model import Trajectory, TrajectoryMeta


class TestTrajectoryMeta:
    def test_defaults(self):
        m = TrajectoryMeta()
        assert m.capture_zone == "on"
        assert not m.carrying_seed

    def test_invalid_zone(self):
        with pytest.raises(ValueError, match="capture_zone"):
            TrajectoryMeta(capture_zone="northeast")

    def test_invalid_direction(self):
        with pytest.raises(ValueError, match="direction"):
            TrajectoryMeta(direction="sideways")

    def test_seed_dropped_requires_carrying(self):
        with pytest.raises(ValueError, match="seed_dropped"):
            TrajectoryMeta(carrying_seed=False, seed_dropped=True)

    def test_dict_roundtrip(self):
        m = TrajectoryMeta(
            capture_zone="east",
            direction="inbound",
            carrying_seed=True,
            seed_dropped=True,
            extra={"note": "x"},
        )
        assert TrajectoryMeta.from_dict(m.to_dict()) == m


class TestTrajectoryConstruction:
    def test_basic(self, simple_traj):
        assert simple_traj.n_samples == 11
        assert simple_traj.duration == pytest.approx(10.0)
        np.testing.assert_array_equal(simple_traj.start, [0, 0])
        np.testing.assert_array_equal(simple_traj.end, [1, 0])

    def test_arrays_read_only(self, simple_traj):
        with pytest.raises(ValueError):
            simple_traj.positions[0, 0] = 99.0
        with pytest.raises(ValueError):
            simple_traj.times[0] = -1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            Trajectory(np.zeros((3, 2)), np.arange(4.0))

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="at least 2"):
            Trajectory(np.zeros((1, 2)), np.zeros(1))

    def test_non_monotone_times(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Trajectory(np.zeros((3, 2)), np.array([0.0, 2.0, 1.0]))

    def test_nan_positions_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Trajectory(np.full((3, 2), np.nan), np.arange(3.0))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((3, 3)), np.arange(3.0))

    def test_len(self, simple_traj):
        assert len(simple_traj) == 11

    def test_repr_mentions_zone(self, simple_traj):
        assert "east" in repr(simple_traj)


class TestTrajectoryViews:
    def test_segments_are_views(self, simple_traj):
        a, b = simple_traj.segments()
        assert a.base is simple_traj.positions or a.base is not None
        assert len(a) == len(b) == 10
        np.testing.assert_array_equal(b[0], simple_traj.positions[1])

    def test_segment_times(self, simple_traj):
        t0, t1 = simple_traj.segment_times()
        assert np.all(t1 > t0)

    def test_spacetime_shape_and_content(self, simple_traj):
        st = simple_traj.spacetime()
        assert st.shape == (11, 3)
        np.testing.assert_array_equal(st[:, 2], simple_traj.times)

    def test_bounding_box(self, l_shaped_traj):
        lo, hi = l_shaped_traj.bounding_box()
        np.testing.assert_allclose(lo, [0, 0])
        np.testing.assert_allclose(hi, [1, 1])


class TestTimeSlice:
    def test_window(self, simple_traj):
        sub = simple_traj.time_slice(2.0, 5.0)
        assert sub is not None
        assert sub.times[0] >= 2.0 and sub.times[-1] <= 5.0
        assert sub.traj_id == simple_traj.traj_id

    def test_too_narrow_returns_none(self, simple_traj):
        assert simple_traj.time_slice(2.1, 2.2) is None

    def test_full_window_identity(self, simple_traj):
        sub = simple_traj.time_slice(-1.0, 100.0)
        assert sub.n_samples == simple_traj.n_samples


class TestWithMeta:
    def test_updates_field(self, simple_traj):
        t2 = simple_traj.with_meta(capture_zone="west")
        assert t2.meta.capture_zone == "west"
        assert simple_traj.meta.capture_zone == "east"  # original untouched

    def test_iter_points(self, simple_traj):
        pts = list(simple_traj.iter_points())
        assert len(pts) == 11
        assert pts[0] == (0.0, 0.0, 0.0)
