"""Tests for TrajectoryDataset and its packed segment view."""

import numpy as np
import pytest

from repro.trajectory.dataset import PackedSegments, TrajectoryDataset
from repro.trajectory.model import Trajectory, TrajectoryMeta


class TestContainer:
    def test_append_assigns_ids(self, tiny_dataset):
        assert [t.traj_id for t in tiny_dataset] == [0, 1]

    def test_explicit_id_preserved(self):
        ds = TrajectoryDataset()
        t = Trajectory(np.zeros((2, 2)) + [[0, 0], [1, 1]], np.array([0.0, 1.0]), traj_id=42)
        ds.append(t)
        assert ds[0].traj_id == 42

    def test_type_check(self):
        ds = TrajectoryDataset()
        with pytest.raises(TypeError):
            ds.append("not a trajectory")

    def test_slice_returns_dataset(self, study_dataset):
        sub = study_dataset[10:20]
        assert isinstance(sub, TrajectoryDataset)
        assert len(sub) == 10
        assert sub[0].traj_id == study_dataset[10].traj_id

    def test_iteration(self, tiny_dataset):
        assert sum(1 for _ in tiny_dataset) == 2


class TestSelection:
    def test_select_preserves_ids(self, study_dataset):
        east = study_dataset.select(lambda t: t.meta.capture_zone == "east")
        for t in east:
            assert t.meta.capture_zone == "east"
            assert study_dataset[t.traj_id].traj_id == t.traj_id

    def test_by_zone_matches_select(self, study_dataset):
        assert len(study_dataset.by_zone("west")) == len(
            study_dataset.select(lambda t: t.meta.capture_zone == "west")
        )

    def test_indices_where(self, study_dataset):
        idx = study_dataset.indices_where(lambda t: t.meta.carrying_seed)
        for i in idx:
            assert study_dataset[int(i)].meta.carrying_seed

    def test_zones_histogram_sums(self, study_dataset):
        assert sum(study_dataset.zones().values()) == len(study_dataset)


class TestAggregates:
    def test_totals(self, tiny_dataset):
        assert tiny_dataset.total_samples == 11 + 21
        assert tiny_dataset.total_segments == 10 + 20

    def test_duration_range(self, tiny_dataset):
        lo, hi = tiny_dataset.duration_range()
        assert lo == pytest.approx(10.0)
        assert hi == pytest.approx(20.0)

    def test_empty_dataset_ranges(self):
        ds = TrajectoryDataset()
        assert ds.duration_range() == (0.0, 0.0)
        assert ds.time_extent() == (0.0, 0.0)


class TestPackedSegments:
    def test_shapes(self, tiny_dataset):
        p = tiny_dataset.packed()
        assert p.n_segments == 30
        assert p.a.shape == (30, 2)
        assert p.owner.shape == (30,)
        assert p.offsets.tolist() == [0, 10, 30]

    def test_rows_of(self, tiny_dataset):
        p = tiny_dataset.packed()
        rows = p.rows_of(1)
        assert rows == slice(10, 30)
        np.testing.assert_array_equal(p.owner[rows], 1)

    def test_packed_matches_trajectories(self, tiny_dataset):
        p = tiny_dataset.packed()
        for i, traj in enumerate(tiny_dataset):
            rows = p.rows_of(i)
            a, b = traj.segments()
            np.testing.assert_array_equal(p.a[rows], a)
            np.testing.assert_array_equal(p.b[rows], b)
            t0, t1 = traj.segment_times()
            np.testing.assert_array_equal(p.t0[rows], t0)
            np.testing.assert_array_equal(p.t1[rows], t1)

    def test_cache_invalidated_on_append(self, simple_traj):
        ds = TrajectoryDataset()
        ds.append(Trajectory(simple_traj.positions, simple_traj.times, simple_traj.meta, -1))
        p1 = ds.packed()
        ds.append(Trajectory(simple_traj.positions, simple_traj.times, simple_traj.meta, -1))
        p2 = ds.packed()
        assert p2 is not p1
        assert p2.n_segments == 2 * p1.n_segments

    def test_cache_reused_without_mutation(self, tiny_dataset):
        assert tiny_dataset.packed() is tiny_dataset.packed()

    def test_packed_read_only(self, tiny_dataset):
        p = tiny_dataset.packed()
        with pytest.raises(ValueError):
            p.a[0, 0] = 1.0
