"""Tests for movement metrics."""

import numpy as np
import pytest

from repro.trajectory.metrics import (
    dwell_time_in_disc,
    heading_angles,
    mean_speed,
    net_displacement,
    sinuosity,
    straightness_index,
    time_inside_mask,
    total_path_length,
    turning_angles,
)
from repro.trajectory.model import Trajectory


class TestBasicMetrics:
    def test_straight_walk(self, simple_traj):
        assert total_path_length(simple_traj) == pytest.approx(1.0)
        assert net_displacement(simple_traj) == pytest.approx(1.0)
        assert straightness_index(simple_traj) == pytest.approx(1.0)
        assert mean_speed(simple_traj) == pytest.approx(0.1)

    def test_l_shape(self, l_shaped_traj):
        assert total_path_length(l_shaped_traj) == pytest.approx(2.0)
        assert net_displacement(l_shaped_traj) == pytest.approx(np.sqrt(2))
        assert straightness_index(l_shaped_traj) == pytest.approx(np.sqrt(2) / 2)

    def test_headings(self, l_shaped_traj):
        h = heading_angles(l_shaped_traj)
        assert h[0] == pytest.approx(0.0)          # east
        assert h[-1] == pytest.approx(np.pi / 2)   # north

    def test_turning_angles_straight_is_zero(self, simple_traj):
        np.testing.assert_allclose(turning_angles(simple_traj), 0.0, atol=1e-12)

    def test_turning_angle_wraps(self):
        # heading 170deg then -170deg: turn is +20deg, not -340
        pos = np.array([[0.0, 0.0], [-0.9848, 0.1736], [-1.9696, 0.0]])
        t = np.array([0.0, 1.0, 2.0])
        traj = Trajectory(pos, t)
        turns = turning_angles(traj)
        assert abs(turns[0]) < np.deg2rad(25)


class TestSinuosity:
    def test_straight_near_zero_turns(self, simple_traj):
        # straight path: mean cos(turn)=1 -> sinuosity ~ 0
        assert sinuosity(simple_traj) == pytest.approx(0.0, abs=1e-3)

    def test_windy_exceeds_straight(self, study_dataset):
        from repro.trajectory.metrics import sinuosity as s

        on = [s(t) for t in study_dataset.by_zone("on")]
        # on-trail ants are windy by construction
        assert np.mean(on) > 1.0

    def test_too_short_path(self):
        traj = Trajectory(np.array([[0.0, 0.0], [1.0, 0.0]]), np.array([0.0, 1.0]))
        assert sinuosity(traj) == 0.0


class TestDwell:
    def test_inside_mask_full(self, simple_traj):
        inside = np.ones(11, dtype=bool)
        assert time_inside_mask(simple_traj, inside) == pytest.approx(10.0)

    def test_inside_mask_boundary_half_weight(self, simple_traj):
        inside = np.zeros(11, dtype=bool)
        inside[:6] = True  # 5 full segments + 1 boundary segment
        assert time_inside_mask(simple_traj, inside) == pytest.approx(5.0 + 0.5)

    def test_mask_shape_checked(self, simple_traj):
        with pytest.raises(ValueError):
            time_inside_mask(simple_traj, np.ones(5, dtype=bool))

    def test_dwell_in_disc(self, simple_traj):
        # walk passes through disc of radius 0.25 centered at 0.5:
        # samples at 0.3..0.7 inside (5 samples)
        dwell = dwell_time_in_disc(simple_traj, (0.5, 0.0), 0.25)
        assert 3.0 < dwell < 6.0

    def test_dwell_outside_is_zero(self, simple_traj):
        assert dwell_time_in_disc(simple_traj, (0.0, 5.0), 0.1) == 0.0


class TestDegenerateDurations:
    def test_zero_length_path_straightness(self):
        pos = np.zeros((3, 2))
        traj = Trajectory(pos, np.array([0.0, 1.0, 2.0]))
        assert straightness_index(traj) == 0.0
        assert mean_speed(traj) == 0.0
