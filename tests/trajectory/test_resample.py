"""Tests for trajectory resampling."""

import numpy as np
import pytest

from repro.trajectory.resample import resample_by_count, resample_uniform_dt


class TestUniformDt:
    def test_endpoints_exact(self, l_shaped_traj):
        rs = resample_uniform_dt(l_shaped_traj, 0.3)
        np.testing.assert_allclose(rs.positions[0], l_shaped_traj.positions[0])
        np.testing.assert_allclose(rs.positions[-1], l_shaped_traj.positions[-1])
        assert rs.times[-1] == pytest.approx(l_shaped_traj.times[-1])

    def test_uniform_steps(self, simple_traj):
        rs = resample_uniform_dt(simple_traj, 0.5)
        dt = np.diff(rs.times)
        np.testing.assert_allclose(dt[:-1], 0.5)

    def test_exact_multiple_duration(self, simple_traj):
        rs = resample_uniform_dt(simple_traj, 2.0)
        assert rs.n_samples == 6
        np.testing.assert_allclose(np.diff(rs.times), 2.0)

    def test_dt_larger_than_duration(self, simple_traj):
        rs = resample_uniform_dt(simple_traj, 100.0)
        assert rs.n_samples == 2
        assert rs.times[-1] == pytest.approx(10.0)

    def test_invalid_dt(self, simple_traj):
        with pytest.raises(ValueError):
            resample_uniform_dt(simple_traj, 0.0)

    def test_meta_preserved(self, simple_traj):
        rs = resample_uniform_dt(simple_traj, 1.0)
        assert rs.meta == simple_traj.meta
        assert rs.traj_id == simple_traj.traj_id

    def test_positions_interpolated_linearly(self, simple_traj):
        rs = resample_uniform_dt(simple_traj, 0.25)
        # straight walk: x should equal t/10 everywhere
        np.testing.assert_allclose(rs.positions[:, 0], rs.times / 10.0, atol=1e-12)


class TestByCount:
    def test_count(self, l_shaped_traj):
        rs = resample_by_count(l_shaped_traj, 7)
        assert rs.n_samples == 7

    def test_endpoints(self, l_shaped_traj):
        rs = resample_by_count(l_shaped_traj, 5)
        np.testing.assert_allclose(rs.positions[0], l_shaped_traj.positions[0])
        np.testing.assert_allclose(rs.positions[-1], l_shaped_traj.positions[-1])

    def test_minimum_count(self, simple_traj):
        with pytest.raises(ValueError):
            resample_by_count(simple_traj, 1)

    def test_arc_length_not_inflated(self, study_dataset):
        from repro.trajectory.metrics import total_path_length

        traj = study_dataset[0]
        rs = resample_by_count(traj, 64)
        # linear interpolation can only shorten a path
        assert total_path_length(rs) <= total_path_length(traj) + 1e-9
