"""Chaos-harness tests (PR 6): seeded fault storms over the streaming
ingest lifecycle, asserting the crash-safety invariants end to end.

Every run checks, continuously:

* **conservation** — resident + pending trajectories always account
  for everything fed in (no lost or duplicated segments);
* **oracle agreement** — each session's query matches a brute-force
  engine over that session's pinned epoch (no stale-epoch cache hits);
* **no leaks** — harness close asserts zero leftover shared blocks.

Runs are small (tier-1 executes these); the CI ``chaos`` job re-runs
the marked subset on its own leg.
"""

from __future__ import annotations

import pytest

from repro.resilience import (
    ROLLOVER_POINTS,
    ChaosHarness,
    ChaosInterrupt,
    ChaosMonkey,
    FaultPlan,
    FaultSpec,
)
from repro.synth import AntStudyConfig, generate_study_dataset

pytestmark = pytest.mark.chaos


def _dataset(n: int = 12, seed: int = 13):
    return generate_study_dataset(AntStudyConfig(n_trajectories=n, seed=seed))


def _stream(n: int = 30, seed: int = 14):
    return list(generate_study_dataset(AntStudyConfig(n_trajectories=n, seed=seed)))


# ChaosMonkey unit behavior --------------------------------------------------

class TestChaosMonkey:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown rollover point"):
            ChaosMonkey({"mid_swap": FaultPlan()})

    def test_targeted_crash_fires_once_and_records(self):
        monkey = ChaosMonkey(
            {"pre_swap": FaultPlan(specs=(FaultSpec("crash", job=1),))}
        )
        monkey("pre_swap")  # ordinal 0: no fault
        with pytest.raises(ChaosInterrupt) as exc:
            monkey("pre_swap")  # ordinal 1: crash
        assert (exc.value.point, exc.value.ordinal) == ("pre_swap", 1)
        monkey("pre_swap")  # ordinal 2: quiet again
        assert monkey.calls["pre_swap"] == 3
        assert monkey.fired == [("pre_swap", 1, "crash")]

    def test_error_kind_raises_injected_fault(self):
        from repro.resilience import InjectedFault

        monkey = ChaosMonkey(
            {"post_stage": FaultPlan(specs=(FaultSpec("error", job=0),))}
        )
        with pytest.raises(InjectedFault):
            monkey("post_stage")


# Harness runs ---------------------------------------------------------------

class TestChaosHarness:
    def test_fault_free_baseline(self):
        with ChaosHarness(_dataset(), _stream(), seed=3) as harness:
            report = harness.run(25)
        assert report.steps == 25
        assert report.crashes == 0
        assert report.queries > 0
        assert report.rollovers > 0

    @pytest.mark.parametrize("point", ROLLOVER_POINTS)
    def test_targeted_crash_at_every_point(self, point):
        """Kill the coordinator at each lifecycle point in turn; the
        harness must absorb the crash and keep every invariant."""
        monkey = ChaosMonkey(
            {point: FaultPlan(specs=(FaultSpec("crash", job=1),))}
        )
        with ChaosHarness(_dataset(), _stream(), seed=5, monkey=monkey) as harness:
            report = harness.run(25)
        if point == "post_swap":
            # the swap already happened; the interrupt lands after and
            # the batch was committed, so nothing needs recovery
            assert report.crashes >= 0
        else:
            assert report.crashes == len(report.fired)
        assert all(p == point for p, _ordinal, _kind in report.fired)

    def test_probabilistic_crash_storm(self):
        monkey = ChaosMonkey(
            {
                "post_stage": FaultPlan.crash_fraction(0.4, seed=11),
                "pre_swap": FaultPlan.crash_fraction(0.25, seed=12),
            }
        )
        with ChaosHarness(_dataset(), _stream(40), seed=7, monkey=monkey) as harness:
            report = harness.run(30)
        assert report.crashes > 0  # the storm actually fired
        assert report.queries > 0  # and queries kept answering correctly

    def test_in_process_mode_no_shared_blocks(self):
        from repro.store import live_blocks

        before = set(live_blocks())
        with ChaosHarness(
            _dataset(), _stream(), seed=9, publish_store=False
        ) as harness:
            harness.run(20)
            assert set(live_blocks()) == before

    def test_same_seed_reproduces_schedule(self):
        def run(seed: int):
            monkey = ChaosMonkey({"pre_swap": FaultPlan.crash_fraction(0.3, seed=2)})
            with ChaosHarness(
                _dataset(), _stream(), seed=seed, monkey=monkey
            ) as harness:
                r = harness.run(20)
            return (
                r.steps, r.appended, r.rollovers, r.crashes, r.queries,
                r.rebinds, r.sessions_opened, tuple(r.fired),
            )

        assert run(21) == run(21)
        # and the seed actually steers the schedule
        assert run(21) != run(22)
