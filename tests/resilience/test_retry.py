"""Retry/backoff unit tests (mocked clock — no real sleeping)."""

import time

import pytest

from repro.resilience.retry import (
    DEFAULT_POLICY,
    RetryError,
    RetryPolicy,
    retry_call,
    retryable,
)

pytestmark = pytest.mark.resilience


class Recorder:
    """Sleep stub that records requested delays."""

    def __init__(self):
        self.delays = []

    def __call__(self, s):
        self.delays.append(s)


class Flaky:
    """Callable failing the first ``n_failures`` times."""

    def __init__(self, n_failures, exc=RuntimeError):
        self.n_failures = n_failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.exc(f"failure {self.calls}")
        return "ok"


class TestPolicy:
    def test_defaults(self):
        assert DEFAULT_POLICY.max_attempts == 3
        assert DEFAULT_POLICY.base_delay_s == 0.05
        assert DEFAULT_POLICY.multiplier == 2.0
        assert DEFAULT_POLICY.max_delay_s == 2.0
        assert DEFAULT_POLICY.jitter == 0.1

    def test_exponential_schedule_no_jitter(self):
        p = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=10.0, jitter=0.0)
        assert [p.delay_for(i) for i in range(4)] == [0.1, 0.2, 0.4, 0.8]

    def test_delay_capped(self):
        p = RetryPolicy(base_delay_s=1.0, multiplier=10.0, max_delay_s=3.0, jitter=0.0)
        assert p.delay_for(5) == 3.0

    def test_jitter_bounded_and_deterministic(self):
        p = RetryPolicy(base_delay_s=1.0, multiplier=1.0, max_delay_s=1.0, jitter=0.2)
        d = [p.delay_for(i) for i in range(50)]
        assert d == [p.delay_for(i) for i in range(50)]  # deterministic
        assert all(0.8 <= x <= 1.2 for x in d)
        assert len(set(d)) > 10  # actually jittered

    def test_jitter_seed_changes_sequence(self):
        p = RetryPolicy(jitter=0.5)
        assert [p.delay_for(i) for i in range(8)] != [
            p.with_seed(99).delay_for(i) for i in range(8)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout_s=0.0)


class TestRetryCall:
    def test_success_first_try_no_sleep(self):
        rec = Recorder()
        assert retry_call(lambda: 7, sleep=rec) == 7
        assert rec.delays == []

    def test_retries_then_succeeds(self):
        rec = Recorder()
        fn = Flaky(2)
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter=0.0)
        assert retry_call(fn, policy=policy, sleep=rec) == "ok"
        assert fn.calls == 3
        assert rec.delays == [0.1, 0.2]  # exact backoff schedule

    def test_exhaustion_raises_retry_error(self):
        rec = Recorder()
        fn = Flaky(10)
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0)
        with pytest.raises(RetryError) as ei:
            retry_call(fn, policy=policy, sleep=rec)
        assert ei.value.attempts == 3
        assert isinstance(ei.value.last_exception, RuntimeError)
        assert isinstance(ei.value.__cause__, RuntimeError)
        assert fn.calls == 3
        assert len(rec.delays) == 2  # no sleep after the final failure

    def test_non_retryable_exception_propagates(self):
        fn = Flaky(1, exc=KeyError)
        with pytest.raises(KeyError):
            retry_call(fn, retry_on=(ValueError,), sleep=Recorder())
        assert fn.calls == 1

    def test_on_retry_callback(self):
        seen = []
        retry_call(
            Flaky(1),
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.5, jitter=0.0),
            sleep=Recorder(),
            on_retry=lambda attempt, exc, delay: seen.append((attempt, delay)),
        )
        assert seen == [(0, 0.5)]

    def test_attempt_timeout_triggers_retry(self):
        calls = []

        def sometimes_slow():
            calls.append(None)
            if len(calls) == 1:
                time.sleep(1.0)
            return "done"

        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.0, jitter=0.0, attempt_timeout_s=0.1
        )
        assert retry_call(sometimes_slow, policy=policy, sleep=Recorder()) == "done"
        assert len(calls) == 2


class TestRetryable:
    def test_decorator_retries(self):
        rec = Recorder()
        flaky = Flaky(1)

        @retryable(RetryPolicy(max_attempts=2, base_delay_s=0.3, jitter=0.0), sleep=rec)
        def work():
            """Flaky work."""
            return flaky()

        assert work() == "ok"
        assert rec.delays == [0.3]
        assert work.__wrapped__ is not None


class TestOrphanedAttempts:
    """PR 6: a timed-out attempt keeps running on its daemon thread —
    the contract is that it is *counted*, never joined."""

    def test_orphan_counted_and_retry_succeeds(self):
        import threading

        from repro import obs

        release = threading.Event()
        calls = []

        def stuck_once():
            calls.append(None)
            if len(calls) == 1:
                release.wait(5.0)  # outlives the attempt budget
            return "done"

        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.0, jitter=0.0, attempt_timeout_s=0.05
        )
        obs.enable()
        try:
            assert retry_call(stuck_once, policy=policy, sleep=Recorder()) == "done"
            snap = obs.telemetry_snapshot()
            assert snap.counter_total("resilience.retry.orphaned") == 1.0
        finally:
            release.set()  # let the orphan drain promptly
            obs.disable()
        assert len(calls) == 2
        # the orphan ran on a daemon thread: it cannot block interpreter
        # shutdown even if it were still stuck
        lingering = [
            t for t in threading.enumerate() if t.name.startswith("retry-attempt-")
        ]
        assert all(t.daemon for t in lingering)

    def test_no_counter_when_disabled(self):
        from repro import obs

        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.0, jitter=0.0, attempt_timeout_s=0.05
        )
        flaky_slow = Flaky(0)
        # obs disabled: the guarded facade must swallow, not crash
        assert retry_call(flaky_slow, policy=policy, sleep=Recorder()) == "ok"
        snap = obs.telemetry_snapshot()
        assert snap.counters == {}
