"""End-to-end resilience: the acceptance scenarios of the layer.

Three stories, each asserting that failure changes *latency and
accounting*, never results:

* a seeded 30%-crash fault plan under parallel tile rendering still
  produces bit-identical framebuffers, with every planned fault
  accounted for in the degradation report;
* a sabotaged spatial index degrades the query engine to the
  brute-force path — same masks as an unindexed engine, ``degraded``
  flagged, nothing raised;
* a session journal survives a crash (torn final line) and replays to
  the same query answers.
"""

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.session import ExplorationSession, SessionJournal, replay_session
from repro.core.temporal import TimeWindow
from repro.display.bezel import BezelSpec
from repro.display.viewport import Viewport
from repro.display.wall import DisplayWall
from repro.layout.cells import assign_sequential
from repro.layout.grid import BezelAwareGrid
from repro.parallel.tilerender import render_viewport_parallel
from repro.render.pipeline import WallRenderer
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy
from repro.stereo.camera import Eye
from repro.synth.arena import Arena

pytestmark = pytest.mark.resilience

FAST = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def render_setup(study_dataset):
    wall = DisplayWall(
        cols=2, rows=1, panel_width=0.3, panel_height=0.16875,
        panel_px_width=120, panel_px_height=68, bezel=BezelSpec(),
    )
    viewport = Viewport(wall)
    grid = BezelAwareGrid(viewport, 4, 2)
    renderer = WallRenderer(study_dataset, Arena(), viewport)
    assignment = assign_sequential(study_dataset, grid)
    return renderer, assignment


def _frames_equal(a, b):
    for eye in (Eye.LEFT, Eye.RIGHT):
        assert set(a.frames[eye]) == set(b.frames[eye])
        for key in a.frames[eye]:
            np.testing.assert_array_equal(
                a.frames[eye][key].data, b.frames[eye][key].data
            )


class TestRenderingUnderFaults:
    def test_thirty_percent_crashes_bit_identical(self, render_setup):
        renderer, assignment = render_setup
        serial = render_viewport_parallel(renderer, assignment, max_workers=0)
        # fault job indices address batches (one submit per worker); at
        # 2 workers the 4 (2 tiles x 2 eyes) jobs deal into 2 batches.
        # seed 6 fires on batch 1 at attempt 0 and on none at attempt 1:
        # the crash is absorbed by one respawn-and-retry round
        plan = FaultPlan.crash_fraction(0.3, seed=6)
        faulty = render_viewport_parallel(
            renderer, assignment, max_workers=2,
            fault_plan=plan, retry_policy=FAST,
        )
        assert faulty.n_batches == 2
        planned = set(plan.planned_jobs(faulty.n_batches))
        assert planned, "plan must actually fire for this test to bite"
        _frames_equal(serial, faulty)
        report = faulty.degradation
        assert faulty.degraded and report.degraded
        # no silent drops: every planned fault shows up in the accounting,
        # attributed as *injected* (collateral pool-death events on the
        # other in-flight batches stay plain "crash")
        injected = {e.job for e in report.events if e.kind == "injected-crash"}
        assert planned <= injected
        assert planned <= report.jobs_touched()

    def test_error_faults_fall_back_serial(self, render_setup):
        renderer, assignment = render_setup
        serial = render_viewport_parallel(renderer, assignment, max_workers=0)
        # every attempt of every batch errors: all batches must complete
        # on the bottom rung of the ladder (in-process serial fallback)
        plan = FaultPlan(specs=(FaultSpec("error", p=1.0),))
        faulty = render_viewport_parallel(
            renderer, assignment, max_workers=2,
            fault_plan=plan, retry_policy=FAST,
        )
        _frames_equal(serial, faulty)
        assert faulty.degradation.n_fallbacks == faulty.n_batches == 2

    def test_healthy_run_reports_clean(self, render_setup):
        renderer, assignment = render_setup
        report = render_viewport_parallel(
            renderer, assignment, max_workers=2, retry_policy=FAST
        )
        assert not report.degraded
        assert report.degradation.n_events == 0


class _SabotagedIndex:
    """Index stub whose candidate lookup always explodes."""

    def candidates_for_discs(self, centers, radii):
        raise RuntimeError("index sabotaged")


class TestEngineDegradation:
    def _canvas(self, arena):
        canvas = BrushCanvas()
        r = arena.radius
        canvas.add(
            stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red")
        )
        return canvas

    def test_sabotaged_index_matches_unindexed(self, study_dataset, arena):
        canvas = self._canvas(arena)
        window = TimeWindow.end(0.3)
        reference = CoordinatedBrushingEngine(study_dataset, use_index=False)
        sabotaged = CoordinatedBrushingEngine(study_dataset, use_index=True)
        sabotaged.index = _SabotagedIndex()

        want = reference.query(canvas, "red", window=window)
        got = sabotaged.query(canvas, "red", window=window)  # must not raise

        np.testing.assert_array_equal(want.segment_mask, got.segment_mask)
        np.testing.assert_array_equal(want.traj_mask, got.traj_mask)
        np.testing.assert_allclose(
            want.traj_highlight_time, got.traj_highlight_time
        )
        assert got.degraded
        assert got.degradation.by_action() == {"degraded-brute-force": 1}
        assert not want.degraded

    def test_index_build_failure_degrades_every_query(self, study_dataset, arena):
        engine = CoordinatedBrushingEngine(study_dataset, use_index=True)
        # simulate a build that failed at construction time
        engine.index = None
        engine._index_error = "RuntimeError('no memory for the grid')"
        result = engine.query(self._canvas(arena), "red")
        assert result.degraded
        assert "index-build-failure" in result.degradation.by_kind()

    def test_healthy_query_not_degraded(self, study_dataset, arena):
        engine = CoordinatedBrushingEngine(study_dataset, use_index=True)
        result = engine.query(self._canvas(arena), "red")
        assert not result.degraded
        assert result.degradation is None


class TestJournalReplay:
    def _drive(self, session, arena):
        r = arena.radius
        session.enable_fig3_groups()
        session.brush(
            stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red")
        )
        session.set_time_window(TimeWindow.end(0.15))
        return session.run_query("red")

    def test_replay_reproduces_query(self, study_dataset, viewport, arena, tmp_path):
        journal = tmp_path / "session.jsonl"
        session = ExplorationSession(
            study_dataset, viewport, layout_key="2", journal_path=journal
        )
        original = self._drive(session, arena)
        session.close()

        replayed = replay_session(journal, study_dataset, viewport)
        assert replayed.layout is session.layout or replayed.layout.key == "2"
        result = replayed.run_query("red")
        np.testing.assert_array_equal(original.traj_mask, result.traj_mask)
        assert replayed.window == session.window

    def test_torn_final_line_tolerated(self, study_dataset, viewport, arena, tmp_path):
        journal = tmp_path / "session.jsonl"
        session = ExplorationSession(
            study_dataset, viewport, layout_key="2", journal_path=journal
        )
        original = self._drive(session, arena)
        session.close()
        # the crash: a record half-written when the process died
        with journal.open("a") as fh:
            fh.write('{"kind": "query", "det')

        replayed = replay_session(journal, study_dataset, viewport)
        result = replayed.run_query("red")
        np.testing.assert_array_equal(original.traj_mask, result.traj_mask)

    def test_earlier_corruption_raises(self, tmp_path):
        journal = tmp_path / "bad.jsonl"
        journal.write_text('{"kind": "layout", "detail": {"key": "2"}}\n'
                           "garbage not json\n"
                           '{"kind": "erase", "detail": {"color": "*"}}\n')
        with pytest.raises(ValueError, match="corrupt journal line"):
            SessionJournal.read(journal)

    def test_journal_appends_are_durable_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SessionJournal(path) as journal:
            journal.append("layout", {"key": "1"})
            journal.append("erase", {"color": "*"})
        records = SessionJournal.read(path)
        assert [r["kind"] for r in records] == ["layout", "erase"]
        with pytest.raises(RuntimeError):
            journal.append("late", {})
