"""Fault-plan determinism and the worker wrapper."""

import pytest

from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    CorruptResult,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    run_with_faults,
)

pytestmark = pytest.mark.resilience


def _square(x):
    return x * x


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("frobnicate", p=0.5)
        with pytest.raises(ValueError):
            FaultSpec("crash", p=1.5)
        with pytest.raises(ValueError):
            FaultSpec("crash")  # targets nothing
        with pytest.raises(ValueError):
            FaultSpec("crash", job=1, times=0)

    def test_roundtrip(self):
        spec = FaultSpec("slow", job=3, times=2, delay_s=0.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlanDeterminism:
    def test_same_seed_same_fires(self):
        a = FaultPlan.crash_fraction(0.5, seed=42)
        b = FaultPlan.crash_fraction(0.5, seed=42)
        fires_a = [a.fires(j, t) is not None for j in range(200) for t in range(3)]
        fires_b = [b.fires(j, t) is not None for j in range(200) for t in range(3)]
        assert fires_a == fires_b

    def test_different_seed_different_fires(self):
        a = FaultPlan.crash_fraction(0.5, seed=1)
        b = FaultPlan.crash_fraction(0.5, seed=2)
        assert a.planned_jobs(200) != b.planned_jobs(200)

    def test_fire_rate_near_p(self):
        plan = FaultPlan.crash_fraction(0.3, seed=7)
        rate = len(plan.planned_jobs(2000)) / 2000
        assert 0.25 < rate < 0.35

    def test_attempts_draw_independently(self):
        plan = FaultPlan.crash_fraction(0.5, seed=9)
        at0 = set(plan.planned_jobs(200, attempt=0))
        at1 = set(plan.planned_jobs(200, attempt=1))
        assert at0 != at1  # retries get a fresh draw

    def test_job_targeting(self):
        plan = FaultPlan(specs=(FaultSpec("error", job=3, times=2),))
        assert plan.fires(3, 0) is not None
        assert plan.fires(3, 1) is not None
        assert plan.fires(3, 2) is None  # times exhausted
        assert plan.fires(2, 0) is None

    def test_worker_targeting_needs_ordinal(self):
        plan = FaultPlan(specs=(FaultSpec("error", worker=1),))
        assert plan.fires(0, 0) is None  # ordinal unknown: cannot fire
        assert plan.fires(0, 0, worker=1) is not None
        assert plan.fires(0, 0, worker=0) is None

    def test_json_roundtrip(self):
        plan = FaultPlan(
            specs=(FaultSpec("crash", p=0.3), FaultSpec("slow", job=1, delay_s=0.1)),
            seed=5,
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None
        plan = FaultPlan.crash_fraction(0.25, seed=3)
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())
        assert FaultPlan.from_env() == plan

    def test_from_env_malformed(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "{not json")
        with pytest.raises(ValueError):
            FaultPlan.from_env()


class TestRunWithFaults:
    def test_no_plan_passthrough(self):
        assert run_with_faults(_square, 6, 0, 0, None) == 36

    def test_no_fire_passthrough(self):
        plan = FaultPlan(specs=(FaultSpec("error", job=5),))
        assert run_with_faults(_square, 6, 0, 0, plan) == 36

    def test_error_fault_raises(self):
        plan = FaultPlan(specs=(FaultSpec("error", job=0),))
        with pytest.raises(InjectedFault) as ei:
            run_with_faults(_square, 6, 0, 0, plan)
        assert ei.value.kind == "error"
        assert ei.value.job == 0

    def test_slow_fault_still_correct(self):
        plan = FaultPlan(specs=(FaultSpec("slow", job=0, delay_s=0.01),))
        assert run_with_faults(_square, 6, 0, 0, plan) == 36

    def test_corrupt_fault_returns_marker(self):
        plan = FaultPlan(specs=(FaultSpec("corrupt", job=0),))
        out = run_with_faults(_square, 6, 0, 0, plan)
        assert isinstance(out, CorruptResult)
        assert (out.job, out.attempt) == (0, 0)

    def test_injected_fault_survives_pickling(self):
        import pickle

        exc = InjectedFault("error", 4, 1)
        back = pickle.loads(pickle.dumps(exc))
        assert (back.kind, back.job, back.attempt) == ("error", 4, 1)
