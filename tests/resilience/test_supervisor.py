"""Supervisor behaviour: respawn, retry, serial fallback — always the
same results a plain serial loop would produce."""

import pytest

from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import SupervisedPool, supervised_map

pytestmark = pytest.mark.resilience

FAST = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


def _square(x):
    return x * x


def _expected(n):
    return [x * x for x in range(n)]


class TestHealthyPath:
    def test_matches_serial(self):
        results, report = supervised_map(_square, list(range(10)), max_workers=2,
                                         policy=FAST)
        assert results == _expected(10)
        assert not report.degraded

    def test_serial_mode_uses_serial_fn(self):
        calls = []

        def serial(x):
            calls.append(x)
            return x * x

        with SupervisedPool(0) as pool:
            assert pool.map(_square, [1, 2], serial_fn=serial) == [1, 4]
        assert calls == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisedPool(-1)


class TestFaultAbsorption:
    def test_error_fault_retried(self):
        plan = FaultPlan(specs=(FaultSpec("error", job=2, times=1),))
        with SupervisedPool(2, policy=FAST, fault_plan=plan) as pool:
            assert pool.map(_square, list(range(6))) == _expected(6)
        assert pool.report.degraded
        assert pool.report.n_retried == 1
        assert pool.report.jobs_touched() == {2}
        [event] = pool.report.events
        assert event.kind == "injected-error"
        assert event.attempt == 0

    def test_exhausted_job_falls_back_serial(self):
        # every attempt fails -> the job must complete in-process
        plan = FaultPlan(specs=(FaultSpec("error", job=1, times=99),))
        with SupervisedPool(2, policy=FAST, fault_plan=plan) as pool:
            assert pool.map(_square, list(range(4))) == _expected(4)
        assert pool.report.n_fallbacks == 1
        actions = [e.action for e in pool.report.events if e.job == 1]
        assert actions == ["retried", "retried", "serial-fallback"]

    def test_hard_crash_respawns_pool(self):
        plan = FaultPlan(specs=(FaultSpec("crash", job=0, times=1),))
        with SupervisedPool(2, policy=FAST, fault_plan=plan) as pool:
            assert pool.map(_square, list(range(6))) == _expected(6)
        kinds = pool.report.by_kind()
        assert any("crash" in k for k in kinds)
        assert 0 in pool.report.jobs_touched()

    def test_corrupt_result_detected_and_retried(self):
        plan = FaultPlan(specs=(FaultSpec("corrupt", job=3, times=1),))
        with SupervisedPool(2, policy=FAST, fault_plan=plan) as pool:
            assert pool.map(_square, list(range(5))) == _expected(5)
        assert pool.report.by_kind() == {"injected-corrupt": 1}

    def test_validate_hook_rejects(self):
        # without faults: a caller validator can still force a retry of
        # a value it does not accept; the retried value is identical so
        # it exhausts and falls back serially
        with SupervisedPool(
            2, policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
        ) as pool:
            results = pool.map(
                _square, list(range(4)), validate=lambda v: v != 9
            )
        assert results == _expected(4)  # serial fallback still computes 9
        assert pool.report.n_fallbacks == 1

    def test_hang_killed_by_timeout(self):
        plan = FaultPlan(specs=(FaultSpec("hang", job=1, times=1, delay_s=30.0),))
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.0, jitter=0.0, attempt_timeout_s=0.5
        )
        with SupervisedPool(2, policy=policy, fault_plan=plan) as pool:
            assert pool.map(_square, list(range(4))) == _expected(4)
        assert "timeout" in pool.report.by_kind()

    def test_probabilistic_crashes_all_jobs_complete(self):
        plan = FaultPlan.crash_fraction(0.3, seed=5, kind="error")
        with SupervisedPool(2, policy=FAST, fault_plan=plan) as pool:
            assert pool.map(_square, list(range(20))) == _expected(20)
        # every planned first-attempt fault is accounted for
        planned = set(plan.planned_jobs(20))
        assert planned, "plan must actually fire for this test to bite"
        assert planned <= pool.report.jobs_touched()

    def test_backoff_uses_policy_schedule(self):
        delays = []
        plan = FaultPlan(specs=(FaultSpec("error", job=0, times=2),))
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.2, jitter=0.0)
        with SupervisedPool(
            2, policy=policy, fault_plan=plan, sleep=delays.append
        ) as pool:
            assert pool.map(_square, [5]) == [25]
        assert delays == [0.2, 0.4]
