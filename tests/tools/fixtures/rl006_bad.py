"""Fixture: seeded RL006 violations (truncating writes bypassing the
atomic helpers).  Never imported — parsed by reprolint only."""

import json
from pathlib import Path


def save(path, doc):
    """Writes a document with a torn-file window."""
    with open(path, "w") as fh:  # seeded: RL006 direct open("w")
        json.dump(doc, fh)


def save_text(path, text):
    """Truncates the destination in place."""
    Path(path).write_text(text)  # seeded: RL006 write_text
