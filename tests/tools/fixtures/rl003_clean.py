"""Fixture: clean twin of rl003_bad — locked mutations, slow work
outside the critical section, lock-free read path."""

import threading
import time


class DatasetService:
    """Stand-in for the real service class (rule keys on the name)."""

    def __init__(self):
        """Construction is exempt: the object is not yet shared."""
        self._lock = threading.RLock()
        self._stores = {}
        self._snapshots = {}
        self._n_sessions = 0
        self._active = None

    def count(self):
        """Reads the session counter under the lock."""
        with self._lock:
            return self._n_sessions

    def slow_publish(self):
        """Does the slow work before taking the lock."""
        time.sleep(0.1)
        with self._lock:
            self._stores["x"] = 1

    def hot_publish(self, snapshot):
        """Publishes the active snapshot under the mutation lock."""
        with self._lock:
            self._snapshots[snapshot.epoch] = snapshot
            self._active = snapshot

    def _pin_active(self):
        """Lock-free: one atomic read of the published reference.
        (Reading self._active unlocked is the sanctioned shape —
        only *writes* to it are guarded.)"""
        return self._active


class SessionView:
    """Stand-in for the per-user session view."""

    def run_query(self, color="red"):
        """Lock-free: the pinned snapshot's engine does the work."""
        return self.engine.query(self.canvas, color)
