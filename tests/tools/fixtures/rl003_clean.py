"""Fixture: clean twin of rl003_bad — locked access, slow work outside
the critical section."""

import threading
import time


class DatasetService:
    """Stand-in for the real service class (rule keys on the name)."""

    def __init__(self):
        """Construction is exempt: the object is not yet shared."""
        self._lock = threading.RLock()
        self._stores = {}
        self._n_sessions = 0

    def count(self):
        """Reads the session counter under the lock."""
        with self._lock:
            return self._n_sessions

    def slow_publish(self):
        """Does the slow work before taking the lock."""
        time.sleep(0.1)
        with self._lock:
            self._stores["x"] = 1
