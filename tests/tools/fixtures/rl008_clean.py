"""Fixture: clean twin of rl008_bad — rollover through the
coordinator, deadline handled at the boundary in run()."""


def ingest(coordinator, buffer, trajectories):
    """The sanctioned path: buffer, then coordinator-driven rollover."""
    for traj in trajectories:
        buffer.append(traj)
    return coordinator.rollover()


def rebind_session(session):
    """A session retargeting *itself* after a rollover is fine — the
    handle-mutation rule keys on service-named receivers."""
    session.dataset = session.service.dataset
    return session.rebind()


class Executor:
    """Stand-in executor: deadline consulted in run(), between stages."""

    def run(self, stages, deadline):
        """Boundary-only deadline checks are the sanctioned shape."""
        outputs = []
        for stage in stages:
            if deadline is not None:
                deadline.check(stage)
            outputs.append(self._execute_stage(stage))
        return outputs

    def _execute_stage(self, stage):
        """Stage bodies never look at the clock."""
        return stage
