"""Fixture: clean twin of pyramid_tables_bad — the publish/attach
idiom the shared arena actually uses for the ``pyr_*`` tables."""

import numpy as np


def publish_pyramid(create_block, pyramid, nbytes):
    """try/finally-paired creation, tables copied in before handoff."""
    block = create_block(nbytes)
    try:
        block.write(pyramid.tstats.tobytes())
    finally:
        block.close()
    return block.name


def attach_pyramid_tables(attach_block, name):
    """Frozen zero-copy views; the consumer closes, never unlinks."""
    client = attach_block(name)
    tstats = np.frombuffer(client.buf, dtype=np.float64)
    tstats.setflags(write=False)
    client.close()
    return tstats


def rebuild_locally(attach_block, name):
    """Mutation happens only on an owned copy of the attached table."""
    client = attach_block(name)
    view = np.frombuffer(client.buf, dtype=np.float64)
    view.setflags(write=False)
    own = view.copy()
    own[0] = 1.0
    client.close()
    return own
