"""Fixture: clean twin of rl005_bad — frozen view, copy-on-write."""

import numpy as np


def attach_view(buf):
    """Freezes the view at creation; mutates only an owned copy."""
    view = np.frombuffer(buf, dtype=np.float64)
    view.setflags(write=False)
    out = view.copy()
    out[0] = 1.0
    out.fill(0.0)
    return out
