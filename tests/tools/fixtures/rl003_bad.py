"""Fixture: seeded RL003 violations (unguarded shared access, blocking
call under the lock).  Never imported — parsed by reprolint only."""

import threading
import time


class DatasetService:
    """Stand-in for the real service class (rule keys on the name)."""

    def __init__(self):
        """Construction is exempt: the object is not yet shared."""
        self._lock = threading.RLock()
        self._stores = {}
        self._n_sessions = 0

    def count(self):
        """Reads the session counter without the lock."""
        return self._n_sessions  # seeded: RL003 unguarded access

    def slow_publish(self):
        """Sleeps while holding the lock."""
        with self._lock:
            time.sleep(0.1)  # seeded: RL003 blocking call under lock
            self._stores["x"] = 1
