"""Fixture: seeded RL003 violations (unguarded shared access, blocking
call under the lock, unlocked publish, locked query path).  Never
imported — parsed by reprolint only."""

import threading
import time


class DatasetService:
    """Stand-in for the real service class (rule keys on the name)."""

    def __init__(self):
        """Construction is exempt: the object is not yet shared."""
        self._lock = threading.RLock()
        self._stores = {}
        self._snapshots = {}
        self._n_sessions = 0
        self._active = None

    def count(self):
        """Reads the session counter without the lock."""
        return self._n_sessions  # seeded: RL003 unguarded access

    def slow_publish(self):
        """Sleeps while holding the lock."""
        with self._lock:
            time.sleep(0.1)  # seeded: RL003 blocking call under lock
            self._stores["x"] = 1

    def hot_publish(self, snapshot):
        """Publishes the active snapshot without serializing mutators."""
        self._snapshots[snapshot.epoch] = snapshot  # seeded: RL003
        self._active = snapshot  # seeded: RL003 unlocked publish

    def _pin_active(self):
        """Declared lock-free, but queues behind the mutation lock."""
        with self._lock:  # seeded: RL003 lock on the query path
            return self._active


class SessionView:
    """Stand-in for the per-user session view."""

    def run_query(self, color="red"):
        """Declared lock-free, but takes a lock explicitly."""
        self.service._lock.acquire()  # seeded: RL003 acquire on query path
        try:
            return self.engine.query(self.canvas, color)
        finally:
            self.service._lock.release()
