"""Query root whose helpers loop over bounded work without the budget.

Two seeded violations and one reviewed exemption:

* ``scan_segments`` — reachable, loops over segments, accepts no
  deadline parameter (flagged at its def).
* ``refine_tiles`` — accepts the budget, but ``query`` drops it at the
  call site (flagged at the call).
* ``exempt_kernel`` — boundary-atomic, annotated, must stay silent.
"""

from kernels import exempt_kernel


class SharedQueryEngine:
    def __init__(self, segments):
        self.segments = segments

    def query(self, color, deadline_s=None):
        part = scan_segments(self.segments, color)
        part = refine_tiles(part)
        return exempt_kernel(part)


def scan_segments(segments, color):
    hits = []
    for seg in segments:
        hits.append((seg, color))
    return hits


def refine_tiles(tiles, deadline_s=None):
    out = []
    for tile in tiles:
        out.append(tile)
    return out
