"""Reviewed boundary-atomic kernel: exempt, never flagged."""


# reprolint: exempt=RL011 — boundary-atomic kernel fixture: the caller
# checks the deadline at the stage boundary around this call
def exempt_kernel(supernodes):
    total = 0
    for node in supernodes:
        total += 1 if node else 0
    return total
