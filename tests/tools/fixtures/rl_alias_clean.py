"""Clean twin of the aliased-import regression fixture: the same
aliases used correctly (paired creation, no attach-side unlink, the
aliased lock only in mutation methods)."""

import repro.store.shm as s
from repro.store.shm import create_block as _cb
from threading import RLock as _L


def paired(nbytes):
    block = _cb("plane", nbytes)
    try:
        return block.size
    finally:
        block.close()


def consumer(name):
    block = s.attach_block(name)
    return block


class DatasetService:
    def __init__(self):
        self._mtx = _L()

    def mutate(self):
        with self._mtx:
            return object()
