"""Clean twin: append flushes to the page cache, never fsyncs."""


class Journal:
    def __init__(self, path):
        self._fh = open(path, "a")

    def append(self, record):
        self._fh.write(record)
        self._fh.flush()
