"""Clean twin of the transitive-lock-free fixture: same call shape,
no blocking op anywhere on the reachable path."""

from journal import Journal


class SessionView:
    def __init__(self, path):
        self.journal = Journal(path)

    def run_query(self, color):
        result = {"color": color}
        self._log("query", result)
        return result

    def _log(self, kind, detail):
        self.journal.append(f"{kind}:{detail}\n")
