"""Fixture: seeded RL002 violations (leaked creation, attach-side
unlink).  Never imported — parsed by reprolint only."""


def leak(create_block, nbytes):
    """Creates a block with no paired teardown on any exit path."""
    block = create_block(nbytes)  # seeded: RL002 unpaired creation
    size = block.size
    return size


def destroy(attach_block, name):
    """Unlinks a block it merely attached to."""
    client = attach_block(name)
    client.unlink()  # seeded: RL002 attach-side unlink
    client.close()


def leak_frame(create_framebuffer, slots):
    """Creates a shared framebuffer with no teardown on any path."""
    fb = create_framebuffer(slots)  # seeded: RL002 unpaired creation
    n_slots = len(fb.handle.slots)
    return n_slots


def destroy_frame(attach_framebuffer, handle):
    """Unlinks a framebuffer it merely attached to."""
    client = attach_framebuffer(handle)
    client.unlink()  # seeded: RL002 attach-side unlink
    client.close()
