"""Fixture: seeded RL007 violations (unguarded telemetry emits and a
span opened outside ``with``).  Never imported — parsed only."""

from repro.obs import get_registry, span

registry = get_registry()


def hot_path(n):
    """Emits that can raise into the caller."""
    registry.counter_add("queries", 1)  # seeded: RL007 bare registry call
    get_registry().observe("q.seconds", 0.5)  # seeded: RL007 via get_registry()
    sp = span("stage.brush_hit")  # seeded: RL007 span outside `with`
    sp.annotate(n=n)
    return n
