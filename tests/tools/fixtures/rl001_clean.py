"""Fixture: clean twin of rl001_bad — pure stage body, copy-on-write."""


def _execute_stage(cache, key, packed):
    """Pure stage body: output depends only on keyed inputs."""
    return packed


def serve(cache, key):
    """Copies a cache-served value before modifying it."""
    value = cache.get(key)
    out = value.copy()
    out[0] = 1.0
    out.sort()
    return out
