"""Fixture: seeded RL001 violations (impure stage body, cached-value
mutation).  Never imported — parsed by reprolint only."""

import time

_STATE = {"calls": 0}


def _execute_stage(cache, key, packed):
    """Stage body that reads a clock and module mutable state."""
    t = time.perf_counter()  # seeded: RL001 impure read
    n = _STATE["calls"]  # seeded: RL001 module mutable state
    return t + n


def serve(cache, key):
    """Mutates a value served by the stage cache."""
    value = cache.get(key)
    value[0] = 1.0  # seeded: RL001 subscript write into cached value
    value.sort()  # seeded: RL001 mutating call on cached value
    return value
