"""Fixture: seeded RL004 violations (report cached, put under positive
taint guard).  Never imported — parsed by reprolint only."""


def cache_report(cache, key, DegradationReport):
    """Inserts a degradation report into the stage cache."""
    report = DegradationReport()
    cache.put(key, report)  # seeded: RL004 tainted value cached


def cache_when_degraded(cache, key, value, degraded):
    """Caches exactly when the output is degraded (inverted guard)."""
    if degraded:
        cache.put(key, value)  # seeded: RL004 put under positive guard
