"""Fixture: clean twin of rl004_bad — the correct `not degraded` gate
(mirrors the executor's taint-propagation structure)."""


def run_stage(cache, key, value, degraded, dep_tainted, record):
    """Caches only untainted outputs."""
    if degraded or dep_tainted:
        record(value)
    elif key is not None:
        cache.put(key, value)


def run_stage_inverted(cache, key, value, degraded):
    """`not degraded` positive-branch insertion is also fine."""
    if not degraded:
        cache.put(key, value)
