"""Fixture: clean twin of rl007_bad — the guarded facade helpers and
the context-manager span form."""

from repro import obs


def hot_path(n):
    """Guarded emits: obs helpers swallow registry/sink failures."""
    obs.counter_add("queries", 1)
    obs.observe("q.seconds", 0.5)
    obs.gauge_set("inflight", n)
    with obs.span("stage.brush_hit") as sp:
        sp.annotate(n=n)
    return n


def snapshot_is_fine():
    """Reading the registry back is not an emit; lifecycle calls and
    snapshots are cold-path and allowed."""
    snap = obs.telemetry_snapshot()
    return snap.counter_total("queries")
