"""Fixture: a file-wide suppression covering every violation below."""

# reprolint: disable-file=RL006

from pathlib import Path


def save_one(path, text):
    """Covered by the file-wide suppression."""
    Path(path).write_text(text)


def save_two(path, text):
    """Also covered."""
    Path(path).write_text(text)
