"""Fixture: seeded RL005 violations (unfrozen view, in-place writes
through a shared view).  Never imported — parsed by reprolint only."""

import numpy as np


def attach_view(buf):
    """Creates a writable view and mutates the shared pages."""
    view = np.frombuffer(buf, dtype=np.float64)  # seeded: RL005 no setflags
    view[0] = 1.0  # seeded: RL005 subscript write
    view.fill(0.0)  # seeded: RL005 mutating call
    return view
