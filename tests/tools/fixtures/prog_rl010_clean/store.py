"""Clean twin's snapshot store (same shape as the bad package's)."""


class Snapshot:
    def __init__(self, epoch):
        self.epoch = epoch
        self.table = [epoch]
        self.mask = [epoch]


class Service:
    def _pin_active(self):
        return Snapshot(0)
