"""Clean twin: one pin feeds the whole operation, and comparing the
epoch *numbers* of two pins (the staleness probe) never counts as a
mix — ``.epoch`` strips taint and comparisons are identity checks."""


def no_mix(service):
    snap = service._pin_active()
    return combine(snap.table, snap.mask)


def staleness_probe(service, view_snap):
    current = service._pin_active()
    return current.epoch == view_snap.epoch


def combine(rows, mask):
    return [rows, mask]
