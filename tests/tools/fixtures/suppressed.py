"""Fixture: seeded violations silenced by inline suppressions (the
findings must move to the suppressed list, not the findings list)."""

from pathlib import Path


def save_same_line(path, text):
    """Suppression on the offending line."""
    Path(path).write_text(text)  # reprolint: disable=RL006


def save_line_above(path, text):
    """Suppression on the line above the offending statement."""
    # reprolint: disable=RL006
    Path(path).write_text(text)


def save_all(path, text):
    """disable=all silences every rule on the line."""
    Path(path).write_text(text)  # reprolint: disable=all
