"""Fixture: seeded RL008 violations (foreign swap call, direct handle
mutation, mid-stage deadline check).  Never imported — parsed only."""


def hot_swap(service, dataset, engine):
    """Publishes an unvalidated epoch from outside the coordinator."""
    service._swap_active(dataset, engine)  # seeded: RL008 foreign swap


def clobber(service, dataset, engine):
    """Retargets the active handle directly."""
    service.dataset = dataset  # seeded: RL008 direct handle mutation
    service.engine = engine  # seeded: RL008 direct handle mutation
    service._active = None  # seeded: RL008 direct snapshot retarget


class Executor:
    """Stand-in executor (rule keys on the stage-function names)."""

    def _execute_stage(self, stage, deadline):
        """Consults the deadline inside a stage body."""
        if deadline.expired:  # seeded: RL008 mid-stage deadline check
            return None
        return stage
