"""Fixture: clean twin of rl006_bad — atomic helpers and append-only
journals (the two legal persistence shapes)."""

import json
from pathlib import Path

from repro.util.fileio import atomic_write_text


def save(path, doc):
    """Atomic temp-file + os.replace write."""
    atomic_write_text(path, json.dumps(doc))


def journal(path, line):
    """Append-only journaling is the other legal durability shape."""
    with Path(path).open("a") as fh:
        fh.write(line)


def read(path):
    """Reads are unrestricted."""
    with open(path) as fh:
        return fh.read()
