"""Fixture: seeded violations in the summary-pyramid arena tables
(publish/attach idiom of the ``pyr_*`` blocks).  Never imported —
parsed by reprolint only."""

import numpy as np


def publish_pyramid(create_block, pyramid, nbytes):
    """Packs the pyramid tables into a block it then drops."""
    block = create_block(nbytes)  # seeded: RL002 unpaired creation
    block.write(pyramid.tstats.tobytes())
    return pyramid.res


def attach_pyramid_tables(attach_block, name):
    """Attaches the tables, mutates them in place, unlinks on exit."""
    client = attach_block(name)
    tstats = np.frombuffer(client.buf, dtype=np.float64)  # seeded: RL005
    tstats[0] = 0.0  # seeded: RL005 write through shared view
    client.unlink()  # seeded: RL002 attach-side unlink
    client.close()
    return tstats
