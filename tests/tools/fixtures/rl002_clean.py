"""Fixture: clean twin of rl002_bad — with-managed, finally-paired,
and ownership-transferring creations."""


def managed(create_block, nbytes):
    """Context-managed creation."""
    with create_block(nbytes) as block:
        return block.size


def paired(create_block, fill, nbytes):
    """try/finally-paired creation."""
    block = create_block(nbytes)
    try:
        fill(block)
    finally:
        block.unlink()
        block.close()


def transfer(create_block, nbytes):
    """Ownership transfer: the caller receives the block."""
    block = create_block(nbytes)
    return block


def consume(attach_block, name):
    """Attach-side close (never unlink) is fine."""
    client = attach_block(name)
    client.close()


def managed_frame(create_framebuffer, slots):
    """Context-managed framebuffer creation."""
    with create_framebuffer(slots) as fb:
        return fb.handle


def transfer_frame(create_framebuffer, slots):
    """Ownership transfer: the caller receives the framebuffer."""
    fb = create_framebuffer(slots)
    return fb


def consume_frame(attach_framebuffer, handle):
    """Attach-side close (never unlink) is fine."""
    client = attach_framebuffer(handle)
    client.close()
