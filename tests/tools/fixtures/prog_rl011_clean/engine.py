"""Clean twin: every reachable keyword loop receives the budget."""


class SharedQueryEngine:
    def __init__(self, segments):
        self.segments = segments

    def query(self, color, deadline_s=None):
        part = scan_segments(self.segments, color, deadline_s=deadline_s)
        return refine_tiles(part, deadline_s)


def scan_segments(segments, color, deadline_s=None):
    hits = []
    for seg in segments:
        hits.append((seg, color))
    return hits


def refine_tiles(tiles, deadline_s=None):
    out = []
    for tile in tiles:
        out.append(tile)
    return out
