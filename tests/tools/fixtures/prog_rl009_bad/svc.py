"""Declared-lock-free query path that transitively reaches a blocking
call two hops away, in another file — invisible to any per-file rule."""

from journal import Journal


class SessionView:
    def __init__(self, path):
        self.journal = Journal(path)

    def run_query(self, color):
        result = {"color": color}
        self._log("query", result)
        return result

    def _log(self, kind, detail):
        self.journal.append(f"{kind}:{detail}\n")
