"""Journal helper whose append fsyncs — the op RL009 must surface."""

import os


class Journal:
    def __init__(self, path):
        self._fh = open(path, "a")

    def append(self, record):
        self._fh.write(record)
        self._fh.flush()
        os.fsync(self._fh.fileno())
