"""Aliased-import regression fixture.

Both renaming forms — ``from X import y as z`` and ``import a.b as c``
— historically evaded the dotted-string matching in RL002/RL003; the
symbol table resolves them back to canonical names.
"""

import repro.store.shm as s
from repro.store.shm import create_block as _cb
from threading import RLock as _L


def leaky(nbytes):
    _cb("plane", nbytes)


def consumer_unlink(name):
    block = s.attach_block(name)
    block.unlink()


class DatasetService:
    def __init__(self):
        self._mtx = _L()

    def _pin_active(self):
        with self._mtx:
            return object()
