"""Rows from one pin combined with a mask from another — the exact
mid-rollover wrong-answer bug RL010 exists to catch statically."""


def mix_epochs(service):
    snap_a = service._pin_active()
    snap_b = service._pin_active()
    return combine(snap_a.table, snap_b.mask)


def combine(rows, mask):
    return [rows, mask]
