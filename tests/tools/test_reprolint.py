"""reprolint test suite.

Three layers:

* **Golden fixtures** — one file per rule with seeded violations
  (asserted by rule id + line) plus a clean twin that must produce
  nothing, so every rule's true-positive *and* false-positive behavior
  is pinned.
* **Suppressions** — line, line-above, ``all``, and file-wide forms.
* **Meta** — ``reprolint src`` must be clean at HEAD: the tree itself
  is the biggest fixture, and this test is what keeps it that way.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.tools.reprolint import (
    DEFAULT_CONFIG,
    LintConfig,
    Severity,
    lint_file,
    lint_paths,
    lint_source,
    registered_rules,
)
from repro.tools.reprolint.base import checker_for
from repro.tools.reprolint.config import module_name_for
from repro.tools.reprolint.program.symbols import exempt_rules_for_line
from repro.tools.reprolint.report import render_human, render_json

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

UNSCOPED = LintConfig(unscoped=True)

#: rule → (bad fixture, {(line, rule), ...}, clean fixture)
GOLDEN = {
    "RL001": (
        "rl001_bad.py",
        {(11, "RL001"), (12, "RL001"), (19, "RL001"), (20, "RL001")},
        "rl001_clean.py",
    ),
    "RL002": (
        "rl002_bad.py",
        # block pair (7/15) plus the framebuffer-wrapper pair (21/29):
        # create_framebuffer/attach_framebuffer own a block and follow
        # the same lifecycle discipline
        {(7, "RL002"), (15, "RL002"), (21, "RL002"), (29, "RL002")},
        "rl002_clean.py",
    ),
    "RL003": (
        "rl003_bad.py",
        {
            (22, "RL003"),  # unguarded registry read
            (27, "RL003"),  # blocking call under the lock
            (32, "RL003"),  # unguarded registry write
            (33, "RL003"),  # unlocked publish of the active snapshot
            (37, "RL003"),  # lock context on the query path
            (46, "RL003"),  # .acquire() on the query path
        },
        "rl003_clean.py",
    ),
    "RL004": ("rl004_bad.py", {(8, "RL004"), (14, "RL004")}, "rl004_clean.py"),
    "RL005": (
        "rl005_bad.py",
        {(9, "RL005"), (10, "RL005"), (11, "RL005")},
        "rl005_clean.py",
    ),
    "RL006": ("rl006_bad.py", {(10, "RL006"), (16, "RL006")}, "rl006_clean.py"),
    "RL007": (
        "rl007_bad.py",
        {(11, "RL007"), (12, "RL007"), (13, "RL007")},
        "rl007_clean.py",
    ),
    "RL008": (
        "rl008_bad.py",
        {
            (7, "RL008"),  # foreign swap call
            (12, "RL008"),  # direct dataset retarget
            (13, "RL008"),  # direct engine retarget
            (14, "RL008"),  # direct active-snapshot retarget
            (22, "RL008"),  # mid-stage deadline check
        },
        "rl008_clean.py",
    ),
}


#: program rule → (bad package dir, {(file, line), ...}, clean package dir)
PROGRAM_GOLDEN = {
    "RL009": (
        "prog_rl009_bad",
        {("svc.py", 11)},
        "prog_rl009_clean",
    ),
    "RL010": (
        "prog_rl010_bad",
        {("query.py", 8)},
        "prog_rl010_clean",
    ),
    "RL011": (
        "prog_rl011_bad",
        {("engine.py", 21), ("engine.py", 25)},
        "prog_rl011_clean",
    ),
}


def _lint(name: str):
    return lint_file(FIXTURES / name, UNSCOPED)


def _lint_program(package: str, rule: str):
    config = LintConfig(unscoped=True, enabled=(rule,))
    return lint_paths([FIXTURES / package], config, program=True)


# Golden fixtures ------------------------------------------------------------

@pytest.mark.parametrize("rule", sorted(GOLDEN))
def test_seeded_violations_found(rule):
    bad, expected, _clean = GOLDEN[rule]
    report = _lint(bad)
    got = {(f.line, f.rule) for f in report.findings}
    assert got == expected, f"{bad}: expected {sorted(expected)}, got {sorted(got)}"


@pytest.mark.parametrize("rule", sorted(GOLDEN))
def test_clean_twin_is_clean(rule):
    _bad, _expected, clean = GOLDEN[rule]
    report = _lint(clean)
    assert report.findings == [], [f.render() for f in report.findings]
    assert report.parse_error is None


def test_all_rules_covered_by_fixtures():
    per_file = {
        r for r in registered_rules() if not checker_for(r).program_scope
    }
    program = {r for r in registered_rules() if checker_for(r).program_scope}
    assert set(GOLDEN) == per_file
    assert set(PROGRAM_GOLDEN) == program
    assert program == {"RL009", "RL010", "RL011"}


def test_alias_regressions():
    """`from X import y as z` / `import a.b as c` cannot evade the
    symbol-table-resolved rules (the pre-program-analysis blind spot)."""
    report = _lint("rl_alias_bad.py")
    got = {(f.line, f.rule) for f in report.findings}
    assert got == {
        (14, "RL002"),  # aliased create_block, created and dropped
        (19, "RL002"),  # attach via module alias, then unlink
        (27, "RL003"),  # aliased RLock attr entered on the lock-free path
    }, sorted(got)

    clean = _lint("rl_alias_clean.py")
    assert clean.findings == [], [f.render() for f in clean.findings]


# Program rules (RL009–RL011) ------------------------------------------------

@pytest.mark.parametrize("rule", sorted(PROGRAM_GOLDEN))
def test_program_seeded_violations_found(rule):
    bad, expected, _clean = PROGRAM_GOLDEN[rule]
    result = _lint_program(bad, rule)
    got = {(Path(f.path).name, f.line) for f in result.findings}
    assert got == expected, "\n".join(f.render() for f in result.findings)
    assert all(f.rule == rule for f in result.findings)


@pytest.mark.parametrize("rule", sorted(PROGRAM_GOLDEN))
def test_program_clean_twin_is_clean(rule):
    _bad, _expected, clean = PROGRAM_GOLDEN[rule]
    result = _lint_program(clean, rule)
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
    assert result.parse_errors == []


def test_rl009_chain_renders_cross_file_hops():
    """The finding walks the whole call chain, file:line per hop, ending
    at the blocking op in the *other* file."""
    result = _lint_program("prog_rl009_bad", "RL009")
    (finding,) = result.findings
    assert finding.chain, "program finding must carry a chain"
    hops = [(Path(h.path).name, h.line) for h in finding.chain]
    assert hops == [
        ("svc.py", 11),      # declared lock-free root
        ("svc.py", 13),      # calls SessionView._log
        ("svc.py", 17),      # calls Journal.append
        ("journal.py", 13),  # os.fsync
    ]
    rendered = finding.render()
    assert rendered.count("    via ") == 4
    assert "journal.py:13: makes a blocking call: os.fsync()" in rendered
    assert "declared lock-free" in rendered


def test_rl010_chain_names_both_pin_sites():
    result = _lint_program("prog_rl010_bad", "RL010")
    (finding,) = result.findings
    notes = [h.note for h in finding.chain]
    assert sum("snapshot pinned via" in n for n in notes) == 2
    assert any("mixed here" in n for n in notes)
    pin_lines = sorted(h.line for h in finding.chain if "pinned" in h.note)
    assert pin_lines == [6, 7]


def test_rl011_chain_and_messages():
    result = _lint_program("prog_rl011_bad", "RL011")
    by_line = {f.line: f for f in result.findings}
    # drop site: the caller holds the budget and fails to pass it on
    assert "without threading it" in by_line[21].message
    assert any("without passing" in h.note for h in by_line[21].chain)
    # missing parameter: flagged at the def, chain ends at the loop
    assert "accepts no deadline/budget parameter" in by_line[25].message
    assert by_line[25].chain[-1].note == "loops over segments"
    assert by_line[25].chain[-1].line == 27
    # the annotated kernel is exempt, not flagged
    assert not any("exempt_kernel" in f.message for f in result.findings)


def test_exempt_marker_parsing():
    lines = [
        "# reprolint: exempt=RL011 — boundary-atomic kernel: the",
        "# caller checks the deadline at the stage boundary",
        "def kernel(tiles):",
        "    pass",
    ]
    assert exempt_rules_for_line(lines, 3) == frozenset({"RL011"})
    # marker on the def line itself
    assert exempt_rules_for_line(
        ["def f():  # reprolint: exempt=RL009,RL011 — reviewed"], 1
    ) == frozenset({"RL009", "RL011"})
    # non-comment line breaks the upward scan
    assert exempt_rules_for_line(
        ["# reprolint: exempt=RL011", "x = 1", "def f():"], 3
    ) == frozenset()


def test_callgraph_snapshot_for_seeded_package():
    """Golden call-graph snapshot over the RL009 mini-package: every
    call site resolves to the expected project edge, none heuristic."""
    config = LintConfig(unscoped=True, enabled=("RL009",))
    result = lint_paths(
        [FIXTURES / "prog_rl009_bad"], config, program=True, with_callgraph=True
    )
    assert result.callgraph is not None
    edges = {
        (e["caller"], e["callee"], e["line"], e["heuristic"])
        for e in result.callgraph["edges"]
    }
    assert edges == {
        ("svc.SessionView.__init__", "journal.Journal.__init__", 9, False),
        ("svc.SessionView.run_query", "svc.SessionView._log", 13, False),
        ("svc.SessionView._log", "journal.Journal.append", 17, False),
    }
    external = {
        (e["caller"], e["callee"]) for e in result.callgraph["external"]
    }
    assert ("journal.Journal.append", "os.fsync") in external


# Incremental cache (--changed-only) -----------------------------------------

def _copy_package(tmp_path, package: str) -> Path:
    dest = tmp_path / package
    shutil.copytree(FIXTURES / package, dest)
    return dest


def test_changed_only_serves_unchanged_run_from_cache(tmp_path):
    pkg = _copy_package(tmp_path, "prog_rl009_bad")
    config = LintConfig(unscoped=True, enabled=("RL009",))
    cache_dir = tmp_path / "cache"

    first = lint_paths(
        [pkg], config, program=True, changed_only=True, cache_dir=cache_dir
    )
    assert len(first.findings) == 1 and first.n_cached == 0

    second = lint_paths(
        [pkg], config, program=True, changed_only=True, cache_dir=cache_dir
    )
    assert second.n_cached == second.n_files == 2
    assert [f.render() for f in second.findings] == [
        f.render() for f in first.findings
    ]


def test_changed_only_recomputes_after_edit(tmp_path):
    pkg = _copy_package(tmp_path, "prog_rl009_bad")
    config = LintConfig(unscoped=True, enabled=("RL009",))
    cache_dir = tmp_path / "cache"

    first = lint_paths(
        [pkg], config, program=True, changed_only=True, cache_dir=cache_dir
    )
    assert len(first.findings) == 1

    # remove the fsync: the dependency's interface summary changes, so
    # the cached program findings must be invalidated, not replayed
    journal = pkg / "journal.py"
    journal.write_text(
        journal.read_text(encoding="utf-8").replace(
            "        os.fsync(self._fh.fileno())\n", ""
        ),
        encoding="utf-8",
    )
    second = lint_paths(
        [pkg], config, program=True, changed_only=True, cache_dir=cache_dir
    )
    assert second.findings == [], "\n".join(
        f.render() for f in second.findings
    )
    # the unchanged file is still served from cache
    assert second.n_cached == 1


def test_findings_carry_location_and_message():
    report = _lint("rl006_bad.py")
    for finding in report.findings:
        assert finding.path.endswith("rl006_bad.py")
        assert finding.line > 0
        assert "atomic" in finding.message  # the fix is spelled out
        rendered = finding.render()
        assert f":{finding.line}:" in rendered and "RL006" in rendered


def test_rl005_missing_setflags_is_warning_mutation_is_error():
    report = _lint("rl005_bad.py")
    by_line = {f.line: f.severity for f in report.findings}
    assert by_line[9] is Severity.WARNING
    assert by_line[10] is Severity.ERROR
    assert by_line[11] is Severity.ERROR


# Suppressions ---------------------------------------------------------------

def test_line_suppressions():
    report = _lint("suppressed.py")
    assert report.findings == []
    assert len(report.suppressed) == 3
    assert {f.rule for f in report.suppressed} == {"RL006"}


def test_file_wide_suppression():
    report = _lint("file_suppressed.py")
    assert report.findings == []
    assert len(report.suppressed) == 2


def test_suppression_of_other_rule_does_not_mask():
    source = (
        "from pathlib import Path\n"
        "def save(path, text):\n"
        '    """Doc."""\n'
        "    Path(path).write_text(text)  # reprolint: disable=RL001\n"
    )
    report = lint_source(source, "x.py", UNSCOPED)
    assert [f.rule for f in report.findings] == ["RL006"]


# Config / scoping -----------------------------------------------------------

def test_module_name_resolution():
    assert module_name_for("src/repro/store/shm.py") == "repro.store.shm"
    assert module_name_for("/abs/src/repro/core/plan/__init__.py") == "repro.core.plan"
    assert module_name_for("tests/tools/fixtures/rl001_bad.py") == "rl001_bad"


def test_default_scoping_applies_rules_where_invariants_live():
    assert DEFAULT_CONFIG.rule_applies("RL003", "src/repro/store/service.py")
    assert not DEFAULT_CONFIG.rule_applies("RL003", "src/repro/core/engine.py")
    assert DEFAULT_CONFIG.rule_applies("RL006", "src/repro/core/session.py")
    # the atomic-write module itself is the one legal open() site
    assert not DEFAULT_CONFIG.rule_applies("RL006", "src/repro/util/fileio.py")
    assert DEFAULT_CONFIG.rule_applies("RL001", "src/repro/core/plan/executor.py")
    assert not DEFAULT_CONFIG.rule_applies("RL001", "src/repro/render/lines.py")
    # RL007 guards every emit site but not the obs facade itself
    assert DEFAULT_CONFIG.rule_applies("RL007", "src/repro/core/plan/executor.py")
    assert not DEFAULT_CONFIG.rule_applies("RL007", "src/repro/obs/spans.py")
    # RL008 guards the store/core packages where swaps and deadlines live
    assert DEFAULT_CONFIG.rule_applies("RL008", "src/repro/store/ingest.py")
    assert DEFAULT_CONFIG.rule_applies("RL008", "src/repro/core/plan/executor.py")
    assert not DEFAULT_CONFIG.rule_applies("RL008", "src/repro/render/lines.py")


def test_rl007_span_in_with_is_clean_bare_span_is_not():
    clean = (
        "from repro import obs\n"
        "def f():\n"
        "    with obs.span('x') as sp:\n"
        "        sp.annotate(k=1)\n"
    )
    assert lint_source(clean, "x.py", UNSCOPED).findings == []
    bare = "from repro import obs\ndef f():\n    sp = obs.span('x')\n"
    assert [f.rule for f in lint_source(bare, "x.py", UNSCOPED).findings] == ["RL007"]


def test_enabled_allowlist_limits_rules():
    config = LintConfig(unscoped=True, enabled=("RL006",))
    report = lint_file(FIXTURES / "rl001_bad.py", config)
    assert report.findings == []


def test_parse_error_reported_not_crashing(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def nope(:\n")
    result = lint_paths([broken], UNSCOPED)
    assert result.exit_code == 2
    assert result.parse_errors and "broken.py" in result.parse_errors[0][0]


# Output formats -------------------------------------------------------------

def test_json_report_schema():
    result = lint_paths([FIXTURES / "rl006_bad.py"], UNSCOPED)
    doc = json.loads(render_json(result))
    assert doc["version"] == 2
    assert doc["ok"] is False
    assert doc["summary"]["findings"] == 2
    assert {f["rule"] for f in doc["findings"]} == {"RL006"}
    for f in doc["findings"]:
        assert set(f) == {
            "path", "line", "col", "rule", "severity", "message", "chain",
        }
        assert f["chain"] == []  # per-file rules carry no chain


def test_json_report_chain_hops():
    config = LintConfig(unscoped=True, enabled=("RL009",))
    result = lint_paths([FIXTURES / "prog_rl009_bad"], config, program=True)
    doc = json.loads(render_json(result))
    (finding,) = doc["findings"]
    assert len(finding["chain"]) == 4
    for hop in finding["chain"]:
        assert set(hop) == {"path", "line", "note"}


def test_human_output_mentions_every_finding():
    result = lint_paths([FIXTURES / "rl004_bad.py"], UNSCOPED)
    text = render_human(result)
    assert text.count("RL004") == 2
    assert "2 findings" in text


# CLI ------------------------------------------------------------------------

def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.tools.reprolint", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def test_cli_exit_codes_and_report(tmp_path):
    report_path = tmp_path / "reprolint.json"
    proc = _run_cli(
        str(FIXTURES / "rl002_bad.py"), "--unscoped",
        "--report", str(report_path),
    )
    assert proc.returncode == 1
    assert "RL002" in proc.stdout
    doc = json.loads(report_path.read_text())
    assert doc["summary"]["findings"] == 4

    proc = _run_cli(str(FIXTURES / "rl002_clean.py"), "--unscoped")
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_cli_rules_filter_and_list():
    proc = _run_cli(str(FIXTURES / "rl001_bad.py"), "--unscoped", "--rules", "RL006")
    assert proc.returncode == 0  # RL001 findings filtered out

    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in registered_rules():
        assert rule in proc.stdout
    # program-scope rules are tagged so readers know they need --program
    for line in proc.stdout.splitlines():
        if any(r in line for r in ("RL009", "RL010", "RL011")):
            assert "[program]" in line

    proc = _run_cli("--rules", "RL999")
    assert proc.returncode == 2


def test_cli_program_mode_and_callgraph_dump(tmp_path):
    dump = tmp_path / "callgraph.json"
    proc = _run_cli(
        str(FIXTURES / "prog_rl009_bad"), "--unscoped",
        "--program", "--rules", "RL009",
        "--callgraph-dump", str(dump),
    )
    assert proc.returncode == 1
    assert "RL009" in proc.stdout and "via " in proc.stdout

    doc = json.loads(dump.read_text())
    assert {e["callee"] for e in doc["edges"]} == {
        "journal.Journal.__init__",
        "svc.SessionView._log",
        "journal.Journal.append",
    }

    proc = _run_cli(
        str(FIXTURES / "prog_rl009_clean"), "--unscoped",
        "--program", "--rules", "RL009",
    )
    assert proc.returncode == 0


def test_cli_changed_only_uses_cache(tmp_path):
    pkg = tmp_path / "pkg"
    shutil.copytree(FIXTURES / "prog_rl009_clean", pkg)
    cache = tmp_path / "cache"
    args = (
        str(pkg), "--unscoped", "--program", "--rules", "RL009",
        "--changed-only", "--cache-dir", str(cache),
    )
    proc = _run_cli(*args)
    assert proc.returncode == 0
    assert cache.is_dir()

    proc = _run_cli(*args)
    assert proc.returncode == 0
    assert "cached" in proc.stdout


# Meta: the tree itself ------------------------------------------------------

def test_src_is_clean_at_head():
    """`reprolint src` must exit 0 on the committed tree.

    If this fails, either a real invariant violation crept in (fix the
    code) or a checker grew a false positive (fix the checker or add a
    reviewed `# reprolint: disable=` with a comment saying why).
    """
    result = lint_paths([SRC], DEFAULT_CONFIG)
    assert result.parse_errors == []
    assert result.findings == [], "\n".join(f.render() for f in result.findings)


def test_src_is_clean_under_program_analysis():
    """The interprocedural rules (RL009–RL011) must also hold at HEAD.

    Every allowlist entry and ``# reprolint: exempt=`` annotation that
    keeps this green is a reviewed decision — see DESIGN.md §14.
    """
    result = lint_paths([SRC], DEFAULT_CONFIG, program=True)
    assert result.parse_errors == []
    assert result.findings == [], "\n".join(f.render() for f in result.findings)


# Pyramid arena tables -------------------------------------------------------
# The aggregate refactor added pyr_* tables to the shared arena; these
# fixtures pin the lint behavior of their publish/attach idiom without
# widening GOLDEN (which must stay exactly the registered rule set).

def test_pyramid_table_fixtures():
    report = _lint("pyramid_tables_bad.py")
    got = {(f.line, f.rule) for f in report.findings}
    assert got == {
        (10, "RL002"),  # block created for the tables, never paired
        (18, "RL005"),  # unfrozen frombuffer view of the tables
        (19, "RL005"),  # in-place write through the shared view
        (20, "RL002"),  # consumer unlinking the tables it attached
    }, sorted(got)

    clean = _lint("pyramid_tables_clean.py")
    assert clean.findings == [], [f.render() for f in clean.findings]
    assert clean.parse_error is None
