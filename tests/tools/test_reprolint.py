"""reprolint test suite.

Three layers:

* **Golden fixtures** — one file per rule with seeded violations
  (asserted by rule id + line) plus a clean twin that must produce
  nothing, so every rule's true-positive *and* false-positive behavior
  is pinned.
* **Suppressions** — line, line-above, ``all``, and file-wide forms.
* **Meta** — ``reprolint src`` must be clean at HEAD: the tree itself
  is the biggest fixture, and this test is what keeps it that way.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.tools.reprolint import (
    DEFAULT_CONFIG,
    LintConfig,
    Severity,
    lint_file,
    lint_paths,
    lint_source,
    registered_rules,
)
from repro.tools.reprolint.config import module_name_for
from repro.tools.reprolint.report import render_human, render_json

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

UNSCOPED = LintConfig(unscoped=True)

#: rule → (bad fixture, {(line, rule), ...}, clean fixture)
GOLDEN = {
    "RL001": (
        "rl001_bad.py",
        {(11, "RL001"), (12, "RL001"), (19, "RL001"), (20, "RL001")},
        "rl001_clean.py",
    ),
    "RL002": ("rl002_bad.py", {(7, "RL002"), (15, "RL002")}, "rl002_clean.py"),
    "RL003": (
        "rl003_bad.py",
        {
            (22, "RL003"),  # unguarded registry read
            (27, "RL003"),  # blocking call under the lock
            (32, "RL003"),  # unguarded registry write
            (33, "RL003"),  # unlocked publish of the active snapshot
            (37, "RL003"),  # lock context on the query path
            (46, "RL003"),  # .acquire() on the query path
        },
        "rl003_clean.py",
    ),
    "RL004": ("rl004_bad.py", {(8, "RL004"), (14, "RL004")}, "rl004_clean.py"),
    "RL005": (
        "rl005_bad.py",
        {(9, "RL005"), (10, "RL005"), (11, "RL005")},
        "rl005_clean.py",
    ),
    "RL006": ("rl006_bad.py", {(10, "RL006"), (16, "RL006")}, "rl006_clean.py"),
    "RL007": (
        "rl007_bad.py",
        {(11, "RL007"), (12, "RL007"), (13, "RL007")},
        "rl007_clean.py",
    ),
    "RL008": (
        "rl008_bad.py",
        {
            (7, "RL008"),  # foreign swap call
            (12, "RL008"),  # direct dataset retarget
            (13, "RL008"),  # direct engine retarget
            (14, "RL008"),  # direct active-snapshot retarget
            (22, "RL008"),  # mid-stage deadline check
        },
        "rl008_clean.py",
    ),
}


def _lint(name: str):
    return lint_file(FIXTURES / name, UNSCOPED)


# Golden fixtures ------------------------------------------------------------

@pytest.mark.parametrize("rule", sorted(GOLDEN))
def test_seeded_violations_found(rule):
    bad, expected, _clean = GOLDEN[rule]
    report = _lint(bad)
    got = {(f.line, f.rule) for f in report.findings}
    assert got == expected, f"{bad}: expected {sorted(expected)}, got {sorted(got)}"


@pytest.mark.parametrize("rule", sorted(GOLDEN))
def test_clean_twin_is_clean(rule):
    _bad, _expected, clean = GOLDEN[rule]
    report = _lint(clean)
    assert report.findings == [], [f.render() for f in report.findings]
    assert report.parse_error is None


def test_all_rules_covered_by_fixtures():
    assert set(GOLDEN) == set(registered_rules())


def test_findings_carry_location_and_message():
    report = _lint("rl006_bad.py")
    for finding in report.findings:
        assert finding.path.endswith("rl006_bad.py")
        assert finding.line > 0
        assert "atomic" in finding.message  # the fix is spelled out
        rendered = finding.render()
        assert f":{finding.line}:" in rendered and "RL006" in rendered


def test_rl005_missing_setflags_is_warning_mutation_is_error():
    report = _lint("rl005_bad.py")
    by_line = {f.line: f.severity for f in report.findings}
    assert by_line[9] is Severity.WARNING
    assert by_line[10] is Severity.ERROR
    assert by_line[11] is Severity.ERROR


# Suppressions ---------------------------------------------------------------

def test_line_suppressions():
    report = _lint("suppressed.py")
    assert report.findings == []
    assert len(report.suppressed) == 3
    assert {f.rule for f in report.suppressed} == {"RL006"}


def test_file_wide_suppression():
    report = _lint("file_suppressed.py")
    assert report.findings == []
    assert len(report.suppressed) == 2


def test_suppression_of_other_rule_does_not_mask():
    source = (
        "from pathlib import Path\n"
        "def save(path, text):\n"
        '    """Doc."""\n'
        "    Path(path).write_text(text)  # reprolint: disable=RL001\n"
    )
    report = lint_source(source, "x.py", UNSCOPED)
    assert [f.rule for f in report.findings] == ["RL006"]


# Config / scoping -----------------------------------------------------------

def test_module_name_resolution():
    assert module_name_for("src/repro/store/shm.py") == "repro.store.shm"
    assert module_name_for("/abs/src/repro/core/plan/__init__.py") == "repro.core.plan"
    assert module_name_for("tests/tools/fixtures/rl001_bad.py") == "rl001_bad"


def test_default_scoping_applies_rules_where_invariants_live():
    assert DEFAULT_CONFIG.rule_applies("RL003", "src/repro/store/service.py")
    assert not DEFAULT_CONFIG.rule_applies("RL003", "src/repro/core/engine.py")
    assert DEFAULT_CONFIG.rule_applies("RL006", "src/repro/core/session.py")
    # the atomic-write module itself is the one legal open() site
    assert not DEFAULT_CONFIG.rule_applies("RL006", "src/repro/util/fileio.py")
    assert DEFAULT_CONFIG.rule_applies("RL001", "src/repro/core/plan/executor.py")
    assert not DEFAULT_CONFIG.rule_applies("RL001", "src/repro/render/lines.py")
    # RL007 guards every emit site but not the obs facade itself
    assert DEFAULT_CONFIG.rule_applies("RL007", "src/repro/core/plan/executor.py")
    assert not DEFAULT_CONFIG.rule_applies("RL007", "src/repro/obs/spans.py")
    # RL008 guards the store/core packages where swaps and deadlines live
    assert DEFAULT_CONFIG.rule_applies("RL008", "src/repro/store/ingest.py")
    assert DEFAULT_CONFIG.rule_applies("RL008", "src/repro/core/plan/executor.py")
    assert not DEFAULT_CONFIG.rule_applies("RL008", "src/repro/render/lines.py")


def test_rl007_span_in_with_is_clean_bare_span_is_not():
    clean = (
        "from repro import obs\n"
        "def f():\n"
        "    with obs.span('x') as sp:\n"
        "        sp.annotate(k=1)\n"
    )
    assert lint_source(clean, "x.py", UNSCOPED).findings == []
    bare = "from repro import obs\ndef f():\n    sp = obs.span('x')\n"
    assert [f.rule for f in lint_source(bare, "x.py", UNSCOPED).findings] == ["RL007"]


def test_enabled_allowlist_limits_rules():
    config = LintConfig(unscoped=True, enabled=("RL006",))
    report = lint_file(FIXTURES / "rl001_bad.py", config)
    assert report.findings == []


def test_parse_error_reported_not_crashing(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def nope(:\n")
    result = lint_paths([broken], UNSCOPED)
    assert result.exit_code == 2
    assert result.parse_errors and "broken.py" in result.parse_errors[0][0]


# Output formats -------------------------------------------------------------

def test_json_report_schema():
    result = lint_paths([FIXTURES / "rl006_bad.py"], UNSCOPED)
    doc = json.loads(render_json(result))
    assert doc["version"] == 1
    assert doc["ok"] is False
    assert doc["summary"]["findings"] == 2
    assert {f["rule"] for f in doc["findings"]} == {"RL006"}
    for f in doc["findings"]:
        assert set(f) == {"path", "line", "col", "rule", "severity", "message"}


def test_human_output_mentions_every_finding():
    result = lint_paths([FIXTURES / "rl004_bad.py"], UNSCOPED)
    text = render_human(result)
    assert text.count("RL004") == 2
    assert "2 findings" in text


# CLI ------------------------------------------------------------------------

def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.tools.reprolint", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def test_cli_exit_codes_and_report(tmp_path):
    report_path = tmp_path / "reprolint.json"
    proc = _run_cli(
        str(FIXTURES / "rl002_bad.py"), "--unscoped",
        "--report", str(report_path),
    )
    assert proc.returncode == 1
    assert "RL002" in proc.stdout
    doc = json.loads(report_path.read_text())
    assert doc["summary"]["findings"] == 2

    proc = _run_cli(str(FIXTURES / "rl002_clean.py"), "--unscoped")
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_cli_rules_filter_and_list():
    proc = _run_cli(str(FIXTURES / "rl001_bad.py"), "--unscoped", "--rules", "RL006")
    assert proc.returncode == 0  # RL001 findings filtered out

    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in registered_rules():
        assert rule in proc.stdout

    proc = _run_cli("--rules", "RL999")
    assert proc.returncode == 2


# Meta: the tree itself ------------------------------------------------------

def test_src_is_clean_at_head():
    """`reprolint src` must exit 0 on the committed tree.

    If this fails, either a real invariant violation crept in (fix the
    code) or a checker grew a false positive (fix the checker or add a
    reviewed `# reprolint: disable=` with a comment saying why).
    """
    result = lint_paths([SRC], DEFAULT_CONFIG)
    assert result.parse_errors == []
    assert result.findings == [], "\n".join(f.render() for f in result.findings)


# Pyramid arena tables -------------------------------------------------------
# The aggregate refactor added pyr_* tables to the shared arena; these
# fixtures pin the lint behavior of their publish/attach idiom without
# widening GOLDEN (which must stay exactly the registered rule set).

def test_pyramid_table_fixtures():
    report = _lint("pyramid_tables_bad.py")
    got = {(f.line, f.rule) for f in report.findings}
    assert got == {
        (10, "RL002"),  # block created for the tables, never paired
        (18, "RL005"),  # unfrozen frombuffer view of the tables
        (19, "RL005"),  # in-place write through the shared view
        (20, "RL002"),  # consumer unlinking the tables it attached
    }, sorted(got)

    clean = _lint("pyramid_tables_clean.py")
    assert clean.findings == [], [f.render() for f in clean.findings]
    assert clean.parse_error is None
