"""Tests for the developer tooling (reprolint)."""
