"""Smoke tests: every example script runs end to end.

Examples are deliverables; these tests execute each one as a subprocess
with reduced problem sizes so the suite stays minutes-scale, and check
for a clean exit plus the expected headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 420) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "SUPPORTED" in proc.stdout

    def test_ant_navigation_study(self):
        proc = _run("ant_navigation_study.py", "--n", "150")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("supported") >= 4
        assert "coding-scheme analysis" in proc.stdout

    def test_scalability_som(self):
        proc = _run("scalability_som.py", "--n", "600")
        assert proc.returncode == 0, proc.stderr
        assert "cluster-level query" in proc.stdout
        assert "zoom cluster" in proc.stdout

    def test_interactive_replay(self):
        proc = _run("interactive_replay.py")
        assert proc.returncode == 0, proc.stderr
        assert "bit-identical" in proc.stdout

    def test_ensemble_exploration(self):
        proc = _run("ensemble_exploration.py", "--n", "60")
        assert proc.returncode == 0, proc.stderr
        assert "provenance/insight records: 1" in proc.stdout

    def test_wall_rendering(self, tmp_path):
        proc = _run(
            "wall_rendering.py",
            "--outdir", str(tmp_path),
            "--layout", "1",
            "--workers", "1",
            "--scale", "0.1",
        )
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "wall_left.ppm").exists()
        assert (tmp_path / "wall_anaglyph.ppm").exists()

    def test_figure4_encoding(self, tmp_path):
        proc = _run("figure4_encoding.py", "--outdir", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "fig4_anaglyph.ppm").exists()
        assert (tmp_path / "fig4_exaggeration_sweep.ppm").exists()
