"""Shared fixtures.

Session-scoped datasets keep the suite fast: the behavioural generator
is deterministic, so sharing is safe as long as tests never mutate
(trajectory arrays are read-only by construction, which tests verify).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.display.presets import cyber_commons_wall, paper_viewport
from repro.synth import AntStudyConfig, Arena, generate_study_dataset
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory, TrajectoryMeta


@pytest.fixture(scope="session")
def arena() -> Arena:
    return Arena()


@pytest.fixture(scope="session")
def study_dataset() -> TrajectoryDataset:
    """A mid-size study dataset (150 trajectories, fixed seed)."""
    return generate_study_dataset(AntStudyConfig(n_trajectories=150, seed=7))


@pytest.fixture(scope="session")
def full_dataset() -> TrajectoryDataset:
    """The paper-scale 500-trajectory dataset (default seed)."""
    return generate_study_dataset(AntStudyConfig(n_trajectories=500))


@pytest.fixture(scope="session")
def wall():
    return cyber_commons_wall()


@pytest.fixture(scope="session")
def viewport(wall):
    return paper_viewport(wall)


@pytest.fixture()
def simple_traj() -> Trajectory:
    """A deterministic, hand-checkable trajectory: straight east walk,
    1 m in 10 s, 11 samples."""
    t = np.linspace(0.0, 10.0, 11)
    pos = np.stack([np.linspace(0.0, 1.0, 11), np.zeros(11)], axis=1)
    return Trajectory(pos, t, TrajectoryMeta(capture_zone="east"), traj_id=0)


@pytest.fixture()
def l_shaped_traj() -> Trajectory:
    """East 1 m then north 1 m, 21 samples over 20 s."""
    xs = np.concatenate([np.linspace(0, 1, 11), np.full(10, 1.0)])
    ys = np.concatenate([np.zeros(11), np.linspace(0.1, 1.0, 10)])
    t = np.linspace(0.0, 20.0, 21)
    return Trajectory(np.stack([xs, ys], axis=1), t, TrajectoryMeta(), traj_id=1)


@pytest.fixture()
def tiny_dataset(simple_traj, l_shaped_traj) -> TrajectoryDataset:
    ds = TrajectoryDataset(name="tiny")
    ds.append(
        Trajectory(simple_traj.positions, simple_traj.times, simple_traj.meta, -1)
    )
    ds.append(
        Trajectory(l_shaped_traj.positions, l_shaped_traj.times, l_shaped_traj.meta, -1)
    )
    return ds
