"""Tests for input events."""

import pytest

from repro.interaction.events import (
    KeyEvent,
    PointerEvent,
    PointerPhase,
    event_from_dict,
)


class TestPointerEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            PointerEvent(-1.0, 0, 0, PointerPhase.DOWN)

    def test_dict_roundtrip(self):
        e = PointerEvent(1.5, 100.0, 50.0, PointerPhase.MOVE, button=1)
        back = event_from_dict(e.to_dict())
        assert back == e


class TestKeyEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            KeyEvent(0.0, "")
        with pytest.raises(ValueError):
            KeyEvent(-0.1, "a")

    def test_dict_roundtrip(self):
        e = KeyEvent(2.0, "3")
        assert event_from_dict(e.to_dict()) == e


class TestEventFromDict:
    def test_unknown_type(self):
        with pytest.raises(ValueError):
            event_from_dict({"type": "gesture"})
