"""Tests for slider controls."""

import pytest

from repro.interaction.sliders import RangeSlider, Slider


class TestSlider:
    def test_validation(self):
        with pytest.raises(ValueError):
            Slider(1.0, 1.0)

    def test_clamping(self):
        s = Slider(0.0, 10.0, value=5.0)
        assert s.set(15.0) == 10.0
        assert s.set(-3.0) == 0.0

    def test_step(self):
        s = Slider(0.0, 1.0, value=0.5)
        assert s.step(0.3) == pytest.approx(0.8)
        assert s.step(1.0) == 1.0

    def test_fraction_roundtrip(self):
        s = Slider(2.0, 4.0)
        s.set_fraction(0.25)
        assert s.value == pytest.approx(2.5)
        assert s.fraction == pytest.approx(0.25)

    def test_callback_fires_on_change_only(self):
        calls = []
        s = Slider(0.0, 1.0, value=0.5, on_change=calls.append)
        s.set(0.7)
        s.set(0.7)   # no-op
        s.set(9.0)   # clamps to 1.0
        assert calls == [0.7, 1.0]


class TestRangeSlider:
    def test_validation(self):
        with pytest.raises(ValueError):
            RangeSlider(1.0, 0.0)
        with pytest.raises(ValueError):
            RangeSlider(0.0, 1.0, min_gap=2.0)
        with pytest.raises(ValueError):
            RangeSlider(0.0, 1.0, low=0.4, high=0.5, min_gap=0.2)

    def test_defaults_full_range(self):
        rs = RangeSlider(0.0, 10.0)
        assert rs.interval == (0.0, 10.0)
        assert rs.span_fraction == 1.0

    def test_thumbs_cannot_invert(self):
        rs = RangeSlider(0.0, 10.0, low=2.0, high=8.0, min_gap=1.0)
        rs.set_low(9.5)
        assert rs.interval[0] == pytest.approx(7.0)  # clamped to high - gap
        rs.set_high(0.0)
        assert rs.interval[1] == pytest.approx(8.0)  # clamped to low + gap

    def test_set_atomic(self):
        rs = RangeSlider(0.0, 10.0)
        rs.set(3.0, 7.0)
        assert rs.interval == (3.0, 7.0)
        with pytest.raises(ValueError):
            rs.set(5.0, 4.0)

    def test_callback(self):
        calls = []
        rs = RangeSlider(0.0, 1.0, on_change=lambda lo, hi: calls.append((lo, hi)))
        rs.set_low(0.2)
        rs.set_high(0.8)
        rs.set_high(0.8)  # no-op
        assert calls == [(0.2, 1.0), (0.2, 0.8)]

    def test_bounds_clamped(self):
        rs = RangeSlider(0.0, 1.0)
        rs.set(-5.0, 5.0)
        assert rs.interval == (0.0, 1.0)


class TestIncrementalRequery:
    @pytest.fixture()
    def session(self, study_dataset, viewport, arena):
        from repro.core.brush import stroke_from_rect
        from repro.core.session import ExplorationSession

        session = ExplorationSession(study_dataset, viewport)
        r = arena.radius
        session.brush(
            stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red")
        )
        return session

    def test_thumb_move_updates_window_and_requeries(self, session):
        from repro.interaction.sliders import IncrementalRequery

        slider = RangeSlider(0.0, 1.0, min_gap=0.01)
        driver = IncrementalRequery(slider, session)
        slider.set(0.6, 1.0)
        assert session.window.cache_key() == ("frac", 0.6, 1.0)
        assert driver.n_requeries == 1
        assert "red" in driver.last_results

    def test_slider_scrub_is_incremental(self, session):
        from repro.interaction.sliders import IncrementalRequery

        slider = RangeSlider(0.0, 1.0, min_gap=0.01)
        driver = IncrementalRequery(slider, session)
        slider.set(0.5, 1.0)  # cold: all stages run
        slider.set_low(0.6)   # scrub: only temporal stages re-run
        trace = driver.last_traces["red"]
        assert trace.executed_stages() == [
            "temporal_mask", "combine", "aggregate", "group_support",
        ]
        assert trace["brush_hit"].cache_hit

    def test_on_results_callback(self, session):
        from repro.interaction.sliders import IncrementalRequery

        seen = {}
        slider = RangeSlider(0.0, 1.0, min_gap=0.01)
        IncrementalRequery(slider, session, on_results=seen.update)
        slider.set(0.2, 0.9)
        assert set(seen) == {"red"}

    def test_empty_canvas_sets_window_without_querying(self, study_dataset, viewport):
        from repro.core.session import ExplorationSession
        from repro.interaction.sliders import IncrementalRequery

        session = ExplorationSession(study_dataset, viewport)
        slider = RangeSlider(0.0, 1.0, min_gap=0.01)
        driver = IncrementalRequery(slider, session)
        slider.set(0.3, 0.7)
        assert session.window.cache_key() == ("frac", 0.3, 0.7)
        assert driver.n_requeries == 0
