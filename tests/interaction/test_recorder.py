"""Tests for session recording and replay."""

import pytest

from repro.interaction.events import KeyEvent, PointerEvent, PointerPhase
from repro.interaction.recorder import SessionRecorder


def _events():
    return [
        KeyEvent(0.0, "3"),
        PointerEvent(1.0, 10, 10, PointerPhase.DOWN),
        PointerEvent(1.5, 20, 10, PointerPhase.MOVE),
        PointerEvent(2.0, 30, 10, PointerPhase.UP),
        KeyEvent(3.0, "e"),
    ]


class TestRecorder:
    def test_record_all_and_len(self):
        rec = SessionRecorder()
        rec.record_all(_events())
        assert len(rec) == 5
        assert rec.duration_s == 3.0

    def test_time_order_enforced(self):
        rec = SessionRecorder()
        rec.record(KeyEvent(5.0, "a"))
        with pytest.raises(ValueError):
            rec.record(KeyEvent(4.0, "b"))

    def test_replay_order(self):
        rec = SessionRecorder()
        rec.record_all(_events())
        seen = []
        n = rec.replay(seen.append)
        assert n == 5
        assert seen == list(rec)

    def test_save_load_roundtrip(self, tmp_path):
        rec = SessionRecorder()
        rec.record_all(_events())
        path = tmp_path / "session.json"
        rec.save(path)
        loaded = SessionRecorder.load(path)
        assert list(loaded) == list(rec)

    def test_empty_recorder(self):
        rec = SessionRecorder()
        assert rec.duration_s == 0.0
        assert rec.replay(lambda e: None) == 0
