"""Tests for pointer routing and the paintbrush tool."""

import numpy as np
import pytest

from repro.interaction.events import PointerEvent, PointerPhase
from repro.interaction.tools import PaintbrushTool, PointerRouter
from repro.layout.configs import preset
from repro.synth.arena import Arena


@pytest.fixture()
def grid(viewport):
    return preset("2").build(viewport)


@pytest.fixture()
def router(viewport, grid, arena):
    return PointerRouter(viewport, grid, arena)


class TestPointerRouter:
    def test_pixel_to_wall_in_bounds(self, router):
        wx, wy = router.pixel_to_wall(10.0, 10.0)
        assert 0 <= wx and 0 <= wy

    def test_out_of_viewport_rejected(self, router, viewport):
        with pytest.raises(ValueError):
            router.pixel_to_wall(viewport.px_width + 1, 0)

    def test_panel_boundary_continuous_across_bezel(self, router, viewport):
        wall = viewport.wall
        left_of_gap = router.pixel_to_wall(wall.panel_px_width - 1, 10)
        right_of_gap = router.pixel_to_wall(wall.panel_px_width, 10)
        # physical positions differ by ~a pixel plus the mullion
        dx = right_of_gap[0] - left_of_gap[0]
        assert dx > wall.bezel.horizontal_mullion

    def test_cell_at_center_of_cell(self, router, grid):
        cell = grid.cell(0)
        # find a pixel inside cell 0 by inverting its center
        cx, cy = cell.center
        wall = router.viewport.wall
        pcol = int(cx // wall.pitch_x)
        prow = int(cy // wall.pitch_y)
        tile = wall.tile(pcol, prow)
        px = tile.wall_to_pixel(np.array([[cx, cy]]))[0]
        vx = px[0] + (pcol - router.viewport.col0) * wall.panel_px_width
        vy = px[1] + (prow - router.viewport.row0) * wall.panel_px_height
        found = router.cell_at(vx, vy)
        assert found is not None and found.index == 0

    def test_pixel_to_arena_roundtrip(self, router, grid, arena):
        resolved = router.pixel_to_arena(50.0, 50.0)
        assert resolved is not None
        arena_pt, cell = resolved
        mapper = router.mapper_for(cell)
        wall_pt = mapper.arena_to_wall(arena_pt)
        # re-resolving the wall point lands at the same arena point
        back = mapper.wall_to_arena(wall_pt)
        np.testing.assert_allclose(back, arena_pt, atol=1e-12)


def _drag(tool, path, t0=0.0):
    events = [PointerEvent(t0, path[0][0], path[0][1], PointerPhase.DOWN)]
    for i, (x, y) in enumerate(path[1:-1], start=1):
        events.append(PointerEvent(t0 + i, x, y, PointerPhase.MOVE))
    events.append(PointerEvent(t0 + len(path), path[-1][0], path[-1][1], PointerPhase.UP))
    strokes = [tool.handle(e) for e in events]
    return [s for s in strokes if s is not None]


class TestPaintbrushTool:
    def test_drag_produces_one_stroke(self, router):
        tool = PaintbrushTool(router, radius_px=10, color="red")
        strokes = _drag(tool, [(40, 40), (60, 40), (80, 40)])
        assert len(strokes) == 1
        assert strokes[0].color == "red"
        assert strokes[0].n_stamps >= 2

    def test_stroke_in_arena_coordinates(self, router, arena):
        tool = PaintbrushTool(router, radius_px=10)
        strokes = _drag(tool, [(30, 30), (90, 60)])
        centers = strokes[0].centers
        # points resolved through a cell land inside (or near) the arena
        assert np.all(np.abs(centers) < 2 * arena.radius)

    def test_moves_without_down_ignored(self, router):
        tool = PaintbrushTool(router)
        assert tool.handle(PointerEvent(0.0, 50, 50, PointerPhase.MOVE)) is None
        assert tool.handle(PointerEvent(1.0, 50, 50, PointerPhase.UP)) is None

    def test_cancel_aborts(self, router):
        tool = PaintbrushTool(router)
        tool.handle(PointerEvent(0.0, 50, 50, PointerPhase.DOWN))
        assert tool.dragging
        tool.cancel()
        assert not tool.dragging
        assert tool.handle(PointerEvent(1.0, 60, 50, PointerPhase.UP)) is None

    def test_color_change_mid_stroke_rejected(self, router):
        tool = PaintbrushTool(router)
        tool.handle(PointerEvent(0.0, 50, 50, PointerPhase.DOWN))
        with pytest.raises(RuntimeError):
            tool.set_color("green")

    def test_radius_converted_to_arena_units(self, router, grid, arena):
        tool = PaintbrushTool(router, radius_px=12)
        strokes = _drag(tool, [(40, 40), (45, 40)])
        r = strokes[0].radius
        # 12 px out of ~340 px cell width, arena diameter 1 m => ~0.04 m
        assert 0.005 < r < 0.2

    def test_validation(self, router):
        with pytest.raises(ValueError):
            PaintbrushTool(router, radius_px=0)
