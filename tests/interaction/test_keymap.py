"""Tests for keypad bindings."""

import pytest

from repro.interaction.keymap import KeyBinding, KeyMap, default_keymap


class TestKeyMap:
    def test_bind_lookup(self):
        km = KeyMap()
        km.bind("x", "erase")
        b = km.lookup("x")
        assert b == KeyBinding("erase")
        assert "x" in km

    def test_unbound_returns_none(self):
        assert KeyMap().lookup("q") is None

    def test_rebind_overwrites(self):
        km = KeyMap()
        km.bind("1", "layout", "1")
        km.bind("1", "erase")
        assert km.lookup("1").action == "erase"

    def test_unbind(self):
        km = KeyMap()
        km.bind("z", "erase")
        km.unbind("z")
        assert "z" not in km
        km.unbind("z")  # idempotent

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyMap().bind("", "erase")
        with pytest.raises(ValueError):
            KeyBinding("")

    def test_keys_for(self):
        km = KeyMap()
        km.bind("a", "erase")
        km.bind("b", "erase")
        km.bind("c", "layout", "1")
        assert km.keys_for("erase") == ["a", "b"]


class TestDefaultKeymap:
    def test_digits_bound_to_layouts(self):
        km = default_keymap()
        for digit in ("1", "2", "3"):
            b = km.lookup(digit)
            assert b.action == "layout"
            assert b.arg == digit

    def test_tool_keys(self):
        km = default_keymap()
        assert km.lookup("b").action == "cycle_brush_color"
        assert km.lookup("e").action == "erase"
        assert km.lookup("g").action == "group_fig3"
