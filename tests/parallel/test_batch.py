"""Tests for sharded/parallel batch queries."""

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.parallel.batch import parallel_query_support


@pytest.fixture()
def strokes(arena):
    r = arena.radius
    return [stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red")]


class TestShardedQuery:
    def _reference(self, dataset, strokes, window=None):
        canvas = BrushCanvas()
        for s in strokes:
            canvas.add(s)
        engine = CoordinatedBrushingEngine(dataset)
        return engine.query(canvas, "red", window=window)

    def test_sharding_exact(self, study_dataset, strokes):
        ref = self._reference(study_dataset, strokes)
        for n_chunks in (1, 3, 10):
            rep = parallel_query_support(
                study_dataset, strokes, n_chunks=n_chunks, max_workers=0
            )
            np.testing.assert_array_equal(rep.traj_mask, ref.traj_mask)
            assert rep.support == pytest.approx(ref.overall_support)

    def test_with_window(self, study_dataset, strokes):
        w = TimeWindow.end(0.15)
        ref = self._reference(study_dataset, strokes, window=w)
        rep = parallel_query_support(
            study_dataset, strokes, window=w, n_chunks=4, max_workers=0
        )
        np.testing.assert_array_equal(rep.traj_mask, ref.traj_mask)

    def test_parallel_matches_serial(self, study_dataset, strokes):
        serial = parallel_query_support(
            study_dataset, strokes, n_chunks=4, max_workers=0
        )
        parallel = parallel_query_support(
            study_dataset, strokes, n_chunks=4, max_workers=2
        )
        np.testing.assert_array_equal(serial.traj_mask, parallel.traj_mask)
        assert parallel.workers == 2

    def test_default_chunking(self, study_dataset, strokes):
        rep = parallel_query_support(study_dataset, strokes, max_workers=0)
        assert rep.n_chunks >= 1


class TestStoreTransport:
    def test_shm_transport_matches_pickle(self, study_dataset, strokes):
        from repro.store import SharedArenaStore

        pickle_rep = parallel_query_support(
            study_dataset, strokes, n_chunks=4, max_workers=2
        )
        assert pickle_rep.transport == "pickle"
        with SharedArenaStore.publish(study_dataset) as store:
            shm_rep = parallel_query_support(
                study_dataset, strokes, n_chunks=4, max_workers=2, store=store
            )
        assert shm_rep.transport == "shm"
        np.testing.assert_array_equal(shm_rep.traj_mask, pickle_rep.traj_mask)

    def test_stale_store_falls_back(self, study_dataset, strokes):
        from repro.store import SharedArenaStore

        store = SharedArenaStore.publish(study_dataset)
        handle = store.handle
        store.unlink()
        store.close()
        rep = parallel_query_support(
            study_dataset, strokes, n_chunks=4, max_workers=2, store=handle
        )
        assert rep.transport == "pickle-fallback"
        serial = parallel_query_support(
            study_dataset, strokes, n_chunks=4, max_workers=0
        )
        assert serial.transport == "in-process"
        np.testing.assert_array_equal(rep.traj_mask, serial.traj_mask)
