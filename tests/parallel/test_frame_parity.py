"""Randomized render-transport parity harness.

One frame, three transports — serial in-process, pooled with pickle
ship-back, pooled with the shared output framebuffer — must agree to
the byte on every (tile, eye) framebuffer.  Each spec seeds its own
layout, brush set, time window and eye selection, so the suite sweeps
wall shapes (including degenerate 1-pixel tiles and chunky
bezel-clipped mullions), brushed and unbrushed frames, and worker
counts 1, 2 and 8.

Shared-framebuffer slots start zero-filled, which is *not* the
renderer's background color — byte equality with the serial frame
therefore also proves every slot pixel was actually written by a
worker (no blank or partially-written tiles).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.display.bezel import BezelSpec
from repro.display.viewport import Viewport
from repro.display.wall import DisplayWall
from repro.layout.cells import assign_sequential
from repro.layout.grid import BezelAwareGrid
from repro.parallel.tilerender import render_viewport_parallel
from repro.render.pipeline import WallRenderer
from repro.stereo.camera import Eye
from repro.synth.arena import Arena

BOTH = (Eye.LEFT, Eye.RIGHT)

#: (name, seed, wall kwargs, (grid cols, grid rows), n strokes,
#:  window fraction or None, eyes, max_workers)
SPECS = [
    (
        "two-panel-brushed", 0,
        dict(cols=2, rows=1, panel_px_width=64, panel_px_height=36),
        (4, 2), 2, None, BOTH, 2,
    ),
    (
        "single-panel-windowed", 1,
        dict(cols=1, rows=1, panel_px_width=64, panel_px_height=36),
        (3, 3), 1, 0.3, (Eye.LEFT,), 2,
    ),
    (
        "wide-wall-eight-workers", 2,
        dict(cols=3, rows=1, panel_px_width=48, panel_px_height=27),
        (5, 2), 2, 0.6, BOTH, 8,
    ),
    (
        "degenerate-one-px-tiles", 3,
        dict(cols=2, rows=1, panel_px_width=1, panel_px_height=24),
        (1, 2), 1, None, BOTH, 2,
    ),
    (
        "degenerate-one-px-rows", 4,
        dict(cols=1, rows=2, panel_px_width=32, panel_px_height=1),
        (2, 1), 1, None, (Eye.RIGHT,), 2,
    ),
    (
        "bezel-clipped-mullions", 5,
        dict(
            cols=2, rows=2, panel_px_width=40, panel_px_height=30,
            bezel=BezelSpec(left=0.02, right=0.02, top=0.015, bottom=0.015),
        ),
        (3, 3), 2, 0.5, BOTH, 2,
    ),
    (
        "single-worker-degenerates-to-serial", 6,
        dict(cols=2, rows=1, panel_px_width=40, panel_px_height=24),
        (2, 2), 1, None, BOTH, 1,
    ),
    (
        "unbrushed-frame", 7,
        dict(cols=2, rows=1, panel_px_width=48, panel_px_height=30),
        (4, 2), 0, None, BOTH, 2,
    ),
]


def _make_wall(**kw) -> DisplayWall:
    kw.setdefault("panel_width", 0.3)
    kw.setdefault("panel_height", 0.16875)
    kw.setdefault("bezel", BezelSpec())
    return DisplayWall(**kw)


def _seeded_canvas(seed: int, n_strokes: int, arena: Arena) -> BrushCanvas | None:
    """A deterministic random brush set inside the arena."""
    if n_strokes == 0:
        return None
    rng = np.random.default_rng(seed)
    canvas = BrushCanvas()
    r = arena.radius
    colors = ("red", "blue", "green")
    for i in range(n_strokes):
        cx, cy = rng.uniform(-0.6 * r, 0.6 * r, size=2)
        w, h = rng.uniform(0.15 * r, 0.5 * r, size=2)
        canvas.add(
            stroke_from_rect(
                (cx - w, cy - h), (cx + w, cy + h),
                rng.uniform(0.05 * r, 0.15 * r), colors[i % len(colors)],
            )
        )
    return canvas


def _assert_frames_equal(a, b, eyes):
    for eye in eyes:
        assert set(a.frames[eye]) == set(b.frames[eye])
        for key in a.frames[eye]:
            np.testing.assert_array_equal(
                a.frames[eye][key].data, b.frames[eye][key].data
            )


@pytest.mark.parametrize(
    "name,seed,wall_kw,grid_shape,n_strokes,window_frac,eyes,workers",
    SPECS,
    ids=[s[0] for s in SPECS],
)
def test_three_transports_bit_identical(
    study_dataset, name, seed, wall_kw, grid_shape, n_strokes,
    window_frac, eyes, workers,
):
    arena = Arena()
    viewport = Viewport(_make_wall(**wall_kw))
    grid = BezelAwareGrid(viewport, *grid_shape)
    renderer = WallRenderer(study_dataset, arena, viewport)
    assignment = assign_sequential(study_dataset, grid)
    canvas = _seeded_canvas(seed, n_strokes, arena)
    window = None if window_frac is None else TimeWindow.end(window_frac)

    # highlights evaluated once, shared by all three paths: any frame
    # difference is then attributable to the transport alone
    results = None
    if canvas is not None:
        engine = CoordinatedBrushingEngine(study_dataset)
        results = engine.query_all_colors(
            canvas, window=window, assignment=assignment
        )

    common = dict(eyes=eyes, canvas=canvas, results=results)
    serial = render_viewport_parallel(
        renderer, assignment, max_workers=0, **common
    )
    shipback = render_viewport_parallel(
        renderer, assignment, max_workers=workers, shared_fb=False, **common
    )
    sharedfb = render_viewport_parallel(
        renderer, assignment, max_workers=workers, shared_fb=True, **common
    )

    _assert_frames_equal(serial, shipback, eyes)
    _assert_frames_equal(serial, sharedfb, eyes)
    assert not shipback.degraded and not sharedfb.degraded
    if workers > 1:
        assert not shipback.shared_fb
        assert sharedfb.shared_fb
        assert sharedfb.n_batches == min(workers, sharedfb.n_jobs)
        assert set(sharedfb.stage_seconds) == {
            "dispatch", "render", "shipback", "assemble",
        }


def test_shared_fb_is_the_pooled_default(study_dataset):
    viewport = Viewport(_make_wall(cols=2, rows=1, panel_px_width=40,
                                   panel_px_height=24))
    grid = BezelAwareGrid(viewport, 2, 2)
    renderer = WallRenderer(study_dataset, Arena(), viewport)
    assignment = assign_sequential(study_dataset, grid)
    report = render_viewport_parallel(renderer, assignment, max_workers=2)
    assert report.shared_fb
    serial = render_viewport_parallel(renderer, assignment, max_workers=0)
    _assert_frames_equal(serial, report, BOTH)
