"""Tests for process-parallel tile rendering."""

import numpy as np
import pytest

from repro.display.bezel import BezelSpec
from repro.display.viewport import Viewport
from repro.display.wall import DisplayWall
from repro.layout.cells import assign_sequential
from repro.layout.grid import BezelAwareGrid
from repro.parallel.tilerender import render_viewport_parallel
from repro.render.pipeline import WallRenderer
from repro.stereo.camera import Eye
from repro.synth.arena import Arena


@pytest.fixture(scope="module")
def setup(study_dataset):
    wall = DisplayWall(
        cols=2, rows=1, panel_width=0.3, panel_height=0.16875,
        panel_px_width=120, panel_px_height=68, bezel=BezelSpec(),
    )
    viewport = Viewport(wall)
    grid = BezelAwareGrid(viewport, 4, 2)
    renderer = WallRenderer(study_dataset, Arena(), viewport)
    assignment = assign_sequential(study_dataset, grid)
    return renderer, assignment


class TestSerialPath:
    def test_report_structure(self, setup):
        renderer, assignment = setup
        report = render_viewport_parallel(renderer, assignment, max_workers=0)
        assert report.workers == 1
        assert report.n_jobs == 4  # 2 tiles x 2 eyes
        assert set(report.frames) == {Eye.LEFT, Eye.RIGHT}
        assert report.elapsed_s > 0

    def test_matches_pipeline_serial(self, setup):
        renderer, assignment = setup
        direct = renderer.render_viewport(assignment, eyes=(Eye.LEFT,))
        report = render_viewport_parallel(
            renderer, assignment, eyes=(Eye.LEFT,), max_workers=0
        )
        np.testing.assert_array_equal(
            direct[Eye.LEFT][(0, 0)].data, report.frames[Eye.LEFT][(0, 0)].data
        )


class TestParallelPath:
    def test_parallel_matches_serial_exactly(self, setup):
        renderer, assignment = setup
        serial = render_viewport_parallel(renderer, assignment, max_workers=0)
        parallel = render_viewport_parallel(renderer, assignment, max_workers=2)
        assert parallel.workers == 2
        for eye in (Eye.LEFT, Eye.RIGHT):
            for key in serial.frames[eye]:
                np.testing.assert_array_equal(
                    serial.frames[eye][key].data, parallel.frames[eye][key].data
                )


class TestSharedStoreTransport:
    def test_store_path_bit_identical(self, setup, study_dataset):
        from repro.store import SharedArenaStore

        renderer, assignment = setup
        serial = render_viewport_parallel(renderer, assignment, max_workers=0)
        with SharedArenaStore.publish(study_dataset) as store:
            shm = render_viewport_parallel(
                renderer, assignment, max_workers=2, store=store
            )
            assert not shm.degraded  # the handle attached; no fallback
            for eye in (Eye.LEFT, Eye.RIGHT):
                for key in serial.frames[eye]:
                    np.testing.assert_array_equal(
                        serial.frames[eye][key].data, shm.frames[eye][key].data
                    )

    def test_unattachable_store_falls_back_to_pickle(self, setup, study_dataset):
        from repro.store import SharedArenaStore

        renderer, assignment = setup
        serial = render_viewport_parallel(renderer, assignment, max_workers=0)
        store = SharedArenaStore.publish(study_dataset)
        handle = store.handle
        store.unlink()
        store.close()  # the handle is now stale
        report = render_viewport_parallel(
            renderer, assignment, max_workers=2, store=handle
        )
        # degradation ladder: attach failure recorded, pickle path taken,
        # frames still bit-identical
        assert report.degradation.by_kind() == {"shm-attach-failure": 1}
        assert report.degradation.by_action() == {"pickle-fallback": 1}
        for eye in (Eye.LEFT, Eye.RIGHT):
            for key in serial.frames[eye]:
                np.testing.assert_array_equal(
                    serial.frames[eye][key].data, report.frames[eye][key].data
                )


class TestEngineResults:
    def test_engine_evaluates_once_in_parent(self, setup, study_dataset, arena):
        from repro.core.brush import stroke_from_rect
        from repro.core.canvas import BrushCanvas
        from repro.core.engine import CoordinatedBrushingEngine

        renderer, assignment = setup
        engine = CoordinatedBrushingEngine(study_dataset)
        canvas = BrushCanvas()
        r = arena.radius
        canvas.add(
            stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red")
        )
        # explicit results vs engine-computed results: identical frames
        results = engine.query_all_colors(canvas, assignment=assignment)
        explicit = render_viewport_parallel(
            renderer, assignment, eyes=(Eye.LEFT,), canvas=canvas,
            results=results, max_workers=0,
        )
        via_engine = render_viewport_parallel(
            renderer, assignment, eyes=(Eye.LEFT,), canvas=canvas,
            engine=engine, max_workers=0,
        )
        for key in explicit.frames[Eye.LEFT]:
            np.testing.assert_array_equal(
                explicit.frames[Eye.LEFT][key].data,
                via_engine.frames[Eye.LEFT][key].data,
            )
        # the engine path ran through the stage cache: the second render
        # re-queried with every stage served warm
        assert engine.cache.stats.hits > 0

    def test_empty_canvas_skips_query(self, setup, study_dataset):
        from repro.core.canvas import BrushCanvas
        from repro.core.engine import CoordinatedBrushingEngine

        renderer, assignment = setup
        engine = CoordinatedBrushingEngine(study_dataset)
        report = render_viewport_parallel(
            renderer, assignment, eyes=(Eye.LEFT,), canvas=BrushCanvas(),
            engine=engine, max_workers=0,
        )
        assert set(report.frames) == {Eye.LEFT}
        assert engine.cache_stats()["misses"] == 0
