"""Chaos: the shared-framebuffer transport under injected failures.

Every scenario asserts the same two invariants:

* the assembled frame is **byte-identical** to the serial render — a
  crashed or disavowed worker never leaves a torn, stale, or blank
  tile (slots start zero-filled, which is not the background color, so
  byte parity proves every pixel was rewritten by a surviving
  attempt);
* the frame block is always unlinked — the ``finally`` teardown plus
  the autouse leak fixture make a leaked ``/dev/shm`` segment a test
  failure on every path, including the degraded ones.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.display.bezel import BezelSpec
from repro.display.viewport import Viewport
from repro.display.wall import DisplayWall
from repro.layout.cells import assign_sequential
from repro.layout.grid import BezelAwareGrid
from repro.parallel import tilerender
from repro.parallel.tilerender import render_viewport_parallel
from repro.render.pipeline import WallRenderer
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy
from repro.stereo.camera import Eye
from repro.store import live_blocks
from repro.store.shm import BLOCK_PREFIX, StoreAttachError
from repro.synth.arena import Arena

pytestmark = pytest.mark.chaos

FAST = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def setup(study_dataset):
    wall = DisplayWall(
        cols=2, rows=1, panel_width=0.3, panel_height=0.16875,
        panel_px_width=64, panel_px_height=36, bezel=BezelSpec(),
    )
    viewport = Viewport(wall)
    grid = BezelAwareGrid(viewport, 4, 2)
    renderer = WallRenderer(study_dataset, Arena(), viewport)
    assignment = assign_sequential(study_dataset, grid)
    canvas = BrushCanvas()
    r = Arena().radius
    canvas.add(
        stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red")
    )
    serial = render_viewport_parallel(
        renderer, assignment, canvas=canvas, max_workers=0
    )
    return renderer, assignment, canvas, serial


def _frames_equal(a, b):
    for eye in (Eye.LEFT, Eye.RIGHT):
        assert set(a.frames[eye]) == set(b.frames[eye])
        for key in a.frames[eye]:
            np.testing.assert_array_equal(
                a.frames[eye][key].data, b.frames[eye][key].data
            )


def _no_frame_blocks_left():
    assert not any("fb_" in name for name in live_blocks())
    shm = Path("/dev/shm")
    if shm.is_dir():
        assert not list(shm.glob(f"{BLOCK_PREFIX}fb_*"))


class TestSharedFrameBufferChaos:
    def test_worker_crash_leaves_no_blank_tile(self, setup):
        """Batch 0's worker hard-exits before writing; the respawned
        worker rewrites every slot of the batch."""
        renderer, assignment, canvas, serial = setup
        plan = FaultPlan(specs=(FaultSpec("crash", job=0, times=1),))
        report = render_viewport_parallel(
            renderer, assignment, canvas=canvas, max_workers=2,
            fault_plan=plan, retry_policy=FAST, shared_fb=True,
        )
        assert report.shared_fb and report.degraded
        assert "injected-crash" in report.degradation.by_kind()
        _frames_equal(serial, report)
        _no_frame_blocks_left()

    def test_disavowed_write_is_overwritten(self, setup):
        """A ``corrupt`` fault runs the batch to completion — the slots
        ARE written — then disavows the result.  The retry must
        overwrite the already-written slots (determinism makes the
        rewrite byte-identical), so the frame shows no trace of the
        disavowed attempt."""
        renderer, assignment, canvas, serial = setup
        plan = FaultPlan(specs=(FaultSpec("corrupt", job=1, times=1),))
        report = render_viewport_parallel(
            renderer, assignment, canvas=canvas, max_workers=2,
            fault_plan=plan, retry_policy=FAST, shared_fb=True,
        )
        assert report.shared_fb and report.degraded
        assert "injected-corrupt" in report.degradation.by_kind()
        _frames_equal(serial, report)
        _no_frame_blocks_left()

    def test_total_failure_completes_via_shipback_fallback(self, setup):
        """Every attempt of every batch errors: the frame completes on
        the in-parent serial rung, which ships pixels through return
        values (it never writes slots) — and still tears down the
        frame block."""
        renderer, assignment, canvas, serial = setup
        plan = FaultPlan(specs=(FaultSpec("error", p=1.0),))
        report = render_viewport_parallel(
            renderer, assignment, canvas=canvas, max_workers=2,
            fault_plan=plan, retry_policy=FAST, shared_fb=True,
        )
        assert report.shared_fb
        assert report.degradation.n_fallbacks == report.n_batches == 2
        _frames_equal(serial, report)
        assert "assemble" in report.stage_seconds
        _no_frame_blocks_left()

    def test_framebuf_create_failure_degrades_to_shipback(self, setup, monkeypatch):
        """If the frame block cannot be created at all, the render
        degrades to the pickle ship-back transport — never a failed
        frame, never a leaked block."""
        renderer, assignment, canvas, serial = setup

        def refuse(slots):
            raise StoreAttachError("injected: /dev/shm full")

        monkeypatch.setattr(tilerender, "create_framebuffer", refuse)
        report = render_viewport_parallel(
            renderer, assignment, canvas=canvas, max_workers=2,
            retry_policy=FAST, shared_fb=True,
        )
        assert not report.shared_fb
        assert report.degradation.by_kind() == {"framebuf-create-failure": 1}
        assert report.degradation.by_action() == {"shipback-fallback": 1}
        _frames_equal(serial, report)
        _no_frame_blocks_left()

    def test_crash_with_store_transport(self, setup, study_dataset):
        """Crash recovery composes with the shared-store input
        transport: both blocks (arena + frame) survive the pool death
        and both are torn down afterwards."""
        from repro.store import SharedArenaStore

        renderer, assignment, canvas, serial = setup
        plan = FaultPlan(specs=(FaultSpec("crash", job=1, times=1),))
        with SharedArenaStore.publish(study_dataset) as store:
            report = render_viewport_parallel(
                renderer, assignment, canvas=canvas, max_workers=2,
                fault_plan=plan, retry_policy=FAST, store=store,
            )
            assert report.shared_fb and report.degraded
            _frames_equal(serial, report)
        _no_frame_blocks_left()
