"""Tests for work partitioning."""

import numpy as np
import pytest

from repro.parallel.partition import chunk_indices, partition_jobs_by_cost


class TestChunkIndices:
    def test_partition_complete(self):
        chunks = chunk_indices(10, 3)
        joined = np.concatenate(chunks)
        np.testing.assert_array_equal(joined, np.arange(10))

    def test_balanced(self):
        chunks = chunk_indices(10, 3)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        chunks = chunk_indices(2, 5)
        assert len(chunks) == 2
        assert all(len(c) == 1 for c in chunks)

    def test_zero_items(self):
        chunks = chunk_indices(0, 3)
        assert len(chunks) == 1 and len(chunks[0]) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)
        with pytest.raises(ValueError):
            chunk_indices(5, 0)


class TestLpt:
    def test_all_jobs_assigned_once(self):
        costs = np.array([5, 3, 8, 1, 9, 2], dtype=float)
        buckets = partition_jobs_by_cost(costs, 3)
        assigned = sorted(j for b in buckets for j in b)
        assert assigned == list(range(6))

    def test_balance_quality(self):
        rng = np.random.default_rng(0)
        costs = rng.uniform(1, 10, size=40)
        buckets = partition_jobs_by_cost(costs, 4)
        loads = [costs[b].sum() for b in buckets]
        # LPT guarantee: max load <= (4/3 - 1/3m) * optimal; sanity-check
        # against the trivial lower bound total/m
        assert max(loads) <= (costs.sum() / 4) * 4 / 3 + costs.max()

    def test_heaviest_job_alone_when_dominant(self):
        costs = np.array([100.0, 1.0, 1.0, 1.0])
        buckets = partition_jobs_by_cost(costs, 2)
        heavy_bucket = next(b for b in buckets if 0 in b)
        assert heavy_bucket == [0]

    def test_more_workers_than_jobs(self):
        buckets = partition_jobs_by_cost(np.array([1.0, 2.0]), 5)
        non_empty = [b for b in buckets if b]
        assert len(non_empty) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_jobs_by_cost(np.array([-1.0]), 2)
        with pytest.raises(ValueError):
            partition_jobs_by_cost(np.array([1.0]), 0)
