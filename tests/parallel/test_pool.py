"""Tests for the worker pool wrapper."""

import os

import pytest

from repro.parallel.pool import WorkerPool, default_workers, pool_map


def _square(x):
    return x * x


def _pid_of(_):
    return os.getpid()


class TestWorkerPool:
    def test_serial_mode(self):
        with WorkerPool(0) as pool:
            assert pool.serial
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_single_worker_serial(self):
        with WorkerPool(1) as pool:
            assert pool.serial

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(-1)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_parallel_matches_serial(self):
        items = list(range(20))
        with WorkerPool(2) as pool:
            parallel = pool.map(_square, items)
        with WorkerPool(0) as pool:
            serial = pool.map(_square, items)
        assert parallel == serial

    def test_parallel_uses_other_processes(self):
        with WorkerPool(2) as pool:
            pids = set(pool.map(_pid_of, range(8)))
        assert os.getpid() not in pids

    def test_order_preserved(self):
        with WorkerPool(2) as pool:
            out = pool.map(_square, [3, 1, 2])
        assert out == [9, 1, 4]


class TestChunksizeContract:
    def test_serial_chunking_preserves_order(self):
        items = list(range(17))
        expected = [x * x for x in items]
        for chunksize in (1, 2, 5, 17, 100):
            with WorkerPool(0) as pool:
                assert pool.map(_square, items, chunksize=chunksize) == expected

    def test_serial_and_pooled_agree_for_every_chunksize(self):
        items = list(range(13))
        for chunksize in (1, 3, 7):
            with WorkerPool(2) as pool:
                pooled = pool.map(_square, items, chunksize=chunksize)
            assert pooled == WorkerPool(0).map(_square, items, chunksize=chunksize)

    def test_invalid_chunksize_rejected_serially_too(self):
        # the pooled executor rejects chunksize < 1; the serial path
        # must not mask that for code tested with max_workers=0
        for bad in (0, -1):
            with pytest.raises(ValueError, match="chunksize"):
                WorkerPool(0).map(_square, [1], chunksize=bad)
            with WorkerPool(2) as pool:
                with pytest.raises(ValueError, match="chunksize"):
                    pool.map(_square, [1], chunksize=bad)


class TestPoolMap:
    def test_one_shot(self):
        assert pool_map(_square, [2, 4], max_workers=0) == [4, 16]


class TestLifecycleGuards:
    def test_map_outside_context_raises(self):
        pool = WorkerPool(2)
        with pytest.raises(RuntimeError, match="silently run serial"):
            pool.map(_square, [1, 2, 3])

    def test_map_after_exit_raises(self):
        with WorkerPool(2) as pool:
            pass
        with pytest.raises(RuntimeError):
            pool.map(_square, [1])

    def test_serial_pool_needs_no_context(self):
        # serial mode has no executor to forget: plain calls stay fine
        assert WorkerPool(0).map(_square, [2]) == [4]
