"""Parallel-render fixtures: no test may leak shared memory.

The pooled render path creates a shared framebuffer block per frame
(and may attach a shared arena store); the autouse fixture snapshots
the in-process block registry and ``/dev/shm`` around each test and
fails on any leftover — the same enforcement the store suite applies,
now covering the render transport too.
"""

from __future__ import annotations

import gc
from pathlib import Path

import pytest

from repro.store import live_blocks
from repro.store.shm import BLOCK_PREFIX

_SHM_DIR = Path("/dev/shm")


def _shm_files() -> set[str]:
    if not _SHM_DIR.is_dir():
        return set()
    return {p.name for p in _SHM_DIR.glob(f"{BLOCK_PREFIX}*")}


@pytest.fixture(autouse=True)
def no_leaked_blocks():
    """Fail any parallel test that leaks an open handle or an unlinked
    /dev/shm segment (frame blocks must die with their frame)."""
    handles_before = set(live_blocks())
    files_before = _shm_files()
    yield
    gc.collect()
    leaked_handles = set(live_blocks()) - handles_before
    assert not leaked_handles, f"leaked open SharedBlock handles: {leaked_handles}"
    leaked_files = _shm_files() - files_before
    assert not leaked_files, f"leaked /dev/shm segments: {leaked_files}"
