"""Property-based tests (hypothesis) on core invariants.

Each property encodes an invariant DESIGN.md calls out: brushing is
monotone in brush area; windowed query masks are subsets; resampling
preserves endpoints and monotone time; parallax is antisymmetric
between eyes; layout cells never straddle bezels or overlap; SOM
quantization error is non-increasing at small radius; Douglas-Peucker
error stays within tolerance; coordinate mappings round-trip.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.brush import BrushStroke
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.display.coords import CoordinateMapper
from repro.stereo.camera import Eye, StereoCamera
from repro.synth.arena import Arena
from repro.trajectory.model import Trajectory
from repro.trajectory.resample import resample_by_count, resample_uniform_dt
from repro.trajectory.simplify import douglas_peucker, simplification_error

# ---------------------------------------------------------------------------
# strategies


@st.composite
def trajectories(draw, max_samples=60):
    n = draw(st.integers(min_value=2, max_value=max_samples))
    xs = draw(
        arrays(
            np.float64,
            (n, 2),
            elements=st.floats(-0.5, 0.5, allow_nan=False, allow_infinity=False),
        )
    )
    dts = draw(
        arrays(
            np.float64,
            (n - 1,),
            elements=st.floats(0.01, 2.0, allow_nan=False, allow_infinity=False),
        )
    )
    times = np.concatenate([[0.0], np.cumsum(dts)])
    return Trajectory(xs, times)


@st.composite
def strokes(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    centers = draw(
        arrays(
            np.float64,
            (k, 2),
            elements=st.floats(-0.5, 0.5, allow_nan=False, allow_infinity=False),
        )
    )
    radius = draw(st.floats(0.01, 0.3, allow_nan=False))
    return BrushStroke(centers, radius, "red")


@st.composite
def cell_rects(draw):
    x0 = draw(st.floats(-5.0, 5.0, allow_nan=False))
    y0 = draw(st.floats(-5.0, 5.0, allow_nan=False))
    w = draw(st.floats(0.05, 2.0, allow_nan=False))
    h = draw(st.floats(0.05, 2.0, allow_nan=False))
    return (x0, y0, x0 + w, y0 + h)


# ---------------------------------------------------------------------------
# trajectory invariants


class TestResamplingProperties:
    @given(traj=trajectories(), n=st.integers(2, 40))
    @settings(max_examples=60, deadline=None)
    def test_by_count_endpoints_and_monotone_time(self, traj, n):
        rs = resample_by_count(traj, n)
        assert rs.n_samples == n
        np.testing.assert_allclose(rs.positions[0], traj.positions[0], atol=1e-9)
        np.testing.assert_allclose(rs.positions[-1], traj.positions[-1], atol=1e-9)
        assert np.all(np.diff(rs.times) > 0)

    @given(traj=trajectories(), dt=st.floats(0.05, 3.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_uniform_dt_endpoints(self, traj, dt):
        rs = resample_uniform_dt(traj, dt)
        np.testing.assert_allclose(rs.positions[-1], traj.positions[-1], atol=1e-9)
        assert rs.times[-1] == pytest.approx(traj.times[-1])

    @given(traj=trajectories())
    @settings(max_examples=60, deadline=None)
    def test_resampled_points_in_convex_hull_box(self, traj):
        rs = resample_by_count(traj, 16)
        lo, hi = traj.bounding_box()
        assert np.all(rs.positions >= lo - 1e-9)
        assert np.all(rs.positions <= hi + 1e-9)


class TestSimplifyProperties:
    @given(traj=trajectories(), eps=st.floats(1e-4, 0.2, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_dp_error_within_tolerance(self, traj, eps):
        s = douglas_peucker(traj, eps)
        assert s.n_samples <= traj.n_samples
        assert simplification_error(traj, s) <= eps + 1e-9

    @given(traj=trajectories())
    @settings(max_examples=50, deadline=None)
    def test_dp_monotone_in_eps(self, traj):
        n_small = douglas_peucker(traj, 0.01).n_samples
        n_large = douglas_peucker(traj, 0.1).n_samples
        assert n_large <= n_small


# ---------------------------------------------------------------------------
# stereo invariants


class TestStereoProperties:
    @given(
        z=st.floats(-1.0, 1.0, allow_nan=False),
        sep=st.floats(0.01, 0.2, allow_nan=False),
        dist=st.floats(1.5, 10.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_parallax_antisymmetric_between_eyes(self, z, sep, dist):
        cam = StereoCamera(eye_separation=sep, viewer_distance=dist)
        p = np.array([[0.3, -0.2, z]])
        left = cam.project_points(p, Eye.LEFT)[0, 0]
        right = cam.project_points(p, Eye.RIGHT)[0, 0]
        assert left - 0.3 == pytest.approx(-(right - 0.3), abs=1e-12)

    @given(z=st.floats(0.0, 0.5, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_rendered_parallax_sign_matches_depth(self, z):
        cam = StereoCamera()
        assert float(cam.rendered_parallax(z)) >= 0.0
        assert float(cam.rendered_parallax(-z)) <= 0.0


# ---------------------------------------------------------------------------
# coordinate mapping invariants


class TestMapperProperties:
    @given(
        rect=cell_rects(),
        pts=arrays(
            np.float64,
            (8, 2),
            elements=st.floats(-0.5, 0.5, allow_nan=False),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, rect, pts):
        mapper = CoordinateMapper(Arena(), rect)
        back = mapper.wall_to_arena(mapper.arena_to_wall(pts))
        np.testing.assert_allclose(back, pts, atol=1e-9)

    @given(rect=cell_rects())
    @settings(max_examples=40, deadline=None)
    def test_arena_stays_inside_cell(self, rect):
        mapper = CoordinateMapper(Arena(), rect)
        theta = np.linspace(0, 2 * np.pi, 32)
        rim = 0.5 * np.stack([np.cos(theta), np.sin(theta)], axis=1)
        w = mapper.arena_to_wall(rim)
        x0, y0, x1, y1 = rect
        assert np.all(w[:, 0] >= x0 - 1e-9) and np.all(w[:, 0] <= x1 + 1e-9)
        assert np.all(w[:, 1] >= y0 - 1e-9) and np.all(w[:, 1] <= y1 + 1e-9)


# ---------------------------------------------------------------------------
# query invariants (on a fixed shared dataset for speed)


@pytest.fixture(scope="module")
def small_engine(study_dataset):
    sub = study_dataset[:40]
    return CoordinatedBrushingEngine(sub)


class TestQueryProperties:
    @given(stroke=strokes(), grow=st.floats(1.05, 3.0, allow_nan=False))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_brushing_monotone_in_area(self, small_engine, stroke, grow):
        """A strictly larger brush never highlights fewer segments."""
        small = BrushCanvas()
        small.add(stroke)
        big = BrushCanvas()
        big.add(BrushStroke(stroke.centers, stroke.radius * grow, stroke.color))
        r_small = small_engine.query(small, "red")
        r_big = small_engine.query(big, "red")
        assert np.all(r_small.segment_mask <= r_big.segment_mask)
        assert np.all(r_small.traj_mask <= r_big.traj_mask)

    @given(
        stroke=strokes(),
        f0=st.floats(0.0, 0.5, allow_nan=False),
        span=st.floats(0.05, 0.5, allow_nan=False),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_windowed_mask_subset_of_full(self, small_engine, stroke, f0, span):
        canvas = BrushCanvas()
        canvas.add(stroke)
        window = TimeWindow.fraction(f0, min(1.0, f0 + span))
        full = small_engine.query(canvas, "red")
        windowed = small_engine.query(canvas, "red", window=window)
        assert np.all(windowed.segment_mask <= full.segment_mask)

    @given(stroke=strokes())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_highlight_time_bounded_by_duration(self, small_engine, stroke):
        canvas = BrushCanvas()
        canvas.add(stroke)
        res = small_engine.query(canvas, "red")
        for i, traj in enumerate(small_engine.dataset):
            assert res.traj_highlight_time[i] <= traj.duration + 1e-9


# ---------------------------------------------------------------------------
# layout invariants


class TestLayoutProperties:
    @given(cols=st.integers(1, 40), rows=st.integers(1, 15))
    @settings(max_examples=40, deadline=None)
    def test_bezel_aware_never_straddles(self, viewport, cols, rows):
        from repro.layout.grid import BezelAwareGrid

        grid = BezelAwareGrid(viewport, cols, rows)
        assert grid.straddle_count() == 0
        assert grid.n_cells == cols * rows

    @given(cols=st.integers(2, 30), rows=st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_cells_disjoint_interiors(self, viewport, cols, rows):
        from repro.layout.grid import BezelAwareGrid

        grid = BezelAwareGrid(viewport, cols, rows)
        rects = grid.rects()
        # sample interior points; each must be inside exactly one cell
        mids = np.stack(
            [(rects[:, 0] + rects[:, 2]) / 2, (rects[:, 1] + rects[:, 3]) / 2], axis=1
        )
        for i, (mx, my) in enumerate(mids):
            inside = (
                (rects[:, 0] < mx)
                & (mx < rects[:, 2])
                & (rects[:, 1] < my)
                & (my < rects[:, 3])
            )
            assert inside.sum() == 1 and inside[i]


# ---------------------------------------------------------------------------
# SOM invariant


class TestSomProperty:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_quantization_error_tail_non_increasing(self, seed):
        from repro.cluster.som import SelfOrganizingMap

        rng = np.random.default_rng(seed)
        data = rng.normal(size=(120, 3))
        som = SelfOrganizingMap(3, 3, 3, seed=seed)
        log = som.fit(data, epochs=12)
        tail = log.quantization_error[-4:]
        assert all(b <= a + 1e-9 for a, b in zip(tail[:-1], tail[1:]))
