"""Tests for multi-scale (cluster-level) visual queries."""

import numpy as np
import pytest

from repro.cluster.model import fit_som_clusters
from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.multiscale import MultiscaleExplorer


@pytest.fixture(scope="module")
def model(study_dataset):
    return fit_som_clusters(study_dataset, rows=4, cols=6, epochs=8, seed=0)


@pytest.fixture(scope="module")
def explorer(model):
    return MultiscaleExplorer(model)


@pytest.fixture()
def west_canvas(arena):
    c = BrushCanvas()
    r = arena.radius
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), radius=0.12 * r, color="red"))
    return c


class TestOverview:
    def test_query_overview_runs(self, explorer, west_canvas):
        res = explorer.query_overview(west_canvas)
        assert res.n_displayed == len(explorer.model.averages)

    def test_interesting_clusters_are_valid(self, explorer, west_canvas, model):
        clusters = explorer.interesting_clusters(west_canvas)
        assert len(clusters) > 0
        for c in clusters:
            assert 0 <= c < model.n_clusters
            assert len(model.members_of(int(c))) > 0


class TestZoom:
    def test_zoom_engine_cached(self, explorer, west_canvas):
        clusters = explorer.interesting_clusters(west_canvas)
        c = int(clusters[0])
        e1 = explorer.zoom_engine(c)
        e2 = explorer.zoom_engine(c)
        assert e1 is e2

    def test_query_cluster_members_only(self, explorer, west_canvas, model):
        clusters = explorer.interesting_clusters(west_canvas)
        c = int(clusters[0])
        res = explorer.query_cluster(c, west_canvas)
        assert res.traj_mask.shape == (len(model.members_of(c)),)

    def test_empty_cluster_rejected(self, explorer, model):
        sizes = model.cluster_sizes()
        empty = np.flatnonzero(sizes == 0)
        if len(empty) == 0:
            pytest.skip("no empty cluster in this fit")
        with pytest.raises(ValueError):
            explorer.zoom_engine(int(empty[0]))


class TestDrillDown:
    def test_drill_down_caps_breadth(self, explorer, west_canvas):
        results = explorer.drill_down(west_canvas, max_clusters=2)
        assert len(results) <= 2

    def test_drill_down_keys_are_interesting(self, explorer, west_canvas):
        interesting = set(explorer.interesting_clusters(west_canvas).tolist())
        results = explorer.drill_down(west_canvas)
        assert set(results).issubset(interesting)


class TestFidelity:
    def test_support_estimate_reasonable(self, explorer, west_canvas, study_dataset):
        exact_engine = CoordinatedBrushingEngine(study_dataset)
        report = explorer.support_estimate_error(
            west_canvas, exact_engine=exact_engine
        )
        assert 0.0 <= report["cluster_level_support"] <= 1.0
        assert report["abs_error"] == pytest.approx(
            abs(report["cluster_level_support"] - report["exact_support"])
        )
        # §VI-C: cluster granularity changes the analysis but should
        # remain indicative — within 40 points of exact here
        assert report["abs_error"] < 0.4
