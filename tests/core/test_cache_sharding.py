"""ShardedStageCache: parity with the single cache, and thread safety.

The sharded cache is a drop-in for :class:`StageCache` with one extra
property — concurrent callers are safe — and these tests pin the
"drop-in" half precisely: identical hit/miss/taint behavior per key
(a key always lands on one shard, so per-key semantics cannot differ),
exact counter conservation under concurrency, and the epoch-in-key
staleness story surviving the stripe split (old-epoch entries are
unreachable by new-epoch keys and eagerly droppable across shards).
"""

from __future__ import annotations

import threading

import pytest

from repro.core.plan.cache import ShardedStageCache, StageCache


def _key(stage: str, ds_epoch: int, extra: int = 0) -> tuple:
    """Planner-shaped keys: ``(stage, ("ds", epoch), ...)``."""
    return (stage, ("ds", ds_epoch), ("cv", extra))


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedStageCache(0)
        with pytest.raises(ValueError):
            ShardedStageCache(8, shards=0)

    def test_shard_count_and_capacity(self):
        cache = ShardedStageCache(100, shards=8)
        assert cache.n_shards == 8
        assert cache.capacity == 100
        # per-shard capacity is ceil(100/8): aggregate >= requested
        assert sum(s.capacity for s in cache._shards) >= 100

    def test_single_shard_degenerates_to_plain_cache_semantics(self):
        single = StageCache(16)
        sharded = ShardedStageCache(16, shards=1)
        for i in range(20):  # overflows capacity: identical LRU eviction
            single.put(_key("s", 0, i), i)
            sharded.put(_key("s", 0, i), i)
        assert single.keys() == sharded.keys()
        assert single.stats.evictions == sharded.stats.evictions


class TestParityWithSingleCache:
    """Same operation sequence, same per-key outcomes (no eviction)."""

    def _drive(self, cache) -> list:
        observed = []
        for i in range(30):
            key = _key("temporal_mask", 3, i % 10)
            value, found = cache.lookup(key)
            if not found:
                cache.put(key, i % 10)
                value = i % 10
            observed.append((key, value))
        return observed

    def test_hit_miss_parity(self):
        single, sharded = StageCache(64), ShardedStageCache(64, shards=8)
        assert self._drive(single) == self._drive(sharded)
        assert single.stats.hits == sharded.stats.hits == 20
        assert single.stats.misses == sharded.stats.misses == 10
        assert len(single) == len(sharded) == 10
        assert single.stats.hit_rate == sharded.stats.hit_rate
        for key, value in self._drive(single):
            assert key in sharded
            assert sharded.get(key) == value

    def test_taint_parity_invalidate_by_epoch(self):
        single, sharded = StageCache(64), ShardedStageCache(64, shards=8)
        for cache in (single, sharded):
            for e in (1, 1, 2, 2, 2):
                for i in range(3):
                    cache.put(_key("combine", e, i), (e, i))
        # eager drop of everything not at epoch 2, across all shards
        assert single.invalidate(dataset_epoch=2) == sharded.invalidate(
            dataset_epoch=2
        )
        assert sorted(single.keys()) == sorted(sharded.keys())
        assert all(k[1] == ("ds", 2) for k in sharded.keys())
        assert single.stats.invalidations == sharded.stats.invalidations

    def test_clear_parity(self):
        sharded = ShardedStageCache(64, shards=8)
        for i in range(12):
            sharded.put(_key("s", 0, i), i)
        sharded.clear()
        assert len(sharded) == 0
        assert sharded.stats.invalidations == 12


class TestStaleEpochEntries:
    def test_old_epoch_entries_unreachable_after_epoch_bump(self):
        """The rollover story: epoch-tagged keys make pre-swap entries
        invisible to post-swap queries — no flush required — while a
        pinned old-epoch session still hits them."""
        cache = ShardedStageCache(64, shards=8)
        old, new = 7, 12
        cache.put(_key("aggregate", old), "old-epoch-output")
        # a new-epoch query computes a *different* key: structural miss
        value, found = cache.lookup(_key("aggregate", new))
        assert not found
        # the pinned old-epoch session still hits its entry
        assert cache.get(_key("aggregate", old)) == "old-epoch-output"
        # retirement hygiene: one eager sweep drops the stale entries
        dropped = cache.invalidate(dataset_epoch=new)
        assert dropped == 1
        assert _key("aggregate", old) not in cache


class TestConcurrency:
    def test_counter_conservation_under_concurrent_load(self):
        """8 threads, disjoint key ranges: totals are exact (every
        lookup is one hit or one miss, nothing torn or lost)."""
        cache = ShardedStageCache(1024, shards=8)
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)
        errors: list[BaseException] = []

        def work(tid: int):
            try:
                barrier.wait()
                for i in range(per_thread):
                    key = _key(f"stage-{tid}", tid, i % 50)
                    value, found = cache.lookup(key)
                    if found:
                        assert value == (tid, i % 50)
                    else:
                        cache.put(key, (tid, i % 50))
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = cache.stats
        assert stats.hits + stats.misses == n_threads * per_thread
        # disjoint ranges, ample capacity: exactly 50 misses per thread
        assert stats.misses == n_threads * 50
        assert stats.evictions == 0
        assert len(cache) == n_threads * 50

    def test_concurrent_same_key_last_put_wins_consistently(self):
        """Contending on one key never corrupts: every get returns some
        thread's complete value, never a torn mix."""
        cache = ShardedStageCache(16, shards=4)
        key = _key("hot", 1)
        barrier = threading.Barrier(8)
        errors: list[BaseException] = []

        def work(tid: int):
            try:
                barrier.wait()
                for i in range(200):
                    cache.put(key, (tid, i))
                    got = cache.get(key)
                    assert isinstance(got, tuple) and len(got) == 2
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
