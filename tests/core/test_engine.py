"""Tests for the coordinated-brushing engine."""

import numpy as np
import pytest

from repro.core.brush import BrushStroke, stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.layout.cells import assign_groups_to_cells
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups


@pytest.fixture(scope="module")
def engine(study_dataset):
    return CoordinatedBrushingEngine(study_dataset)


@pytest.fixture()
def west_canvas(arena):
    c = BrushCanvas()
    r = arena.radius
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), radius=0.12 * r, color="red"))
    return c


class TestBasics:
    def test_empty_dataset_rejected(self):
        from repro.trajectory.dataset import TrajectoryDataset

        with pytest.raises(ValueError):
            CoordinatedBrushingEngine(TrajectoryDataset())

    def test_empty_canvas_no_highlights(self, engine):
        res = engine.query(BrushCanvas(), "red")
        assert not res.segment_mask.any()
        assert not res.traj_mask.any()
        assert res.n_highlighted == 0

    def test_masks_shapes(self, engine, west_canvas, study_dataset):
        res = engine.query(west_canvas, "red")
        assert res.segment_mask.shape == (study_dataset.packed().n_segments,)
        assert res.traj_mask.shape == (len(study_dataset),)
        assert res.traj_highlight_time.shape == (len(study_dataset),)

    def test_wrong_color_finds_nothing(self, engine, west_canvas):
        res = engine.query(west_canvas, "green")
        assert not res.traj_mask.any()

    def test_elapsed_recorded(self, engine, west_canvas):
        res = engine.query(west_canvas, "red")
        assert res.elapsed_s > 0


class TestAggregation:
    def test_traj_mask_consistent_with_segments(self, engine, west_canvas, study_dataset):
        res = engine.query(west_canvas, "red")
        packed = study_dataset.packed()
        for i in range(len(study_dataset)):
            rows = packed.rows_of(i)
            assert res.traj_mask[i] == res.segment_mask[rows].any()

    def test_highlight_time_matches_segment_sums(self, engine, west_canvas, study_dataset):
        res = engine.query(west_canvas, "red")
        packed = study_dataset.packed()
        for i in (0, 3, 50):
            rows = packed.rows_of(i)
            dt = (packed.t1[rows] - packed.t0[rows])[res.segment_mask[rows]]
            assert res.traj_highlight_time[i] == pytest.approx(dt.sum())

    def test_highlight_time_zero_iff_unmasked(self, engine, west_canvas):
        res = engine.query(west_canvas, "red")
        np.testing.assert_array_equal(res.traj_mask, res.traj_highlight_time > 0)


class TestIndexEquivalence:
    def test_indexed_equals_unindexed(self, study_dataset, west_canvas):
        fast = CoordinatedBrushingEngine(study_dataset, use_index=True)
        slow = CoordinatedBrushingEngine(study_dataset, use_index=False)
        w = TimeWindow.end(0.2)
        r_fast = fast.query(west_canvas, "red", window=w)
        r_slow = slow.query(west_canvas, "red", window=w)
        np.testing.assert_array_equal(r_fast.segment_mask, r_slow.segment_mask)
        np.testing.assert_array_equal(r_fast.traj_mask, r_slow.traj_mask)


class TestTemporalComposition:
    def test_windowed_is_subset(self, engine, west_canvas):
        full = engine.query(west_canvas, "red")
        windowed = engine.query(west_canvas, "red", window=TimeWindow.end(0.1))
        assert np.all(windowed.segment_mask <= full.segment_mask)
        assert np.all(windowed.traj_mask <= full.traj_mask)

    def test_disjoint_windows_partition(self, engine, west_canvas):
        first = engine.query(west_canvas, "red", window=TimeWindow.fraction(0.0, 0.5))
        # note: a segment straddling t=0.5 appears in both halves
        second = engine.query(west_canvas, "red", window=TimeWindow.fraction(0.5, 1.0))
        full = engine.query(west_canvas, "red")
        np.testing.assert_array_equal(
            first.segment_mask | second.segment_mask, full.segment_mask
        )


class TestGroups:
    def test_group_support_counts(self, study_dataset, viewport, west_canvas):
        grid = preset("2").build(viewport)
        groups = TrajectoryGroups.fig3_scheme(grid)
        asg = assign_groups_to_cells(study_dataset, grid, groups)
        engine = CoordinatedBrushingEngine(study_dataset)
        res = engine.query(west_canvas, "red", window=TimeWindow.end(0.15), assignment=asg)
        assert set(res.group_support) == {"on", "west", "east", "north", "south"}
        total = sum(gs.n_displayed for gs in res.group_support.values())
        assert total == asg.n_displayed
        # the planted effect shows in the group supports
        assert res.group_support["east"].support > res.group_support["west"].support

    def test_displayed_restriction(self, study_dataset, viewport, west_canvas):
        grid = preset("1").build(viewport)  # only 60 cells
        groups = TrajectoryGroups.fig3_scheme(grid)
        asg = assign_groups_to_cells(study_dataset, grid, groups)
        engine = CoordinatedBrushingEngine(study_dataset)
        res = engine.query(west_canvas, "red", assignment=asg)
        assert res.n_displayed == asg.n_displayed <= 60
        # segment masks still cover the whole dataset
        assert res.segment_mask.shape[0] == study_dataset.packed().n_segments


class TestMultiColor:
    def test_query_all_colors(self, engine, arena):
        c = BrushCanvas()
        c.add(BrushStroke(np.array([[0.0, 0.0]]), 0.1, "green"))
        c.add(BrushStroke(np.array([[-0.45, 0.0]]), 0.05, "red"))
        results = engine.query_all_colors(c)
        assert set(results) == {"green", "red"}
        # central brush touches nearly everything (all ants start there)
        assert results["green"].overall_support > 0.9
