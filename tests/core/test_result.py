"""Tests for query-result aggregation objects."""

import numpy as np
import pytest

from repro.core.result import GroupSupport, QueryResult


class TestGroupSupport:
    def test_support_fraction(self):
        gs = GroupSupport("east", 20, 15)
        assert gs.support == pytest.approx(0.75)
        assert gs.majority

    def test_empty_group(self):
        gs = GroupSupport("north", 0, 0)
        assert gs.support == 0.0
        assert not gs.majority

    def test_exact_half_not_majority(self):
        assert not GroupSupport("x", 10, 5).majority
        assert GroupSupport("x", 10, 6).majority

    def test_str(self):
        assert "15/20" in str(GroupSupport("east", 20, 15))


def _result(traj_mask, displayed=None, groups=None):
    n = len(traj_mask)
    traj_mask = np.asarray(traj_mask, dtype=bool)
    displayed = (
        np.ones(n, dtype=bool) if displayed is None else np.asarray(displayed, dtype=bool)
    )
    return QueryResult(
        color="red",
        segment_mask=np.zeros(0, dtype=bool),
        traj_mask=traj_mask,
        traj_highlight_time=traj_mask.astype(float),
        displayed=displayed,
        group_support=groups or {},
    )


class TestQueryResult:
    def test_counts(self):
        r = _result([True, False, True, True])
        assert r.n_highlighted == 3
        assert r.n_displayed == 4
        assert r.overall_support == pytest.approx(0.75)

    def test_displayed_restriction(self):
        r = _result([True, True, False, False], displayed=[True, False, True, False])
        assert r.n_displayed == 2
        assert r.n_highlighted == 1
        assert r.overall_support == pytest.approx(0.5)

    def test_highlighted_indices(self):
        r = _result([True, True, False], displayed=[True, False, True])
        np.testing.assert_array_equal(r.highlighted_indices(), [0])

    def test_empty_displayed(self):
        r = _result([True], displayed=[False])
        assert r.overall_support == 0.0

    def test_support_of(self):
        r = _result([True], groups={"east": GroupSupport("east", 4, 3)})
        assert r.support_of("east") == pytest.approx(0.75)
        with pytest.raises(KeyError):
            r.support_of("west")

    def test_summary_mentions_groups(self):
        r = _result([True, False], groups={"east": GroupSupport("east", 4, 3)})
        s = r.summary()
        assert "[red]" in s and "east" in s and "75%" in s
