"""Property tests pinning the vectorized query kernels to scalar oracles.

The bitset-mask spatial path (PR 10) rewrites two hot kernels —
``candidates_for_discs`` (CSR gather-and-unique → word-wise bitset OR)
and the ``brush_hit`` stage (per-row scalar test → bbox-prefiltered
vectorized capsule test).  Hypothesis drives randomized segment sets
and brush stamps through both implementations and their scalar
references; any byte of disagreement is a failed property.  Directed
cases cover the degenerate corners the randomized sweep may under-hit:
empty brushes, full-cover brushes, and single-segment cells.
"""

from __future__ import annotations

import hypothesis.extra.numpy as hnp
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregate.kernels import (
    brush_hit_mask,
    brush_hit_rows,
    brush_hit_rows_scalar,
)
from repro.core.spatial_index import UniformGridIndex
from repro.trajectory.dataset import PackedSegments

_coord = st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False, width=64)


@st.composite
def packed_segments(draw) -> PackedSegments:
    """Random small segment sets as one-trajectory packed arrays."""
    n = draw(st.integers(1, 32))
    pts = draw(hnp.arrays(np.float64, (n, 2, 2), elements=_coord))
    return PackedSegments.from_arrays(
        a=np.ascontiguousarray(pts[:, 0]),
        b=np.ascontiguousarray(pts[:, 1]),
        t0=np.zeros(n),
        t1=np.ones(n),
        owner=np.zeros(n, dtype=np.int64),
        offsets=np.array([0, n], dtype=np.int64),
    )


@st.composite
def brushes(draw) -> tuple[np.ndarray, np.ndarray]:
    """0-3 disc stamps, spilling slightly outside the segment box."""
    k = draw(st.integers(0, 3))
    centers = draw(
        hnp.arrays(
            np.float64, (k, 2),
            elements=st.floats(-1.3, 1.3, allow_nan=False, width=64),
        )
    )
    radii = draw(
        hnp.arrays(
            np.float64, (k,),
            elements=st.floats(0.0, 0.8, allow_nan=False, width=64),
        )
    )
    return centers, radii


@given(packed_segments(), brushes())
@settings(max_examples=25, deadline=None)
def test_brush_hit_rows_matches_scalar_oracle(packed, brush):
    centers, radii = brush
    rows = np.arange(packed.n_segments, dtype=np.int64)
    for subset in (rows, rows[::2], rows[:0]):
        np.testing.assert_array_equal(
            brush_hit_rows(centers, radii, packed, subset),
            brush_hit_rows_scalar(centers, radii, packed, subset),
        )


@given(packed_segments(), brushes(), st.integers(1, 12))
@settings(max_examples=25, deadline=None)
def test_bitset_candidates_match_csr_oracle(packed, brush, res):
    centers, radii = brush
    index = UniformGridIndex(packed, res=res)
    np.testing.assert_array_equal(
        index.candidates_for_discs(centers, radii),
        index.candidates_for_discs_scalar(centers, radii),
    )


@given(packed_segments(), brushes())
@settings(max_examples=25, deadline=None)
def test_indexed_mask_matches_brute_force(packed, brush):
    """Conservativeness end to end: pruning rows through the bitset
    candidates never changes the stage verdict of any row."""
    centers, radii = brush
    index = UniformGridIndex(packed, res=8)
    candidates = index.candidates_for_discs(centers, radii)
    np.testing.assert_array_equal(
        brush_hit_mask(centers, radii, packed, candidates),
        brush_hit_mask(centers, radii, packed, None),
    )


@given(packed_segments(), brushes())
@settings(max_examples=25, deadline=None)
def test_union_mask_cache_is_idempotent(packed, brush):
    """The second call answers from the per-cell bitset cache; it must
    be indistinguishable from the cold build."""
    centers, radii = brush
    index = UniformGridIndex(packed, res=4)
    cells = index.touched_cells_for_discs(centers, radii)
    bitsets = index.bitsets()
    cold = bitsets.union_mask(cells)
    warm = bitsets.union_mask(cells)
    np.testing.assert_array_equal(cold, warm)
    assert index.bitsets() is bitsets  # memoized on the index


class TestDirectedCorners:
    def _packed(self, n=5):
        x = np.linspace(-1.0, 1.0, n)
        a = np.stack([x, np.zeros(n)], axis=1)
        b = np.stack([x, np.ones(n)], axis=1)
        return PackedSegments.from_arrays(
            a=a, b=b, t0=np.zeros(n), t1=np.ones(n),
            owner=np.zeros(n, dtype=np.int64),
            offsets=np.array([0, n], dtype=np.int64),
        )

    def test_empty_brush_hits_nothing(self):
        packed = self._packed()
        empty_c = np.empty((0, 2))
        empty_r = np.empty(0)
        index = UniformGridIndex(packed, res=8)
        assert len(index.candidates_for_discs(empty_c, empty_r)) == 0
        assert not brush_hit_mask(empty_c, empty_r, packed).any()
        assert not brush_hit_rows_scalar(
            empty_c, empty_r, packed, np.arange(packed.n_segments)
        ).any()

    def test_full_cover_brush_hits_everything(self):
        packed = self._packed()
        centers = np.array([[0.0, 0.5]])
        radii = np.array([100.0])
        index = UniformGridIndex(packed, res=8)
        candidates = index.candidates_for_discs(centers, radii)
        np.testing.assert_array_equal(
            candidates, np.arange(packed.n_segments, dtype=np.int64)
        )
        assert brush_hit_mask(centers, radii, packed, candidates).all()

    def test_single_segment_cells(self):
        packed = self._packed(n=1)
        index = UniformGridIndex(packed, res=1)
        centers = np.array([[-1.0, 0.0]])
        radii = np.array([0.05])
        np.testing.assert_array_equal(
            index.candidates_for_discs(centers, radii),
            index.candidates_for_discs_scalar(centers, radii),
        )
        bitsets = index.bitsets()
        words = bitsets.words_of(0)
        assert words.dtype == np.uint64 and not words.flags.writeable
