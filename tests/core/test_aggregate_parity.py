"""Exact-parity harness for the aggregate-first query route.

The acceptance contract of the summary-pyramid refactor: for every
query the aggregate plan (``agg_temporal → agg_spatial → agg_brush →
classify → drilldown``) must return **bit-identical** results to the
legacy per-segment route — same ``segment_mask``, same ``traj_mask``,
same ``traj_highlight_time``, same ``group_support``.  The pyramid is
allowed to skip work (supernodes classified all-in/all-out), never to
change an answer: inconclusive nodes drill down to the *same* float
expressions the legacy kernels evaluate, so equality here is exact
array equality, not allclose.

The harness sweeps seeded randomized specs (multi-stamp strokes at
random positions/radii; fractional, absolute, and no-op windows;
grouped layout assignments) at two synthetic scales, comparing a
default legacy engine against an aggregate engine over the same
dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brush import BrushStroke
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.layout.cells import assign_groups_to_cells
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups
from repro.synth import AntStudyConfig, generate_study_dataset

N_SPECS = 24  # seeded specs per scale (issue floor: >= 20)

# (n_trajectories, synth seed): a small scale where most supernodes are
# inconclusive and the paper scale where all-in/all-out pruning kicks in
SCALES = {"small-60": (60, 21), "paper-150": (150, 7)}


@pytest.fixture(scope="module", params=sorted(SCALES))
def engine_pair(request):
    n_traj, seed = SCALES[request.param]
    ds = generate_study_dataset(AntStudyConfig(n_trajectories=n_traj, seed=seed))
    legacy = CoordinatedBrushingEngine(ds)
    agg = CoordinatedBrushingEngine(ds, use_aggregate=True)
    assert agg.pyramid is not None, agg._pyramid_error
    return ds, legacy, agg


def _random_canvas(rng: np.random.Generator, radius: float) -> BrushCanvas:
    canvas = BrushCanvas()
    for _ in range(int(rng.integers(1, 4))):
        k = int(rng.integers(1, 6))
        centers = rng.uniform(-radius, radius, size=(k, 2))
        stamp_r = float(rng.uniform(0.03, 0.35) * radius)
        canvas.add(BrushStroke(centers=centers, radius=stamp_r, color="red"))
    return canvas


def _random_window(rng: np.random.Generator, ds) -> TimeWindow:
    kind = int(rng.integers(0, 3))
    if kind == 0:
        return TimeWindow.all()
    if kind == 1:
        f0, f1 = np.sort(rng.uniform(0.0, 1.0, size=2))
        return TimeWindow.fraction(float(f0), float(f1))
    _, dmax = ds.duration_range()
    t0, t1 = np.sort(rng.uniform(0.0, dmax * 1.05, size=2))
    return TimeWindow.absolute(float(t0), float(t1))


def _assert_identical(res_legacy, res_agg) -> None:
    np.testing.assert_array_equal(res_legacy.segment_mask, res_agg.segment_mask)
    np.testing.assert_array_equal(res_legacy.traj_mask, res_agg.traj_mask)
    np.testing.assert_array_equal(
        res_legacy.traj_highlight_time, res_agg.traj_highlight_time
    )
    assert set(res_legacy.group_support) == set(res_agg.group_support)
    for name, gs in res_legacy.group_support.items():
        other = res_agg.group_support[name]
        assert gs.support == other.support
        assert gs.n_displayed == other.n_displayed


class TestExactParity:
    def test_randomized_specs_bit_identical(self, engine_pair, arena, viewport):
        ds, legacy, agg = engine_pair
        grid = preset("2").build(viewport)
        groups = TrajectoryGroups.fig3_scheme(grid)
        assignment = assign_groups_to_cells(ds, grid, groups)
        n_aggregate_routed = 0
        for trial in range(N_SPECS):
            rng = np.random.default_rng(1000 + trial)
            canvas = _random_canvas(rng, arena.radius)
            window = _random_window(rng, ds)
            asg = assignment if trial % 4 == 0 else None
            res_legacy = legacy.query(canvas, "red", window=window, assignment=asg)
            res_agg = agg.query(canvas, "red", window=window, assignment=asg)
            assert res_legacy.trace.strategy in ("indexed", "brute-force")
            if res_agg.trace.strategy == "aggregate":
                n_aggregate_routed += 1
            _assert_identical(res_legacy, res_agg)
        # every non-empty canvas must have taken the aggregate route
        assert n_aggregate_routed == N_SPECS

    def test_empty_canvas_same_fast_path(self, engine_pair):
        _, legacy, agg = engine_pair
        res_legacy = legacy.query(BrushCanvas(), "red")
        res_agg = agg.query(BrushCanvas(), "red")
        assert res_legacy.trace.strategy == "empty-brush"
        assert res_agg.trace.strategy == "empty-brush"
        _assert_identical(res_legacy, res_agg)

    def test_degenerate_windows(self, engine_pair, arena):
        """Zero-width windows and windows past the experiment end sit on
        the epsilon boundaries of the temporal classifier — exactly
        where a sloppy MAYBE margin would flip a mask bit."""
        ds, legacy, agg = engine_pair
        rng = np.random.default_rng(7)
        canvas = _random_canvas(rng, arena.radius)
        _, dmax = ds.duration_range()
        for window in (
            TimeWindow.fraction(0.5, 0.5),
            TimeWindow.fraction(0.0, 0.0),
            TimeWindow.fraction(1.0, 1.0),
            TimeWindow.absolute(0.0, 0.0),
            TimeWindow.absolute(dmax, dmax * 2),
            TimeWindow.absolute(dmax * 1.5, dmax * 2.0),
        ):
            _assert_identical(
                legacy.query(canvas, "red", window=window),
                agg.query(canvas, "red", window=window),
            )

    def test_giant_and_tiny_brushes(self, engine_pair, arena):
        """A brush covering the whole arena turns every supernode all-in
        (covering-disc proof); a pin-prick brush leaves nearly all nodes
        all-out.  Both extremes must still match the legacy route."""
        _, legacy, agg = engine_pair
        r = arena.radius
        for centers, stamp_r in (
            (np.zeros((1, 2)), 3.0 * r),
            (np.array([[0.61 * r, -0.37 * r]]), 1e-4 * r),
        ):
            canvas = BrushCanvas()
            canvas.add(BrushStroke(centers=centers, radius=stamp_r, color="red"))
            res_legacy = legacy.query(canvas, "red")
            res_agg = agg.query(canvas, "red")
            assert res_agg.trace.strategy == "aggregate"
            _assert_identical(res_legacy, res_agg)
