"""Unit tests for the summary pyramid and its classification kernels.

Complements ``test_aggregate_parity.py`` (end-to-end bit-identity of
the aggregate query route): here the individual pieces are checked
against brute-force references — CSR structure, per-node statistics,
cell gathers, the shared-arena table round-trip, and the vectorized
drill-down hit kernel against its scalar oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import (
    IN,
    MAYBE,
    OUT,
    SummaryPyramid,
    brush_hit_rows,
    brush_hit_rows_scalar,
    classify_temporal,
)
from repro.core.aggregate.pyramid import _multi_range_indices
from repro.core.temporal import TimeWindow


@pytest.fixture(scope="module")
def pyramid(study_dataset):
    return SummaryPyramid.build(
        study_dataset.packed(), study_dataset, res=16, n_tbuckets=4, levels=(4, 16)
    )


class TestBuildInvariants:
    def test_csr_structure(self, pyramid, study_dataset):
        packed = study_dataset.packed()
        assert pyramid.offsets[0] == 0
        assert pyramid.offsets[-1] == packed.n_segments
        assert (np.diff(pyramid.offsets) >= 0).all()
        # entries is a permutation of all segment rows
        assert np.array_equal(np.sort(pyramid.entries), np.arange(packed.n_segments))
        # every CSR range holds exactly the rows whose node_of matches
        for node in (0, int(pyramid.n_nodes // 2), int(pyramid.n_nodes - 1)):
            members = pyramid.entries[
                pyramid.offsets[node] : pyramid.offsets[node + 1]
            ]
            assert (pyramid.node_of[members] == node).all()
        assert int(pyramid.node_counts.sum()) == packed.n_segments

    def test_node_stats_cover_every_member(self, pyramid, study_dataset):
        """Per-node extents must equal the brute-force reduction over
        that node's members — including the very last member of the
        last occupied node (a reduceat clamping bug dropped it once,
        flipping one drill-down answer near window boundaries)."""
        packed = study_dataset.packed()
        occupied = np.flatnonzero(pyramid.node_counts > 0)
        last = int(occupied[-1])
        for node in (int(occupied[0]), int(occupied[len(occupied) // 2]), last):
            rows = pyramid.entries[pyramid.offsets[node] : pyramid.offsets[node + 1]]
            assert pyramid.tstats[node, 0] == packed.t0[rows].min()
            assert pyramid.tstats[node, 3] == packed.t1[rows].max()
            seg_lo = np.minimum(packed.a[rows], packed.b[rows])
            seg_hi = np.maximum(packed.a[rows], packed.b[rows])
            assert (pyramid.bbox[node, :2] <= seg_lo.min(axis=0)).all()
            assert (pyramid.bbox[node, 2:] >= seg_hi.max(axis=0)).all()

    def test_empty_nodes_have_sentinel_stats(self, pyramid):
        empty = np.flatnonzero(pyramid.node_counts == 0)
        assert len(empty), "expected some empty supernodes at res=16"
        assert (pyramid.bbox[empty, 0] == np.inf).all()
        assert (pyramid.bbox[empty, 2] == -np.inf).all()
        # and the temporal classifier sends them straight to OUT
        cls = classify_temporal(pyramid, TimeWindow.all())
        assert (cls[empty] == OUT).all()
        assert set(np.unique(cls)) <= {OUT, MAYBE, IN}

    def test_validation_errors(self, study_dataset):
        packed = study_dataset.packed()
        with pytest.raises(ValueError, match="end at the leaf"):
            SummaryPyramid.build(packed, study_dataset, res=16, levels=(4, 8))
        with pytest.raises(ValueError, match="divide"):
            SummaryPyramid.build(packed, study_dataset, res=16, levels=(3, 16))
        with pytest.raises(ValueError, match="increasing"):
            SummaryPyramid.build(packed, study_dataset, res=16, levels=(16, 4, 16))
        with pytest.raises(ValueError, match="res"):
            SummaryPyramid.build(packed, study_dataset, res=0, levels=(1,))


class TestLookups:
    def test_rows_in_cells_matches_bruteforce(self, pyramid):
        cell_of = pyramid.cell_of_rows()
        rng = np.random.default_rng(3)
        occupied_cells = np.unique(cell_of)
        for _ in range(5):
            cells = rng.choice(occupied_cells, size=4, replace=False)
            got = np.sort(pyramid.rows_in_cells(cells))
            want = np.sort(np.flatnonzero(np.isin(cell_of, cells)))
            assert np.array_equal(got, want)
        assert len(pyramid.rows_in_cells(np.empty(0, dtype=np.int64))) == 0

    def test_trajectories_in_cells_matches_bruteforce(self, pyramid, study_dataset):
        packed = study_dataset.packed()
        cell_of = pyramid.cell_of_rows()
        cells = np.unique(cell_of)[:7]
        got = pyramid.trajectories_in_cells(cells)
        want = np.zeros(len(study_dataset), dtype=bool)
        want[np.unique(packed.owner[np.isin(cell_of, cells)])] = True
        assert np.array_equal(got, want)

    def test_multi_range_indices(self):
        starts = np.array([2, 10, 10, 20], dtype=np.int64)
        stops = np.array([5, 10, 13, 21], dtype=np.int64)
        assert np.array_equal(
            _multi_range_indices(starts, stops),
            np.array([2, 3, 4, 10, 11, 12, 20]),
        )
        empty = np.empty(0, dtype=np.int64)
        assert len(_multi_range_indices(empty, empty)) == 0


class TestTableRoundTrip:
    def test_from_tables_reproduces_build(self, pyramid, study_dataset):
        clone = SummaryPyramid.from_tables(
            study_dataset.packed(),
            res=pyramid.res,
            n_tbuckets=pyramid.n_tbuckets,
            levels=pyramid.levels,
            lo=pyramid.lo.copy(),
            cell_size=pyramid.cell_size.copy(),
            node_of=pyramid.node_of.copy(),
            entries=pyramid.entries.copy(),
            offsets=pyramid.offsets.copy(),
            bbox=pyramid.bbox.copy(),
            tstats=pyramid.tstats.copy(),
            bits=pyramid.bits.copy(),
            level_bbox=pyramid.level_bbox.copy(),
            traj_start=pyramid.traj_start.copy(),
            traj_dur=pyramid.traj_dur.copy(),
        )
        np.testing.assert_array_equal(clone.tstats, pyramid.tstats)
        np.testing.assert_array_equal(clone.bbox, pyramid.bbox)
        np.testing.assert_array_equal(clone.node_of, pyramid.node_of)
        cls_a = classify_temporal(pyramid, TimeWindow.fraction(0.2, 0.7))
        cls_b = classify_temporal(clone, TimeWindow.fraction(0.2, 0.7))
        np.testing.assert_array_equal(cls_a, cls_b)

    def test_tables_are_frozen(self, pyramid):
        for name in ("node_of", "entries", "offsets", "bbox", "tstats", "bits"):
            arr = getattr(pyramid, name)
            with pytest.raises(ValueError):
                arr[0] = 0


class TestBrushHitKernel:
    """Satellite: the vectorized drill-down hit-test must agree with the
    scalar one-segment-one-stamp oracle on every row."""

    def test_vectorized_matches_scalar(self, study_dataset, arena):
        packed = study_dataset.packed()
        rng = np.random.default_rng(11)
        r = arena.radius
        for trial in range(4):
            k = int(rng.integers(1, 5))
            centers = rng.uniform(-r, r, size=(k, 2))
            radii = rng.uniform(0.02 * r, 0.4 * r, size=k)
            rows = rng.choice(
                packed.n_segments, size=min(500, packed.n_segments), replace=False
            )
            fast = brush_hit_rows(centers, radii, packed, rows)
            slow = brush_hit_rows_scalar(centers, radii, packed, rows)
            np.testing.assert_array_equal(fast, slow)

    def test_chunking_is_invisible(self, study_dataset, arena):
        packed = study_dataset.packed()
        r = arena.radius
        centers = np.array([[0.2 * r, -0.1 * r]])
        radii = np.array([0.3 * r])
        rows = np.arange(packed.n_segments)
        full = brush_hit_rows(centers, radii, packed, rows)
        tiny = brush_hit_rows(centers, radii, packed, rows, chunk=37)
        np.testing.assert_array_equal(full, tiny)

    def test_empty_rows(self, study_dataset):
        packed = study_dataset.packed()
        out = brush_hit_rows(
            np.zeros((1, 2)), np.ones(1), packed, np.empty(0, dtype=np.int64)
        )
        assert out.shape == (0,) and out.dtype == bool


class TestBrushHitCells:
    """The cell-pruned drill-down kernel must agree with the unpruned
    row kernel (and hence, transitively, with the scalar oracle) over
    exactly the member rows of the requested cells."""

    def test_matches_row_kernel(self, pyramid, study_dataset, arena):
        from repro.core.aggregate import brush_hit_cells

        packed = study_dataset.packed()
        rng = np.random.default_rng(17)
        r = arena.radius
        occupied_cells = np.unique(pyramid.cell_of_rows())
        for trial in range(4):
            k = int(rng.integers(1, 5))
            centers = rng.uniform(-r, r, size=(k, 2))
            radii = rng.uniform(0.02 * r, 0.4 * r, size=k)
            cells = rng.choice(
                occupied_cells, size=min(20, len(occupied_cells)), replace=False
            )
            rows, hits = brush_hit_cells(pyramid, centers, radii, packed, cells)
            np.testing.assert_array_equal(rows, pyramid.rows_in_cells(cells))
            np.testing.assert_array_equal(
                hits, brush_hit_rows(centers, radii, packed, rows)
            )

    def test_empty_inputs(self, pyramid, study_dataset):
        from repro.core.aggregate import brush_hit_cells

        packed = study_dataset.packed()
        rows, hits = brush_hit_cells(
            pyramid, np.zeros((0, 2)), np.zeros(0), packed, np.array([0, 1])
        )
        assert not hits.any()
        rows, hits = brush_hit_cells(
            pyramid,
            np.zeros((1, 2)),
            np.ones(1),
            packed,
            np.empty(0, dtype=np.int64),
        )
        assert len(rows) == 0 and len(hits) == 0
