"""Tests for the temporal filter."""

import numpy as np
import pytest

from repro.core.temporal import TimeWindow


class TestConstruction:
    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow.absolute(5.0, 1.0)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            TimeWindow.fraction(-0.1, 0.5)
        with pytest.raises(ValueError):
            TimeWindow.fraction(0.0, 1.2)

    def test_named_windows(self):
        assert TimeWindow.beginning(0.2).lo == 0.0
        assert TimeWindow.beginning(0.2).hi == pytest.approx(0.2)
        assert TimeWindow.end(0.3).lo == pytest.approx(0.7)
        mid = TimeWindow.middle(0.2)
        assert mid.lo == pytest.approx(0.4)
        assert mid.hi == pytest.approx(0.6)

    def test_all_is_everything(self):
        assert TimeWindow.all().is_everything
        assert not TimeWindow.beginning().is_everything

    def test_describe(self):
        assert TimeWindow.all().describe() == "t=*"
        assert "frac" in TimeWindow.end(0.2).describe()
        assert "s" in TimeWindow.absolute(1, 2).describe()


class TestSampleMask:
    def test_absolute(self, simple_traj):
        w = TimeWindow.absolute(3.0, 6.0)
        mask = w.sample_mask(simple_traj)
        np.testing.assert_array_equal(np.flatnonzero(mask), [3, 4, 5, 6])

    def test_fractional(self, simple_traj):
        w = TimeWindow.fraction(0.0, 0.5)
        mask = w.sample_mask(simple_traj)
        assert mask[:6].all() and not mask[6:].any()

    def test_bounds_for(self, simple_traj):
        lo, hi = TimeWindow.end(0.2).bounds_for(simple_traj)
        assert lo == pytest.approx(8.0)
        assert hi == pytest.approx(10.0)
        lo_a, hi_a = TimeWindow.absolute(1.0, 2.0).bounds_for(simple_traj)
        assert (lo_a, hi_a) == (1.0, 2.0)


class TestSegmentMask:
    def test_everything_all_true(self, tiny_dataset):
        p = tiny_dataset.packed()
        mask = TimeWindow.all().segment_mask(p, tiny_dataset)
        assert mask.all()

    def test_absolute_overlap_semantics(self, tiny_dataset):
        p = tiny_dataset.packed()
        # window [4.5, 4.6] lies inside segment [4, 5] of traj 0:
        # overlap must be detected even with no sample inside
        w = TimeWindow.absolute(4.5, 4.6)
        mask = w.segment_mask(p, tiny_dataset)
        rows = p.rows_of(0)
        assert mask[rows].sum() == 1

    def test_fractional_per_trajectory(self, tiny_dataset):
        # traj 0 lasts 10 s, traj 1 lasts 20 s; first half differs
        w = TimeWindow.fraction(0.0, 0.5)
        p = tiny_dataset.packed()
        mask = w.segment_mask(p, tiny_dataset)
        t0_rows = p.rows_of(0)
        t1_rows = p.rows_of(1)
        # all selected segments end within each trajectory's half-time
        assert p.t0[t0_rows][mask[t0_rows]].max() <= 5.0
        assert p.t0[t1_rows][mask[t1_rows]].max() <= 10.0
        assert mask[t1_rows].sum() > 0

    def test_matches_per_trajectory_computation(self, study_dataset):
        w = TimeWindow.end(0.15)
        p = study_dataset.packed()
        mask = w.segment_mask(p, study_dataset)
        for i in (0, 7, 42):
            traj = study_dataset[i]
            lo, hi = w.bounds_for(traj)
            expected = (traj.times[1:] >= lo) & (traj.times[:-1] <= hi)
            np.testing.assert_array_equal(mask[p.rows_of(i)], expected)

    def test_empty_window_intersects_nothing_before_start(self, tiny_dataset):
        w = TimeWindow.absolute(100.0, 200.0)
        mask = w.segment_mask(tiny_dataset.packed(), tiny_dataset)
        assert not mask.any()
