"""Tests for paintbrush strokes."""

import numpy as np
import pytest

from repro.core.brush import BrushStroke, stroke_from_path, stroke_from_rect


class TestBrushStroke:
    def test_validation(self):
        with pytest.raises(ValueError):
            BrushStroke(np.empty((0, 2)), 0.1)
        with pytest.raises(ValueError):
            BrushStroke(np.zeros((1, 2)), 0.0)
        with pytest.raises(ValueError):
            BrushStroke(np.zeros((1, 2)), 0.1, color="")
        with pytest.raises(ValueError):
            BrushStroke(np.array([[np.nan, 0.0]]), 0.1)

    def test_centers_read_only(self):
        s = BrushStroke(np.zeros((2, 2)), 0.1)
        with pytest.raises(ValueError):
            s.centers[0, 0] = 1.0

    def test_bounding_box(self):
        s = BrushStroke(np.array([[0.0, 0.0], [1.0, 1.0]]), 0.25)
        lo, hi = s.bounding_box()
        np.testing.assert_allclose(lo, [-0.25, -0.25])
        np.testing.assert_allclose(hi, [1.25, 1.25])

    def test_covers_points(self):
        s = BrushStroke(np.array([[0.0, 0.0]]), 0.5)
        pts = np.array([[0.0, 0.0], [0.49, 0.0], [0.51, 0.0]])
        np.testing.assert_array_equal(s.covers_points(pts), [True, True, False])

    def test_area_estimate_single_disc(self):
        s = BrushStroke(np.array([[0.0, 0.0]]), 1.0)
        area = s.area_estimate(samples=20_000)
        assert area == pytest.approx(np.pi, rel=0.05)

    def test_area_union_not_double_counted(self):
        # two coincident stamps = one disc
        s = BrushStroke(np.zeros((2, 2)), 1.0)
        assert s.area_estimate(samples=20_000) == pytest.approx(np.pi, rel=0.05)


class TestStrokeFromPath:
    def test_decimates_dense_path(self):
        path = np.stack([np.linspace(0, 1, 1000), np.zeros(1000)], axis=1)
        s = stroke_from_path(path, radius=0.1)
        assert s.n_stamps < 30  # ~1/0.05 spacing
        np.testing.assert_array_equal(s.centers[0], path[0])
        np.testing.assert_array_equal(s.centers[-1], path[-1])

    def test_sparse_path_kept(self):
        path = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        s = stroke_from_path(path, radius=0.1)
        assert s.n_stamps == 3

    def test_single_point(self):
        s = stroke_from_path(np.array([[0.3, 0.3]]), radius=0.05)
        assert s.n_stamps == 1

    def test_union_region_preserved(self):
        """Decimation never loses coverage by more than the spacing."""
        rng = np.random.default_rng(0)
        path = np.cumsum(rng.normal(0, 0.02, size=(200, 2)), axis=0)
        dense = BrushStroke(path, 0.1)
        decimated = stroke_from_path(path, 0.1)
        probe = rng.uniform(-1, 1, size=(500, 2))
        covered_dense = dense.covers_points(probe)
        covered_dec = decimated.covers_points(probe)
        # decimated coverage is a subset, missing only a thin rind
        assert np.all(covered_dec <= covered_dense)
        # interior points (well inside) are never lost
        interior = BrushStroke(path, 0.05).covers_points(probe)
        assert np.all(covered_dec[interior])


class TestStrokeFromRect:
    def test_covers_rectangle(self):
        s = stroke_from_rect((-1.0, -0.5), (1.0, 0.5), radius=0.2)
        rng = np.random.default_rng(1)
        pts = rng.uniform([-1.0, -0.5], [1.0, 0.5], size=(300, 2))
        assert np.all(s.covers_points(pts))

    def test_bounded_inflation(self):
        s = stroke_from_rect((0.0, 0.0), (1.0, 1.0), radius=0.1)
        lo, hi = s.bounding_box()
        np.testing.assert_allclose(lo, [-0.1, -0.1])
        np.testing.assert_allclose(hi, [1.1, 1.1])

    def test_degenerate_rect_is_point(self):
        s = stroke_from_rect((0.5, 0.5), (0.5, 0.5), radius=0.1)
        assert s.n_stamps == 1

    def test_inverted_rect_rejected(self):
        with pytest.raises(ValueError):
            stroke_from_rect((1.0, 0.0), (0.0, 1.0), radius=0.1)

    def test_color_carried(self):
        assert stroke_from_rect((0, 0), (1, 1), 0.1, color="green").color == "green"
