"""Tests for multi-query combination."""

import numpy as np
import pytest

from repro.core.brush import BrushStroke, stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.combine import combine_and, combine_and_not, combine_or
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.result import QueryResult


@pytest.fixture(scope="module")
def results(study_dataset, arena):
    engine = CoordinatedBrushingEngine(study_dataset)
    canvas = BrushCanvas()
    r = arena.radius
    canvas.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
    canvas.add(BrushStroke(np.array([[0.0, 0.0]]), 0.1, "green"))
    return engine.query(canvas, "red"), engine.query(canvas, "green")


class TestCombinators:
    def test_and_semantics(self, results):
        a, b = results
        both = combine_and(a, b)
        np.testing.assert_array_equal(both.traj_mask, a.traj_mask & b.traj_mask)
        assert both.color == "(red & green)"

    def test_or_semantics(self, results):
        a, b = results
        either = combine_or(a, b)
        np.testing.assert_array_equal(either.traj_mask, a.traj_mask | b.traj_mask)

    def test_and_not_semantics(self, results):
        a, b = results
        only_a = combine_and_not(a, b)
        np.testing.assert_array_equal(only_a.traj_mask, a.traj_mask & ~b.traj_mask)

    def test_lattice_relations(self, results):
        a, b = results
        n_and = combine_and(a, b).n_highlighted
        n_or = combine_or(a, b).n_highlighted
        assert n_and <= min(a.n_highlighted, b.n_highlighted)
        assert n_or >= max(a.n_highlighted, b.n_highlighted)
        # inclusion-exclusion
        assert n_and + n_or == a.n_highlighted + b.n_highlighted

    def test_and_not_partitions_a(self, results):
        a, b = results
        only_a = combine_and_not(a, b)
        both = combine_and(a, b)
        assert only_a.n_highlighted + both.n_highlighted == a.n_highlighted

    def test_highlight_time_semantics(self, results):
        a, b = results
        both = combine_and(a, b)
        either = combine_or(a, b)
        hit = both.traj_mask
        assert np.all(
            both.traj_highlight_time[hit]
            <= np.minimum(a.traj_highlight_time, b.traj_highlight_time)[hit] + 1e-12
        )
        assert np.all(
            either.traj_highlight_time
            >= np.maximum(a.traj_highlight_time, b.traj_highlight_time) - 1e-12
        )

    def test_incompatible_shapes_rejected(self, results):
        a, _ = results
        other = QueryResult(
            color="x",
            segment_mask=np.zeros(1, dtype=bool),
            traj_mask=np.zeros(3, dtype=bool),
            traj_highlight_time=np.zeros(3),
            displayed=np.ones(3, dtype=bool),
        )
        with pytest.raises(ValueError):
            combine_and(a, other)

    def test_different_display_sets_rejected(self, results):
        a, b = results
        shuffled = QueryResult(
            color=b.color,
            segment_mask=b.segment_mask,
            traj_mask=b.traj_mask,
            traj_highlight_time=b.traj_highlight_time,
            displayed=~b.displayed,
        )
        with pytest.raises(ValueError, match="layouts"):
            combine_or(a, shuffled)
