"""Tests for session snapshots."""

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.session import ExplorationSession
from repro.core.snapshot import SessionSnapshot, restore_session, snapshot_session
from repro.core.temporal import TimeWindow


@pytest.fixture()
def dirty_session(full_dataset, viewport):
    s = ExplorationSession(full_dataset, viewport, layout_key="1")
    s.enable_fig3_groups()
    s.next_page()
    s.brush(stroke_from_rect((-0.5, -0.3), (-0.35, 0.3), 0.06, "red"))
    s.brush(stroke_from_rect((-0.05, -0.05), (0.05, 0.05), 0.07, "green"))
    s.set_time_window(TimeWindow.end(0.2))
    return s


class TestSnapshotRoundtrip:
    def test_dict_roundtrip(self, dirty_session):
        snap = snapshot_session(dirty_session, note="mid-analysis")
        back = SessionSnapshot.from_dict(snap.to_dict())
        assert back.layout_key == snap.layout_key
        assert back.page == snap.page
        assert back.window == snap.window
        assert back.extra["note"] == "mid-analysis"
        assert len(back.strokes) == 2
        np.testing.assert_allclose(back.strokes[0].centers, snap.strokes[0].centers)

    def test_file_roundtrip(self, dirty_session, tmp_path):
        snap = snapshot_session(dirty_session)
        path = tmp_path / "session.json"
        snap.save(path)
        loaded = SessionSnapshot.load(path)
        assert loaded.to_dict() == snap.to_dict()


class TestRestore:
    def test_restore_reproduces_query_results(self, dirty_session, full_dataset, viewport):
        snap = snapshot_session(dirty_session)
        original = dirty_session.run_query("red")

        fresh = ExplorationSession(full_dataset, viewport, layout_key="3")
        restore_session(fresh, snap)
        assert fresh.layout.key == "1"
        assert fresh.page == 1
        assert fresh.groups is not None
        assert fresh.window == dirty_session.window
        restored = fresh.run_query("red")
        np.testing.assert_array_equal(restored.traj_mask, original.traj_mask)
        np.testing.assert_array_equal(restored.displayed, original.displayed)

    def test_restore_onto_dirty_session(self, dirty_session, full_dataset, viewport):
        snap = snapshot_session(dirty_session)
        other = ExplorationSession(full_dataset, viewport, layout_key="2")
        other.brush(stroke_from_rect((0, 0), (0.2, 0.2), 0.05, "blue"))
        restore_session(other, snap)
        assert sorted(other.canvas.colors()) == ["green", "red"]
        assert other.canvas.n_strokes == 2

    def test_ungrouped_snapshot(self, full_dataset, viewport):
        plain = ExplorationSession(full_dataset, viewport, layout_key="2")
        snap = snapshot_session(plain)
        assert not snap.fig3_groups
        fresh = ExplorationSession(full_dataset, viewport)
        restore_session(fresh, snap)
        assert fresh.groups is None

    def test_dataset_name_recorded(self, dirty_session):
        snap = snapshot_session(dirty_session)
        assert snap.dataset_name == dirty_session.dataset.name
