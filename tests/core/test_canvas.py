"""Tests for the shared brush canvas."""

import numpy as np
import pytest

from repro.core.brush import BrushStroke
from repro.core.canvas import BrushCanvas


def _stroke(x=0.0, y=0.0, r=0.1, color="red"):
    return BrushStroke(np.array([[x, y]]), r, color)


class TestEditing:
    def test_add_and_count(self):
        c = BrushCanvas()
        assert c.is_empty()
        c.add(_stroke())
        c.add(_stroke(color="green"))
        assert c.n_strokes == 2
        assert not c.is_empty()

    def test_type_check(self):
        with pytest.raises(TypeError):
            BrushCanvas().add("stroke")

    def test_clear_all(self):
        c = BrushCanvas()
        c.add(_stroke())
        c.clear()
        assert c.is_empty()

    def test_clear_one_color(self):
        c = BrushCanvas()
        c.add(_stroke(color="red"))
        c.add(_stroke(color="green"))
        c.clear("red")
        assert c.colors() == ["green"]

    def test_version_increments(self):
        c = BrushCanvas()
        v0 = c.version
        c.add(_stroke())
        assert c.version > v0
        v1 = c.version
        c.clear()
        assert c.version > v1

    def test_colors_in_first_use_order(self):
        c = BrushCanvas()
        c.add(_stroke(color="green"))
        c.add(_stroke(color="red"))
        c.add(_stroke(color="green"))
        assert c.colors() == ["green", "red"]


class TestStamps:
    def test_stamps_concatenated(self):
        c = BrushCanvas()
        c.add(BrushStroke(np.zeros((3, 2)), 0.1, "red"))
        c.add(BrushStroke(np.ones((2, 2)), 0.2, "red"))
        centers, radii = c.stamps_of("red")
        assert centers.shape == (5, 2)
        np.testing.assert_array_equal(radii, [0.1, 0.1, 0.1, 0.2, 0.2])

    def test_stamps_empty_color(self):
        centers, radii = BrushCanvas().stamps_of("red")
        assert len(centers) == 0 and len(radii) == 0

    def test_bounding_box(self):
        c = BrushCanvas()
        c.add(_stroke(0.0, 0.0, 0.1, "red"))
        c.add(_stroke(1.0, 1.0, 0.2, "green"))
        lo, hi = c.bounding_box()
        np.testing.assert_allclose(lo, [-0.1, -0.1])
        np.testing.assert_allclose(hi, [1.2, 1.2])
        lo_r, hi_r = c.bounding_box("red")
        np.testing.assert_allclose(hi_r, [0.1, 0.1])

    def test_bounding_box_empty(self):
        assert BrushCanvas().bounding_box() is None


class TestHitMask:
    def test_segment_hits(self):
        c = BrushCanvas()
        c.add(_stroke(0.0, 0.0, 0.5, "red"))
        a = np.array([[-2.0, 0.0], [-2.0, 3.0], [0.1, 0.1]])
        b = np.array([[2.0, 0.0], [2.0, 3.0], [0.2, 0.1]])
        mask = c.segment_hit_mask("red", a, b)
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_color_isolation(self):
        c = BrushCanvas()
        c.add(_stroke(0.0, 0.0, 0.5, "red"))
        a = np.array([[-0.1, 0.0]])
        b = np.array([[0.1, 0.0]])
        assert c.segment_hit_mask("red", a, b)[0]
        assert not c.segment_hit_mask("green", a, b)[0]

    def test_chunking_invariant(self):
        rng = np.random.default_rng(0)
        c = BrushCanvas()
        c.add(BrushStroke(rng.uniform(-1, 1, (7, 2)), 0.3, "red"))
        a = rng.uniform(-2, 2, (500, 2))
        b = a + rng.normal(0, 0.1, (500, 2))
        full = c.segment_hit_mask("red", a, b, chunk=1 << 20)
        tiny = c.segment_hit_mask("red", a, b, chunk=64)
        np.testing.assert_array_equal(full, tiny)

    def test_packed_hit_mask_with_candidates(self, tiny_dataset):
        c = BrushCanvas()
        c.add(_stroke(0.5, 0.0, 0.2, "red"))
        packed = tiny_dataset.packed()
        full = c.packed_hit_mask("red", packed)
        cand = np.flatnonzero(full)  # exact candidate set
        narrowed = c.packed_hit_mask("red", packed, candidates=cand)
        np.testing.assert_array_equal(full, narrowed)

    def test_packed_hit_mask_empty_candidates(self, tiny_dataset):
        c = BrushCanvas()
        c.add(_stroke())
        packed = tiny_dataset.packed()
        mask = c.packed_hit_mask("red", packed, candidates=np.empty(0, dtype=np.int64))
        assert not mask.any()
