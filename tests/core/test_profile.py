"""Tests for temporal query profiles."""

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.profile import temporal_profile
from repro.layout.cells import assign_groups_to_cells
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups


@pytest.fixture(scope="module")
def engine(full_dataset):
    return CoordinatedBrushingEngine(full_dataset)


@pytest.fixture(scope="module")
def west_canvas(arena):
    c = BrushCanvas()
    r = arena.radius
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
    return c


@pytest.fixture(scope="module")
def center_canvas(arena):
    c = BrushCanvas()
    r = 0.12 * arena.radius
    c.add(stroke_from_rect((-r, -r), (r, r), r, "green"))
    return c


class TestTemporalProfile:
    def test_shapes(self, engine, west_canvas):
        prof = temporal_profile(engine, west_canvas, "red", n_bins=8)
        assert prof.n_bins == 8
        assert prof.centers.shape == prof.support.shape == (8,)
        assert np.all((0 <= prof.support) & (prof.support <= 1))

    def test_validation(self, engine, west_canvas):
        with pytest.raises(ValueError):
            temporal_profile(engine, west_canvas, n_bins=0)
        with pytest.raises(ValueError):
            temporal_profile(engine, west_canvas, window_width=0.0)

    def test_west_occupancy_rises_toward_end(self, engine, west_canvas):
        """Homing ants reach the west edge late: the profile climbs."""
        prof = temporal_profile(engine, west_canvas, "red", n_bins=5)
        assert prof.support[-1] > prof.support[0]
        center, peak = prof.peak()
        assert center > 0.5

    def test_central_occupancy_falls(self, engine, center_canvas):
        """Everyone starts at the center and leaves: the profile falls."""
        prof = temporal_profile(engine, center_canvas, "green", n_bins=5)
        assert prof.support[0] > prof.support[-1]
        center, _ = prof.peak()
        assert center < 0.5

    def test_group_series(self, engine, full_dataset, viewport, west_canvas):
        grid = preset("3").build(viewport)
        groups = TrajectoryGroups.fig3_scheme(grid)
        asg = assign_groups_to_cells(full_dataset, grid, groups)
        prof = temporal_profile(
            engine, west_canvas, "red", n_bins=4, assignment=asg
        )
        assert set(prof.group_support) == {"on", "west", "east", "north", "south"}
        # east peaks higher than west everywhere late
        assert prof.group_support["east"][-1] > prof.group_support["west"][-1]
        c, s = prof.peak_of("east")
        assert s >= prof.group_support["east"].max() - 1e-12

    def test_wide_window_smooths(self, engine, west_canvas):
        narrow = temporal_profile(engine, west_canvas, "red", n_bins=6)
        wide = temporal_profile(
            engine, west_canvas, "red", n_bins=6, window_width=0.5
        )
        # wider windows can only see more
        assert np.all(wide.support >= narrow.support - 1e-12)
