"""Tests for the staged query-plan pipeline (plan/execute split)."""

import numpy as np
import pytest

from repro.core.brush import BrushStroke, stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.plan import (
    QueryPlanner,
    QuerySpec,
    QueryTrace,
    StageCache,
    StageRecord,
)
from repro.core.temporal import TimeWindow
from repro.layout.cells import assign_groups_to_cells
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups


@pytest.fixture()
def engine(study_dataset):
    """A fresh engine per test: stage-cache state must not leak."""
    return CoordinatedBrushingEngine(study_dataset)


@pytest.fixture()
def west_canvas(arena):
    c = BrushCanvas()
    r = arena.radius
    c.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), radius=0.12 * r, color="red"))
    return c


def _spec(canvas, dataset, color="red", window=None, assignment=None, use_index=True):
    return QuerySpec.capture(
        dataset, canvas, color, window or TimeWindow.all(), assignment,
        use_index=use_index,
    )


class TestQuerySpec:
    def test_hashable_and_frozen(self, west_canvas, study_dataset):
        spec = _spec(west_canvas, study_dataset)
        assert hash(spec) == hash(_spec(west_canvas, study_dataset))
        with pytest.raises(AttributeError):
            spec.color = "green"

    def test_stroke_changes_color_epoch(self, west_canvas, study_dataset):
        before = _spec(west_canvas, study_dataset)
        west_canvas.add(BrushStroke(np.array([[0.0, 0.0]]), 0.1, "red"))
        after = _spec(west_canvas, study_dataset)
        assert after.color_epoch > before.color_epoch
        assert after.canvas_epoch > before.canvas_epoch

    def test_other_color_stroke_keeps_color_epoch(self, west_canvas, study_dataset):
        before = _spec(west_canvas, study_dataset)
        west_canvas.add(BrushStroke(np.array([[0.0, 0.0]]), 0.1, "green"))
        after = _spec(west_canvas, study_dataset)
        assert after.color_epoch == before.color_epoch  # red untouched
        assert after.canvas_epoch > before.canvas_epoch

    def test_window_normalization(self, west_canvas, study_dataset):
        a = _spec(west_canvas, study_dataset, window=TimeWindow.all())
        b = _spec(west_canvas, study_dataset, window=TimeWindow.fraction(0.0, 1.0))
        assert a.window_key == b.window_key

    def test_two_canvases_never_collide(self, study_dataset, arena):
        r = arena.radius
        c1, c2 = BrushCanvas(), BrushCanvas()
        c1.add(stroke_from_rect((-r, 0), (0, r), 0.1 * r, "red"))
        c2.add(stroke_from_rect((0, 0), (r, r), 0.1 * r, "red"))
        s1 = _spec(c1, study_dataset)
        s2 = _spec(c2, study_dataset)
        assert s1 != s2  # uids differ even if epochs coincide


class TestStageCache:
    def test_lru_eviction(self):
        cache = StageCache(capacity=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.lookup(("a",))  # refresh a
        cache.put(("c",), 3)  # evicts b
        assert ("a",) in cache and ("c",) in cache
        assert ("b",) not in cache
        assert cache.stats.evictions == 1

    def test_lookup_counts_hits_and_misses(self):
        cache = StageCache()
        _, found = cache.lookup(("x",))
        assert not found
        cache.put(("x",), None)  # None is a legal value
        value, found = cache.lookup(("x",))
        assert found and value is None
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_invalidate_by_dataset_epoch(self):
        cache = StageCache()
        cache.put(("temporal_mask", ("ds", 1), ("win", ("*",))), "old")
        cache.put(("temporal_mask", ("ds", 2), ("win", ("*",))), "new")
        dropped = cache.invalidate(dataset_epoch=2)
        assert dropped == 1
        assert cache.keys() == [("temporal_mask", ("ds", 2), ("win", ("*",)))]

    def test_invalidate_canvas_epoch_spares_temporal(self):
        cache = StageCache()
        cache.put(("temporal_mask", ("ds", 1), ("win", ("*",))), "t")
        cache.put(("brush_hit", ("ds", 1), ("cv", (1, 3)), "red", "indexed"), "b")
        dropped = cache.invalidate(canvas_epoch=(1, 4))
        assert dropped == 1  # brush stage dropped, temporal kept
        assert len(cache) == 1


class TestPlanner:
    def test_indexed_plan_shape(self, engine, west_canvas):
        plan = engine.plan(west_canvas, "red", window=TimeWindow.end(0.2))
        assert plan.strategy == "indexed"
        assert plan.stage_names() == (
            "temporal_mask", "spatial_candidates", "brush_hit", "combine", "aggregate",
        )

    def test_brute_force_plan(self, study_dataset, west_canvas):
        engine = CoordinatedBrushingEngine(study_dataset, use_index=False)
        plan = engine.plan(west_canvas, "red")
        assert plan.strategy == "brute-force"
        assert "spatial_candidates" not in plan

    def test_empty_brush_plan(self, engine):
        plan = engine.plan(BrushCanvas(), "red")
        assert plan.strategy == "empty-brush"
        assert "spatial_candidates" not in plan

    def test_group_support_needs_assignment(self, engine, west_canvas, study_dataset, viewport):
        grid = preset("2").build(viewport)
        groups = TrajectoryGroups.fig3_scheme(grid)
        asg = assign_groups_to_cells(study_dataset, grid, groups)
        with_groups = engine.plan(west_canvas, "red", assignment=asg)
        without = engine.plan(west_canvas, "red")
        assert "group_support" in with_groups
        assert "group_support" not in without

    def test_window_change_keys(self, engine, west_canvas):
        a = engine.plan(west_canvas, "red", window=TimeWindow.end(0.2))
        b = engine.plan(west_canvas, "red", window=TimeWindow.end(0.3))
        key = {s.name: s.key for s in a.stages}
        key2 = {s.name: s.key for s in b.stages}
        # window-dependent stages re-key; spatial stages do not
        assert key["temporal_mask"] != key2["temporal_mask"]
        assert key["combine"] != key2["combine"]
        assert key["aggregate"] != key2["aggregate"]
        assert key["spatial_candidates"] == key2["spatial_candidates"]
        assert key["brush_hit"] == key2["brush_hit"]

    def test_dag_validation(self):
        from repro.core.plan.planner import PlannedStage, QueryPlan

        spec_less_stages = (
            PlannedStage("combine", None, deps=("temporal_mask",)),
        )
        with pytest.raises(ValueError, match="depends on"):
            QueryPlan(spec=None, stages=spec_less_stages, strategy="x", plan_s=0.0)


class TestIncrementalExecution:
    def test_cold_query_runs_all_stages(self, engine, west_canvas):
        res = engine.query(west_canvas, "red", window=TimeWindow.end(0.2))
        assert res.trace is not None
        assert res.trace.cache_hits == 0
        assert res.trace.executed_stages() == [
            "temporal_mask", "spatial_candidates", "brush_hit", "combine", "aggregate",
        ]

    def test_slider_only_requery_is_incremental(self, engine, west_canvas):
        """Acceptance: same canvas/color, new window → only the
        temporal/combine/aggregate stages execute."""
        engine.query(west_canvas, "red", window=TimeWindow.end(0.2))
        res = engine.query(west_canvas, "red", window=TimeWindow.end(0.25))
        assert res.trace.executed_stages() == ["temporal_mask", "combine", "aggregate"]
        assert res.trace["spatial_candidates"].cache_hit
        assert res.trace["brush_hit"].cache_hit

    def test_identical_requery_is_fully_cached(self, engine, west_canvas):
        w = TimeWindow.end(0.2)
        engine.query(west_canvas, "red", window=w)
        res = engine.query(west_canvas, "red", window=w)
        assert res.trace.executed_stages() == []
        assert res.trace.cache_misses == 0

    def test_color_only_change_reuses_temporal_mask(self, engine, west_canvas):
        w = TimeWindow.end(0.2)
        west_canvas.add(BrushStroke(np.array([[0.0, 0.0]]), 0.1, "green"))
        engine.query(west_canvas, "red", window=w)
        res = engine.query(west_canvas, "green", window=w)
        assert res.trace["temporal_mask"].cache_hit
        assert not res.trace["brush_hit"].cache_hit

    def test_warm_result_equals_cold(self, study_dataset, west_canvas):
        cold_engine = CoordinatedBrushingEngine(study_dataset)
        warm_engine = CoordinatedBrushingEngine(study_dataset)
        w1, w2 = TimeWindow.end(0.2), TimeWindow.end(0.3)
        warm_engine.query(west_canvas, "red", window=w1)  # prime spatial stages
        warm = warm_engine.query(west_canvas, "red", window=w2)
        cold = cold_engine.query(west_canvas, "red", window=w2)
        np.testing.assert_array_equal(warm.segment_mask, cold.segment_mask)
        np.testing.assert_array_equal(warm.traj_mask, cold.traj_mask)
        np.testing.assert_allclose(warm.traj_highlight_time, cold.traj_highlight_time)

    def test_query_all_colors_shares_temporal_mask(self, engine, arena):
        """Regression: N colors must cost exactly one temporal_mask
        execution (the monolith recomputed it per color)."""
        r = arena.radius
        canvas = BrushCanvas()
        canvas.add(BrushStroke(np.array([[0.0, 0.0]]), 0.1 * r, "green"))
        canvas.add(BrushStroke(np.array([[-0.45 * r, 0.0]]), 0.05 * r, "red"))
        canvas.add(BrushStroke(np.array([[0.3 * r, 0.2 * r]]), 0.05 * r, "blue"))
        results = engine.query_all_colors(canvas, window=TimeWindow.end(0.4))
        assert len(results) == 3
        temporal_runs = [
            not res.trace["temporal_mask"].cache_hit for res in results.values()
        ]
        assert sum(temporal_runs) == 1


class TestCacheInvalidationEdges:
    def test_new_stroke_bumps_canvas_epoch_and_invalidates(self, engine, west_canvas):
        w = TimeWindow.end(0.2)
        engine.query(west_canvas, "red", window=w)
        west_canvas.add(BrushStroke(np.array([[0.4, 0.4]]), 0.05, "red"))
        res = engine.query(west_canvas, "red", window=w)
        # spatial stages re-run (epoch moved), temporal mask reused
        assert not res.trace["brush_hit"].cache_hit
        assert not res.trace["spatial_candidates"].cache_hit
        assert res.trace["temporal_mask"].cache_hit

    def test_skip_loaded_dataset_has_epoch(self, tmp_path):
        from repro.trajectory import io

        body = (
            "0,0.0,0.0,0.0\n0,1.0,0.0,1.0\n"
            "1,0.0,bad,0.0\n1,1.0,0.0,1.0\n"     # quarantined in skip mode
            "2,0.0,0.0,0.0\n2,1.0,0.0,1.0\n"
        )
        path = tmp_path / "d.csv"
        path.write_text("traj_id,x,y,t\n" + body)
        loaded = io.load_csv(path, on_error="skip")
        assert loaded.epoch == len(loaded) > 0

    def test_dataset_append_bumps_epoch_and_invalidates(self, tmp_path):
        from repro.trajectory import io
        from repro.trajectory.model import Trajectory, TrajectoryMeta

        body = "0,0.0,0.0,0.0\n0,1.0,0.0,1.0\n1,0.0,bad,0.0\n1,1.0,0.0,1.0\n"
        path = tmp_path / "d.csv"
        path.write_text("traj_id,x,y,t\n" + body)
        ds = io.load_csv(path, on_error="skip")
        canvas = BrushCanvas()
        canvas.add(BrushStroke(np.array([[0.5, 0.0]]), 0.6, "red"))
        spec_before = QuerySpec.capture(
            ds, canvas, "red", TimeWindow.all(), None, use_index=True
        )
        t = np.linspace(0.0, 5.0, 6)
        ds.append(
            Trajectory(
                np.stack([np.linspace(0, 1, 6), np.zeros(6)], axis=1),
                t, TrajectoryMeta(), -1,
            )
        )
        spec_after = QuerySpec.capture(
            ds, canvas, "red", TimeWindow.all(), None, use_index=True
        )
        assert spec_after.dataset_epoch > spec_before.dataset_epoch
        planner = QueryPlanner(index_token=("idx",))
        keys_before = {s.name: s.key for s in planner.plan(spec_before).stages}
        keys_after = {s.name: s.key for s in planner.plan(spec_after).stages}
        assert all(keys_before[n] != keys_after[n] for n in keys_before)

    def test_degraded_result_never_cached(self, engine, west_canvas):
        class _SabotagedIndex:
            def candidates_for_discs(self, centers, radii):
                raise RuntimeError("index sabotaged")

        engine.index = _SabotagedIndex()
        w = TimeWindow.end(0.2)
        first = engine.query(west_canvas, "red", window=w)
        assert first.degraded
        assert not any(k[0] in ("spatial_candidates", "brush_hit") for k in engine.cache.keys())
        # the re-query must recompute (and degrade again), not serve a
        # poisoned entry
        second = engine.query(west_canvas, "red", window=w)
        assert second.degraded
        assert not second.trace["brush_hit"].cache_hit
        # temporal mask is index-independent: cached despite degradation
        assert second.trace["temporal_mask"].cache_hit

    def test_index_build_failure_not_cached(self, study_dataset, west_canvas):
        engine = CoordinatedBrushingEngine(study_dataset, use_index=True)
        engine.index = None
        engine._index_error = "RuntimeError('no memory')"
        res = engine.query(west_canvas, "red")
        assert res.degraded
        assert res.trace["brush_hit"].degraded
        assert not any(k[0] == "brush_hit" for k in engine.cache.keys())


class TestTraceAndResult:
    def test_elapsed_covers_plan_and_execute(self, engine, west_canvas):
        res = engine.query(west_canvas, "red", window=TimeWindow.end(0.2))
        trace = res.trace
        assert res.elapsed_s == pytest.approx(trace.total_s)
        assert trace.total_s == pytest.approx(trace.plan_s + trace.execute_s)
        # wall time bounds the per-stage sum from above
        assert trace.total_s >= trace.stage_total_s > 0.0

    def test_trace_cardinalities(self, engine, west_canvas, study_dataset):
        res = engine.query(west_canvas, "red", window=TimeWindow.end(0.2))
        n_seg = study_dataset.packed().n_segments
        tm = res.trace["temporal_mask"]
        assert tm.n_in == n_seg
        assert tm.n_out == int(
            TimeWindow.end(0.2).segment_mask(study_dataset.packed(), study_dataset).sum()
        )
        agg = res.trace["aggregate"]
        assert agg.n_out == int(res.traj_mask.sum())

    def test_repr_summarizes(self, engine, west_canvas):
        res = engine.query(west_canvas, "red", window=TimeWindow.end(0.2))
        text = repr(res)
        assert "QueryResult[red]" in text
        assert f"{res.n_highlighted}/{res.n_displayed}" in text
        assert "stages=5" in text
        assert "degraded" not in text

    def test_repr_shows_degradation(self, engine, west_canvas):
        class _SabotagedIndex:
            def candidates_for_discs(self, centers, radii):
                raise RuntimeError("boom")

        engine.index = _SabotagedIndex()
        res = engine.query(west_canvas, "red")
        assert "degraded[index-failure]" in repr(res)

    def test_trace_describe_is_one_line(self, engine, west_canvas):
        res = engine.query(west_canvas, "red")
        text = res.trace.describe()
        assert "\n" not in text
        assert "temporal_mask" in text and "aggregate" in text

    def test_trace_getitem_unknown_stage(self):
        trace = QueryTrace()
        trace.record(StageRecord("temporal_mask", 0.0, 1, 1))
        with pytest.raises(KeyError):
            trace["nope"]

    def test_group_support_stage_runs_and_caches(self, engine, west_canvas, study_dataset, viewport):
        grid = preset("2").build(viewport)
        groups = TrajectoryGroups.fig3_scheme(grid)
        asg = assign_groups_to_cells(study_dataset, grid, groups)
        w = TimeWindow.end(0.15)
        first = engine.query(west_canvas, "red", window=w, assignment=asg)
        assert not first.trace["group_support"].cache_hit
        assert set(first.group_support) == {"on", "west", "east", "north", "south"}
        again = engine.query(west_canvas, "red", window=w, assignment=asg)
        assert again.trace["group_support"].cache_hit
        assert again.group_support == first.group_support


class TestSessionTraceJournal:
    def test_query_event_carries_trace(self, study_dataset, viewport, arena, tmp_path):
        from repro.core.session import ExplorationSession, SessionJournal

        journal = tmp_path / "session.jsonl"
        session = ExplorationSession(
            study_dataset, viewport, journal_path=journal
        )
        r = arena.radius
        session.brush(
            stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red")
        )
        session.run_query("red")
        session.set_time_window(TimeWindow.end(0.3))
        session.run_query("red")
        session.close()

        records = SessionJournal.read(journal)
        queries = [rec for rec in records if rec["kind"] == "query"]
        assert len(queries) == 2
        # a session query always carries a layout assignment, so the
        # plan ends with the (empty-scheme) group_support stage
        assert queries[0]["detail"]["stages_executed"] == [
            "temporal_mask", "spatial_candidates", "brush_hit", "combine",
            "aggregate", "group_support",
        ]
        # the slider-only second query is incremental in the journal too
        assert queries[1]["detail"]["stages_executed"] == [
            "temporal_mask", "combine", "aggregate", "group_support",
        ]
        assert "trace" in queries[0]["detail"]


class TestDeadline:
    """Per-query wall-clock budgets (PR 6): boundary-only enforcement,
    degraded partials, and strict cache hygiene around expiry."""

    def _deadline(self, budget_s, *, expire_after_checks):
        """A Deadline on a fake clock that expires after N ``check``s."""
        from repro.core.plan import Deadline

        ticks = {"n": 0}

        def clock():
            ticks["n"] += 1
            return float(ticks["n"] > expire_after_checks) * (budget_s + 1.0)

        return Deadline(budget_s=budget_s, expires_at=budget_s, clock=clock)

    def test_after_rejects_nonpositive_budget(self):
        from repro.core.plan import Deadline

        with pytest.raises(ValueError, match="positive"):
            Deadline.after(0.0)

    def test_check_raises_with_stage_and_overshoot(self):
        from repro.core.plan import Deadline, DeadlineExceeded

        dl = self._deadline(0.5, expire_after_checks=0)
        assert dl.expired
        with pytest.raises(DeadlineExceeded) as exc:
            dl.check("brush_hit")
        assert exc.value.stage == "brush_hit"
        assert exc.value.budget_s == 0.5

    def test_expired_query_degrades_to_empty_partial(self, engine, west_canvas):
        res = engine.query(west_canvas, "red", deadline_s=1e-9)
        assert res.degraded
        assert [e.kind for e in res.degradation.events] == ["deadline-exceeded"]
        # structurally complete, conservatively empty
        assert len(res.traj_mask) == len(engine.dataset)
        assert not res.traj_mask.any()
        assert not res.segment_mask.any()
        # every synthesized stage is marked degraded in the trace
        assert all(s.degraded for s in res.trace.stages)
        # and nothing poisoned the shared cache
        assert engine.cache.keys() == []

    def test_requery_after_expiry_computes_fresh_and_correct(
        self, engine, west_canvas, study_dataset
    ):
        degraded = engine.query(west_canvas, "red", deadline_s=1e-9)
        assert degraded.degraded
        clean = engine.query(west_canvas, "red")
        assert not clean.degraded
        assert clean.trace.cache_hits == 0  # nothing served from the expiry run
        ref = CoordinatedBrushingEngine(study_dataset, use_index=False).query(
            west_canvas, "red"
        )
        np.testing.assert_array_equal(clean.traj_mask, ref.traj_mask)

    def test_mid_query_expiry_keeps_completed_stages_cached(self, engine, west_canvas):
        """Expiry between stages: stages that finished before the budget
        ran out are genuine (cached); everything after is a tainted
        partial that never enters the cache."""
        from repro.core.plan.trace import QueryTrace
        from repro.core.temporal import TimeWindow as TW
        from repro.resilience.health import DegradationReport

        spec = _spec(west_canvas, engine.dataset)
        plan = engine.planner.plan(spec, index_token=engine._index_token())
        engine.executor.index = engine.index
        # first boundary check passes, second one expires
        deadline = self._deadline(1.0, expire_after_checks=1)
        trace = QueryTrace(strategy=plan.strategy)
        report = DegradationReport()
        outputs = engine.executor.run(
            plan, west_canvas, TW.all(), None, trace, report, deadline=deadline
        )
        assert set(outputs) == {s.name for s in plan.stages}
        assert [e.kind for e in report.events] == ["deadline-exceeded"]
        cached_stages = {k[0] for k in engine.cache.keys()}
        assert cached_stages == {"temporal_mask"}  # the one completed stage
        degraded_stages = [s.stage for s in trace.stages if s.degraded]
        assert degraded_stages == [
            "spatial_candidates", "brush_hit", "combine", "aggregate",
        ]

    def test_deadline_excluded_from_cache_identity(self, engine, west_canvas):
        """A budget changes *when* a query may be cut short, never *what*
        it computes — so a generously-budgeted re-query of a warm
        (stroke, window) must be served entirely from cache."""
        w = TimeWindow.end(0.3)
        cold = engine.query(west_canvas, "red", window=w)
        warm = engine.query(west_canvas, "red", window=w, deadline_s=60.0)
        assert not warm.degraded
        assert warm.trace.cache_misses == 0
        assert warm.trace.cache_hits > 0
        np.testing.assert_array_equal(warm.traj_mask, cold.traj_mask)

    def test_degraded_partial_not_cached_across_epoch_bump(self, tmp_path):
        """Satellite 3: a deadline-degraded query right before an epoch
        bump must not seed the cache that the post-append epoch sees."""
        from repro.synth import AntStudyConfig, generate_study_dataset
        from repro.trajectory.model import Trajectory, TrajectoryMeta

        ds = generate_study_dataset(AntStudyConfig(n_trajectories=14, seed=5))
        engine = CoordinatedBrushingEngine(ds)
        canvas = BrushCanvas()
        canvas.add(stroke_from_rect((-0.4, -0.3), (-0.1, 0.3), 0.1, "red"))
        assert engine.query(canvas, "red", deadline_s=1e-9).degraded
        assert engine.cache.keys() == []

        t = np.linspace(0.0, 5.0, 6)
        pos = np.stack([np.linspace(-0.3, 0.0, 6), np.zeros(6)], axis=1)
        ds.append(Trajectory(pos, t, TrajectoryMeta(), traj_id=-1))
        # the successor engine shares the cache, exactly as a rollover
        # hands the staged epoch's engine the service's live cache
        successor = CoordinatedBrushingEngine(ds, cache=engine.cache)
        res = successor.query(canvas, "red")
        assert not res.degraded
        assert res.trace.cache_hits == 0
        assert len(res.traj_mask) == len(ds)
