"""Tests for the uniform-grid spatial index."""

import numpy as np
import pytest

from repro.core.canvas import BrushCanvas
from repro.core.brush import BrushStroke
from repro.core.spatial_index import UniformGridIndex


@pytest.fixture()
def index(study_dataset):
    return UniformGridIndex(study_dataset.packed(), res=32)


class TestConstruction:
    def test_validation(self, study_dataset):
        with pytest.raises(ValueError):
            UniformGridIndex(study_dataset.packed(), res=0)

    def test_every_segment_registered(self, index, study_dataset):
        packed = study_dataset.packed()
        all_entries = np.concatenate(
            [index.cell_entries(cx, cy) for cy in range(index.res) for cx in range(index.res)]
        )
        assert set(np.unique(all_entries)) == set(range(packed.n_segments))

    def test_duplication_factor_modest(self, index):
        # short ant steps vs. arena-scale cells: near 1
        assert 1.0 <= index.duplication_factor < 1.6

    def test_cell_entries_bounds(self, index):
        with pytest.raises(IndexError):
            index.cell_entries(index.res, 0)


class TestCandidates:
    def test_conservative_never_misses(self, index, study_dataset):
        """Index candidates are a superset of true hits for any brush."""
        rng = np.random.default_rng(0)
        canvas = BrushCanvas()
        canvas.add(BrushStroke(rng.uniform(-0.4, 0.4, (5, 2)), 0.08, "red"))
        centers, radii = canvas.stamps_of("red")
        cand = index.candidates_for_discs(centers, radii)
        packed = study_dataset.packed()
        true_hits = np.flatnonzero(canvas.packed_hit_mask("red", packed))
        assert set(true_hits).issubset(set(cand))

    def test_selective_for_small_brush(self, index):
        centers = np.array([[0.45, 0.0]])
        radii = np.array([0.02])
        frac = index.candidate_fraction(centers, radii)
        assert frac < 0.35

    def test_empty_stamps(self, index):
        cand = index.candidates_for_discs(np.empty((0, 2)), np.empty(0))
        assert len(cand) == 0

    def test_validation(self, index):
        with pytest.raises(ValueError):
            index.candidates_for_discs(np.zeros((2, 3)), np.ones(2))
        with pytest.raises(ValueError):
            index.candidates_for_discs(np.zeros((2, 2)), np.ones(3))

    def test_giant_disc_returns_everything(self, index, study_dataset):
        cand = index.candidates_for_discs(np.array([[0.0, 0.0]]), np.array([10.0]))
        assert len(cand) == study_dataset.packed().n_segments

    def test_candidates_unique_and_sorted(self, index):
        cand = index.candidates_for_discs(
            np.array([[0.0, 0.0], [0.01, 0.0]]), np.array([0.3, 0.3])
        )
        assert np.all(np.diff(cand) > 0)


class TestResolutionInvariance:
    def test_hits_independent_of_resolution(self, study_dataset):
        packed = study_dataset.packed()
        canvas = BrushCanvas()
        canvas.add(BrushStroke(np.array([[-0.3, 0.2]]), 0.1, "red"))
        centers, radii = canvas.stamps_of("red")
        truth = canvas.packed_hit_mask("red", packed)
        for res in (4, 16, 64):
            idx = UniformGridIndex(packed, res=res)
            cand = idx.candidates_for_discs(centers, radii)
            narrowed = canvas.packed_hit_mask("red", packed, candidates=cand)
            np.testing.assert_array_equal(narrowed, truth)
