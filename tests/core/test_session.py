"""Tests for the exploration session facade."""

import pytest

from repro.core.brush import stroke_from_rect
from repro.core.session import ExplorationSession
from repro.core.temporal import TimeWindow


@pytest.fixture()
def session(study_dataset, viewport):
    return ExplorationSession(study_dataset, viewport, layout_key="2")


class TestLayoutSwitching:
    def test_initial_layout(self, session):
        assert session.layout.n_cells == 144

    def test_switch(self, session):
        session.switch_layout("3")
        assert session.layout.n_cells == 432
        assert session.grid.n_cells == 432

    def test_switch_preserves_groups(self, session):
        session.enable_fig3_groups()
        session.switch_layout("1")
        assert session.groups is not None
        assert session.groups.names() == ["on", "west", "east", "north", "south"]
        # assignment rebuilt on the new grid
        assert session.assignment.grid.n_cells == 60

    def test_unknown_key(self, session):
        with pytest.raises(KeyError):
            session.switch_layout("7")


class TestGrouping:
    def test_fig3_groups(self, session, study_dataset):
        session.enable_fig3_groups()
        asg = session.assignment
        shown = asg.displayed_indices()
        assert len(shown) > 0
        for i in shown:
            zone = study_dataset[int(i)].meta.capture_zone
            assert asg.group_name_of_traj(int(i)) == zone


class TestBrushingAndQuery:
    def test_brush_and_query(self, session, arena):
        session.enable_fig3_groups()
        r = arena.radius
        session.brush(
            stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red")
        )
        session.set_time_window(TimeWindow.end(0.15))
        result = session.run_query("red")
        assert result.group_support["east"].majority

    def test_erase(self, session):
        session.brush(stroke_from_rect((0, 0), (0.1, 0.1), 0.05, "red"))
        session.erase("red")
        assert session.canvas.is_empty()
        assert not session.run_query("red").traj_mask.any()


class TestEventLog:
    def test_events_accumulate(self, session, arena):
        session.enable_fig3_groups()
        session.brush(stroke_from_rect((0, 0), (0.1, 0.1), 0.05, "red"))
        session.set_time_window(TimeWindow.beginning(0.2))
        session.run_query("red")
        counts = session.event_counts()
        assert counts["layout"] >= 1
        assert counts["groups"] == 1
        assert counts["brush"] == 1
        assert counts["temporal"] == 1
        assert counts["query"] == 1

    def test_query_event_detail(self, session):
        session.run_query("red")
        last = session.events[-1]
        assert last.kind == "query"
        assert "elapsed_s" in last.detail
