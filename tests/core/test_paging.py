"""Tests for session paging (scrolling bins through their populations)."""

import pytest

from repro.core.session import ExplorationSession


@pytest.fixture()
def session(full_dataset, viewport):
    s = ExplorationSession(full_dataset, viewport, layout_key="1")  # 60 cells
    s.enable_fig3_groups()
    return s


class TestPaging:
    def test_next_page_shows_new_trajectories(self, session):
        first = set(session.assignment.displayed_indices().tolist())
        session.next_page()
        second = set(session.assignment.displayed_indices().tolist())
        assert second
        assert not (first & second)

    def test_prev_page_returns(self, session):
        first = set(session.assignment.displayed_indices().tolist())
        session.next_page()
        session.prev_page()
        assert set(session.assignment.displayed_indices().tolist()) == first

    def test_prev_clamps_at_zero(self, session):
        assert session.prev_page() == 0
        assert session.page == 0

    def test_next_clamps_at_end(self, session):
        # page far past the data; the session rolls back to a non-empty page
        for _ in range(50):
            session.next_page()
        assert session.assignment.n_displayed > 0

    def test_layout_switch_resets_page(self, session):
        session.next_page()
        assert session.page > 0
        session.switch_layout("2")
        assert session.page == 0

    def test_grouping_resets_page(self, session):
        session.next_page()
        session.enable_fig3_groups()
        assert session.page == 0

    def test_page_events_logged(self, session):
        session.next_page()
        session.prev_page()
        assert session.event_counts()["page"] == 2


class TestAppPagingKeys:
    def test_n_p_keys(self, full_dataset):
        from repro.app import TrajectoryExplorer
        from repro.interaction.events import KeyEvent

        app = TrajectoryExplorer(full_dataset, layout_key="1")
        app.group_by_capture_zone()
        before = set(app.session.assignment.displayed_indices().tolist())
        app.handle_event(KeyEvent(0.0, "n"))
        assert app.session.page == 1
        after = set(app.session.assignment.displayed_indices().tolist())
        assert not (before & after)
        app.handle_event(KeyEvent(1.0, "p"))
        assert app.session.page == 0
