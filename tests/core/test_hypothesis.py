"""Tests for declarative hypotheses as visual queries."""

import numpy as np
import pytest

from repro.core.brush import BrushStroke, stroke_from_rect
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.hypothesis import Hypothesis, VerdictKind
from repro.core.temporal import TimeWindow
from repro.layout.cells import assign_groups_to_cells
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups
from repro.trajectory.filters import SeedFilter


@pytest.fixture(scope="module")
def engine(full_dataset):
    return CoordinatedBrushingEngine(full_dataset)


@pytest.fixture(scope="module")
def assignment(full_dataset, viewport):
    grid = preset("3").build(viewport)
    groups = TrajectoryGroups.fig3_scheme(grid)
    return assign_groups_to_cells(full_dataset, grid, groups)


def _west_stroke(arena):
    r = arena.radius
    return stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), radius=0.12 * r, color="red")


def _center_stroke(arena, color="green"):
    r = 0.15 * arena.radius
    return stroke_from_rect((-r / 2, -r / 2), (r / 2, r / 2), radius=r, color=color)


class TestValidation:
    def test_needs_statement_and_strokes(self, arena):
        with pytest.raises(ValueError):
            Hypothesis(statement="", strokes=(_west_stroke(arena),))
        with pytest.raises(ValueError):
            Hypothesis(statement="x", strokes=())

    def test_single_color_rule(self, arena):
        red = _west_stroke(arena)
        green = _center_stroke(arena)
        with pytest.raises(ValueError, match="one query color"):
            Hypothesis(statement="x", strokes=(red, green))

    def test_threshold_range(self, arena):
        with pytest.raises(ValueError):
            Hypothesis(statement="x", strokes=(_west_stroke(arena),), threshold=0.0)

    def test_contrast_needs_target(self, arena):
        with pytest.raises(ValueError, match="contrast"):
            Hypothesis(statement="x", strokes=(_west_stroke(arena),), contrast=True)


class TestFig5Hypothesis:
    def test_east_west_supported(self, engine, assignment, arena):
        """The paper's worked example: supported by a clear majority."""
        hyp = Hypothesis(
            statement="east-captured ants exit west",
            strokes=(_west_stroke(arena),),
            window=TimeWindow.end(0.15),
            target_group="east",
        )
        verdict = hyp.evaluate(engine, assignment)
        assert verdict.kind is VerdictKind.SUPPORTED
        assert verdict.support > 0.5

    def test_control_group_refuted(self, engine, assignment, arena):
        """On-trail ants have no west preference: same query, different
        target group, opposite verdict — the contrast the researcher
        read off the wall."""
        hyp = Hypothesis(
            statement="on-trail ants exit west",
            strokes=(_west_stroke(arena),),
            window=TimeWindow.end(0.15),
            target_group="on",
        )
        verdict = hyp.evaluate(engine, assignment)
        assert verdict.kind is VerdictKind.REFUTED

    def test_unknown_group_raises(self, engine, assignment, arena):
        hyp = Hypothesis(
            statement="x", strokes=(_west_stroke(arena),), target_group="nowhere"
        )
        with pytest.raises(KeyError):
            hyp.evaluate(engine, assignment)

    def test_group_without_assignment_raises(self, engine, arena):
        hyp = Hypothesis(
            statement="x", strokes=(_west_stroke(arena),), target_group="east"
        )
        with pytest.raises(KeyError):
            hyp.evaluate(engine, None)


class TestContrastHypothesis:
    def test_seed_dwell_supported(self, engine, arena):
        hyp = Hypothesis(
            statement="seed-droppers linger centrally early",
            strokes=(_center_stroke(arena),),
            window=TimeWindow.beginning(0.2),
            target_filter=SeedFilter(dropped=True),
            min_highlight_s=8.0,
            contrast=True,
        )
        verdict = hyp.evaluate(engine)
        assert verdict.kind is VerdictKind.SUPPORTED
        assert verdict.comparison_support is not None
        assert verdict.support > verdict.comparison_support + 0.1
        assert "complement" in str(verdict)

    def test_min_highlight_reduces_support(self, engine, arena):
        base = Hypothesis(
            statement="x",
            strokes=(_center_stroke(arena),),
            window=TimeWindow.beginning(0.2),
        )
        strict = Hypothesis(
            statement="x",
            strokes=(_center_stroke(arena),),
            window=TimeWindow.beginning(0.2),
            min_highlight_s=10.0,
        )
        assert strict.evaluate(engine).support < base.evaluate(engine).support


class TestInconclusive:
    def test_tiny_population(self, engine, arena):
        hyp = Hypothesis(
            statement="x",
            strokes=(_west_stroke(arena),),
            target_filter=SeedFilter(dropped=True),
            min_population=10_000,
        )
        verdict = hyp.evaluate(engine)
        assert verdict.kind is VerdictKind.INCONCLUSIVE

    def test_supported_property(self, engine, arena):
        hyp = Hypothesis(statement="anything central", strokes=(_center_stroke(arena, "red"),))
        v = hyp.evaluate(engine)
        assert v.supported == (v.kind is VerdictKind.SUPPORTED)


class TestCanvasConstruction:
    def test_build_canvas_isolated(self, arena):
        hyp = Hypothesis(statement="x", strokes=(_west_stroke(arena),))
        c1 = hyp.build_canvas()
        c2 = hyp.build_canvas()
        assert c1 is not c2
        assert c1.n_strokes == 1
        assert hyp.color == "red"
