"""Streaming-ingest tests: buffer semantics, two-phase rollover,
session pinning across epochs, crash recovery, and cache isolation.

The autouse ``no_leaked_blocks`` fixture (conftest) closes the loop on
every test here: any rollover path that leaks a staged or retired
shared block fails its test.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro import obs
from repro.core.brush import stroke_from_rect
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.resilience import ChaosInterrupt, InjectedFault
from repro.store import (
    DatasetService,
    IngestBatch,
    IngestBuffer,
    RolloverCoordinator,
    attach,
)
from repro.synth import AntStudyConfig, generate_study_dataset
from repro.trajectory.model import Trajectory, TrajectoryMeta


def _traj(i: int, n: int = 6) -> Trajectory:
    t = np.linspace(0.0, 5.0, n)
    pos = np.stack([np.linspace(-0.4, 0.4, n), np.full(n, 0.01 * i)], axis=1)
    return Trajectory(pos, t, TrajectoryMeta(), traj_id=1000 + i)


@pytest.fixture()
def base_dataset():
    return generate_study_dataset(AntStudyConfig(n_trajectories=10, seed=21))


@pytest.fixture()
def west_ops():
    stroke = stroke_from_rect((-0.5, -0.4), (-0.1, 0.4), 0.06, "red")
    return stroke, TimeWindow.end(0.5)


# IngestBuffer ---------------------------------------------------------------

class TestIngestBuffer:
    def test_sequence_numbers_and_snapshot(self):
        buf = IngestBuffer()
        assert buf.append(_traj(0)) == 0
        assert buf.append(_traj(1)) == 1
        assert buf.extend([_traj(2), _traj(3)]) == 3
        assert buf.n_pending == 4
        batch = buf.snapshot()
        assert (batch.seq_lo, batch.seq_hi, len(batch)) == (0, 4, 4)
        # snapshot does not consume
        assert buf.n_pending == 4

    def test_commit_through_drops_exactly_the_prefix(self):
        buf = IngestBuffer()
        buf.extend([_traj(i) for i in range(5)])
        assert buf.commit_through(2) == 3
        assert buf.n_pending == 2
        batch = buf.snapshot()
        assert (batch.seq_lo, batch.seq_hi) == (3, 5)
        # committing the same range again is a no-op
        assert buf.commit_through(2) == 0
        assert buf.commit_through(4) == 2
        assert buf.snapshot() is None

    def test_segment_accounting(self):
        buf = IngestBuffer()
        buf.append(_traj(0, n=6))  # 5 segments
        buf.append(_traj(1, n=3))  # 2 segments
        assert buf.n_segments_pending == 7
        batch = buf.snapshot()
        assert batch.n_segments == 7

    def test_lag_with_injectable_clock(self):
        now = [100.0]
        buf = IngestBuffer(clock=lambda: now[0])
        assert buf.lag_seconds() == 0.0
        buf.append(_traj(0))
        now[0] = 103.5
        assert buf.lag_seconds() == pytest.approx(3.5)
        buf.commit_through(0)
        assert buf.lag_seconds() == 0.0

    def test_batch_tail_from(self):
        batch = IngestBatch(3, 6, tuple(_traj(i) for i in range(3)))
        assert batch.tail_from(2) is batch
        tail = batch.tail_from(5)
        assert (tail.seq_lo, tail.seq_hi, len(tail)) == (5, 6, 1)
        empty = batch.tail_from(9)
        assert len(empty) == 0

    def test_batch_rejects_inconsistent_span(self):
        with pytest.raises(ValueError, match="spans"):
            IngestBatch(0, 3, (_traj(0),))


# Rollover happy path --------------------------------------------------------

class TestRollover:
    def test_rollover_publishes_new_epoch(self, base_dataset, viewport):
        with DatasetService(base_dataset) as service:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf)
            epoch0 = service.active_epoch()
            buf.extend([_traj(i) for i in range(4)])

            result = coord.rollover()
            assert result.n_ingested == 4
            assert result.epoch == epoch0 + 4 == service.active_epoch()
            assert len(service.dataset) == len(base_dataset) + 4
            assert buf.n_pending == 0
            # the published handle is attachable and epoch-tagged
            assert result.handle is not None
            assert result.handle.epoch == result.epoch
            with attach(result.handle) as client:
                assert len(client.dataset) == len(base_dataset) + 4

    def test_empty_buffer_rollover_is_none(self, base_dataset):
        with DatasetService(base_dataset) as service:
            coord = RolloverCoordinator(service, IngestBuffer())
            assert coord.rollover() is None

    def test_sessions_pin_their_epoch_and_degrade_stale(
        self, base_dataset, viewport, west_ops
    ):
        stroke, window = west_ops
        with DatasetService(base_dataset) as service:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf)
            old = service.session(viewport)
            old.brush(stroke)
            old.set_time_window(window)
            before = old.run_query("red")
            assert not before.degraded

            buf.extend([_traj(i) for i in range(3)])
            coord.rollover()

            # the pinned session still answers over its epoch, flagged
            after = old.run_query("red")
            assert after.degraded
            assert any(
                e.kind == "stale-epoch" for e in after.degradation.events
            )
            assert len(after.traj_mask) == len(base_dataset)
            np.testing.assert_array_equal(before.traj_mask, after.traj_mask)

            # a fresh session sees the new epoch, not degraded
            fresh = service.session(viewport)
            fresh.brush(stroke)
            fresh.set_time_window(window)
            now = fresh.run_query("red")
            assert not now.degraded
            assert len(now.traj_mask) == len(base_dataset) + 3

            # rebind moves the old session up
            assert old.rebind() is True
            assert old.epoch == service.active_epoch()
            assert not old.run_query("red").degraded
            assert old.rebind() is False
            old.close()
            fresh.close()

    def test_new_epoch_queries_never_hit_old_epoch_cache(
        self, base_dataset, viewport, west_ops
    ):
        """Satellite invariant: the shared cache serves across the
        rollover only within an epoch — a new-epoch query's stages all
        miss even though the old epoch warmed the same (stroke, window)."""
        stroke, window = west_ops
        with DatasetService(base_dataset) as service:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf)
            s = service.session(viewport)
            s.brush(stroke)
            s.set_time_window(window)
            s.run_query("red")
            warm_old = s.run_query("red")
            assert warm_old.trace.cache_hits > 0

            buf.extend([_traj(i) for i in range(2)])
            coord.rollover()
            # same engine cache object, shared across epochs
            assert service.engine.cache is s.engine.cache

            fresh = service.session(viewport)
            fresh.brush(stroke)
            fresh.set_time_window(window)
            cold_new = fresh.run_query("red")
            assert cold_new.trace.cache_hits == 0
            # and the brute-force reference agrees (nothing stale served)
            ref = CoordinatedBrushingEngine(fresh.dataset, use_index=False).query(
                fresh.canvas, "red", window=window, assignment=fresh.assignment
            )
            np.testing.assert_array_equal(cold_new.traj_mask, ref.traj_mask)
            s.close()
            fresh.close()

    def test_in_process_rollover_publishes_no_block(self, base_dataset):
        from repro.store import live_blocks

        with DatasetService(base_dataset) as service:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf, publish_store=False)
            buf.append(_traj(0))
            before = set(live_blocks())
            result = coord.rollover()
            assert result.handle is None
            assert set(live_blocks()) == before
            assert len(service.dataset) == len(base_dataset) + 1

    def test_rollover_emits_swap_metrics(self, base_dataset):
        obs.enable()
        try:
            with DatasetService(base_dataset) as service:
                buf = IngestBuffer()
                coord = RolloverCoordinator(service, buf, publish_store=False)
                buf.append(_traj(0))
                coord.rollover()
                snap = obs.telemetry_snapshot()
                assert snap.counter_total("rollover.count") == 1.0
                hist = snap.histogram("rollover.swap_seconds")
                assert hist is not None and hist.count == 1
        finally:
            obs.disable()


# Crash and recovery ---------------------------------------------------------

class TestCrashSafety:
    @pytest.mark.parametrize("point", ["pre_stage", "post_stage", "pre_swap"])
    def test_crash_before_swap_loses_nothing(self, base_dataset, point):
        """A coordinator death anywhere before the swap leaves the old
        epoch serving, the buffer intact, and no leaked block; the next
        rollover ingests the same batch."""

        def chaos(p: str, _armed=[True]) -> None:
            if p == point and _armed[0]:
                _armed[0] = False
                raise ChaosInterrupt(p, 0)

        with DatasetService(base_dataset) as service:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf, chaos=chaos)
            buf.extend([_traj(i) for i in range(3)])
            epoch0 = service.active_epoch()

            with pytest.raises(ChaosInterrupt):
                coord.rollover()
            assert service.active_epoch() == epoch0
            assert len(service.dataset) == len(base_dataset)
            assert buf.n_pending == 3  # nothing lost

            result = coord.rollover()  # recovery: plain retry
            assert result.n_ingested == 3
            assert buf.n_pending == 0
            assert len(service.dataset) == len(base_dataset) + 3

    def test_injected_error_mid_stage_aborts_cleanly(self, base_dataset):
        def chaos(p: str, _armed=[True]) -> None:
            if p == "post_stage" and _armed[0]:
                _armed[0] = False
                raise InjectedFault("error", job=0, attempt=0)

        with DatasetService(base_dataset) as service:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf, chaos=chaos)
            buf.append(_traj(0))
            with pytest.raises(InjectedFault):
                coord.rollover()
            assert buf.n_pending == 1
            assert coord.rollover().n_ingested == 1

    def test_crash_between_swap_and_commit_never_double_ingests(
        self, base_dataset, monkeypatch
    ):
        """The nastiest window: swap committed, buffer ack lost.  The
        coordinator's swapped high-water mark must trim (not re-ingest)
        the batch on the next rollover."""
        with DatasetService(base_dataset) as service:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf, publish_store=False)
            buf.extend([_traj(i) for i in range(2)])

            real_commit = buf.commit_through
            calls = {"n": 0}

            def dying_commit(seq: int) -> int:
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ChaosInterrupt("commit", 0)
                return real_commit(seq)

            monkeypatch.setattr(buf, "commit_through", dying_commit)
            with pytest.raises(ChaosInterrupt):
                coord.rollover()
            # swap happened; ack did not
            assert len(service.dataset) == len(base_dataset) + 2
            assert buf.n_pending == 2

            result = coord.rollover()
            assert result.recovered is True
            assert result.n_ingested == 0
            assert buf.n_pending == 0
            # no duplicates: still exactly base + 2
            assert len(service.dataset) == len(base_dataset) + 2

    def test_validation_failure_aborts_swap(self, base_dataset, monkeypatch):
        from repro.store.arena import SharedArenaStore
        from repro.store.shm import StoreAttachError

        def bad_validate(self) -> None:
            raise StoreAttachError("simulated corrupt stage")

        monkeypatch.setattr(SharedArenaStore, "validate", bad_validate)
        with DatasetService(base_dataset) as service:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf)
            buf.append(_traj(0))
            epoch0 = service.active_epoch()
            with pytest.raises(StoreAttachError):
                coord.rollover()
            assert service.active_epoch() == epoch0
            assert buf.n_pending == 1


# Epoch lifecycle / pinning --------------------------------------------------

class TestEpochLifecycle:
    def test_old_store_survives_until_last_session_detaches(
        self, base_dataset, viewport
    ):
        """keep_stores=1 forces the rollover to evict the old epoch's
        store, but a pinned session defers the unlink until it closes."""
        with DatasetService(base_dataset, keep_stores=1) as service:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf)
            h0 = service.publish_store()
            pinned = service.session(viewport)
            assert pinned.epoch == service.active_epoch()

            buf.append(_traj(0))
            r1 = coord.rollover()
            assert service.active_epoch() == r1.epoch
            # old handle aged out of the registry
            assert h0.uid not in [h.uid for h in service.stores()]
            # the pinned session still queries fine over its epoch
            assert len(pinned.run_query("red").traj_mask) == len(base_dataset)
            pinned.close()
            gc.collect()
        # conftest asserts the deferred block was finally unlinked

    def test_evict_store_refuses_while_pinned(self, base_dataset, viewport):
        with DatasetService(base_dataset) as service:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf)
            buf.append(_traj(0))
            r = coord.rollover()
            pinned = service.session(viewport)  # pins the rollover epoch
            assert service.evict_store(r.handle.uid) is False
            assert r.handle.uid in [h.uid for h in service.stores()]
            pinned.close()
            gc.collect()
            assert service.evict_store(r.handle.uid) is True
            assert r.handle.uid not in [h.uid for h in service.stores()]

    def test_epoch_must_advance(self, base_dataset):
        with DatasetService(base_dataset) as service:
            with pytest.raises(ValueError, match="must exceed"):
                service._swap_active(  # reprolint: disable=RL008
                    service.dataset, service.engine, None
                )
