"""Store-test fixtures: every test must leave zero shared memory behind.

The autouse fixture snapshots both the in-process block registry and
the ``/dev/shm`` directory (POSIX) around each test and **fails** the
test on any leftover — the enforcement half of the store's
close/unlink lifecycle contract.
"""

from __future__ import annotations

import gc
from pathlib import Path

import pytest

from repro.store import live_blocks
from repro.store.shm import BLOCK_PREFIX
from repro.synth import AntStudyConfig, generate_study_dataset

_SHM_DIR = Path("/dev/shm")


def _shm_files() -> set[str]:
    if not _SHM_DIR.is_dir():
        return set()
    return {p.name for p in _SHM_DIR.glob(f"{BLOCK_PREFIX}*")}


@pytest.fixture(autouse=True)
def no_leaked_blocks():
    """Fail any store test that leaks an open handle or an unlinked
    /dev/shm segment."""
    handles_before = set(live_blocks())
    files_before = _shm_files()
    yield
    gc.collect()
    leaked_handles = set(live_blocks()) - handles_before
    assert not leaked_handles, f"leaked open SharedBlock handles: {leaked_handles}"
    leaked_files = _shm_files() - files_before
    assert not leaked_files, f"leaked /dev/shm segments: {leaked_files}"


@pytest.fixture(scope="module")
def small_dataset():
    """A small deterministic dataset (40 trajectories) for store tests."""
    return generate_study_dataset(AntStudyConfig(n_trajectories=40, seed=11))
