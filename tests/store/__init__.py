"""Tests for the shared-memory data plane and multi-session service."""
