"""Tests for the shared-memory arena store: block lifecycle, publish/
attach roundtrips, zero-copy guarantees, and stale-handle rejection.

``ResourceWarning`` is promoted to an error module-wide: a store test
that drops a mapping without closing it fails, not warns.

Derived-object discipline: zero-copy views pin the mapping (``close()``
refuses while they are alive), so every check that materializes the
attached dataset/engine runs inside a helper function — its locals die
when it returns, and the ``with attach(...)`` exit then releases
cleanly.  The autouse leak fixture enforces exactly this.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import pickle

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.store import (
    SharedArenaStore,
    SharedBlock,
    StaleHandleError,
    StoreAttachError,
    attach,
    attach_block,
    create_block,
    live_blocks,
)

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")


def _canvas(radius: float = 0.12) -> BrushCanvas:
    canvas = BrushCanvas()
    canvas.add(stroke_from_rect((-1.0, -0.6), (-0.7, 0.6), radius, "red"))
    return canvas


class TestBlockLifecycle:
    def test_create_registers_and_close_unregisters(self):
        block = create_block(1024)
        assert block.name in live_blocks()
        assert block.owned
        assert block.size >= 1024
        block.unlink()
        assert block.close() is True
        assert block.name not in live_blocks()
        assert block.closed

    def test_close_and_unlink_idempotent(self):
        block = create_block(256)
        block.unlink()
        block.unlink()  # second unlink is a no-op, not an error
        assert block.close() is True
        assert block.close() is True

    def test_close_refuses_while_view_pinned(self):
        block = create_block(512)
        # frombuffer registers a real export (np.ndarray(buffer=...)
        # would not, and close() would unmap under the live view)
        view = np.frombuffer(block.buf, dtype=np.float64, count=64)
        assert block.close() is False  # view pins the mapping
        assert block.name in live_blocks()  # still visible to leak checks
        del view
        block.unlink()
        assert block.close() is True

    def test_attach_sees_creator_writes(self):
        block = create_block(256)
        np.frombuffer(block.buf, dtype=np.int64, count=8)[:] = np.arange(8)
        try:
            other = attach_block(block.name)
            try:
                got = np.frombuffer(other.buf, dtype=np.int64, count=8).copy()
                np.testing.assert_array_equal(got, np.arange(8))
                assert not other.owned
                other.unlink()  # non-owner unlink must be a silent no-op
            finally:
                assert other.close() is True
        finally:
            block.unlink()
            assert block.close() is True

    def test_attach_missing_name_is_stale(self):
        with pytest.raises(StaleHandleError):
            attach_block("repro_store_no_such_block")

    def test_same_name_mappings_tracked_independently(self):
        # A publisher plus an in-process attach client map the same
        # name; closing one must not untrack the other in live_blocks().
        block = create_block(256)
        try:
            other = attach_block(block.name)
            assert live_blocks().count(block.name) == 2
            assert other.close() is True
            assert live_blocks().count(block.name) == 1
        finally:
            block.unlink()
            assert block.close() is True
        assert block.name not in live_blocks()

    def test_create_requires_positive_size(self):
        with pytest.raises(ValueError):
            SharedBlock(None, size=0, create=True)

    def test_context_manager_cleans_up(self):
        with create_block(128) as block:
            name = block.name
            assert name in live_blocks()
        assert name not in live_blocks()


def _check_roundtrip(client, original) -> None:
    """Attached dataset equals the published one, array for array."""
    ds = client.dataset
    assert len(ds) == len(original)
    assert ds.name == original.name
    assert ds.epoch == original.epoch
    for orig, att in zip(original, ds):
        assert att.traj_id == orig.traj_id
        assert att.meta.to_dict() == orig.meta.to_dict()
        np.testing.assert_array_equal(att.positions, orig.positions)
        np.testing.assert_array_equal(att.times, orig.times)
    p0, p1 = original.packed(), ds.packed()
    for key in ("a", "b", "t0", "t1", "owner", "offsets"):
        np.testing.assert_array_equal(getattr(p0, key), getattr(p1, key))


def _check_zero_copy(client) -> None:
    """Attached arrays borrow the shared mapping — no private copies."""
    packed = client.dataset.packed()
    assert not packed.a.flags["OWNDATA"]
    assert not packed.a.flags["WRITEABLE"]
    traj = client.dataset[0]
    assert not traj.positions.flags["OWNDATA"]


def _check_query_identical(client, original, canvas, window) -> None:
    """Attached engine answers bit-identically, via the shared index."""
    ref = CoordinatedBrushingEngine(original).query(canvas, "red", window=window)
    engine = client.engine()
    # the shared cell tables were reused, not rebuilt
    assert engine.plan(canvas, "red", window=window).strategy == "indexed"
    got = engine.query(canvas, "red", window=window)
    np.testing.assert_array_equal(got.traj_mask, ref.traj_mask)
    np.testing.assert_array_equal(got.segment_mask, ref.segment_mask)


def _check_store_token(client, token) -> None:
    """The attached dataset carries the store's cache-key token."""
    assert client.dataset.store_token == token


def _check_query_unindexed(client, original, canvas) -> None:
    """Index-less store still answers identically (brute force)."""
    assert client.index() is None
    got = client.engine().query(canvas, "red")
    ref = CoordinatedBrushingEngine(original, use_index=False).query(canvas, "red")
    np.testing.assert_array_equal(got.traj_mask, ref.traj_mask)


class TestPublishAttach:
    def test_roundtrip_arrays_equal(self, small_dataset):
        with SharedArenaStore.publish(small_dataset) as store:
            with attach(store.handle) as client:
                _check_roundtrip(client, small_dataset)

    def test_attached_arrays_are_views_not_copies(self, small_dataset):
        with SharedArenaStore.publish(small_dataset) as store:
            with attach(store.handle) as client:
                _check_zero_copy(client)

    def test_query_bit_identical_and_index_reused(self, small_dataset):
        with SharedArenaStore.publish(small_dataset) as store:
            assert store.handle.index_res is not None
            with attach(store.handle) as client:
                _check_query_identical(
                    client, small_dataset, _canvas(), TimeWindow.end(0.4)
                )

    def test_publish_without_index(self, small_dataset):
        with SharedArenaStore.publish(small_dataset, include_index=False) as store:
            assert store.handle.index_res is None
            assert not store.handle.has_array("idx_entries")
            with attach(store.handle) as client:
                _check_query_unindexed(client, small_dataset, _canvas())

    def test_close_refused_while_attached_views_live(self, small_dataset):
        """A client that forgets to drop derived objects cannot release
        the mapping — close() reports failure instead of segfaulting."""
        with SharedArenaStore.publish(small_dataset) as store:
            client = attach(store.handle)
            packed = client.dataset.packed()  # pins the mapping
            assert client.close() is False
            del packed
            assert client.close() is True

    def test_publish_empty_dataset_rejected(self):
        from repro.trajectory.dataset import TrajectoryDataset

        with pytest.raises(ValueError):
            SharedArenaStore.publish(TrajectoryDataset(name="empty"))


class TestHandle:
    def test_handle_is_small_and_picklable(self, small_dataset):
        with SharedArenaStore.publish(small_dataset) as store:
            handle = store.handle
            wire = pickle.dumps(handle)
            assert pickle.loads(wire) == handle
            # the tentpole economics: O(handle) vs O(dataset) per worker
            assert handle.handle_bytes < 4096
            assert handle.payload_bytes > 100 * handle.handle_bytes

    def test_store_token_tags_uid_and_epoch(self, small_dataset):
        with SharedArenaStore.publish(small_dataset) as store:
            token = store.handle.store_token
            assert token == ("shm", store.uid, store.epoch)
            with attach(store.handle) as client:
                _check_store_token(client, token)

    def test_spec_lookup(self, small_dataset):
        with SharedArenaStore.publish(small_dataset) as store:
            spec = store.handle.spec("pos")
            assert spec.shape == (store.handle.n_samples, 2)
            assert spec.offset % 16 == 0
            with pytest.raises(KeyError):
                store.handle.spec("nope")


class TestStaleHandles:
    def test_attach_after_unlink_is_stale(self, small_dataset):
        store = SharedArenaStore.publish(small_dataset)
        handle = store.handle
        store.unlink()
        store.close()
        with pytest.raises(StaleHandleError):
            attach(handle)

    def test_epoch_mismatch_rejected(self, small_dataset):
        with SharedArenaStore.publish(small_dataset) as store:
            forged = dataclasses.replace(store.handle, epoch=store.epoch + 1)
            with pytest.raises(StaleHandleError, match="republished"):
                attach(forged)

    def test_uid_mismatch_rejected(self, small_dataset):
        with SharedArenaStore.publish(small_dataset) as store:
            forged = dataclasses.replace(store.handle, uid="f" * 32)
            with pytest.raises(StaleHandleError):
                attach(forged)

    def test_foreign_block_rejected(self, small_dataset):
        with SharedArenaStore.publish(small_dataset) as store:
            with create_block(4096) as foreign:  # no store header
                forged = dataclasses.replace(store.handle, block=foreign.name)
                with pytest.raises(StoreAttachError, match="magic"):
                    attach(forged)


def _spawn_attach_worker(handle, queue) -> None:
    """Spawn-context child: attach the handle and report a checksum.

    Module-level so the spawned interpreter can import it by name; the
    parent's ``sys.path`` travels in the spawn preparation data.
    """
    from repro.store import attach as _attach

    try:
        client = _attach(handle)
        packed = client.dataset.packed()
        out = ("ok", packed.n_segments, float(packed.a.sum()), float(packed.t1.sum()))
        del packed
        client.close()
        queue.put(out)
    except Exception as exc:  # surfaced in the parent's assertion
        queue.put(("error", repr(exc), 0.0, 0.0))


class TestSpawnContext:
    def test_spawned_process_attaches_and_agrees(self, small_dataset):
        """A spawn-context child (fresh interpreter, nothing inherited)
        can attach through the pickled handle alone."""
        ctx = mp.get_context("spawn")
        with SharedArenaStore.publish(small_dataset) as store:
            queue = ctx.Queue()
            proc = ctx.Process(target=_spawn_attach_worker, args=(store.handle, queue))
            proc.start()
            try:
                status, n_segments, a_sum, t1_sum = queue.get(timeout=60)
            finally:
                proc.join(timeout=60)
            assert status == "ok", n_segments
            packed = small_dataset.packed()
            assert n_segments == packed.n_segments
            assert a_sum == pytest.approx(float(packed.a.sum()))
            assert t1_sum == pytest.approx(float(packed.t1.sum()))
            assert proc.exitcode == 0  # no atexit unlink/tracker blowups
