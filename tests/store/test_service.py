"""Tests for the multi-session service layer: N concurrent session
views over one DatasetService must behave exactly like N independent
single-user engines, while the process holds one copy of the packed
arrays — plus the store registry's epoch validation and eviction.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.session import ExplorationSession
from repro.core.temporal import TimeWindow
from repro.store import DatasetService, SharedQueryEngine, StaleHandleError, attach
from repro.synth import AntStudyConfig, generate_study_dataset
from repro.trajectory.model import Trajectory, TrajectoryMeta

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

N_SESSIONS = 8


def _session_ops(i: int, arena):
    """Deterministic per-user brushing script #i (each user differs)."""
    r = arena.radius
    x0 = -r + 0.15 * r * i
    stroke = stroke_from_rect(
        (x0, -0.6 * r), (x0 + 0.3 * r, 0.5 * r), 0.1 * r, "red"
    )
    window = TimeWindow.end(0.15 + 0.08 * i)
    return stroke, window


def _drive(session, i: int, arena) -> np.ndarray:
    """Run user #i's script on a session and return the query mask."""
    stroke, window = _session_ops(i, arena)
    session.brush(stroke)
    session.set_time_window(window)
    first = session.run_query("red")
    second = session.run_query("red")  # warm path must agree with cold
    np.testing.assert_array_equal(first.traj_mask, second.traj_mask)
    return first.traj_mask


@pytest.fixture()
def mutable_dataset():
    """A small private dataset safe to mutate (append) in a test."""
    return generate_study_dataset(AntStudyConfig(n_trajectories=12, seed=3))


def _extra_traj() -> Trajectory:
    t = np.linspace(0.0, 5.0, 6)
    pos = np.stack([np.linspace(0.0, 0.5, 6), np.zeros(6)], axis=1)
    return Trajectory(pos, t, TrajectoryMeta(), traj_id=-1)


class TestSharedState:
    def test_sessions_share_engine_and_packed(self, small_dataset, viewport):
        with DatasetService(small_dataset) as service:
            views = [service.session(viewport) for _ in range(3)]
            assert service.n_sessions == 3
            # one resident copy: every view runs on the service engine,
            # which runs on the dataset's one packed segment view
            assert all(v.engine is service.engine for v in views)
            assert isinstance(service.engine, SharedQueryEngine)
            assert service.engine.packed is service.dataset.packed()
            ids = [v.session_id for v in views]
            assert len(set(ids)) == 3

    def test_empty_dataset_rejected(self):
        from repro.trajectory.dataset import TrajectoryDataset

        with pytest.raises(ValueError):
            DatasetService(TrajectoryDataset(name="empty"))

    def test_keep_stores_validated(self, small_dataset):
        with pytest.raises(ValueError):
            DatasetService(small_dataset, keep_stores=0)


class TestConcurrentSessions:
    def test_eight_threads_match_independent_engines(
        self, small_dataset, viewport, arena
    ):
        """The acceptance bar: 8 concurrent SessionViews produce results
        identical to 8 fully independent single-user engines."""
        # reference: independent sessions, each with a private engine
        expected = []
        for i in range(N_SESSIONS):
            solo = ExplorationSession(small_dataset, viewport)
            expected.append(_drive(solo, i, arena))

        with DatasetService(small_dataset) as service:
            views = [service.session(viewport) for _ in range(N_SESSIONS)]
            results: list[np.ndarray | None] = [None] * N_SESSIONS
            errors: list[BaseException] = []
            barrier = threading.Barrier(N_SESSIONS)

            def run(i: int) -> None:
                try:
                    barrier.wait(timeout=30)
                    results[i] = _drive(views[i], i, arena)
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(i,)) for i in range(N_SESSIONS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors
            for i in range(N_SESSIONS):
                np.testing.assert_array_equal(results[i], expected[i])
            # the shared cache absorbed repeat work across sessions
            assert service.engine.cache_stats()["hits"] > 0


class TestStoreRegistry:
    def test_publish_idempotent_per_epoch(self, small_dataset):
        with DatasetService(small_dataset) as service:
            h1 = service.publish_store()
            h2 = service.publish_store()
            assert h1 == h2
            assert service.stores() == (h1,)
            service.validate_handle(h1)  # registered + current: no raise

    def test_mutation_staleness_and_attach_after_mutation(self, mutable_dataset):
        with DatasetService(mutable_dataset) as service:
            old = service.publish_store()
            mutable_dataset.append(_extra_traj())
            # the old handle is epoch-stale even though still registered
            with pytest.raises(StaleHandleError, match="mutated"):
                service.validate_handle(old)
            fresh = service.publish_store()
            assert fresh.uid != old.uid
            assert fresh.epoch > old.epoch
            service.validate_handle(fresh)
            # keep_stores=2 default: the old block still attaches (its
            # header matches its own handle), serving the old epoch
            attach(old).close()

    def test_eviction_beyond_keep_stores(self, mutable_dataset):
        with DatasetService(mutable_dataset, keep_stores=1) as service:
            old = service.publish_store()
            mutable_dataset.append(_extra_traj())
            service.publish_store()  # evicts (unlinks) the old store
            assert len(service.stores()) == 1
            with pytest.raises(StaleHandleError, match="not registered"):
                service.validate_handle(old)
            with pytest.raises(StaleHandleError):
                attach(old)  # the block is gone, not just deregistered

    def test_evict_store_explicit(self, small_dataset):
        with DatasetService(small_dataset) as service:
            handle = service.publish_store()
            assert service.evict_store(handle.uid) is True
            assert service.evict_store(handle.uid) is False
            assert service.stores() == ()
            with pytest.raises(StaleHandleError):
                attach(handle)

    def test_close_unlinks_everything(self, small_dataset):
        service = DatasetService(small_dataset)
        handle = service.publish_store()
        service.close()
        service.close()  # idempotent
        with pytest.raises(StaleHandleError):
            attach(handle)
        with pytest.raises(RuntimeError, match="closed"):
            service.publish_store()

    def test_stats(self, small_dataset, viewport):
        with DatasetService(small_dataset) as service:
            service.session(viewport)
            service.publish_store()
            stats = service.stats()
            assert stats["n_traj"] == len(small_dataset)
            assert stats["sessions"] == 1
            assert len(stats["stores"]) == 1
            assert stats["store_bytes"] > 0
            assert "hits" in stats["cache"]


def _query_on_service(service, viewport, stroke, window) -> np.ndarray:
    """Open a session, run one brushed query, return the (copied) mask.

    A helper so no view into an attached store outlives the call —
    ``DatasetService.close`` can then release the mapping cleanly.
    """
    session = service.session(viewport)
    session.brush(stroke)
    session.set_time_window(window)
    return session.run_query("red").traj_mask.copy()


class TestFromHandle:
    def test_service_over_foreign_store(self, small_dataset, viewport, arena):
        """A second service attached through a handle answers queries
        identically to the publisher's — zero-copy, shared index."""
        stroke, window = _session_ops(2, arena)
        with DatasetService(small_dataset) as origin:
            handle = origin.publish_store()
            ref = _query_on_service(origin, viewport, stroke, window)
            node = DatasetService.from_handle(handle)
            try:
                # plain bool so assertion rewriting keeps no dataset ref
                # alive past node.close() (views would pin the mapping)
                distinct = node.dataset is not origin.dataset
                assert distinct
                got = _query_on_service(node, viewport, stroke, window)
                np.testing.assert_array_equal(got, ref)
            finally:
                node.close()


class TestSharedQueryEngine:
    def test_results_match_plain_engine(self, small_dataset, arena):
        from repro.core.canvas import BrushCanvas

        stroke, window = _session_ops(1, arena)
        canvas = BrushCanvas()
        canvas.add(stroke)
        plain = CoordinatedBrushingEngine(small_dataset)
        shared = SharedQueryEngine(small_dataset)
        np.testing.assert_array_equal(
            shared.query(canvas, "red", window=window).traj_mask,
            plain.query(canvas, "red", window=window).traj_mask,
        )
        # re-entrancy: the locked multi-color path nests locked query()
        shared.query_all_colors(canvas, window=window)
        shared.invalidate_cache()
        assert shared.cache_stats()["entries"] == 0


class TestCloseWithLiveSessions:
    """PR 6 regression: closing a service (or its node) while sessions
    are mid-query must defer resource release, never unlink a mapped
    block out from under a reader."""

    def test_close_while_querying_defers_client_release(
        self, small_dataset, viewport, arena
    ):
        stroke, window = _session_ops(3, arena)
        with DatasetService(small_dataset) as origin:
            handle = origin.publish_store()
            node = DatasetService.from_handle(handle)
            session = node.session(viewport)
            session.brush(stroke)
            session.set_time_window(window)
            ref = session.run_query("red").traj_mask.copy()

            start = threading.Event()
            failures: list[BaseException] = []

            def hammer() -> None:
                start.wait()
                try:
                    for _ in range(30):
                        got = session.run_query("red")
                        np.testing.assert_array_equal(got.traj_mask, ref)
                except BaseException as exc:  # noqa: BLE001 - reported below
                    failures.append(exc)

            worker = threading.Thread(target=hammer)
            worker.start()
            start.set()
            node.close()  # races the query loop; release must defer
            worker.join()
            assert failures == []

            # the pinned session keeps working after the service closed
            np.testing.assert_array_equal(session.run_query("red").traj_mask, ref)
            # ... but no new sessions can open
            with pytest.raises(RuntimeError, match="closed"):
                node.session(viewport)

            session.close()  # last detach finally releases the mapping
        # conftest's no_leaked_blocks asserts nothing stayed mapped

    def test_origin_close_defers_unlink_until_sessions_detach(
        self, small_dataset, viewport, arena
    ):
        stroke, window = _session_ops(5, arena)
        service = DatasetService(small_dataset)
        service.publish_store()
        session = service.session(viewport)
        session.brush(stroke)
        session.set_time_window(window)
        ref = session.run_query("red").traj_mask.copy()

        service.close()
        np.testing.assert_array_equal(session.run_query("red").traj_mask, ref)
        session.close()
