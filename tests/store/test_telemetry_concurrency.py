"""Telemetry under concurrent multi-session load.

Eight threads hammer one shared :class:`DatasetService` through their
own :class:`SessionView` with a live registry installed.  The
thread-sharded registry must lose nothing: every increment lands in
exactly one thread's private shard, so the merged totals are exact —
no locks taken on the emit path, no torn counts, and no leaked
resources (the module-wide ``no_leaked_blocks`` fixture plus
ResourceWarning-as-error watch that side).
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.core.brush import stroke_from_rect
from repro.display.presets import cyber_commons_wall, paper_viewport
from repro.store.service import DatasetService

N_THREADS = 8
QUERIES_PER_THREAD = 25


@pytest.fixture(autouse=True)
def _restore_registry():
    previous = obs.get_registry()
    yield
    obs.set_registry(previous)


@pytest.mark.filterwarnings("error::ResourceWarning")
def test_no_lost_increments_across_8_sessions(small_dataset):
    registry = obs.enable()
    service = DatasetService(small_dataset)
    viewport = paper_viewport(cyber_commons_wall())
    sessions = [service.session(viewport) for _ in range(N_THREADS)]
    barrier = threading.Barrier(N_THREADS)
    errors: list[BaseException] = []

    def work(session):
        try:
            # one painted stroke per session → real (indexed) queries
            session.brush(
                stroke_from_rect((-1.0, -0.6), (-0.7, 0.6), radius=0.12, color="red")
            )
            barrier.wait()
            for _ in range(QUERIES_PER_THREAD):
                session.run_query("red")
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=work, args=(s,), name=f"session-{s.session_id}")
        for s in sessions
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []

    snap = registry.snapshot()
    total = N_THREADS * QUERIES_PER_THREAD
    # exact conservation: nothing lost, nothing double-counted
    assert snap.counter_total("session.queries") == total
    for session in sessions:
        assert snap.counter("session.queries", session=session.session_id) == (
            QUERIES_PER_THREAD
        )
    assert snap.counter_total("query.count") == total
    assert snap.counter("service.sessions.opened") == N_THREADS
    # per-stage accounting covers every query exactly once
    hits = snap.counter_total("query.stage.cache_hits")
    misses = snap.counter_total("query.stage.cache_misses")
    stage_histogram_count = sum(
        h.count
        for (name, _), h in snap.histograms.items()
        if name == "query.stage.seconds"
    )
    assert hits + misses == stage_histogram_count
    q_hist = snap.histograms.get(("query.seconds", (("strategy", "aggregate"),)))
    assert q_hist is not None and q_hist.count == total


@pytest.mark.filterwarnings("error::ResourceWarning")
def test_concurrent_emit_while_snapshotting(small_dataset):
    """snapshot() runs concurrently with emitters without losing the
    final tally (writers never block on the merge lock)."""
    registry = obs.enable()
    service = DatasetService(small_dataset)
    viewport = paper_viewport(cyber_commons_wall())
    stop = threading.Event()
    snapshots: list[int] = []

    def reader():
        while not stop.is_set():
            snapshots.append(int(registry.snapshot().counter_total("session.queries")))

    sessions = [service.session(viewport) for _ in range(4)]

    def work(session):
        for _ in range(10):
            session.run_query("red")

    reader_thread = threading.Thread(target=reader)
    reader_thread.start()
    threads = [threading.Thread(target=work, args=(s,)) for s in sessions]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    reader_thread.join()

    assert registry.snapshot().counter_total("session.queries") == 40
    # interim snapshots are coherent prefixes: monotone, never above 40
    assert all(0 <= n <= 40 for n in snapshots)
    assert snapshots == sorted(snapshots)
