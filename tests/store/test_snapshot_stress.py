"""Threaded stress over the lock-free snapshot read path.

Sixteen threads hammer one :class:`DatasetService`: fifteen run
sessions (query + periodic rebind) while one drives streaming-ingest
rollovers through :class:`RolloverCoordinator`.  The suite asserts the
two properties the tentpole promises:

* **Exact conservation** — every pin is released, every query is
  attributed to exactly one epoch snapshot, and at the end
  ``published == retired`` with zero live pins.  The GIL-atomic
  refcounts (:mod:`repro.store.snapshot`) either count exactly or
  raise; saturation and silent loss are impossible by construction,
  and these tests would catch either.
* **Zero lock-path queries** — every query lands on
  ``service.snapshot.queries`` and the old ``service.lock.wait_seconds``
  gauge (the per-query lock wait of the pre-snapshot service) never
  appears: no query ever touched the service lock.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.core.brush import stroke_from_rect
from repro.display.presets import cyber_commons_wall, paper_viewport
from repro.store import DatasetService, IngestBuffer, RolloverCoordinator
from repro.store.snapshot import AtomicRefCount
from repro.trajectory.model import Trajectory, TrajectoryMeta

N_WORKERS = 15
QUERIES_PER_WORKER = 30
REBIND_EVERY = 7
N_ROLLOVERS = 6


def _traj(i: int, n: int = 6) -> Trajectory:
    t = np.linspace(0.0, 5.0, n)
    pos = np.stack([np.linspace(-0.4, 0.4, n), np.full(n, 0.005 * i)], axis=1)
    return Trajectory(pos, t, TrajectoryMeta(), traj_id=5000 + i)


@pytest.fixture(autouse=True)
def _restore_registry():
    previous = obs.get_registry()
    yield
    obs.set_registry(previous)


# AtomicRefCount protocol -----------------------------------------------------

class TestAtomicRefCount:
    def test_pin_unpin_seal_single_thread(self):
        refs = AtomicRefCount()
        assert refs.try_pin() and refs.pins == 1
        assert not refs.seal_if_idle()  # pinned: retirement declined
        assert refs.unpin() == 0
        assert refs.seal_if_idle()  # idle: retirement wins exactly once
        assert refs.sealed
        assert not refs.seal_if_idle()  # second retirer loses
        assert not refs.try_pin()  # no pin ever lands on a sealed count
        assert refs.pins == 0

    def test_unpin_below_zero_raises(self):
        refs = AtomicRefCount()
        with pytest.raises(IndexError):
            refs.unpin()

    def test_concurrent_pin_unpin_conserves(self):
        refs = AtomicRefCount()
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for _ in range(500):
                assert refs.try_pin()
                refs.unpin()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert refs.pins == 0
        assert refs.seal_if_idle()

    def test_racing_retirers_have_one_winner(self):
        refs = AtomicRefCount()
        barrier = threading.Barrier(8)
        wins: list[bool] = []

        def retire():
            barrier.wait()
            wins.append(refs.seal_if_idle())

        threads = [threading.Thread(target=retire) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(wins) == 1


# Mixed query / rollover / rebind stress -------------------------------------

@pytest.mark.filterwarnings("error::ResourceWarning")
def test_16_thread_mixed_load_conserves_counters(small_dataset):
    registry = obs.enable()
    service = DatasetService(small_dataset)
    viewport = paper_viewport(cyber_commons_wall())
    sessions = [service.session(viewport) for _ in range(N_WORKERS)]
    barrier = threading.Barrier(N_WORKERS + 1)
    errors: list[BaseException] = []
    rollovers_done: list[int] = []

    def worker(session):
        try:
            session.brush(
                stroke_from_rect((-1.0, -0.6), (-0.7, 0.6), radius=0.12, color="red")
            )
            barrier.wait()
            for q in range(QUERIES_PER_WORKER):
                result = session.run_query("red")
                assert result is not None
                if (q + 1) % REBIND_EVERY == 0:
                    session.rebind()
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    def ingester():
        try:
            buf = IngestBuffer()
            coord = RolloverCoordinator(service, buf, publish_store=False)
            barrier.wait()
            for r in range(N_ROLLOVERS):
                buf.extend([_traj(r * 4 + k) for k in range(4)])
                if coord.rollover() is not None:
                    rollovers_done.append(r)
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(s,), name=f"session-{s.session_id}")
        for s in sessions
    ]
    threads.append(threading.Thread(target=ingester, name="ingester"))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(rollovers_done) == N_ROLLOVERS

    # drain every session, then the service: all pins must come home
    final_epoch = service.active_epoch()
    for session in sessions:
        session.close()
    service.close()

    snap = registry.snapshot()
    total = N_WORKERS * QUERIES_PER_WORKER

    # every query attributed exactly once, and exactly once to an epoch
    assert snap.counter_total("session.queries") == total
    assert snap.counter_total("service.snapshot.queries") == total
    assert snap.counter_total("query.count") == total

    # zero lock-path queries: the lock-wait gauge of the old serialized
    # read path is never emitted anymore
    assert snap.gauge("service.lock.wait_seconds") is None

    # pin conservation: every pin (session open + every rebind probe)
    # was released; nothing remains pinned after the drain
    pinned = snap.counter_total("service.snapshot.pinned")
    released = snap.counter_total("service.snapshot.released")
    assert pinned == released
    assert pinned >= N_WORKERS  # at least the initial session pins
    assert snap.gauge("service.snapshot.pins") == 0.0

    # snapshot conservation: initial publish + one per rollover, and
    # after the drain every snapshot has been retired exactly once
    published = snap.counter_total("service.snapshot.published")
    retired = snap.counter_total("service.snapshot.retired")
    assert published == 1 + N_ROLLOVERS
    assert published == retired
    assert snap.gauge("service.snapshot.live") == 0.0

    # the wall moved: each rollover added 4 trajectories to the epoch
    assert final_epoch == small_dataset.epoch + N_ROLLOVERS * 4
    assert snap.gauge("service.snapshot.active_epoch") == float(final_epoch)


@pytest.mark.filterwarnings("error::ResourceWarning")
def test_stale_sessions_degrade_and_rebind_catches_up(small_dataset):
    """A session pinned across a rollover keeps answering (flagged
    stale); rebinding moves it to the new epoch and clears the flag."""
    registry = obs.enable()
    service = DatasetService(small_dataset)
    session = service.session(paper_viewport(cyber_commons_wall()))
    buf = IngestBuffer()
    coord = RolloverCoordinator(service, buf, publish_store=False)
    buf.extend([_traj(900 + k) for k in range(3)])
    assert coord.rollover() is not None

    stale = session.run_query("red")
    assert stale.degraded
    assert any(e.kind == "stale-epoch" for e in stale.degradation.events)

    assert session.rebind() is True
    fresh = session.run_query("red")
    assert session.epoch == service.active_epoch()
    assert not any(
        e.kind == "stale-epoch"
        for e in (fresh.degradation.events if fresh.degradation else [])
    )
    assert registry.snapshot().counter_total("session.stale_queries") == 1.0
    session.close()
    service.close()


@pytest.mark.filterwarnings("error::ResourceWarning")
def test_gc_dropped_sessions_release_their_pins(small_dataset):
    """Views dropped without close() still release pins (finalizer)."""
    import gc

    registry = obs.enable()
    service = DatasetService(small_dataset)
    viewport = paper_viewport(cyber_commons_wall())
    for _ in range(4):
        service.session(viewport)  # dropped immediately
    gc.collect()
    snap = registry.snapshot()
    assert snap.counter_total("service.snapshot.pinned") == 4.0
    assert snap.counter_total("service.snapshot.released") == 4.0
    assert snap.gauge("service.snapshot.pins") == 0.0
    service.close()
