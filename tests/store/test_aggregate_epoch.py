"""Epoch coherence of the summary pyramid under rollover chaos.

The pyramid is epoch state: it summarizes exactly one packed segment
set, so a query must never pair one epoch's pyramid with another
epoch's segments.  Both travel inside the same
:class:`~repro.store.snapshot.EpochSnapshot` (the engine owns its
pyramid, the snapshot owns the engine), which makes the invariant
checkable at any instant: ``engine.pyramid.packed is engine.packed``.

These tests fire queries from the chaos hooks *inside* a rollover —
after staging, just before the swap, and just after it — and assert
the invariant plus bit-identical answers over the pinned epoch at
every interleaving.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.store import DatasetService, IngestBuffer, RolloverCoordinator
from repro.synth import AntStudyConfig, generate_study_dataset
from repro.trajectory.model import Trajectory, TrajectoryMeta

pytestmark = pytest.mark.chaos


def _traj(i: int, n: int = 6) -> Trajectory:
    t = np.linspace(0.0, 5.0, n)
    pos = np.stack([np.linspace(-0.4, 0.4, n), np.full(n, 0.01 * i)], axis=1)
    return Trajectory(pos, t, TrajectoryMeta(), traj_id=2000 + i)


@pytest.fixture()
def dataset():
    return generate_study_dataset(AntStudyConfig(n_trajectories=12, seed=5))


def _assert_coherent(engine) -> None:
    assert engine.pyramid is not None, engine._pyramid_error
    assert engine.pyramid.packed is engine.packed


def test_mid_rollover_query_never_mixes_epochs(dataset, viewport):
    with DatasetService(dataset) as service:
        session = service.session(viewport)
        session.brush(
            stroke_from_rect((-0.5, -0.4), (-0.1, 0.4), radius=0.08, color="red")
        )
        baseline = session.run_query("red")
        assert baseline.trace.strategy == "aggregate"
        n_seg_epoch0 = baseline.segment_mask.shape[0]
        probes: list[tuple[str, int]] = []

        def chaos(point: str) -> None:
            if point not in ("post_stage", "pre_swap", "post_swap"):
                return
            # the session's pinned engine stays internally coherent …
            _assert_coherent(session.engine)
            # … and whatever engine is active right now is coherent too
            # (post_swap: the successor with its freshly built pyramid)
            _assert_coherent(service.engine)
            res = session.run_query("red")
            assert res.trace.strategy == "aggregate"
            # the pinned epoch answers are bit-identical mid-swap: the
            # mask is sized to (and computed over) epoch 0's segments,
            # never the successor's
            np.testing.assert_array_equal(res.segment_mask, baseline.segment_mask)
            probes.append((point, res.segment_mask.shape[0]))

        buf = IngestBuffer()
        buf.extend([_traj(i) for i in range(4)])
        coord = RolloverCoordinator(service, buf, chaos=chaos)
        result = coord.rollover()
        assert result.n_ingested == 4
        assert [p for p, _ in probes] == ["post_stage", "pre_swap", "post_swap"]
        assert all(n == n_seg_epoch0 for _, n in probes)

        # after rebinding, the session serves the successor epoch with
        # the successor's pyramid — more segments, still coherent
        assert session.rebind() is True
        _assert_coherent(session.engine)
        grown = session.run_query("red")
        assert grown.trace.strategy == "aggregate"
        assert grown.segment_mask.shape[0] > n_seg_epoch0
        assert grown.segment_mask.shape[0] == service.dataset.packed().n_segments
        session.close()


def test_successor_pyramid_is_rebuilt_not_reused(dataset, viewport):
    """The rollover must never copy the predecessor's pyramid forward:
    the successor summarizes a different packed set."""
    with DatasetService(dataset) as service:
        old_engine = service.engine
        _assert_coherent(old_engine)
        old_pyramid = old_engine.pyramid
        buf = IngestBuffer()
        buf.extend([_traj(i) for i in range(2)])
        RolloverCoordinator(service, buf).rollover()
        new_engine = service.engine
        _assert_coherent(new_engine)
        assert new_engine.pyramid is not old_pyramid
        assert new_engine.pyramid.packed is not old_pyramid.packed
