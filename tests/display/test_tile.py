"""Tests for single-tile coordinate mapping."""

import numpy as np
import pytest

from repro.display.tile import Tile


@pytest.fixture()
def tile():
    return Tile(col=1, row=0, x=1.2, y=0.0, width=1.0, height=0.5, px_width=1000, px_height=500)


class TestTile:
    def test_rect(self, tile):
        assert tile.rect == (1.2, 0.0, 2.2, 0.5)

    def test_pixels(self, tile):
        assert tile.pixels == 500_000

    def test_density(self, tile):
        assert tile.pixels_per_meter == (1000.0, 1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Tile(0, 0, 0, 0, -1.0, 1.0, 10, 10)
        with pytest.raises(ValueError):
            Tile(0, 0, 0, 0, 1.0, 1.0, 0, 10)

    def test_contains(self, tile):
        pts = np.array([[1.5, 0.2], [2.3, 0.2], [1.5, 0.6]])
        np.testing.assert_array_equal(tile.contains(pts), [True, False, False])

    def test_wall_pixel_roundtrip(self, tile):
        pts_m = np.array([[1.3, 0.1], [2.1, 0.45]])
        px = tile.wall_to_pixel(pts_m)
        back = tile.pixel_to_wall(px)
        np.testing.assert_allclose(back, pts_m, atol=1e-12)

    def test_origin_maps_to_zero(self, tile):
        px = tile.wall_to_pixel(np.array([[1.2, 0.0]]))
        np.testing.assert_allclose(px, [[0.0, 0.0]])

    def test_far_corner(self, tile):
        px = tile.wall_to_pixel(np.array([[2.2, 0.5]]))
        np.testing.assert_allclose(px, [[1000.0, 500.0]])
