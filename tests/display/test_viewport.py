"""Tests for viewport carving (the paper's 2/3-surface application area)."""

import numpy as np
import pytest

from repro.display.viewport import Viewport


class TestPaperViewport:
    def test_matches_paper_numbers(self, viewport):
        """§IV-C: 2/3 of the surface, ~8192 x 1536, ~12.5 Mpixels."""
        assert viewport.surface_fraction() == pytest.approx(2 / 3)
        assert viewport.px_height == 1536
        assert abs(viewport.px_width - 8192) < 10      # 6*1366 = 8196
        assert viewport.megapixels == pytest.approx(12.5, abs=0.15)

    def test_physical_size(self, viewport, wall):
        assert viewport.width_m == pytest.approx(wall.width)
        assert viewport.height_m < wall.height

    def test_tiles_covered(self, viewport):
        assert len(viewport.tiles()) == 12


class TestValidation:
    def test_exceeds_wall(self, wall):
        with pytest.raises(ValueError):
            Viewport(wall, col0=3, cols=5)
        with pytest.raises(ValueError):
            Viewport(wall, row0=2, rows=2)

    def test_defaults_fill_wall(self, wall):
        vp = Viewport(wall)
        assert vp.cols == wall.cols
        assert vp.rows == wall.rows
        assert vp.surface_fraction() == 1.0

    def test_minimum_one_panel(self, wall):
        with pytest.raises(ValueError):
            Viewport(wall, cols=0)


class TestMapping:
    def test_norm_roundtrip(self, viewport):
        pts = np.array([[0.0, 0.0], [0.5, 0.5], [1.0, 1.0]])
        wall_pts = viewport.norm_to_wall(pts)
        back = viewport.wall_to_norm(wall_pts)
        np.testing.assert_allclose(back, pts, atol=1e-12)

    def test_corners(self, viewport):
        top_left = viewport.norm_to_wall(np.array([0.0, 0.0]))
        np.testing.assert_allclose(top_left, [viewport.x0, viewport.y0])
        bottom_right = viewport.norm_to_wall(np.array([1.0, 1.0]))
        np.testing.assert_allclose(
            bottom_right,
            [viewport.x0 + viewport.width_m, viewport.y0 + viewport.height_m],
        )

    def test_offset_viewport(self, wall):
        vp = Viewport(wall, col0=2, row0=1, cols=2, rows=1)
        assert vp.x0 == pytest.approx(2 * wall.pitch_x)
        assert vp.y0 == pytest.approx(1 * wall.pitch_y)
        tiles = vp.tiles()
        assert [(t.col, t.row) for t in tiles] == [(2, 1), (3, 1)]
