"""Tests for arena <-> wall coordinate mapping."""

import numpy as np
import pytest

from repro.display.coords import CoordinateMapper
from repro.synth.arena import Arena


@pytest.fixture()
def mapper(arena):
    return CoordinateMapper(arena, (1.0, 0.5, 1.4, 0.8))


class TestMapper:
    def test_degenerate_rect(self, arena):
        with pytest.raises(ValueError):
            CoordinateMapper(arena, (1.0, 0.5, 1.0, 0.8))

    def test_margin_range(self, arena):
        with pytest.raises(ValueError):
            CoordinateMapper(arena, (0, 0, 1, 1), margin=0.6)

    def test_center_maps_to_cell_center(self, mapper):
        wall = mapper.arena_to_wall(np.zeros((1, 2)))[0]
        np.testing.assert_allclose(wall, [1.2, 0.65])

    def test_roundtrip(self, mapper):
        pts = np.random.default_rng(0).uniform(-0.5, 0.5, size=(40, 2))
        back = mapper.wall_to_arena(mapper.arena_to_wall(pts))
        np.testing.assert_allclose(back, pts, atol=1e-12)

    def test_y_axis_flips(self, mapper):
        north = mapper.arena_to_wall(np.array([[0.0, 0.4]]))[0]
        south = mapper.arena_to_wall(np.array([[0.0, -0.4]]))[0]
        assert north[1] < south[1]  # wall +y is down

    def test_aspect_preserved(self, mapper):
        # unit arena square maps to a square (uniform scale)
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1]])
        w = mapper.arena_to_wall(pts)
        dx = np.linalg.norm(w[1] - w[0])
        dy = np.linalg.norm(w[2] - w[0])
        assert dx == pytest.approx(dy)

    def test_arena_fits_in_cell(self, mapper, arena):
        # rim points stay inside the cell rect
        theta = np.linspace(0, 2 * np.pi, 64)
        rim = arena.radius * np.stack([np.cos(theta), np.sin(theta)], axis=1)
        w = mapper.arena_to_wall(rim)
        x0, y0, x1, y1 = mapper.cell_rect
        assert np.all(w[:, 0] >= x0) and np.all(w[:, 0] <= x1)
        assert np.all(w[:, 1] >= y0) and np.all(w[:, 1] <= y1)

    def test_scale_shrinks_with_margin(self, arena):
        tight = CoordinateMapper(arena, (0, 0, 1, 1), margin=0.0)
        padded = CoordinateMapper(arena, (0, 0, 1, 1), margin=0.2)
        assert padded.scale < tight.scale

    def test_brush_radius_conversion(self, mapper):
        r_wall = 0.01
        r_arena = mapper.brush_radius_to_arena(r_wall)
        assert r_arena == pytest.approx(r_wall / mapper.scale)
        with pytest.raises(ValueError):
            mapper.brush_radius_to_arena(-1.0)

    def test_same_arena_point_same_relative_position_in_any_cell(self, arena):
        """The property coordinated brushing relies on: a given arena
        point lands at the same *relative* cell position everywhere."""
        m1 = CoordinateMapper(arena, (0.0, 0.0, 0.2, 0.1))
        m2 = CoordinateMapper(arena, (3.0, 1.0, 3.2, 1.1))
        p = np.array([[0.2, -0.3]])
        w1 = m1.arena_to_wall(p)[0]
        w2 = m2.arena_to_wall(p)[0]
        rel1 = (w1 - [0.0, 0.0]) / [0.2, 0.1]
        rel2 = (w2 - [3.0, 1.0]) / [0.2, 0.1]
        np.testing.assert_allclose(rel1, rel2, atol=1e-12)
