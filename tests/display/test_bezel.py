"""Tests for bezel/mullion geometry."""

import numpy as np
import pytest

from repro.display.bezel import BezelSpec


class TestBezelSpec:
    def test_defaults_thin(self):
        b = BezelSpec()
        assert b.horizontal_mullion == pytest.approx(0.008)
        assert b.horizontal_mullion < 0.01  # paper: "less than 1 cm"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BezelSpec(left=-0.001)

    def test_mullion_rects_x(self):
        b = BezelSpec(left=0.005, right=0.005)
        rects = b.mullion_rects_x(cols=3, panel_w=1.0)
        assert rects.shape == (2, 2)
        np.testing.assert_allclose(rects[0], [1.0, 1.01])
        np.testing.assert_allclose(rects[1], [2.01, 2.02])

    def test_mullion_rects_y(self):
        b = BezelSpec(top=0.003, bottom=0.003)
        rects = b.mullion_rects_y(rows=2, panel_h=0.5)
        assert rects.shape == (1, 2)
        np.testing.assert_allclose(rects[0], [0.5, 0.506])

    def test_single_panel_no_mullions(self):
        b = BezelSpec()
        assert b.mullion_rects_x(1, 1.0).shape == (0, 2)
        assert b.mullion_rects_y(1, 1.0).shape == (0, 2)

    def test_asymmetric_bezels(self):
        b = BezelSpec(left=0.002, right=0.006, top=0.001, bottom=0.009)
        assert b.horizontal_mullion == pytest.approx(0.008)
        assert b.vertical_mullion == pytest.approx(0.010)
