"""Tests for the tiled wall model."""

import numpy as np
import pytest

from repro.display.bezel import BezelSpec
from repro.display.wall import DisplayWall


class TestGeometry:
    def test_paper_wall_summary(self, wall):
        s = wall.summary()
        assert s["arrangement"] == "6x3"
        assert s["megapixels"] == pytest.approx(18.88, abs=0.01)  # "~19 Mpixels"
        assert 6.9 < s["width_m"] < 7.1                           # "~7 m"
        assert s["stereo"]

    def test_pitch_includes_mullion(self, wall):
        assert wall.pitch_x == pytest.approx(wall.panel_width + 0.008)
        assert wall.pitch_y == pytest.approx(wall.panel_height + 0.008)

    def test_total_size(self, wall):
        assert wall.width == pytest.approx(6 * wall.panel_width + 5 * 0.008)
        assert wall.n_tiles == 18

    def test_square_pixels(self, wall):
        t = wall.tile(0, 0)
        sx, sy = t.pixels_per_meter
        assert sx == pytest.approx(sy, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DisplayWall(cols=0)
        with pytest.raises(ValueError):
            DisplayWall(panel_width=-1.0)


class TestTiles:
    def test_tile_positions(self, wall):
        t = wall.tile(2, 1)
        assert t.x == pytest.approx(2 * wall.pitch_x)
        assert t.y == pytest.approx(1 * wall.pitch_y)

    def test_tile_out_of_range(self, wall):
        with pytest.raises(IndexError):
            wall.tile(6, 0)

    def test_tiles_row_major(self, wall):
        tiles = wall.tiles()
        assert len(tiles) == 18
        assert (tiles[0].col, tiles[0].row) == (0, 0)
        assert (tiles[7].col, tiles[7].row) == (1, 1)


class TestBezelPredicates:
    def test_mullion_counts(self, wall):
        assert wall.mullions_x().shape == (5, 2)
        assert wall.mullions_y().shape == (2, 2)

    def test_point_on_bezel(self, wall):
        on_gap = np.array([[wall.panel_width + 0.002, 0.5]])
        on_panel = np.array([[0.5, 0.5]])
        assert wall.point_on_bezel(on_gap)[0]
        assert not wall.point_on_bezel(on_panel)[0]

    def test_point_off_wall_not_bezel(self, wall):
        assert not wall.point_on_bezel(np.array([[-1.0, 0.0]]))[0]

    def test_rects_straddle(self, wall):
        inside = [0.1, 0.1, 0.5, 0.5]
        across_x = [wall.panel_width - 0.1, 0.1, wall.panel_width + 0.1, 0.5]
        across_y = [0.1, wall.panel_height - 0.05, 0.5, wall.panel_height + 0.05]
        mask = wall.rects_straddle_bezel(np.array([inside, across_x, across_y]))
        np.testing.assert_array_equal(mask, [False, True, True])

    def test_rect_touching_mullion_edge_ok(self, wall):
        # a rect ending exactly at the panel edge does not straddle
        rect = np.array([[0.0, 0.0, wall.panel_width, wall.panel_height]])
        assert not wall.rects_straddle_bezel(rect)[0]

    def test_rects_shape_validated(self, wall):
        with pytest.raises(ValueError):
            wall.rects_straddle_bezel(np.zeros((3, 3)))

    def test_zero_bezel_wall_never_straddles(self):
        wall = DisplayWall(bezel=BezelSpec(0, 0, 0, 0))
        rects = np.array([[0.5, 0.2, 2.5, 0.9]])
        assert not wall.rects_straddle_bezel(rects)[0]

    def test_tile_of(self, wall):
        pts = np.array(
            [
                [0.5, 0.5],                           # tile (0,0)
                [wall.pitch_x + 0.5, 0.5],            # tile (1,0)
                [wall.panel_width + 0.002, 0.5],      # on a mullion
                [-0.5, 0.5],                          # off the wall
            ]
        )
        tiles = wall.tile_of(pts)
        np.testing.assert_array_equal(tiles[0], [0, 0])
        np.testing.assert_array_equal(tiles[1], [1, 0])
        np.testing.assert_array_equal(tiles[2], [-1, -1])
        np.testing.assert_array_equal(tiles[3], [-1, -1])
