"""Tests for display presets against the paper's quoted numbers."""

import pytest

from repro.display.presets import (
    CYBER_COMMONS,
    DESKTOP_24INCH,
    cyber_commons_wall,
    desktop_display,
    paper_viewport,
)


class TestCyberCommons:
    def test_arrangement(self):
        assert (CYBER_COMMONS.cols, CYBER_COMMONS.rows) == (6, 3)

    def test_19_megapixels(self):
        assert CYBER_COMMONS.megapixels == pytest.approx(18.88, abs=0.05)

    def test_seven_meters_wide(self):
        assert CYBER_COMMONS.width == pytest.approx(7.0, abs=0.05)

    def test_thin_bezels(self):
        assert CYBER_COMMONS.bezel.horizontal_mullion < 0.01

    def test_stereo(self):
        assert CYBER_COMMONS.stereo

    def test_factory_returns_equal_walls(self):
        assert cyber_commons_wall() == CYBER_COMMONS


class TestDesktop:
    def test_single_panel(self):
        assert DESKTOP_24INCH.n_tiles == 1
        assert not DESKTOP_24INCH.stereo

    def test_much_smaller_than_wall(self):
        assert DESKTOP_24INCH.total_pixels < CYBER_COMMONS.total_pixels / 5

    def test_factory(self):
        assert desktop_display() == DESKTOP_24INCH


class TestPaperViewport:
    def test_two_thirds(self):
        vp = paper_viewport()
        assert vp.surface_fraction() == pytest.approx(2 / 3)

    def test_resolution_8192x1536(self):
        vp = paper_viewport()
        assert vp.px_height == 1536
        assert abs(vp.px_width - 8192) < 10

    def test_custom_wall(self):
        from repro.display.wall import DisplayWall

        wall = DisplayWall(cols=4, rows=3)
        vp = paper_viewport(wall)
        assert vp.rows == 2
        assert vp.cols == 4
