"""Meta-test: every public item carries a doc comment.

Deliverable (e) of the reproduction requires doc comments on every
public item; this test enforces it mechanically across the whole
package: every module, every public class, every public
function/method defined in ``repro`` must have a non-trivial docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MIN_DOC_LEN = 10


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) >= MIN_DOC_LEN, (
        f"{module.__name__} lacks a module docstring"
    )


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    missing = []
    for name, obj in _public_members(module):
        doc = inspect.getdoc(obj)
        if not doc or len(doc.strip()) < MIN_DOC_LEN:
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(member):
                    continue
                mdoc = inspect.getdoc(member)
                if not mdoc or len(mdoc.strip()) < 3:
                    missing.append(f"{module.__name__}.{name}.{mname}")
    assert not missing, f"undocumented public items: {missing}"
