"""Tests for unit conversions and the visual-angle helper."""

import math

import pytest

from repro.util.units import (
    deg_to_rad,
    m_to_mm,
    mm_to_m,
    rad_to_deg,
    visual_angle_deg,
)


class TestConversions:
    def test_mm_roundtrip(self):
        assert m_to_mm(mm_to_m(123.0)) == pytest.approx(123.0)

    def test_angle_roundtrip(self):
        assert rad_to_deg(deg_to_rad(57.3)) == pytest.approx(57.3)

    def test_known_values(self):
        assert deg_to_rad(180.0) == pytest.approx(math.pi)
        assert mm_to_m(3.0) == pytest.approx(0.003)


class TestVisualAngle:
    def test_one_meter_at_one_meter(self):
        # extent 1 m at 1 m: 2*atan(0.5) ~ 53.13 degrees
        assert visual_angle_deg(1.0, 1.0) == pytest.approx(53.13, abs=0.01)

    def test_small_angle_approximation(self):
        # at small angles, theta ~ extent/distance in radians
        theta = visual_angle_deg(0.01, 3.0)
        assert theta == pytest.approx(math.degrees(0.01 / 3.0), rel=1e-3)

    def test_distance_must_be_positive(self):
        with pytest.raises(ValueError):
            visual_angle_deg(1.0, 0.0)

    def test_monotone_in_extent(self):
        assert visual_angle_deg(0.2, 3.0) > visual_angle_deg(0.1, 3.0)

    def test_monotone_decreasing_in_distance(self):
        assert visual_angle_deg(0.1, 2.0) > visual_angle_deg(0.1, 4.0)
