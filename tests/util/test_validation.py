"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.util.validation import check_finite, check_in_range, check_positive, check_shape


class TestCheckFinite:
    def test_passes_and_coerces(self):
        out = check_finite("x", [1, 2, 3])
        assert out.dtype == np.float64

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="x must be finite"):
            check_finite("x", [1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite("x", [np.inf])


class TestCheckPositive:
    def test_strict(self):
        assert check_positive("v", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_positive("v", 0.0)

    def test_non_strict_allows_zero(self):
        assert check_positive("v", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("v", -1.0, strict=False)


class TestCheckInRange:
    def test_inclusive(self):
        assert check_in_range("v", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_rejects_bound(self):
        with pytest.raises(ValueError):
            check_in_range("v", 1.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="must be in"):
            check_in_range("v", 2.0, 0.0, 1.0)


class TestCheckShape:
    def test_exact_match(self):
        arr = check_shape("pts", np.zeros((7, 2)), (None, 2))
        assert arr.shape == (7, 2)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_shape("pts", np.zeros(7), (None, 2))

    def test_wrong_extent(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_shape("pts", np.zeros((7, 3)), (None, 2))
