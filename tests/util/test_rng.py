"""Tests for repro.util.rng: determinism and stream independence."""

import numpy as np
import pytest

from repro.util.rng import RngStream, derive_rng, spawn_streams


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(42, "antsim", 3).uniform(size=8)
        b = derive_rng(42, "antsim", 3).uniform(size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_root_seed_differs(self):
        a = derive_rng(1, "x").uniform(size=8)
        b = derive_rng(2, "x").uniform(size=8)
        assert not np.array_equal(a, b)

    def test_different_string_key_differs(self):
        a = derive_rng(7, "alpha").uniform(size=8)
        b = derive_rng(7, "beta").uniform(size=8)
        assert not np.array_equal(a, b)

    def test_different_int_key_differs(self):
        a = derive_rng(7, 0).uniform(size=8)
        b = derive_rng(7, 1).uniform(size=8)
        assert not np.array_equal(a, b)

    def test_mixed_keys(self):
        # strings and ints coexist and order matters
        a = derive_rng(7, "a", 1).uniform(size=4)
        b = derive_rng(7, 1, "a").uniform(size=4)
        assert not np.array_equal(a, b)


class TestSpawnStreams:
    def test_count(self):
        assert len(spawn_streams(0, 5, "walk")) == 5

    def test_streams_are_independent_of_order(self):
        streams1 = spawn_streams(9, 3, "w")
        draws_ordered = [s.uniform(size=4) for s in streams1]
        streams2 = spawn_streams(9, 3, "w")
        draws_reversed = [s.uniform(size=4) for s in reversed(streams2)]
        np.testing.assert_array_equal(draws_ordered[0], draws_reversed[2])
        np.testing.assert_array_equal(draws_ordered[2], draws_reversed[0])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_streams(0, -1)

    def test_zero_count(self):
        assert spawn_streams(0, 0) == []


class TestRngStream:
    def test_reset_restores_sequence(self):
        s = RngStream(5, ("sim",))
        first = s.uniform(size=6)
        s.reset()
        np.testing.assert_array_equal(first, s.uniform(size=6))

    def test_child_is_deterministic(self):
        a = RngStream(5).child("x", 2).uniform(size=3)
        b = RngStream(5).child("x", 2).uniform(size=3)
        np.testing.assert_array_equal(a, b)

    def test_child_differs_from_parent(self):
        parent = RngStream(5)
        child = parent.child("x")
        assert not np.array_equal(parent.uniform(size=4), child.uniform(size=4))

    def test_convenience_draws(self):
        s = RngStream(1)
        assert s.integers(0, 10) in range(10)
        assert -10 < s.normal() < 10
        assert s.choice([3]) == 3
