"""Atomic-write guarantees: readers never observe a torn file."""

import pytest

from repro.util.fileio import atomic_write, atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        returned = atomic_write_text(path, "hello")
        assert returned == path
        assert path.read_text() == "hello"

    def test_bytes(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"\x00\x01\x02")
        assert path.read_bytes() == b"\x00\x01\x02"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_failed_write_leaves_original_intact(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("precious")

        def explode(fh):
            fh.write(b"partial payload")
            raise RuntimeError("disk fell over")

        with pytest.raises(RuntimeError, match="disk fell over"):
            atomic_write(path, explode)
        assert path.read_text() == "precious"

    def test_no_stray_temp_files(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "ok")

        def explode(fh):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            atomic_write(path, explode)
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_temp_file_in_same_directory(self, tmp_path):
        # the temp file must share the destination's directory so the
        # final os.replace cannot cross filesystems
        seen = {}

        def snoop(fh):
            seen["entries"] = [p.name for p in tmp_path.iterdir()]
            fh.write(b"x")

        atomic_write(tmp_path / "out.txt", snoop)
        [tmp_name] = seen["entries"]
        assert tmp_name.startswith("out.txt.") and tmp_name.endswith(".tmp")
