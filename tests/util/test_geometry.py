"""Tests for the vectorized geometry kernels."""

import numpy as np
import pytest

from repro.util.geometry import (
    circle_segment_intersections,
    clip_segments_to_circle,
    pairwise_distances,
    point_segment_distance,
    points_in_circle,
    points_in_rect,
    polyline_length,
    rotate2d,
    segment_circle_overlap_mask,
    unit_vector,
)


class TestUnitVector:
    def test_normalizes(self):
        v = unit_vector(np.array([3.0, 4.0]))
        np.testing.assert_allclose(v, [0.6, 0.8])

    def test_zero_stays_zero(self):
        np.testing.assert_array_equal(unit_vector(np.zeros(2)), np.zeros(2))

    def test_batch(self):
        v = unit_vector(np.array([[2.0, 0.0], [0.0, 5.0]]))
        np.testing.assert_allclose(v, [[1, 0], [0, 1]])


class TestRotate2d:
    def test_quarter_turn(self):
        p = rotate2d(np.array([[1.0, 0.0]]), np.pi / 2)
        np.testing.assert_allclose(p, [[0.0, 1.0]], atol=1e-12)

    def test_identity(self):
        pts = np.random.default_rng(0).normal(size=(5, 2))
        np.testing.assert_allclose(rotate2d(pts, 0.0), pts)

    def test_norm_preserved(self):
        pts = np.random.default_rng(1).normal(size=(10, 2))
        out = rotate2d(pts, 1.234)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(pts, axis=1)
        )


class TestPolylineLength:
    def test_straight(self):
        pts = np.array([[0, 0], [3, 4]], dtype=float)
        assert polyline_length(pts) == pytest.approx(5.0)

    def test_single_point(self):
        assert polyline_length(np.array([[1.0, 1.0]])) == 0.0

    def test_3d(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0]], dtype=float)
        assert polyline_length(pts) == pytest.approx(2.0)


class TestPairwiseDistances:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(7, 3))
        b = rng.normal(size=(5, 3))
        d = pairwise_distances(a, b)
        brute = np.linalg.norm(a[:, None] - b[None, :], axis=2)
        np.testing.assert_allclose(d, brute, atol=1e-9)

    def test_self_diagonal_zero(self):
        a = np.random.default_rng(3).normal(size=(6, 2))
        d = pairwise_distances(a, a)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-6)

    def test_no_negative_from_cancellation(self):
        a = np.full((4, 2), 1e8)
        d = pairwise_distances(a, a)
        assert np.all(d >= 0)


class TestPointsInRegion:
    def test_circle(self):
        pts = np.array([[0, 0], [1, 0], [0.5, 0.5], [2, 2]], dtype=float)
        mask = points_in_circle(pts, (0, 0), 1.0)
        np.testing.assert_array_equal(mask, [True, True, True, False])

    def test_rect(self):
        pts = np.array([[0, 0], [1, 1], [1.5, 0.5], [-0.1, 0]], dtype=float)
        mask = points_in_rect(pts, (0, 0), (1, 1))
        np.testing.assert_array_equal(mask, [True, True, False, False])


class TestPointSegmentDistance:
    def test_perpendicular_foot(self):
        d = point_segment_distance(
            np.array([0.5, 1.0]), np.array([0.0, 0.0]), np.array([1.0, 0.0])
        )
        assert float(d) == pytest.approx(1.0)

    def test_clamps_to_endpoint(self):
        d = point_segment_distance(
            np.array([2.0, 0.0]), np.array([0.0, 0.0]), np.array([1.0, 0.0])
        )
        assert float(d) == pytest.approx(1.0)

    def test_degenerate_segment(self):
        d = point_segment_distance(
            np.array([1.0, 1.0]), np.array([0.0, 0.0]), np.array([0.0, 0.0])
        )
        assert float(d) == pytest.approx(np.sqrt(2))

    def test_broadcast_shapes(self):
        p = np.zeros((4, 1, 2))
        a = np.zeros((1, 3, 2))
        b = np.ones((1, 3, 2))
        assert point_segment_distance(p, a, b).shape == (4, 3)


class TestSegmentCircle:
    def test_overlap_mask(self):
        a = np.array([[-2.0, 0.0], [-2.0, 5.0]])
        b = np.array([[2.0, 0.0], [2.0, 5.0]])
        mask = segment_circle_overlap_mask(a, b, (0, 0), 1.0)
        np.testing.assert_array_equal(mask, [True, False])

    def test_intersections_pass_through(self):
        a = np.array([[-2.0, 0.0]])
        b = np.array([[2.0, 0.0]])
        t = circle_segment_intersections(a, b, (0, 0), 1.0)
        np.testing.assert_allclose(t, [[0.25, 0.75]])

    def test_intersections_miss(self):
        a = np.array([[-2.0, 3.0]])
        b = np.array([[2.0, 3.0]])
        t = circle_segment_intersections(a, b, (0, 0), 1.0)
        assert t[0, 0] > t[0, 1]

    def test_intersections_inside(self):
        a = np.array([[-0.1, 0.0]])
        b = np.array([[0.1, 0.0]])
        t = circle_segment_intersections(a, b, (0, 0), 1.0)
        np.testing.assert_allclose(t, [[0.0, 1.0]])

    def test_degenerate_inside_and_outside(self):
        a = np.array([[0.0, 0.0], [5.0, 5.0]])
        t = circle_segment_intersections(a, a, (0, 0), 1.0)
        assert t[0, 0] < t[0, 1]   # point inside counts
        assert t[1, 0] > t[1, 1]   # point outside misses

    def test_clip_drops_misses_and_clamps(self):
        a = np.array([[-2.0, 0.0], [-2.0, 3.0]])
        b = np.array([[2.0, 0.0], [2.0, 3.0]])
        ca, cb, idx = clip_segments_to_circle(a, b, (0, 0), 1.0)
        assert list(idx) == [0]
        np.testing.assert_allclose(ca, [[-1.0, 0.0]], atol=1e-12)
        np.testing.assert_allclose(cb, [[1.0, 0.0]], atol=1e-12)

    def test_clipped_points_on_or_in_circle(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(-2, 2, size=(50, 2))
        b = rng.uniform(-2, 2, size=(50, 2))
        ca, cb, _ = clip_segments_to_circle(a, b, (0.1, -0.2), 0.8)
        center = np.array([0.1, -0.2])
        for pts in (ca, cb):
            r = np.linalg.norm(pts - center, axis=1)
            assert np.all(r <= 0.8 + 1e-9)
