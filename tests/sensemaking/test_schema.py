"""Tests for schemas (marshaled theories)."""

import numpy as np
import pytest

from repro.core.hypothesis import Verdict, VerdictKind
from repro.core.result import QueryResult
from repro.sensemaking.evidence import Evidence
from repro.sensemaking.schema import Schema


def _verdict(kind):
    result = QueryResult(
        color="red",
        segment_mask=np.zeros(0, dtype=bool),
        traj_mask=np.zeros(1, dtype=bool),
        traj_highlight_time=np.zeros(1),
        displayed=np.ones(1, dtype=bool),
    )
    return Verdict(kind=kind, support=0.7, threshold=0.5, result=result)


class TestSchema:
    def test_needs_theory(self):
        with pytest.raises(ValueError):
            Schema(theory="")

    def test_marshal_and_counts(self):
        s = Schema(theory="off-trail ants home")
        s.marshal(Evidence(text="east group exits west"))
        s.attach_verdict(_verdict(VerdictKind.SUPPORTED))
        s.attach_verdict(_verdict(VerdictKind.REFUTED))
        s.attach_verdict(_verdict(VerdictKind.INCONCLUSIVE))
        assert s.n_supporting == 1
        assert s.n_refuting == 1
        assert len(s.evidence) == 1

    def test_case_strength(self):
        s = Schema(theory="t")
        assert s.case_strength() == 0.0
        s.attach_verdict(_verdict(VerdictKind.SUPPORTED))
        assert s.case_strength() == 1.0
        s.attach_verdict(_verdict(VerdictKind.REFUTED))
        assert s.case_strength() == 0.0
        s.attach_verdict(_verdict(VerdictKind.REFUTED))
        assert s.case_strength() == pytest.approx(-1 / 3)

    def test_inconclusive_does_not_move_strength(self):
        s = Schema(theory="t")
        s.attach_verdict(_verdict(VerdictKind.SUPPORTED))
        before = s.case_strength()
        s.attach_verdict(_verdict(VerdictKind.INCONCLUSIVE))
        assert s.case_strength() == before

    def test_summary(self):
        s = Schema(theory="homing")
        s.attach_verdict(_verdict(VerdictKind.SUPPORTED))
        text = s.summary()
        assert "homing" in text and "1 supporting" in text
