"""Tests for the study's video coding scheme."""

import numpy as np
import pytest

from repro.sensemaking.coding import (
    CodedEvent,
    CodingScheme,
    EventKind,
    SessionCoding,
)
from repro.sensemaking.model import Stage


@pytest.fixture()
def coder():
    return CodingScheme()


@pytest.fixture()
def sample_session(coder):
    s = SessionCoding()
    s.add(coder.tool_use(5.0, "layout_switch", "layout 3"))
    s.add(coder.tool_use(20.0, "grouping", "five zones"))
    s.add(coder.observation(40.0, "east ants look direct"))
    s.add(coder.hypothesis(60.0, "east ants exit west", 0))
    s.add(coder.tool_use(66.0, "coordinated_brush", "brush west", 0))
    s.add(coder.tool_use(70.0, "temporal_filter", "end window", 0))
    s.add(coder.observation(74.0, "red concentration in east group", 0))
    s.add(coder.hypothesis(100.0, "west ants exit east", 1))
    s.add(coder.tool_use(108.0, "coordinated_brush", "brush east", 1))
    s.add(coder.observation(112.0, "supported", 1))
    return s


class TestCodedEvent:
    def test_tool_required_for_tool_use(self):
        with pytest.raises(ValueError):
            CodedEvent(1.0, EventKind.TOOL_USE, "x", tool="telepathy")

    def test_tool_forbidden_elsewhere(self):
        with pytest.raises(ValueError):
            CodedEvent(1.0, EventKind.OBSERVATION, "x", tool="grouping")

    def test_negative_time(self):
        with pytest.raises(ValueError):
            CodedEvent(-1.0, EventKind.OBSERVATION, "x")


class TestSessionCoding:
    def test_time_order_enforced(self, coder):
        s = SessionCoding()
        s.add(coder.observation(10.0, "a"))
        with pytest.raises(ValueError):
            s.add(coder.observation(5.0, "b"))

    def test_counts(self, sample_session):
        counts = sample_session.counts()
        assert counts == {"observation": 3, "hypothesis": 2, "tool_use": 5}

    def test_tool_usage(self, sample_session):
        usage = sample_session.tool_usage()
        assert usage["coordinated_brush"] == 2
        assert usage["temporal_filter"] == 1

    def test_hypotheses_per_minute(self, sample_session):
        rate = sample_session.hypotheses_per_minute()
        assert rate == pytest.approx(2 / (112.0 / 60.0))

    def test_queries_per_hypothesis(self, sample_session):
        qph = sample_session.queries_per_hypothesis()
        assert qph == {0: 1, 1: 1}

    def test_hypothesis_latencies(self, sample_session):
        lat = sample_session.hypothesis_latencies()
        np.testing.assert_allclose(np.sort(lat), [6.0, 8.0])

    def test_stage_trace_and_coverage(self, sample_session):
        trace = sample_session.stage_trace()
        assert trace[0] == Stage.VISUAL_REPRESENTATION   # layout switch
        assert Stage.SCHEMA in trace                     # brushing
        assert Stage.HYPOTHESES in trace
        cov = sample_session.stage_coverage()
        assert 0.0 < cov <= 1.0

    def test_empty_session(self):
        s = SessionCoding()
        assert s.duration_s == 0.0
        assert s.hypotheses_per_minute() == 0.0
