"""Tests for the scripted analyst / pilot-study replay."""

import pytest

from repro.core.hypothesis import VerdictKind
from repro.core.session import ExplorationSession
from repro.sensemaking.analyst import (
    AnalystSimulator,
    ScriptAction,
    default_study_script,
)


@pytest.fixture(scope="module")
def replay(full_dataset, viewport):
    session = ExplorationSession(full_dataset, viewport)
    return AnalystSimulator(session).run()


class TestScript:
    def test_default_script_shape(self):
        script = default_study_script()
        kinds = [a.kind for a in script.actions]
        assert kinds[0] == "layout"
        assert kinds[1] == "group"
        assert kinds.count("test") == 5  # 4 homing + 1 seed-dwell

    def test_action_validation(self):
        with pytest.raises(ValueError):
            ScriptAction("dance")
        with pytest.raises(ValueError):
            ScriptAction("test")


class TestReplayOutcomes:
    def test_five_hypotheses_tested(self, replay):
        assert replay.hypotheses_tested() == 5

    def test_all_supported(self, replay):
        """The planted effects make every study hypothesis come out as
        the paper reported."""
        assert replay.supported_count() == 5
        for v in replay.verdicts:
            assert v.kind is VerdictKind.SUPPORTED

    def test_homing_supports_majority(self, replay):
        for v in replay.verdicts[:4]:
            assert v.support > 0.5

    def test_seed_dwell_contrast(self, replay):
        v = replay.verdicts[4]
        assert v.comparison_support is not None
        assert v.support > v.comparison_support


class TestReplayArtifacts:
    def test_coding_counts(self, replay):
        counts = replay.coding.counts()
        assert counts["hypothesis"] == 5
        # every hypothesis gets a result observation + 2 scripted ones
        assert counts["observation"] == 7
        assert counts["tool_use"] >= 5 + 2  # brushes + layout + grouping

    def test_rapid_hypothesis_testing(self, replay):
        """§VI-B: 'several hypotheses could be formulated and tested
        within a span of few minutes'."""
        assert replay.coding.hypotheses_per_minute() > 0.5
        assert replay.coding.duration_s < 10 * 60

    def test_hypothesis_latencies_short(self, replay):
        lat = replay.coding.hypothesis_latencies()
        assert len(lat) == 5
        assert lat.max() < 30.0

    def test_schemas_attached(self, replay):
        assert len(replay.schemas) == 5
        for s in replay.schemas:
            assert s.case_strength() == 1.0
            assert len(s.evidence) == 1

    def test_evidence_file_populated(self, replay):
        assert len(replay.evidence) >= 7  # 2 observations + 5 query records
        assert replay.evidence.with_tag("visual-query")

    def test_stage_coverage_spans_both_loops(self, replay):
        from repro.sensemaking.model import SensemakingModel, Stage

        trace = replay.coding.stage_trace()
        loops = {s.loop for s in trace}
        assert loops == {"foraging", "sensemaking"}
        assert replay.coding.stage_coverage(SensemakingModel()) >= 4 / 7
        assert Stage.SCHEMA in trace

    def test_session_canvas_cleared_between_hypotheses(self, replay):
        assert replay.session.canvas.is_empty()


class TestDataGroundedObservations:
    def test_windiness_confirmed(self, full_dataset, viewport):
        session = ExplorationSession(full_dataset, viewport)
        sim = AnalystSimulator(session)
        obs = sim.data_grounded_observations()
        assert len(obs) == 1
        assert "windier" in obs[0]
