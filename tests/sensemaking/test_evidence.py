"""Tests for the evidence file."""

import numpy as np
import pytest

from repro.sensemaking.evidence import Evidence, EvidenceFile


class TestEvidence:
    def test_validation(self):
        with pytest.raises(ValueError):
            Evidence(text="")
        with pytest.raises(ValueError):
            Evidence(text="x", source_stage=9)

    def test_defaults(self):
        e = Evidence(text="on-trail ants are windy")
        assert e.source_stage == 4
        assert e.traj_indices == ()


class TestEvidenceFile:
    def test_record_and_lookup(self):
        f = EvidenceFile()
        i = f.record("windy on-trail", traj_indices=[1, 2], tags=["windiness"])
        assert len(f) == 1
        assert f[i].text == "windy on-trail"

    def test_with_tag(self):
        f = EvidenceFile()
        f.record("a", tags=["x"])
        f.record("b", tags=["y"])
        f.record("c", tags=["x", "y"])
        assert [e.text for e in f.with_tag("x")] == ["a", "c"]

    def test_supporting(self):
        f = EvidenceFile()
        f.record("a", traj_indices=[3, 5])
        f.record("b", traj_indices=[5, 7])
        assert len(f.supporting(5)) == 2
        assert len(f.supporting(3)) == 1
        assert f.supporting(99) == []

    def test_tag_histogram(self):
        f = EvidenceFile()
        f.record("a", tags=["x"])
        f.record("b", tags=["x", "y"])
        assert f.tag_histogram() == {"x": 2, "y": 1}

    def test_cited_trajectories_sorted_unique(self):
        f = EvidenceFile()
        f.record("a", traj_indices=[9, 2])
        f.record("b", traj_indices=[2, 4])
        np.testing.assert_array_equal(f.cited_trajectories(), [2, 4, 9])

    def test_iteration(self):
        f = EvidenceFile()
        f.record("a")
        f.record("b")
        assert [e.text for e in f] == ["a", "b"]
