"""Tests for the insight-provenance log."""

import pytest

from repro.sensemaking.provenance import InsightRecord, ProvenanceLog


def _rec(insight="i", parents=()):
    return InsightRecord(
        insight=insight,
        hypothesis="h",
        query_spec={"color": "red"},
        verdict={"kind": "supported", "support": 0.7},
        evidence_ids=(0,),
        parents=tuple(parents),
    )


class TestInsightRecord:
    def test_needs_text(self):
        with pytest.raises(ValueError):
            InsightRecord(insight="")

    def test_dict_roundtrip(self):
        r = _rec(parents=(0, 1))
        assert InsightRecord.from_dict(r.to_dict()) == r


class TestProvenanceLog:
    def test_append_and_index(self):
        log = ProvenanceLog()
        i = log.add(_rec("a"))
        j = log.add(_rec("b", parents=(i,)))
        assert len(log) == 2
        assert log[j].parents == (i,)

    def test_parent_must_exist(self):
        log = ProvenanceLog()
        with pytest.raises(ValueError):
            log.add(_rec("x", parents=(0,)))

    def test_lineage(self):
        log = ProvenanceLog()
        a = log.add(_rec("a"))
        b = log.add(_rec("b", parents=(a,)))
        c = log.add(_rec("c", parents=(b,)))
        d = log.add(_rec("d", parents=(c, a)))
        lineage = log.lineage(d)
        assert set(lineage) == {a, b, c}
        with pytest.raises(IndexError):
            log.lineage(99)

    def test_roots(self):
        log = ProvenanceLog()
        a = log.add(_rec("a"))
        log.add(_rec("b", parents=(a,)))
        c = log.add(_rec("c"))
        assert log.roots() == [a, c]

    def test_save_load_roundtrip(self, tmp_path):
        log = ProvenanceLog()
        a = log.add(_rec("a"))
        log.add(_rec("b", parents=(a,)))
        path = tmp_path / "prov.json"
        log.save(path)
        loaded = ProvenanceLog.load(path)
        assert len(loaded) == 2
        assert loaded[1].parents == (0,)
        assert loaded[0].insight == "a"
