"""Tests for the Pirolli-Card sensemaking stage graph."""

import pytest

from repro.sensemaking.model import SensemakingModel, Stage


@pytest.fixture()
def model():
    return SensemakingModel()


class TestStages:
    def test_seven_stages(self, model):
        assert len(model.stages()) == 7

    def test_loop_membership(self):
        assert Stage.RAW_DATA.loop == "foraging"
        assert Stage.EVIDENCE_FILE.loop == "foraging"
        assert Stage.SCHEMA.loop == "sensemaking"
        assert Stage.PRESENTATION.loop == "sensemaking"


class TestTransitions:
    def test_forward_chain_valid(self, model):
        stages = model.stages()
        for a, b in zip(stages[:-1], stages[1:]):
            assert model.is_valid_transition(a, b)
            assert model.is_forward(a, b)

    def test_back_edges_valid_but_not_forward(self, model):
        assert model.is_valid_transition(Stage.SCHEMA, Stage.EVIDENCE_FILE)
        assert not model.is_forward(Stage.SCHEMA, Stage.EVIDENCE_FILE)

    def test_skipping_stages_invalid(self, model):
        assert not model.is_valid_transition(Stage.RAW_DATA, Stage.SCHEMA)


class TestSessionAnalyses:
    def test_path_coverage(self, model):
        visited = [Stage.RAW_DATA, Stage.FILTERED_DATA, Stage.RAW_DATA]
        assert model.path_coverage(visited) == pytest.approx(2 / 7)

    def test_transition_mix(self, model):
        trace = [
            Stage.VISUAL_REPRESENTATION,
            Stage.EVIDENCE_FILE,     # forward, adjacent
            Stage.SCHEMA,            # forward, adjacent
            Stage.EVIDENCE_FILE,     # back, adjacent
            Stage.EVIDENCE_FILE,     # stay
            Stage.PRESENTATION,      # forward, multi-stage jump
        ]
        mix = model.transition_mix(trace)
        assert mix == {"forward": 3, "back": 1, "stay": 1, "adjacent": 3}

    def test_empty_trace(self, model):
        assert model.transition_mix([]) == {
            "forward": 0,
            "back": 0,
            "stay": 0,
            "adjacent": 0,
        }
        assert model.path_coverage([]) == 0.0
