"""Tests for cell rasterization."""

import numpy as np
import pytest

from repro.display.coords import CoordinateMapper
from repro.display.tile import Tile
from repro.render.framebuffer import Framebuffer
from repro.render.raster import CellRenderer, CellStyle
from repro.stereo.camera import Eye
from repro.stereo.projection import SpaceTimeProjection


@pytest.fixture()
def tile():
    return Tile(0, 0, 0.0, 0.0, 0.4, 0.3, 400, 300)


@pytest.fixture()
def cell_rect():
    return (0.0, 0.0, 0.2, 0.15)


@pytest.fixture()
def renderer(tile):
    return CellRenderer(tile, SpaceTimeProjection(time_scale=0.001))


@pytest.fixture()
def mapper(arena, cell_rect):
    return CoordinateMapper(arena, cell_rect)


class TestBackground:
    def test_group_color_dimmed(self, renderer, tile, cell_rect):
        fb = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        renderer.draw_background(fb, cell_rect, (1.0, 0.0, 0.0))
        # inside the cell: dimmed red
        assert fb.data[50, 50, 0] == pytest.approx(CellStyle().background_dim, abs=1e-5)
        # outside the cell: untouched
        assert fb.data[250, 350, 0] == 0.0

    def test_none_color_uses_style_background(self, renderer, tile, cell_rect):
        fb = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        renderer.draw_background(fb, cell_rect, None)
        np.testing.assert_allclose(
            fb.data[50, 50], CellStyle().background, atol=1e-6
        )


class TestArenaRim:
    def test_rim_pixels_lit(self, renderer, tile, mapper):
        fb = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        renderer.draw_arena_rim(fb, mapper)
        center = tile.wall_to_pixel(mapper.arena_to_wall(np.zeros((1, 2))))[0]
        radius_px = mapper.scale * mapper.arena.radius * tile.pixels_per_meter[0]
        on_ring = fb.data[int(center[1]), int(center[0] + radius_px)]
        assert on_ring.max() > 0.2
        at_center = fb.data[int(center[1]), int(center[0])]
        assert at_center.max() == 0.0


class TestTrajectoryDrawing:
    def test_trajectory_lights_pixels(self, renderer, tile, mapper, simple_traj, cell_rect):
        fb = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        renderer.draw_trajectory(fb, simple_traj, mapper, Eye.LEFT, cell_rect)
        assert (fb.data.max(axis=2) > 0.2).sum() > 20

    def test_eye_views_differ_with_depth(self, tile, mapper, simple_traj, cell_rect):
        # exaggerate depth so per-eye shear exceeds a pixel
        renderer = CellRenderer(tile, SpaceTimeProjection(time_scale=0.05))
        fb_l = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        fb_r = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        renderer.draw_trajectory(fb_l, simple_traj, mapper, Eye.LEFT, cell_rect)
        renderer.draw_trajectory(fb_r, simple_traj, mapper, Eye.RIGHT, cell_rect)
        assert not np.allclose(fb_l.data, fb_r.data)

    def test_highlights_respect_mask(self, renderer, tile, mapper, simple_traj, cell_rect):
        fb_none = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        mask = np.zeros(simple_traj.n_samples - 1, dtype=bool)
        renderer.draw_highlights(fb_none, simple_traj, mapper, Eye.LEFT, mask, "red", cell_rect)
        assert fb_none.data.sum() == 0.0
        fb_some = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        mask[:3] = True
        renderer.draw_highlights(fb_some, simple_traj, mapper, Eye.LEFT, mask, "red", cell_rect)
        assert fb_some.data[..., 0].sum() > 0

    def test_highlight_mask_shape_checked(self, renderer, tile, mapper, simple_traj, cell_rect):
        fb = Framebuffer(tile.px_width, tile.px_height)
        with pytest.raises(ValueError):
            renderer.draw_highlights(
                fb, simple_traj, mapper, Eye.LEFT, np.zeros(3, dtype=bool), "red", cell_rect
            )


class TestBrushFootprint:
    def test_footprint_composites(self, renderer, tile, mapper, cell_rect):
        fb = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        centers = np.array([[0.0, 0.0]])
        radii = np.array([0.1])
        cov = renderer.draw_brush_footprint(fb, mapper, centers, radii, "red", cell_rect)
        assert cov is not None
        assert cov.max() == pytest.approx(1.0)
        center_px = tile.wall_to_pixel(mapper.arena_to_wall(np.zeros((1, 2))))[0]
        assert fb.data[int(center_px[1]), int(center_px[0]), 0] > 0.1

    def test_precomputed_reuse_matches(self, renderer, tile, mapper, cell_rect):
        centers = np.array([[0.1, -0.1]])
        radii = np.array([0.08])
        fb1 = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        cov = renderer.draw_brush_footprint(fb1, mapper, centers, radii, "red", cell_rect)
        fb2 = Framebuffer(tile.px_width, tile.px_height, (0, 0, 0))
        renderer.draw_brush_footprint(
            fb2, mapper, centers, radii, "red", cell_rect, precomputed=cov
        )
        np.testing.assert_allclose(fb1.data, fb2.data)

    def test_empty_centers_none(self, renderer, tile, mapper, cell_rect):
        fb = Framebuffer(tile.px_width, tile.px_height)
        out = renderer.draw_brush_footprint(
            fb, mapper, np.empty((0, 2)), np.empty(0), "red", cell_rect
        )
        assert out is None

    def test_coverage_localized_to_brush(self, renderer, mapper, cell_rect):
        centers = np.array([[-0.4, 0.0]])  # west edge
        radii = np.array([0.05])
        cov, (x0, y0, x1, y1) = renderer.brush_footprint_coverage(
            mapper, cell_rect, centers, radii
        )
        h, w = cov.shape
        assert cov[:, : w // 2].sum() > 0       # west half covered
        assert cov[:, 3 * w // 4 :].sum() == 0  # east quarter untouched
