"""Tests for colors and the time gradient."""

import numpy as np
import pytest

from repro.render.color import (
    HIGHLIGHT_COLORS,
    NAMED_COLORS,
    named_color,
    time_gradient,
    to_uint8,
)


class TestNamedColors:
    def test_lookup(self):
        assert named_color("red") == NAMED_COLORS["red"]

    def test_unknown_lists_valid(self):
        with pytest.raises(KeyError, match="valid"):
            named_color("chartreuse")

    def test_all_channels_in_range(self):
        for rgb in NAMED_COLORS.values():
            assert all(0.0 <= c <= 1.0 for c in rgb)

    def test_highlight_palette_subset(self):
        for name in HIGHLIGHT_COLORS:
            assert name in NAMED_COLORS


class TestTimeGradient:
    def test_shape(self):
        out = time_gradient(np.linspace(0, 1, 7))
        assert out.shape == (7, 3)

    def test_range(self):
        out = time_gradient(np.linspace(0, 1, 100))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_early_blue_late_warm(self):
        early = time_gradient(np.array(0.0))
        late = time_gradient(np.array(1.0))
        assert early[2] > early[0]  # blue-dominant start
        assert late[0] > late[2]    # warm end

    def test_clips_out_of_range(self):
        np.testing.assert_allclose(time_gradient(np.array(-5.0)), time_gradient(np.array(0.0)))
        np.testing.assert_allclose(time_gradient(np.array(9.0)), time_gradient(np.array(1.0)))

    def test_monotone_red_channel(self):
        out = time_gradient(np.linspace(0, 1, 50))
        assert np.all(np.diff(out[:, 0]) > 0)


class TestToUint8:
    def test_rounding(self):
        img = np.array([[[0.0, 0.5, 1.0]]])
        out = to_uint8(img)
        np.testing.assert_array_equal(out, [[[0, 128, 255]]])

    def test_clipping(self):
        img = np.array([[[-1.0, 2.0, 0.3]]])
        out = to_uint8(img)
        assert out[0, 0, 0] == 0 and out[0, 0, 1] == 255
