"""Tests for the wall render pipeline."""

import numpy as np
import pytest

from repro.core.brush import stroke_from_rect
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.display.bezel import BezelSpec
from repro.display.viewport import Viewport
from repro.display.wall import DisplayWall
from repro.layout.cells import assign_groups_to_cells, assign_sequential
from repro.layout.grid import BezelAwareGrid
from repro.layout.groups import TrajectoryGroups
from repro.render.pipeline import WallRenderer
from repro.stereo.camera import Eye
from repro.synth.arena import Arena


@pytest.fixture(scope="module")
def small_viewport():
    """A tiny 2x1-panel wall so render tests stay fast."""
    wall = DisplayWall(
        cols=2, rows=1, panel_width=0.3, panel_height=0.16875,
        panel_px_width=160, panel_px_height=90, bezel=BezelSpec(),
    )
    return Viewport(wall)


@pytest.fixture(scope="module")
def small_grid(small_viewport):
    return BezelAwareGrid(small_viewport, 6, 2)


@pytest.fixture(scope="module")
def renderer(study_dataset, small_viewport):
    return WallRenderer(study_dataset, Arena(), small_viewport)


class TestJobs:
    def test_one_job_per_tile_eye(self, renderer, study_dataset, small_grid):
        asg = assign_sequential(study_dataset, small_grid)
        jobs = renderer.make_jobs(asg)
        assert len(jobs) == 2 * 2  # 2 tiles x 2 eyes

    def test_cells_partition_across_tiles(self, renderer, study_dataset, small_grid):
        asg = assign_sequential(study_dataset, small_grid)
        jobs = renderer.make_jobs(asg, (Eye.LEFT,))
        total_cells = sum(len(j.cell_rects) for j in jobs)
        assert total_cells == small_grid.n_cells

    def test_group_colors_attached(self, study_dataset, small_viewport, small_grid, renderer):
        groups = TrajectoryGroups.fig3_scheme(small_grid)
        asg = assign_groups_to_cells(study_dataset, small_grid, groups)
        jobs = renderer.make_jobs(asg, (Eye.LEFT,))
        all_colors = np.concatenate([j.cell_colors for j in jobs])
        # at least two distinct group colors present
        assert len(np.unique(all_colors.round(3), axis=0)) >= 2


class TestRenderJob:
    def test_framebuffer_size(self, renderer, study_dataset, small_grid, small_viewport):
        asg = assign_sequential(study_dataset, small_grid)
        job = renderer.make_jobs(asg, (Eye.LEFT,))[0]
        fb = renderer.render_job(job)
        assert (fb.width, fb.height) == (160, 90)

    def test_trajectories_visible(self, renderer, study_dataset, small_grid):
        asg = assign_sequential(study_dataset, small_grid)
        job = renderer.make_jobs(asg, (Eye.LEFT,))[0]
        fb = renderer.render_job(job)
        # some pixels clearly brighter than the background
        assert (fb.data.max(axis=2) > 0.4).sum() > 30

    def test_highlights_add_brush_color(self, renderer, study_dataset, small_grid, arena):
        asg = assign_sequential(study_dataset, small_grid)
        canvas = BrushCanvas()
        canvas.add(stroke_from_rect((-0.5, -0.3), (-0.3, 0.3), 0.06, "red"))
        engine = CoordinatedBrushingEngine(study_dataset)
        results = {"red": engine.query(canvas, "red")}
        job = renderer.make_jobs(asg, (Eye.LEFT,))[0]
        plain = renderer.render_job(job)
        brushed = renderer.render_job(job, canvas=canvas, results=results)
        # the brushed frame has more red-dominant pixels
        def red_dominant(fb):
            return int(
                ((fb.data[..., 0] > 0.5) & (fb.data[..., 0] > 2 * fb.data[..., 2])).sum()
            )
        assert red_dominant(brushed) > red_dominant(plain)


class TestRenderViewport:
    def test_full_structure(self, renderer, study_dataset, small_grid):
        asg = assign_sequential(study_dataset, small_grid)
        frames = renderer.render_viewport(asg)
        assert set(frames) == {Eye.LEFT, Eye.RIGHT}
        assert set(frames[Eye.LEFT]) == {(0, 0), (1, 0)}

    def test_single_eye(self, renderer, study_dataset, small_grid):
        asg = assign_sequential(study_dataset, small_grid)
        frames = renderer.render_viewport(asg, eyes=(Eye.LEFT,))
        assert set(frames) == {Eye.LEFT}

    def test_deterministic(self, renderer, study_dataset, small_grid):
        asg = assign_sequential(study_dataset, small_grid)
        f1 = renderer.render_viewport(asg, eyes=(Eye.LEFT,))
        f2 = renderer.render_viewport(asg, eyes=(Eye.LEFT,))
        np.testing.assert_array_equal(
            f1[Eye.LEFT][(0, 0)].data, f2[Eye.LEFT][(0, 0)].data
        )
