"""Tests for the built-in bitmap font."""

import numpy as np
import pytest

from repro.render.font import GLYPH_H, GLYPH_W, draw_text, text_mask
from repro.render.framebuffer import Framebuffer


class TestTextMask:
    def test_dimensions(self):
        mask = text_mask("EAST")
        assert mask.shape == (GLYPH_H, 4 * GLYPH_W + 3)

    def test_empty_text(self):
        mask = text_mask("")
        assert mask.shape == (GLYPH_H, 0)

    def test_uppercasing(self):
        np.testing.assert_array_equal(text_mask("east"), text_mask("EAST"))

    def test_unknown_char_renders_question_mark(self):
        np.testing.assert_array_equal(text_mask("@"), text_mask("?"))

    def test_scale(self):
        small = text_mask("A")
        big = text_mask("A", scale=3)
        assert big.shape == (small.shape[0] * 3, small.shape[1] * 3)
        np.testing.assert_array_equal(big[::3, ::3], small)

    def test_spacing(self):
        tight = text_mask("AB", spacing=0)
        loose = text_mask("AB", spacing=3)
        assert loose.shape[1] == tight.shape[1] + 3

    def test_all_glyphs_nonempty_except_space(self):
        for ch in "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.:%/()#!?=+',":
            mask = text_mask(ch)
            assert mask.any(), ch
        assert not text_mask(" ").any()

    def test_glyphs_distinct(self):
        seen = {}
        for ch in "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789":
            key = text_mask(ch).tobytes()
            assert key not in seen, (ch, seen.get(key))
            seen[key] = ch

    def test_validation(self):
        with pytest.raises(ValueError):
            text_mask("A", scale=0)
        with pytest.raises(ValueError):
            text_mask("A", spacing=-1)


class TestDrawText:
    def test_pixels_colored(self):
        fb = Framebuffer(40, 12, background=(0, 0, 0))
        draw_text(fb, 1, 2, "HI", color=(1.0, 0.0, 0.0))
        assert (fb.data[..., 0] > 0.9).sum() > 5
        assert fb.data[..., 1].max() == 0.0

    def test_clipping_at_edges(self):
        fb = Framebuffer(10, 10, background=(0, 0, 0))
        draw_text(fb, -3, -3, "WWW", color=(1, 1, 1))   # partially off-screen
        draw_text(fb, 50, 50, "X", color=(1, 1, 1))     # fully off-screen
        # no exception; some pixels from the clipped text landed
        assert fb.data.max() > 0

    def test_alpha_blend(self):
        fb = Framebuffer(20, 10, background=(0, 0, 0))
        draw_text(fb, 0, 0, "I", color=(1, 1, 1), alpha=0.5)
        lit = fb.data[fb.data > 0]
        assert np.allclose(lit, 0.5)

    def test_alpha_validation(self):
        fb = Framebuffer(20, 10)
        with pytest.raises(ValueError):
            draw_text(fb, 0, 0, "A", alpha=1.5)
