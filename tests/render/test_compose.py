"""Tests for frame composition (wall assembly, stereo pair, anaglyph)."""

import numpy as np
import pytest

from repro.display.wall import DisplayWall
from repro.render.compose import anaglyph, compose_wall, stereo_pair_side_by_side
from repro.render.framebuffer import Framebuffer


@pytest.fixture()
def small_wall():
    return DisplayWall(
        cols=2, rows=2, panel_width=0.2, panel_height=0.1125,
        panel_px_width=64, panel_px_height=36,
    )


def _buffers(wall, color=(1.0, 0.0, 0.0)):
    return {
        (c, r): Framebuffer(wall.panel_px_width, wall.panel_px_height, color)
        for c in range(wall.cols)
        for r in range(wall.rows)
    }


class TestComposeWall:
    def test_size_includes_mullions(self, small_wall):
        img = compose_wall(small_wall, _buffers(small_wall))
        mx = round(small_wall.bezel.horizontal_mullion * 64 / 0.2)
        my = round(small_wall.bezel.vertical_mullion * 36 / 0.1125)
        assert img.shape == (2 * 36 + my, 2 * 64 + mx, 3)

    def test_bezel_pixels_dark(self, small_wall):
        img = compose_wall(small_wall, _buffers(small_wall))
        # the mullion column sits right after the first panel
        assert img[0, 64, 0] < 0.1
        assert img[0, 0, 0] == pytest.approx(1.0)

    def test_missing_tiles_black(self, small_wall):
        img = compose_wall(small_wall, {(0, 0): Framebuffer(64, 36, (1, 1, 1))})
        assert img[0, 0, 0] == pytest.approx(1.0)
        assert img[-1, -1, 0] < 0.1

    def test_wrong_tile_size_rejected(self, small_wall):
        with pytest.raises(ValueError):
            compose_wall(small_wall, {(0, 0): Framebuffer(10, 10)})

    def test_out_of_range_tile_rejected(self, small_wall):
        with pytest.raises(IndexError):
            compose_wall(small_wall, {(5, 0): Framebuffer(64, 36)})

    def test_downscale(self, small_wall):
        full = compose_wall(small_wall, _buffers(small_wall), scale=1.0)
        half = compose_wall(small_wall, _buffers(small_wall), scale=0.5)
        assert half.shape[0] == (full.shape[0] + 1) // 2

    def test_scale_validation(self, small_wall):
        with pytest.raises(ValueError):
            compose_wall(small_wall, {}, scale=0.0)


class TestStereoPair:
    def test_side_by_side(self):
        l = np.zeros((4, 6, 3))
        r = np.ones((4, 6, 3))
        pair = stereo_pair_side_by_side(l, r)
        assert pair.shape == (4, 12, 3)
        assert pair[0, 0, 0] == 0.0 and pair[0, 11, 0] == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            stereo_pair_side_by_side(np.zeros((4, 6, 3)), np.zeros((4, 7, 3)))


class TestAnaglyph:
    def test_channels(self):
        left = np.zeros((2, 2, 3), dtype=np.float32)
        left[..., 0] = 1.0  # pure red left image: luminance 0.299
        right = np.zeros((2, 2, 3), dtype=np.float32)
        right[..., 1] = 1.0  # pure green right: luminance 0.587
        out = anaglyph(left, right)
        np.testing.assert_allclose(out[..., 0], 0.299, atol=1e-5)
        np.testing.assert_allclose(out[..., 1], 0.587, atol=1e-5)
        np.testing.assert_allclose(out[..., 2], 0.587, atol=1e-5)

    def test_identical_eyes_grayscale(self):
        rng = np.random.default_rng(0)
        img = rng.uniform(size=(3, 3, 3)).astype(np.float32)
        out = anaglyph(img, img)
        np.testing.assert_allclose(out[..., 0], out[..., 1], atol=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            anaglyph(np.zeros((2, 2, 3)), np.zeros((3, 2, 3)))
