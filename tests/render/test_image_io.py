"""Tests for PPM/NPZ image I/O."""

import numpy as np
import pytest

from repro.render.image_io import read_npz, read_ppm, write_npz, write_ppm


class TestPpm:
    def test_uint8_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 256, size=(7, 5, 3), dtype=np.uint8)
        path = tmp_path / "img.ppm"
        write_ppm(img, path)
        back = read_ppm(path)
        np.testing.assert_array_equal(back, img)

    def test_float_conversion(self, tmp_path):
        img = np.zeros((2, 2, 3))
        img[0, 0] = [1.0, 0.5, 0.0]
        path = tmp_path / "f.ppm"
        write_ppm(img, path)
        back = read_ppm(path)
        np.testing.assert_array_equal(back[0, 0], [255, 128, 0])

    def test_header(self, tmp_path):
        path = tmp_path / "h.ppm"
        write_ppm(np.zeros((3, 4, 3), dtype=np.uint8), path)
        header = path.read_bytes()[:20]
        assert header.startswith(b"P6\n4 3\n255\n")

    def test_shape_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(np.zeros((3, 4)), tmp_path / "bad.ppm")

    def test_read_rejects_non_ppm(self, tmp_path):
        p = tmp_path / "x.ppm"
        p.write_bytes(b"PNG garbage")
        with pytest.raises(ValueError):
            read_ppm(p)

    def test_read_rejects_truncated(self, tmp_path):
        p = tmp_path / "t.ppm"
        p.write_bytes(b"P6\n10 10\n255\n\x00\x00")
        with pytest.raises(ValueError, match="truncated"):
            read_ppm(p)


class TestNpz:
    def test_exact_roundtrip(self, tmp_path):
        img = np.random.default_rng(1).uniform(size=(4, 4, 3)).astype(np.float32)
        path = tmp_path / "img.npz"
        write_npz(img, path)
        np.testing.assert_array_equal(read_npz(path), img)
