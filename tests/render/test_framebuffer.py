"""Tests for framebuffers."""

import numpy as np
import pytest

from repro.render.framebuffer import Framebuffer


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 10)

    def test_clear_color(self):
        fb = Framebuffer(4, 3, background=(0.5, 0.25, 0.0))
        np.testing.assert_allclose(fb.data[0, 0], [0.5, 0.25, 0.0])

    def test_fill_rect_clipped(self):
        fb = Framebuffer(8, 8, background=(0, 0, 0))
        fb.fill_rect(-5, -5, 3, 3, (1, 0, 0))
        assert fb.data[0, 0, 0] == 1.0
        assert fb.data[3, 3, 0] == 0.0

    def test_fill_rect_degenerate(self):
        fb = Framebuffer(8, 8)
        before = fb.data.copy()
        fb.fill_rect(5, 5, 5, 9, (1, 1, 1))
        np.testing.assert_array_equal(fb.data, before)

    def test_to_uint8(self):
        fb = Framebuffer(2, 2, background=(1.0, 0.0, 0.5))
        u = fb.to_uint8()
        assert u.dtype == np.uint8
        assert u[0, 0, 0] == 255
        assert u[0, 0, 2] == 128

    def test_copy_independent(self):
        fb = Framebuffer(2, 2)
        cp = fb.copy()
        cp.data[0, 0] = 1.0
        assert fb.data[0, 0, 0] != 1.0


class TestCompositing:
    def test_full_coverage_replaces(self):
        fb = Framebuffer(2, 2, background=(0, 0, 0))
        fb.composite_coverage(np.ones((2, 2)), (1.0, 0.0, 0.0))
        np.testing.assert_allclose(fb.data[..., 0], 1.0)

    def test_half_coverage_blends(self):
        fb = Framebuffer(2, 2, background=(0, 0, 0))
        fb.composite_coverage(np.full((2, 2), 0.5), (1.0, 1.0, 1.0))
        np.testing.assert_allclose(fb.data, 0.5)

    def test_coverage_clipped_to_one(self):
        fb = Framebuffer(2, 2, background=(0, 0, 0))
        fb.composite_coverage(np.full((2, 2), 7.0), (1.0, 0.0, 0.0))
        assert fb.data.max() == pytest.approx(1.0)

    def test_shape_mismatch(self):
        fb = Framebuffer(3, 2)
        with pytest.raises(ValueError):
            fb.composite_coverage(np.ones((3, 3)), (1, 1, 1))

    def test_composite_rgb(self):
        fb = Framebuffer(2, 2, background=(0, 0, 0))
        rgb = np.zeros((2, 2, 3))
        rgb[0, 0] = [0.0, 1.0, 0.0]
        cov = np.zeros((2, 2))
        cov[0, 0] = 1.0
        fb.composite_rgb(cov, rgb)
        np.testing.assert_allclose(fb.data[0, 0], [0.0, 1.0, 0.0])
        np.testing.assert_allclose(fb.data[1, 1], [0.0, 0.0, 0.0])


class TestCircleOutline:
    def test_ring_drawn(self):
        fb = Framebuffer(41, 41, background=(0, 0, 0))
        fb.draw_circle_outline(20, 20, 15, (1, 1, 1))
        # on the ring
        assert fb.data[20, 35, 0] > 0.5
        # center untouched
        assert fb.data[20, 20, 0] == 0.0

    def test_clipped_circle(self):
        fb = Framebuffer(10, 10, background=(0, 0, 0))
        fb.draw_circle_outline(0, 0, 50, (1, 1, 1))  # entirely off-ring inside
        # no crash; nothing inside the buffer is on the ring
        assert fb.data.max() == 0.0

    def test_zero_radius_noop(self):
        fb = Framebuffer(5, 5)
        before = fb.data.copy()
        fb.draw_circle_outline(2, 2, 0.0, (1, 1, 1))
        np.testing.assert_array_equal(fb.data, before)
