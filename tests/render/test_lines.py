"""Tests for the splat-based line rasterization kernels."""

import numpy as np
import pytest

from repro.render.lines import disc_kernel, resample_segments, splat_points, splat_polylines


class TestResampleSegments:
    def test_spacing(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[10.0, 0.0]])
        pts, _ = resample_segments(a, b, step=1.0)
        # endpoints included, spacing <= step
        assert len(pts) >= 11
        gaps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        assert gaps.max() <= 1.0 + 1e-9

    def test_endpoints_present(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        pts, _ = resample_segments(a, b, step=0.7)
        np.testing.assert_allclose(pts[0], a[0])
        np.testing.assert_allclose(pts[-1], b[0])

    def test_values_carried(self):
        a = np.zeros((2, 2))
        b = np.ones((2, 2))
        vals = np.array([0.25, 0.75])
        pts, v = resample_segments(a, b, step=0.5, values=vals)
        assert set(np.unique(v)) == {0.25, 0.75}
        assert len(v) == len(pts)

    def test_empty_input(self):
        pts, v = resample_segments(np.empty((0, 2)), np.empty((0, 2)), 0.5)
        assert len(pts) == 0 and v is None

    def test_zero_length_segment(self):
        a = np.array([[1.0, 1.0]])
        pts, _ = resample_segments(a, a, step=0.5)
        assert len(pts) == 2  # degenerate segment still emits endpoints

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            resample_segments(np.zeros((1, 2)), np.ones((1, 2)), 0.0)


class TestDiscKernel:
    def test_width_one_single_tap(self):
        offs, w = disc_kernel(1.0)
        assert offs.shape == (1, 2)
        assert w[0] == 1.0

    def test_width_three_covers_disc(self):
        offs, w = disc_kernel(3.0)
        assert len(offs) > 4
        radii = np.linalg.norm(offs, axis=1)
        assert radii.max() < 2.0  # zero-weight rim taps excluded
        assert np.all(w > 0)


class TestSplatPoints:
    def test_center_pixel_gets_full_weight(self):
        cov = np.zeros((5, 5))
        splat_points(cov, np.array([[2.0, 2.0]]))  # exactly on pixel corner
        assert cov.sum() == pytest.approx(1.0)

    def test_bilinear_split(self):
        cov = np.zeros((5, 5))
        splat_points(cov, np.array([[2.5, 2.0]]))
        assert cov[2, 2] == pytest.approx(0.5)
        assert cov[2, 3] == pytest.approx(0.5)

    def test_out_of_bounds_clipped(self):
        cov = np.zeros((4, 4))
        splat_points(cov, np.array([[-5.0, 2.0], [10.0, 2.0]]))
        assert cov.sum() == 0.0

    def test_edge_partial_weight(self):
        cov = np.zeros((4, 4))
        splat_points(cov, np.array([[-0.5, 1.0]]))
        # half the bilinear mass lands at x=-1 (clipped), half at x=0
        assert cov.sum() == pytest.approx(0.5)

    def test_weights_and_colors(self):
        cov = np.zeros((4, 4))
        rgb = np.zeros((4, 4, 3))
        colors = np.array([[1.0, 0.0, 0.0]])
        splat_points(cov, np.array([[1.0, 1.0]]), weights=2.0, rgb_accum=rgb, colors=colors)
        assert cov[1, 1] == pytest.approx(2.0)
        np.testing.assert_allclose(rgb[1, 1], [2.0, 0.0, 0.0])


class TestSplatPolylines:
    def test_horizontal_line_coverage(self):
        # line through pixel centers of row 4: full coverage lands there
        cov = np.zeros((9, 20))
        a = np.array([[2.0, 4.0]])
        b = np.array([[17.0, 4.0]])
        splat_polylines(cov, a, b, width=1.0, step=0.5)
        body = cov[4, 5:15]
        assert body.mean() > 0.9
        # far rows untouched
        assert cov[0].sum() == 0.0 and cov[8].sum() == 0.0

    def test_row_straddling_line_splits_coverage(self):
        # a line at y=4.5 antialiases evenly into rows 4 and 5
        cov = np.zeros((9, 20))
        splat_polylines(
            cov, np.array([[2.0, 4.5]]), np.array([[17.0, 4.5]]), width=1.0, step=0.5
        )
        np.testing.assert_allclose(cov[4, 5:15], 0.5, atol=0.05)
        np.testing.assert_allclose(cov[5, 5:15], 0.5, atol=0.05)

    def test_coverage_roughly_step_invariant(self):
        a = np.array([[2.0, 4.5]])
        b = np.array([[17.0, 4.5]])
        totals = []
        for step in (0.25, 0.5, 1.0):
            cov = np.zeros((9, 20))
            splat_polylines(cov, a, b, width=1.0, step=step)
            totals.append(cov.sum())
        assert max(totals) / min(totals) < 1.8

    def test_wider_line_more_coverage(self):
        a = np.array([[2.0, 10.0]])
        b = np.array([[17.0, 10.0]])
        cov1 = np.zeros((21, 20))
        cov3 = np.zeros((21, 20))
        splat_polylines(cov1, a, b, width=1.0)
        splat_polylines(cov3, a, b, width=3.0)
        assert (cov3 > 0.05).sum() > (cov1 > 0.05).sum()

    def test_gradient_colors(self):
        from repro.render.color import time_gradient

        cov = np.zeros((5, 30))
        rgb = np.zeros((5, 30, 3))
        a = np.array([[1.0, 2.0], [15.0, 2.0]])
        b = np.array([[14.0, 2.0], [28.0, 2.0]])
        splat_polylines(
            cov, a, b,
            seg_values=np.array([0.0, 1.0]),
            rgb_accum=rgb,
            value_to_rgb=time_gradient,
        )
        hit = cov > 1e-9
        mean = np.zeros_like(rgb)
        mean[hit] = rgb[hit] / cov[hit][:, None]
        # early half is blue-dominant, late half red-dominant
        early = mean[2, 3]
        late = mean[2, 25]
        assert early[2] > early[0]
        assert late[0] > late[2]

    def test_empty_noop(self):
        cov = np.zeros((4, 4))
        splat_polylines(cov, np.empty((0, 2)), np.empty((0, 2)))
        assert cov.sum() == 0.0
