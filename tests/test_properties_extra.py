"""Second property-test batch: serialization and algebra invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.combine import combine_and, combine_and_not, combine_or
from repro.core.result import QueryResult
from repro.render.image_io import read_ppm, write_ppm
from repro.trajectory.filters import parse_filter
from repro.trajectory.model import CaptureZone, Direction, Trajectory, TrajectoryMeta


# ---------------------------------------------------------------------------
# filter algebra: describe() output re-parses to the same semantics


@st.composite
def filter_exprs(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        atom = draw(
            st.sampled_from(
                ["*", "seed", "seed_dropped", "duration[20,100]"]
                + [f"zone={z}" for z in CaptureZone]
                + [f"direction={d}" for d in Direction]
            )
        )
        if draw(st.booleans()):
            atom = "!" + atom
        return atom
    op = draw(st.sampled_from([" & ", " | "]))
    return draw(filter_exprs(depth=depth + 1)) + op + draw(filter_exprs(depth=depth + 1))


@st.composite
def metas(draw):
    carrying = draw(st.booleans())
    return TrajectoryMeta(
        capture_zone=draw(st.sampled_from(CaptureZone)),
        direction=draw(st.sampled_from(Direction)),
        carrying_seed=carrying,
        seed_dropped=carrying and draw(st.booleans()),
    )


def _traj(meta, duration=50.0):
    return Trajectory(
        np.array([[0.0, 0.0], [0.1, 0.1]]), np.array([0.0, duration]), meta
    )


class TestFilterRoundtrip:
    @given(expr=filter_exprs(), meta=metas(), duration=st.floats(1.0, 200.0))
    @settings(max_examples=120, deadline=None)
    def test_describe_reparses_to_same_semantics(self, expr, meta, duration):
        f = parse_filter(expr)
        g = parse_filter(f.describe().replace("(", "").replace(")", ""))
        traj = _traj(meta, duration)
        # without parentheses the re-parse can only differ on mixed
        # precedence; restrict the check to expressions whose describe
        # has a single operator kind (pure AND or pure OR chains)
        d = f.describe()
        if ("&" in d) and ("|" in d):
            return
        assert f(traj) == g(traj)


# ---------------------------------------------------------------------------
# PPM round-trip for arbitrary uint8 images (raster bytes may collide
# with whitespace — the parser bug hypothesis already caught once)


class TestPpmRoundtrip:
    @given(
        img=arrays(
            np.uint8,
            st.tuples(st.integers(1, 12), st.integers(1, 12), st.just(3)),
            elements=st.integers(0, 255),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, img, tmp_path_factory):
        path = tmp_path_factory.mktemp("ppm") / "img.ppm"
        write_ppm(img, path)
        np.testing.assert_array_equal(read_ppm(path), img)


# ---------------------------------------------------------------------------
# combinator algebra


def _result(mask, color="a"):
    mask = np.asarray(mask, dtype=bool)
    return QueryResult(
        color=color,
        segment_mask=np.zeros(4, dtype=bool),
        traj_mask=mask,
        traj_highlight_time=mask.astype(float),
        displayed=np.ones(len(mask), dtype=bool),
    )


@st.composite
def mask_pairs(draw):
    n = draw(st.integers(1, 30))
    a = draw(arrays(np.bool_, (n,)))
    b = draw(arrays(np.bool_, (n,)))
    return _result(a, "a"), _result(b, "b")


class TestCombinatorAlgebra:
    @given(pair=mask_pairs())
    @settings(max_examples=80, deadline=None)
    def test_commutativity(self, pair):
        a, b = pair
        np.testing.assert_array_equal(
            combine_and(a, b).traj_mask, combine_and(b, a).traj_mask
        )
        np.testing.assert_array_equal(
            combine_or(a, b).traj_mask, combine_or(b, a).traj_mask
        )

    @given(pair=mask_pairs())
    @settings(max_examples=80, deadline=None)
    def test_absorption_and_partition(self, pair):
        a, b = pair
        both = combine_and(a, b).traj_mask
        either = combine_or(a, b).traj_mask
        only_a = combine_and_not(a, b).traj_mask
        # a AND b <= a <= a OR b
        assert np.all(both <= a.traj_mask)
        assert np.all(a.traj_mask <= either)
        # (a and not b) partitions a with (a and b)
        np.testing.assert_array_equal(only_a | both, a.traj_mask)
        assert not np.any(only_a & both)

    @given(pair=mask_pairs())
    @settings(max_examples=60, deadline=None)
    def test_idempotence(self, pair):
        a, _ = pair
        np.testing.assert_array_equal(combine_and(a, a).traj_mask, a.traj_mask)
        np.testing.assert_array_equal(combine_or(a, a).traj_mask, a.traj_mask)


# ---------------------------------------------------------------------------
# packed-segment integrity under arbitrary datasets


@st.composite
def small_datasets(draw):
    from repro.trajectory.dataset import TrajectoryDataset

    n = draw(st.integers(1, 6))
    ds = TrajectoryDataset(name="prop")
    for _ in range(n):
        k = draw(st.integers(2, 12))
        pos = draw(
            arrays(np.float64, (k, 2), elements=st.floats(-1, 1, allow_nan=False))
        )
        dts = draw(
            arrays(np.float64, (k - 1,), elements=st.floats(0.01, 1.0, allow_nan=False))
        )
        times = np.concatenate([[0.0], np.cumsum(dts)])
        ds.append(Trajectory(pos, times))
    return ds


class TestPackedIntegrity:
    @given(ds=small_datasets())
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_packed_reconstructs_trajectories(self, ds):
        packed = ds.packed()
        assert packed.n_segments == ds.total_segments
        for i, traj in enumerate(ds):
            rows = packed.rows_of(i)
            np.testing.assert_array_equal(packed.a[rows], traj.positions[:-1])
            np.testing.assert_array_equal(packed.b[rows], traj.positions[1:])
            np.testing.assert_array_equal(packed.owner[rows], i)
