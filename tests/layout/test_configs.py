"""Tests for the keypad layout presets."""

import pytest

from repro.layout.configs import LAYOUT_PRESETS, LayoutConfig, preset


class TestPresets:
    def test_paper_grids(self):
        """§IV-C.2 names 15x4, 24x6 and 36x12."""
        dims = {(c.n_cols, c.n_rows) for c in LAYOUT_PRESETS.values()}
        assert dims == {(15, 4), (24, 6), (36, 12)}

    def test_cell_counts(self):
        assert preset("1").n_cells == 60
        assert preset("2").n_cells == 144
        assert preset("3").n_cells == 432  # "432 trajectories" (§VI-B)

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="available"):
            preset("9")

    def test_coverage_85_percent(self):
        """§VI-B: 432 cells cover ~85 % of the ~500-trace dataset."""
        assert preset("3").coverage(500) == pytest.approx(0.864, abs=0.01)

    def test_coverage_clamps(self):
        assert preset("3").coverage(100) == 1.0
        assert preset("1").coverage(0) == 0.0

    def test_build(self, viewport):
        grid = preset("2").build(viewport)
        assert grid.n_cells == 144
        assert grid.straddle_count() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LayoutConfig("x", 0, 5)
