"""Tests for bezel-aware and naive small-multiple grids."""

import numpy as np
import pytest

from repro.layout.grid import BezelAwareGrid, NaiveGrid, _distribute


class TestDistribute:
    def test_even(self):
        np.testing.assert_array_equal(_distribute(12, 6), [2, 2, 2, 2, 2, 2])

    def test_uneven(self):
        np.testing.assert_array_equal(_distribute(15, 6), [3, 3, 3, 2, 2, 2])

    def test_fewer_items_than_bins(self):
        np.testing.assert_array_equal(_distribute(2, 4), [1, 1, 0, 0])

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            _distribute(3, 0)


class TestBezelAwareGrid:
    @pytest.mark.parametrize("cols,rows", [(15, 4), (24, 6), (36, 12)])
    def test_paper_presets_never_straddle(self, viewport, cols, rows):
        grid = BezelAwareGrid(viewport, cols, rows)
        assert grid.n_cells == cols * rows
        assert grid.straddle_count() == 0

    def test_validation(self, viewport):
        with pytest.raises(ValueError):
            BezelAwareGrid(viewport, 0, 4)

    def test_cells_disjoint(self, viewport):
        grid = BezelAwareGrid(viewport, 15, 4)
        rects = grid.rects()
        # pairwise non-overlap (allow shared edges)
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                a, b = rects[i], rects[j]
                sep = (
                    a[2] <= b[0] + 1e-12
                    or b[2] <= a[0] + 1e-12
                    or a[3] <= b[1] + 1e-12
                    or b[3] <= a[1] + 1e-12
                )
                assert sep, (i, j)

    def test_cells_inside_viewport(self, viewport):
        grid = BezelAwareGrid(viewport, 24, 6)
        rects = grid.rects()
        x0, y0, x1, y1 = viewport.rect_m
        assert np.all(rects[:, 0] >= x0 - 1e-9)
        assert np.all(rects[:, 2] <= x1 + 1e-9)
        assert np.all(rects[:, 1] >= y0 - 1e-9)
        assert np.all(rects[:, 3] <= y1 + 1e-9)

    def test_row_major_indexing(self, viewport):
        grid = BezelAwareGrid(viewport, 15, 4)
        c = grid.cell_at(3, 2)
        assert c.index == 2 * 15 + 3
        assert (c.gcol, c.grow) == (3, 2)

    def test_cell_at_bounds(self, viewport):
        grid = BezelAwareGrid(viewport, 15, 4)
        with pytest.raises(IndexError):
            grid.cell_at(15, 0)

    def test_uneven_split_cell_widths_differ_across_panels(self, viewport):
        # 15 columns over 6 panels: panels get 3 or 2 columns, so two
        # distinct cell widths exist
        grid = BezelAwareGrid(viewport, 15, 4)
        widths = {round(c.width, 6) for c in grid.cells()}
        assert len(widths) == 2

    def test_even_split_uniform_cells(self, viewport):
        grid = BezelAwareGrid(viewport, 24, 6)
        widths = {round(c.width, 6) for c in grid.cells()}
        assert len(widths) == 1

    def test_mean_cell_pixels_positive(self, viewport):
        grid = BezelAwareGrid(viewport, 36, 12)
        px = grid.mean_cell_pixels()
        # 8196*1536 budget over 432 cells, minus margins
        assert 10_000 < px < 40_000

    def test_cell_helpers(self, viewport):
        c = BezelAwareGrid(viewport, 15, 4).cell(0)
        assert c.width > 0 and c.height > 0
        cx, cy = c.center
        assert c.rect[0] < cx < c.rect[2]
        assert c.rect[1] < cy < c.rect[3]


class TestNaiveGrid:
    def test_straddles_bezels(self, viewport):
        """The A1 ablation premise: a naive uniform grid puts cells on
        mullions whenever the grid doesn't align with panel edges."""
        grid = NaiveGrid(viewport, 15, 4)
        assert grid.straddle_count() > 0

    def test_even_panel_aligned_grid_still_straddles(self, viewport):
        # even a 6x2 naive grid straddles: uniform division spreads the
        # mullion widths across cells, misaligning every interior edge
        grid = NaiveGrid(viewport, 6, 2)
        assert grid.straddle_count() > 0

    def test_zero_bezel_naive_grid_never_straddles(self):
        from repro.display.bezel import BezelSpec
        from repro.display.viewport import Viewport
        from repro.display.wall import DisplayWall

        wall = DisplayWall(bezel=BezelSpec(0, 0, 0, 0))
        grid = NaiveGrid(Viewport(wall), 15, 4)
        assert grid.straddle_count() == 0

    def test_cell_count(self, viewport):
        assert NaiveGrid(viewport, 10, 3).n_cells == 30

    def test_covers_viewport_exactly(self, viewport):
        grid = NaiveGrid(viewport, 9, 3)
        rects = grid.rects()
        x0, y0, x1, y1 = viewport.rect_m
        assert rects[:, 0].min() == pytest.approx(x0)
        assert rects[:, 2].max() == pytest.approx(x1)
        assert rects[:, 1].min() == pytest.approx(y0)
        assert rects[:, 3].max() == pytest.approx(y1)
