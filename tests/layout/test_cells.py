"""Tests for cell assignment (dataset -> grid cells)."""

import numpy as np
import pytest

from repro.layout.cells import assign_groups_to_cells, assign_sequential
from repro.layout.configs import preset
from repro.layout.groups import TrajectoryGroups


@pytest.fixture()
def grid(viewport):
    return preset("2").build(viewport)  # 24x6 = 144 cells


@pytest.fixture()
def groups(grid):
    return TrajectoryGroups.fig3_scheme(grid)


class TestGroupedAssignment:
    def test_each_cell_matches_group_filter(self, study_dataset, grid, groups):
        asg = assign_groups_to_cells(study_dataset, grid, groups)
        specs = list(groups)
        for cell_i, traj_i in enumerate(asg.cell_to_traj):
            if traj_i < 0:
                continue
            gi = asg.group_of_cell[cell_i]
            assert gi >= 0
            assert specs[gi].filter(study_dataset[int(traj_i)])

    def test_no_duplicate_display(self, study_dataset, grid, groups):
        asg = assign_groups_to_cells(study_dataset, grid, groups)
        shown = asg.cell_to_traj[asg.cell_to_traj >= 0]
        assert len(shown) == len(np.unique(shown))

    def test_traj_to_cell_consistent(self, study_dataset, grid, groups):
        asg = assign_groups_to_cells(study_dataset, grid, groups)
        for traj_i, cell_i in asg.traj_to_cell.items():
            assert asg.cell_to_traj[cell_i] == traj_i
            assert asg.cell_of(traj_i).index == cell_i

    def test_coverage(self, study_dataset, grid, groups):
        asg = assign_groups_to_cells(study_dataset, grid, groups)
        assert asg.coverage(len(study_dataset)) == pytest.approx(
            asg.n_displayed / len(study_dataset)
        )

    def test_group_name_of_traj(self, study_dataset, grid, groups):
        asg = assign_groups_to_cells(study_dataset, grid, groups)
        shown = asg.displayed_indices()
        name = asg.group_name_of_traj(int(shown[0]))
        assert name in groups.names()
        assert study_dataset[int(shown[0])].meta.capture_zone == name

    def test_paging(self, full_dataset, grid, groups):
        asg0 = assign_groups_to_cells(full_dataset, grid, groups, page=0)
        asg1 = assign_groups_to_cells(full_dataset, grid, groups, page=1)
        s0 = set(asg0.displayed_indices().tolist())
        s1 = set(asg1.displayed_indices().tolist())
        assert s0 and s1
        assert not (s0 & s1)

    def test_page_past_end_empty(self, study_dataset, grid, groups):
        asg = assign_groups_to_cells(study_dataset, grid, groups, page=50)
        assert asg.n_displayed == 0

    def test_negative_page(self, study_dataset, grid, groups):
        with pytest.raises(ValueError):
            assign_groups_to_cells(study_dataset, grid, groups, page=-1)


class TestSequentialAssignment:
    def test_fills_in_order(self, study_dataset, grid):
        asg = assign_sequential(study_dataset, grid)
        n = min(len(study_dataset), grid.n_cells)
        np.testing.assert_array_equal(asg.cell_to_traj[:n], np.arange(n))

    def test_surplus_cells_empty(self, grid, tiny_dataset):
        asg = assign_sequential(tiny_dataset, grid)
        assert asg.n_displayed == 2
        assert (asg.cell_to_traj == -1).sum() == grid.n_cells - 2

    def test_paging(self, study_dataset, grid):
        asg1 = assign_sequential(study_dataset, grid, page=1)
        assert asg1.cell_to_traj[0] == grid.n_cells

    def test_no_groups(self, study_dataset, grid):
        asg = assign_sequential(study_dataset, grid)
        assert asg.groups is None
        assert np.all(asg.group_of_cell == -1)
        assert asg.group_name_of_traj(0) is None
