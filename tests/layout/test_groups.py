"""Tests for trajectory grouping (rectangular bins with filters)."""

import pytest

from repro.layout.configs import preset
from repro.layout.groups import FIG3_GROUP_COLORS, GroupSpec, TrajectoryGroups
from repro.trajectory.filters import CaptureZoneFilter


@pytest.fixture()
def grid(viewport):
    return preset("2").build(viewport)  # 24x6


class TestGroupSpec:
    def test_capacity(self):
        g = GroupSpec("a", 0, 0, 4, 6)
        assert g.capacity == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupSpec("a", 0, 0, 0, 6)
        with pytest.raises(ValueError):
            GroupSpec("a", -1, 0, 2, 2)
        with pytest.raises(ValueError):
            GroupSpec("a", 0, 0, 2, 2, color=(1.5, 0, 0))

    def test_cell_indices(self, grid):
        g = GroupSpec("a", 2, 1, 3, 2)
        idx = g.cell_indices(grid)
        assert len(idx) == 6
        assert (1 * 24 + 2) in idx
        assert (2 * 24 + 4) in idx

    def test_cell_indices_overflow(self, grid):
        g = GroupSpec("a", 22, 0, 5, 2)
        with pytest.raises(ValueError, match="exceeds"):
            g.cell_indices(grid)

    def test_overlap_detection(self):
        a = GroupSpec("a", 0, 0, 4, 4)
        b = GroupSpec("b", 3, 3, 4, 4)
        c = GroupSpec("c", 4, 0, 4, 4)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestTrajectoryGroups:
    def test_add_rejects_overlap(self, grid):
        groups = TrajectoryGroups(grid)
        groups.add(GroupSpec("a", 0, 0, 4, 6))
        with pytest.raises(ValueError, match="overlaps"):
            groups.add(GroupSpec("b", 3, 0, 4, 6))

    def test_add_rejects_overflow(self, grid):
        groups = TrajectoryGroups(grid)
        with pytest.raises(ValueError, match="exceeds"):
            groups.add(GroupSpec("a", 20, 0, 10, 2))

    def test_lookup_by_name(self, grid):
        groups = TrajectoryGroups(grid, [GroupSpec("west", 0, 0, 2, 2)])
        assert groups["west"].name == "west"
        with pytest.raises(KeyError):
            groups["east"]

    def test_total_capacity(self, grid):
        groups = TrajectoryGroups(
            grid, [GroupSpec("a", 0, 0, 4, 6), GroupSpec("b", 4, 0, 4, 6)]
        )
        assert groups.total_capacity == 48


class TestFig3Scheme:
    def test_five_zones(self, grid):
        groups = TrajectoryGroups.fig3_scheme(grid)
        assert groups.names() == ["on", "west", "east", "north", "south"]

    def test_covers_all_columns(self, grid):
        groups = TrajectoryGroups.fig3_scheme(grid)
        assert groups.total_capacity == grid.n_cells

    def test_colors_match_paper(self, grid):
        groups = TrajectoryGroups.fig3_scheme(grid)
        for g in groups:
            assert g.color == FIG3_GROUP_COLORS[g.name]
        # blue-ish on, red-ish west, yellow-ish east (Fig. 3 caption)
        on = FIG3_GROUP_COLORS["on"]
        west = FIG3_GROUP_COLORS["west"]
        east = FIG3_GROUP_COLORS["east"]
        assert on[2] > on[0]               # blue dominant
        assert west[0] > west[2]           # red dominant
        assert east[0] > 0.5 and east[1] > 0.5 and east[2] < 0.5  # yellow

    def test_filters_are_zone_filters(self, grid):
        groups = TrajectoryGroups.fig3_scheme(grid)
        for g in groups:
            assert isinstance(g.filter, CaptureZoneFilter)
            assert g.filter.zone == g.name

    def test_too_narrow_grid_rejected(self, viewport):
        from repro.layout.grid import BezelAwareGrid

        grid = BezelAwareGrid(viewport, 4, 2)
        with pytest.raises(ValueError, match="columns"):
            TrajectoryGroups.fig3_scheme(grid)
