"""Cross-module integration tests: the application end to end.

These tests tie the whole pipeline together the way the study did:
synthesize the dataset, lay it out on the paper's wall, brush, filter,
query, and check the outcome against exact analytics and the paper's
reported behaviour.
"""

import numpy as np
import pytest

from repro import (
    AntStudyConfig,
    Arena,
    CoordinatedBrushingEngine,
    Hypothesis,
    TimeWindow,
    TrajectoryExplorer,
    generate_study_dataset,
    paper_viewport,
)
from repro.analytics.verify import ground_truth_east_west, verify_query_against_truth
from repro.core.brush import stroke_from_rect
from repro.core.session import ExplorationSession
from repro.sensemaking import AnalystSimulator


@pytest.fixture(scope="module")
def app(full_dataset):
    return TrajectoryExplorer(full_dataset, layout_key="3")


class TestPaperHeadlineNumbers:
    def test_432_cells_85_percent_coverage(self, app, full_dataset):
        """§VI-B: 'it was possible to simultaneously visualize 432
        trajectories ... apply her queries and instantly see the
        results on 85% of the data'."""
        assert app.session.grid.n_cells == 432
        # sequential assignment fills every cell
        assert app.session.assignment.n_displayed == 432
        coverage = app.session.assignment.coverage(len(full_dataset))
        assert coverage == pytest.approx(0.864, abs=0.01)

    def test_wall_is_the_papers(self, app):
        wall = app.viewport.wall
        assert (wall.cols, wall.rows) == (6, 3)
        assert wall.megapixels == pytest.approx(18.9, abs=0.1)
        assert app.viewport.megapixels == pytest.approx(12.5, abs=0.2)

    def test_query_latency_interactive(self, app, arena):
        """§V-B: 'the entire dataset could be visually queried in a
        matter of few seconds' — the compute part is sub-second."""
        r = arena.radius
        app.erase()
        app.brush(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
        result = app.query("red")
        assert result.elapsed_s < 2.0


class TestVisualQueryVsExactAnalytics:
    def test_fig5_verdict_matches_ground_truth(self, full_dataset, arena):
        engine = CoordinatedBrushingEngine(full_dataset)
        r = arena.radius
        hyp = Hypothesis(
            statement="east ants exit west",
            strokes=(
                stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"),
            ),
            window=TimeWindow.end(0.15),
        )
        result = engine.query(hyp.build_canvas(), "red", window=hyp.window)
        truth = ground_truth_east_west(full_dataset, arena)
        fidelity = verify_query_against_truth(result, truth)
        assert fidelity.verdict_match
        assert fidelity.agreement > 0.8


class TestFullStudyReplay:
    def test_replay_on_paper_setup(self, full_dataset):
        session = ExplorationSession(full_dataset, paper_viewport())
        replay = AnalystSimulator(session).run()
        assert replay.hypotheses_tested() == 5
        assert replay.supported_count() == 5
        # the replay exercised layout, grouping, brushing and filtering
        usage = replay.coding.tool_usage()
        assert usage["coordinated_brush"] == 5
        assert usage["temporal_filter"] == 5
        assert usage["grouping"] == 1


class TestScaleInvariance:
    def test_smaller_study_same_conclusions(self):
        """The planted effects (and thus the paper's verdicts) are not
        an artifact of one dataset size or seed."""
        for seed in (1, 2):
            ds = generate_study_dataset(AntStudyConfig(n_trajectories=250, seed=seed))
            session = ExplorationSession(ds, paper_viewport())
            replay = AnalystSimulator(session).run()
            # at least the four homing hypotheses hold
            assert replay.supported_count() >= 4


class TestRenderQueryConsistency:
    def test_highlight_pixels_only_where_query_hit(self, full_dataset, arena):
        """Rendered highlights appear exactly for trajectories the
        query flagged: a cell shows red iff its trajectory is in the
        query's highlight set."""
        from repro.display.bezel import BezelSpec
        from repro.display.viewport import Viewport
        from repro.display.wall import DisplayWall
        from repro.layout.cells import assign_sequential
        from repro.layout.grid import BezelAwareGrid
        from repro.render.pipeline import WallRenderer
        from repro.stereo.camera import Eye
        from repro.core.canvas import BrushCanvas

        wall = DisplayWall(
            cols=1, rows=1, panel_width=0.6, panel_height=0.3375,
            panel_px_width=240, panel_px_height=135, bezel=BezelSpec(0, 0, 0, 0),
        )
        viewport = Viewport(wall)
        grid = BezelAwareGrid(viewport, 4, 2)
        sub = full_dataset[:8]
        asg = assign_sequential(sub, grid)
        canvas = BrushCanvas()
        r = arena.radius
        canvas.add(stroke_from_rect((-r, -0.6 * r), (-0.7 * r, 0.6 * r), 0.12 * r, "red"))
        engine = CoordinatedBrushingEngine(sub)
        res = engine.query(canvas, "red")
        renderer = WallRenderer(sub, arena, viewport)
        job = renderer.make_jobs(asg, (Eye.LEFT,))[0]
        fb = renderer.render_job(job, results={"red": res})

        # strong-red pixel mask per cell (brush footprint not drawn here)
        strong_red = (fb.data[..., 0] > 0.7) & (fb.data[..., 1] < 0.4) & (fb.data[..., 2] < 0.4)
        for cell in grid.cells():
            traj_i = asg.cell_to_traj[cell.index]
            if traj_i < 0:
                continue
            x0, y0, x1, y1 = cell.rect
            tile = wall.tile(0, 0)
            px0 = tile.wall_to_pixel(np.array([[x0, y0]]))[0].astype(int)
            px1 = tile.wall_to_pixel(np.array([[x1, y1]]))[0].astype(int)
            region = strong_red[px0[1] : px1[1], px0[0] : px1[0]]
            has_red = bool(region.sum() > 2)
            assert has_red == bool(res.traj_mask[traj_i]), cell.index
