"""Crash-safe streaming ingest with epoch rollover.

The wall serves queries continuously; new trajectories arrive
continuously.  This module splits the two concerns so neither blocks
the other:

* :class:`IngestBuffer` — a small, thread-safe staging area.  Producers
  :meth:`~IngestBuffer.append` trajectories at any rate; nothing the
  query path touches changes.  Every buffered trajectory carries a
  monotone *sequence number*, which is what makes recovery exact (see
  below).

* :class:`RolloverCoordinator` — drains the buffer in batches and
  republishes the service's arena under a new epoch via a **two-phase
  commit**:

  1. *Stage* (outside the service lock): build the successor dataset
     (old trajectories + batch), pack it, build its engine over the
     shared stage cache, and publish a fresh
     :class:`~repro.store.arena.SharedArenaStore`.
  2. *Validate*: :meth:`SharedArenaStore.validate` re-checks the staged
     block against its handle — a corrupt stage aborts here, with the
     staged block unlinked and the old epoch untouched.
  3. *Swap* (under the service lock): one call to
     :meth:`DatasetService._swap_active` atomically retargets the
     service's active dataset/engine/store (the only sanctioned caller
     of that method — reprolint RL008).

  In-flight sessions keep querying their pinned epoch; its block stays
  mapped until the last one detaches.  The shared, epoch-tagged
  :class:`~repro.core.plan.cache.StageCache` needs no flush: new-epoch
  keys cannot collide with old-epoch entries.

Crash safety is sequence-number bookkeeping, not magic.  The buffer
only forgets trajectories when the coordinator *commits* them
(:meth:`IngestBuffer.commit_through`) — which happens strictly after
the swap.  A coordinator that dies anywhere in stage→validate→swap
leaves the buffer intact, so a restarted rollover re-ingests the same
batch; a coordinator that dies *between* swap and commit would
double-ingest, so the coordinator records the swapped high-water mark
(``_swapped_seq``) in the same instant the swap returns and trims any
already-swapped prefix from the next batch.  The chaos harness
(:mod:`repro.resilience.chaos`) drives exactly these interleavings.

The coordinator is single-threaded by contract: one coordinator per
service, :meth:`~RolloverCoordinator.rollover` never called
concurrently with itself.  (Concurrent *queries* are the whole point
and are fine.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory

if TYPE_CHECKING:
    from repro.store.arena import SharedArenaStore, StoreHandle
    from repro.store.service import DatasetService, SharedQueryEngine

__all__ = [
    "IngestBatch",
    "IngestBuffer",
    "RolloverCoordinator",
    "RolloverResult",
]


@dataclass(frozen=True)
class IngestBatch:
    """An immutable snapshot of buffered trajectories.

    ``seq_lo``/``seq_hi`` are the (inclusive/exclusive) sequence
    numbers of the snapshot: trajectory ``i`` of the batch is sequence
    ``seq_lo + i``.  Sequence numbers are the recovery currency — a
    batch can be re-snapshotted, partially swapped, and trimmed without
    ever identifying trajectories by object identity.
    """

    seq_lo: int
    seq_hi: int
    trajectories: tuple[Trajectory, ...]

    def __post_init__(self) -> None:
        if self.seq_hi - self.seq_lo != len(self.trajectories):
            raise ValueError(
                f"batch spans [{self.seq_lo}, {self.seq_hi}) but holds "
                f"{len(self.trajectories)} trajectories"
            )

    def __len__(self) -> int:
        return len(self.trajectories)

    @property
    def n_segments(self) -> int:
        """Total segments across the batched trajectories."""
        return sum(max(0, t.n_samples - 1) for t in self.trajectories)

    def tail_from(self, seq: int) -> "IngestBatch":
        """The sub-batch of sequences ``>= seq`` (recovery trim).

        A coordinator restarting after a crash between swap and commit
        calls this with its swapped high-water mark so already-ingested
        trajectories are committed, not re-ingested.
        """
        if seq <= self.seq_lo:
            return self
        lo = min(seq, self.seq_hi)
        return IngestBatch(lo, self.seq_hi, self.trajectories[lo - self.seq_lo :])


class IngestBuffer:
    """Thread-safe staging area between producers and the coordinator.

    Appends are O(1) and never touch the query path.  The buffer
    retains everything until :meth:`commit_through` — the coordinator's
    post-swap acknowledgement — so a failed rollover loses nothing.
    """

    def __init__(self, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._lock = threading.Lock()
        self._pending: list[Trajectory] = []
        self._next_seq = 0
        self._clock = clock
        self._oldest_pending_at: float | None = None

    def append(self, traj: Trajectory) -> int:
        """Buffer one trajectory; returns its sequence number."""
        with self._lock:
            if not self._pending:
                self._oldest_pending_at = self._clock()
            self._pending.append(traj)
            seq = self._next_seq
            self._next_seq += 1
        self._publish_gauges()
        return seq

    def extend(self, trajs: "list[Trajectory] | tuple[Trajectory, ...]") -> int:
        """Buffer several trajectories; returns the last sequence number
        assigned (or the next unassigned one when ``trajs`` is empty)."""
        with self._lock:
            if trajs and not self._pending:
                self._oldest_pending_at = self._clock()
            self._pending.extend(trajs)
            self._next_seq += len(trajs)
            seq = self._next_seq - 1
        self._publish_gauges()
        return seq

    def snapshot(self) -> IngestBatch | None:
        """An immutable batch of everything currently pending, or
        ``None`` when the buffer is empty.  Does not consume — only
        :meth:`commit_through` does."""
        with self._lock:
            if not self._pending:
                return None
            hi = self._next_seq
            trajs = tuple(self._pending)
            return IngestBatch(hi - len(trajs), hi, trajs)

    def commit_through(self, seq: int) -> int:
        """Forget every buffered trajectory with sequence ``<= seq``;
        returns how many were dropped.  Called by the coordinator only
        after the swap publishing those trajectories has committed."""
        with self._lock:
            lo = self._next_seq - len(self._pending)
            n_drop = max(0, min(seq - lo + 1, len(self._pending)))
            if n_drop:
                del self._pending[:n_drop]
                self._oldest_pending_at = (
                    self._clock() if self._pending else None
                )
        self._publish_gauges()
        return n_drop

    @property
    def n_pending(self) -> int:
        """Trajectories buffered and not yet committed."""
        with self._lock:
            return len(self._pending)

    @property
    def n_segments_pending(self) -> int:
        """Segments buffered and not yet committed."""
        with self._lock:
            return sum(max(0, t.n_samples - 1) for t in self._pending)

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended trajectory receives."""
        with self._lock:
            return self._next_seq

    def lag_seconds(self) -> float:
        """Age of the oldest uncommitted trajectory (0.0 when empty) —
        how far the published arena trails the stream."""
        with self._lock:
            if self._oldest_pending_at is None:
                return 0.0
            return max(0.0, self._clock() - self._oldest_pending_at)

    def _publish_gauges(self) -> None:
        with self._lock:
            n_seg = sum(max(0, t.n_samples - 1) for t in self._pending)
            lag = (
                max(0.0, self._clock() - self._oldest_pending_at)
                if self._oldest_pending_at is not None
                else 0.0
            )
        obs.gauge_set("ingest.buffered_segments", float(n_seg))
        obs.gauge_set("ingest.lag_seconds", lag)


@dataclass(frozen=True)
class RolloverResult:
    """What one successful rollover published."""

    epoch: int
    n_ingested: int
    handle: "StoreHandle | None"
    stage_seconds: float
    swap_seconds: float
    recovered: bool = False
    faults: tuple[str, ...] = field(default_factory=tuple)


class RolloverCoordinator:
    """Drains an :class:`IngestBuffer` into a :class:`DatasetService`
    via two-phase epoch rollover.

    Parameters
    ----------
    service:
        The service whose active epoch is republished.  The coordinator
        is the **only** component that may call its ``_swap_active``
        (reprolint RL008).
    buffer:
        The staging buffer producers append to.
    publish_store:
        Also publish the new epoch as a shared-memory store (the
        multi-process serving path).  Off, the swap is in-process only
        — cheaper, and what single-process deployments want.
    include_index:
        Forwarded to store publication.
    chaos:
        Test-only hook called at each named rollover point
        (``pre_stage`` / ``post_stage`` / ``pre_swap`` / ``post_swap``)
        — the chaos harness raises from these to simulate crashes.
        ``None`` in production.
    """

    def __init__(
        self,
        service: "DatasetService",
        buffer: IngestBuffer,
        *,
        publish_store: bool = True,
        include_index: bool = True,
        chaos: "Callable[[str], None] | None" = None,
    ) -> None:
        self.service = service
        self.buffer = buffer
        self.publish_store = publish_store
        self.include_index = include_index
        self._chaos = chaos
        # high-water mark of sequences already swapped into the service;
        # set in the same instant a swap returns, consulted at the next
        # rollover to trim an uncommitted-but-swapped prefix (the crash
        # window between swap and buffer commit)
        self._swapped_seq = -1
        self.n_rollovers = 0

    # -- internals ---------------------------------------------------------
    def _at(self, point: str) -> None:
        if self._chaos is not None:
            self._chaos(point)

    def _stage(
        self, batch: IngestBatch
    ) -> "tuple[TrajectoryDataset, SharedQueryEngine, SharedArenaStore | None]":
        """Phase 1: build the successor epoch entirely off to the side.

        Nothing here holds the service lock or is visible to sessions;
        an exception at any point leaves the service exactly as it was.
        """
        from repro.store.arena import SharedArenaStore as _Store

        base = self.service.dataset
        successor = TrajectoryDataset(
            list(base) + list(batch.trajectories), name=base.name
        )
        # one epoch bump per ingested trajectory keeps the epoch a
        # strictly monotone mutation counter across rollovers
        successor._epoch = base.epoch + len(batch)
        engine = self.service._engine_for_epoch(successor)

        store = None
        if self.publish_store:
            store = _Store.publish(
                successor,
                include_index=self.include_index,
                index=engine.index,
                pyramid=engine.pyramid,
            )
            # brand the dataset so stage-cache keys carry the store
            # identity, exactly as the attach path does
            successor.store_token = store.handle.store_token
        return successor, engine, store

    def rollover(self) -> RolloverResult | None:
        """Drain the buffer and publish one new epoch.

        Returns ``None`` when there was nothing to ingest, otherwise a
        :class:`RolloverResult`.  On any staging/validation/swap error
        the staged store is unlinked, the buffer keeps the batch, and
        the exception propagates — the service continues serving the
        old epoch and a later call retries the same trajectories.
        """
        batch = self.buffer.snapshot()
        if batch is None:
            return None

        # recovery: a prior run may have swapped this prefix and died
        # before committing the buffer
        fresh = batch.tail_from(self._swapped_seq + 1)
        if len(fresh) == 0:
            self.buffer.commit_through(batch.seq_hi - 1)
            obs.counter_add("rollover.recovered", 1)
            return RolloverResult(
                epoch=self.service.active_epoch(),
                n_ingested=0,
                handle=None,
                stage_seconds=0.0,
                swap_seconds=0.0,
                recovered=True,
            )

        self._at("pre_stage")
        t_stage = time.perf_counter()
        successor, engine, store = self._stage(fresh)
        stage_s = time.perf_counter() - t_stage
        try:
            self._at("post_stage")
            if store is not None:
                store.validate()
            self._at("pre_swap")
            t_swap = time.perf_counter()
            epoch = self.service._swap_active(successor, engine, store)
            # the swap is now durable: record the high-water mark before
            # anything else can fail, so a crash before commit_through
            # trims (not re-ingests) this batch on the next rollover
            self._swapped_seq = fresh.seq_hi - 1
            swap_s = time.perf_counter() - t_swap
        except BaseException:
            # abort: the staged block must not outlive the failed
            # rollover (the buffer still holds the batch, so nothing
            # is lost — the next rollover restages it)
            if store is not None:
                store.unlink()
                store.close()
            obs.counter_add("rollover.aborted", 1)
            raise

        self.buffer.commit_through(fresh.seq_hi - 1)
        self.n_rollovers += 1
        obs.counter_add("rollover.count", 1)
        obs.observe("rollover.stage_seconds", stage_s)
        self._at("post_swap")
        return RolloverResult(
            epoch=epoch,
            n_ingested=len(fresh),
            handle=None if store is None else store.handle,
            stage_seconds=stage_s,
            swap_seconds=swap_s,
        )
