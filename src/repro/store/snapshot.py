"""Epoch snapshots and GIL-atomic pin accounting.

The lock-free multi-tenant read path rests on two small primitives:

* :class:`AtomicCounter` / :class:`AtomicRefCount` — counters built on
  ``collections.deque`` token buckets.  ``deque.append``/``pop`` and
  ``len(deque)`` are single C calls under CPython's GIL, so increments,
  decrements, and reads are atomic without any lock.  The refcount adds
  a *sealed zero* state claimed by a one-shot token pop, which makes
  "last pin out retires the snapshot" an exactly-once decision even
  when a racing pin and a racing retire interleave.

* :class:`EpochSnapshot` — one published dataset epoch and everything a
  query needs: the dataset, its packed view (through the engine), the
  spatial index, the stage cache, and the shared-memory store that
  backs them.  **Everything queryable on a snapshot is immutable after
  publish**; the only mutable field is the pin count.  Sessions resolve
  the active snapshot with a single atomic attribute read on the
  service and pin it — no lock is ever taken on the query path.

Pin/retire protocol (the part worth being careful about):

``try_pin`` optimistically appends a pin token, then verifies the
snapshot is not sealed; if a concurrent retire sealed it first, the pin
rolls back and the caller retries against the (new) active snapshot.
``seal_if_idle`` claims the one-shot seal token only when no pins
remain, then **re-checks**: if a pin raced in between the emptiness
check and the claim, the seal is pushed back and retirement is
declined — the racing pin's sealed-check may then spuriously fail, but
a spurious pin failure only costs a retry, never correctness.  The one
residual interleaving (both sides back off) leaves the snapshot alive
with zero pins; it is reclaimed by the next rollover sweep or by
service close, both of which re-attempt retirement of every idle
non-active snapshot.

The retire decision is therefore: *at most one* caller ever wins
``seal_if_idle`` for a given snapshot, no pin ever succeeds on a sealed
snapshot, and a snapshot with a live pin is never sealed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.engine import CoordinatedBrushingEngine
    from repro.core.spatial_index import CellBitsets
    from repro.store.arena import SharedArenaStore
    from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["AtomicCounter", "AtomicRefCount", "EpochSnapshot"]


class AtomicCounter:
    """A lock-free non-negative counter (GIL-atomic deque token bucket).

    ``incr``/``decr`` are one ``deque.append``/``deque.pop`` each;
    ``value`` is one ``len()``.  All three are single C calls that
    cannot be interleaved by another CPython thread, so the counter
    needs no lock and never tears.  ``decr`` below zero raises — a
    conservation bug should fail loudly, not saturate.
    """

    __slots__ = ("_tokens",)

    def __init__(self) -> None:
        self._tokens: deque[None] = deque()

    def incr(self) -> None:
        """Atomically add one."""
        self._tokens.append(None)

    def decr(self) -> None:
        """Atomically subtract one (raises IndexError below zero)."""
        self._tokens.pop()

    @property
    def value(self) -> int:
        """The current count (atomic read)."""
        return len(self._tokens)

    def __repr__(self) -> str:
        return f"AtomicCounter({len(self._tokens)})"


class AtomicRefCount:
    """Pin accounting with exactly-once retirement, no locks.

    States: *live* (seal token present) → *sealed* (token claimed by
    the single retirement winner).  Pins only ever succeed while live;
    sealing only ever succeeds while idle (zero pins).
    """

    __slots__ = ("_pins", "_seal")

    def __init__(self) -> None:
        self._pins: deque[None] = deque()
        self._seal: deque[None] = deque((None,))  # one-shot retire token

    def try_pin(self) -> bool:
        """Acquire one pin; False when the refcount is already sealed.

        Optimistic: the pin token lands *before* the sealed check, so a
        concurrent ``seal_if_idle`` either sees the token (and backs
        off) or has already claimed the seal (and this pin rolls back).
        Either way no pin coexists with a completed seal.
        """
        self._pins.append(None)
        if not self._seal:  # sealed (or mid-seal): back off and retry
            self._pins.pop()
            return False
        return True

    def unpin(self) -> int:
        """Release one pin; returns the remaining pin count."""
        self._pins.pop()
        return len(self._pins)

    @property
    def pins(self) -> int:
        """Current pin count (atomic read)."""
        return len(self._pins)

    @property
    def sealed(self) -> bool:
        """Has retirement been claimed?"""
        return not self._seal

    def seal_if_idle(self) -> bool:
        """Claim retirement iff no pins remain.  True exactly once.

        The post-claim re-check closes the pin/seal race: a pin that
        landed its token after our emptiness check (but before the
        claim) forces the seal back, keeping the snapshot alive for
        that pinner.
        """
        if self._pins:
            return False
        try:
            self._seal.pop()
        except IndexError:
            return False  # another retirer already won
        if self._pins:  # a pin raced in: undo the claim, decline
            self._seal.append(None)
            return False
        return True


@dataclass
class EpochSnapshot:
    """One immutable published epoch: what every query reads, lock-free.

    Published exactly once by :meth:`DatasetService._swap_active` (or
    service construction) and never mutated afterwards — the dataset,
    engine (packed view + spatial index + sharded stage cache), and
    backing store are all epoch-frozen, which is precisely why sessions
    may read them concurrently without any lock.  The only mutable
    state is ``refs`` (pin accounting) and the registry that maps
    epochs to snapshots (mutated under the service lock).
    """

    epoch: int
    dataset: "TrajectoryDataset"
    engine: "CoordinatedBrushingEngine"
    store: "SharedArenaStore | None" = None
    refs: AtomicRefCount = field(default_factory=AtomicRefCount)

    def try_pin(self) -> bool:
        """Pin this snapshot (False once retired — caller retries)."""
        return self.refs.try_pin()

    def unpin(self) -> int:
        """Release one pin; returns remaining pins."""
        return self.refs.unpin()

    @property
    def pins(self) -> int:
        """Live session pins on this snapshot."""
        return self.refs.pins

    @property
    def retired(self) -> bool:
        """Has this snapshot been retired (sealed)?"""
        return self.refs.sealed

    @property
    def bitsets(self) -> "CellBitsets | None":
        """The epoch's per-grid-cell segment bitset cache, or ``None``
        when the engine runs without a spatial index.

        The vectorized ``spatial_candidates``/``brush_hit`` kernels
        union these precomputed masks instead of re-gathering CSR
        entries per query.  Caching *here* — on the snapshot's index —
        is what makes the lazy build safe: everything queryable on a
        snapshot is immutable for the epoch's lifetime, so concurrent
        lazy inserts can only ever write identical words (see
        :class:`~repro.core.spatial_index.CellBitsets`), and the cache
        dies with the epoch instead of surviving a rollover stale.
        """
        index = getattr(self.engine, "index", None)
        return None if index is None else index.bitsets()

    def __repr__(self) -> str:
        return (
            f"EpochSnapshot(epoch={self.epoch}, pins={self.refs.pins}, "
            f"retired={self.refs.sealed}, "
            f"store={'yes' if self.store is not None else 'no'})"
        )
