"""Shared-memory block lifecycle.

Thin wrapper over :mod:`multiprocessing.shared_memory` that fixes the
two operational hazards of raw ``SharedMemory`` blocks:

* **Attach-side resource tracking.**  CPython (< 3.13) registers a
  block with the ``resource_tracker`` on *attach* as well as on create,
  so a worker process that merely mapped a block "cleans it up" —
  unlinks it — when that worker exits, destroying the block for every
  other attached process and spraying "leaked shared_memory objects"
  warnings.  :func:`attach_block` suppresses attach-side registration
  (via ``track=False`` where available, else a guarded monkeypatch), so
  only the creating process ever owns the name.

* **Lifecycle discipline.**  Every block created or attached through
  this module lands in a per-process registry; :func:`live_blocks`
  exposes it (tests fail on leftovers), and an ``atexit`` sweep closes
  every mapping and unlinks blocks the exiting process *created* — the
  safety net that keeps a crashed test run from littering ``/dev/shm``.
  Ownership is pinned to the creating PID so a forked worker that
  inherited the owner's ``SharedBlock`` object never unlinks the
  parent's block at its own exit.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import Any

try:  # gate: some minimal builds ship multiprocessing without shm
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover - exercised only on exotic builds
    _shm_mod = None

__all__ = [
    "HAVE_SHARED_MEMORY",
    "BLOCK_PREFIX",
    "StoreAttachError",
    "StaleHandleError",
    "SharedBlock",
    "create_block",
    "attach_block",
    "live_blocks",
]

#: True when :mod:`multiprocessing.shared_memory` is importable; every
#: store entry point raises :class:`StoreAttachError` when it is not.
HAVE_SHARED_MEMORY = _shm_mod is not None

#: Prefix of every block name this module creates — lets tests (and
#: operators) scan ``/dev/shm`` for strays belonging to this package.
BLOCK_PREFIX = "repro_store_"


class StoreAttachError(RuntimeError):
    """A shared block could not be created, attached, or verified."""


class StaleHandleError(StoreAttachError):
    """A handle references a store the publisher has since outgrown
    (dataset mutated / store evicted); re-fetch a fresh handle."""


# Per-process registry of open blocks, keyed by object identity — one
# process may hold several mappings of the *same* name (a publisher plus
# in-process attach clients), so keying by name would let one mapping's
# close() untrack another's.  Guarded by a lock because pools attach
# from initializer threads.
_LIVE: dict[int, "SharedBlock"] = {}
_LIVE_LOCK = threading.Lock()
_ATTACH_LOCK = threading.Lock()


def _new_shared_memory(name: str | None, create: bool, size: int = 0) -> Any:
    """Construct a ``SharedMemory``, never registering attachments with
    the resource tracker (see module docstring)."""
    if _shm_mod is None:
        raise StoreAttachError(
            "multiprocessing.shared_memory is unavailable in this build"
        )
    if create:
        return _shm_mod.SharedMemory(name=name, create=True, size=size)
    try:  # Python >= 3.13 supports opting out directly
        return _shm_mod.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:  # the monkeypatch must not race other attaches
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return _shm_mod.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedBlock:
    """One named shared-memory block with explicit close/unlink.

    Parameters
    ----------
    name:
        Block name to attach to, or ``None`` to create a fresh block.
    size:
        Byte size when creating (ignored on attach).
    create:
        True to create (and own) the block, False to attach.
    """

    __slots__ = ("_shm", "_owner_pid", "_closed", "_unlinked")

    def __init__(self, name: str | None = None, *, size: int = 0,
                 create: bool = False) -> None:
        if create and size <= 0:
            raise ValueError("size must be > 0 when creating a block")
        try:
            self._shm = _new_shared_memory(name, create, size)
        except StoreAttachError:
            raise
        except FileNotFoundError as exc:
            raise StaleHandleError(
                f"shared block {name!r} no longer exists "
                "(unlinked by its publisher — stale handle?)"
            ) from exc
        except OSError as exc:
            raise StoreAttachError(
                f"cannot {'create' if create else 'attach'} shared block "
                f"{name!r}: {exc}"
            ) from exc
        # only the creating *process* may unlink; a forked child that
        # inherits this object must never tear the name down
        self._owner_pid = os.getpid() if create else -1
        self._closed = False
        self._unlinked = False
        with _LIVE_LOCK:
            _LIVE[id(self)] = self

    # Introspection -------------------------------------------------------
    @property
    def name(self) -> str:
        """The block's shared name (without the POSIX leading slash)."""
        return self._shm.name

    @property
    def size(self) -> int:
        """Mapped size in bytes."""
        return self._shm.size

    @property
    def buf(self) -> memoryview:
        """The writable memoryview over the mapping."""
        if self._closed:
            raise StoreAttachError(f"block {self.name!r} is closed")
        return self._shm.buf

    @property
    def owned(self) -> bool:
        """True when this process created (and may unlink) the block."""
        return self._owner_pid == os.getpid()

    @property
    def closed(self) -> bool:
        """True once the local mapping has been released."""
        return self._closed

    # Lifecycle -----------------------------------------------------------
    def close(self) -> bool:
        """Release this process's mapping (idempotent).

        Returns True when the mapping was (or already is) released;
        False when live zero-copy views still pin the buffer — the
        block then stays registered so leak checks can see it.
        """
        if self._closed:
            return True
        try:
            self._shm.close()
        except BufferError:
            return False  # numpy views still alive; retry after drop
        self._closed = True
        with _LIVE_LOCK:
            _LIVE.pop(id(self), None)
        return True

    def unlink(self) -> None:
        """Remove the block's name (creator only; idempotent).

        Attached (non-owner) blocks ignore the call — the publisher
        decides the data plane's lifetime, not its consumers.
        """
        if not self.owned or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # somebody beat us to it; make sure the
            try:  # tracker forgets the name so it cannot warn at exit
                from multiprocessing import resource_tracker

                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:
                pass

    def __enter__(self) -> "SharedBlock":
        """Context-manage the mapping: close (and unlink if owner) on exit."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Unlink (owner only) then close."""
        self.unlink()
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.size}B"
        role = "owner" if self.owned else "attached"
        return f"SharedBlock({self.name!r}, {state}, {role})"


def create_block(size: int, *, name: str | None = None) -> SharedBlock:
    """Create (and own) a new shared block of ``size`` bytes."""
    return SharedBlock(name, size=size, create=True)


def attach_block(name: str) -> SharedBlock:
    """Attach to an existing block; raises :class:`StaleHandleError`
    when the name no longer exists."""
    return SharedBlock(name, create=False)


def live_blocks() -> tuple[str, ...]:
    """Names of blocks this process currently holds open (sorted; a
    name repeats when a publisher and in-process attach clients map it
    simultaneously) — the leak-checking tests assert this empties out."""
    with _LIVE_LOCK:
        return tuple(sorted(block.name for block in _LIVE.values()))


def _atexit_sweep() -> None:
    """Safety net: at interpreter exit, close every mapping still open
    and unlink blocks this process created, so no test run (or crashed
    session) leaks ``/dev/shm`` segments or resource-tracker warnings."""
    with _LIVE_LOCK:
        leftovers = list(_LIVE.values())
    for block in leftovers:
        try:
            block.unlink()
            if not block.close():
                # Still pinned by zero-copy views at interpreter exit.
                # The kernel reclaims the mapping when the process dies,
                # so neuter the SharedMemory object instead of letting
                # its __del__ raise an ignored BufferError in final GC.
                block._shm._buf = None
                block._shm._mmap = None
        except Exception:
            pass


atexit.register(_atexit_sweep)
