"""Shared output framebuffer: pooled render workers write tiles in place.

The parallel frame renderer's ship-back problem: each pooled render job
returns its tile's (H, W, 3) float32 pixels through the executor's
result queue — a pickle copy per tile per eye, so at wall scale the
frame is serialized (and deserialized) once more on top of being
rendered.  This module gives the *output* plane the same treatment
:mod:`repro.store.arena` gives the input data plane: one shared block
sized to the whole frame, a small picklable :class:`FramebufferHandle`
addressing each tile/eye slot, workers attach once per pool lifetime
and write their slot pixels **in place**, and the parent assembles the
frame from the very same pages — no result ship-back at all.

Write discipline (what makes torn tiles impossible):

* every slot is written by **exactly one** render job, and the parent
  reads slots only after the supervised map has completed — there is
  never a concurrent reader/writer pair on a slot;
* renders are deterministic, so a retried job (crashed worker,
  disavowed corrupt attempt) simply overwrites its slot with identical
  bytes: a half-written slot left by a killed worker is healed by the
  retry, and the parity/chaos suites prove the assembled frame
  bit-identical to serial;
* fresh slots are zero-filled (POSIX shared memory guarantee), which
  is *not* the renderer's background color — byte-parity with the
  serial frame therefore proves every slot pixel was actually written;
* the creating process owns the block and unlinks it in a ``finally``
  as soon as the frame is assembled; attach-side clients never unlink
  (the same ownership rule as every block in :mod:`repro.store.shm`).
"""

from __future__ import annotations

import pickle
import struct
import time
import uuid
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro import obs
from repro.store.arena import ArraySpec, _aligned, _map_array
from repro.store.shm import (
    BLOCK_PREFIX,
    SharedBlock,
    StoreAttachError,
    attach_block,
    create_block,
)

__all__ = [
    "FramebufferHandle",
    "SharedFrameBuffer",
    "FrameBufferClient",
    "create_framebuffer",
    "attach_framebuffer",
]

_MAGIC = b"RFBUF1\n\x00"
_HEADER = struct.Struct("<8s32s24x")  # magic, uid hex, reserved → 64 B
_DTYPE = "<f4"


def _slot_key(col: int, row: int, eye: int) -> str:
    """TOC key of the (tile column, tile row, eye) slot."""
    return f"{col}:{row}:{eye}"


@dataclass(frozen=True)
class FramebufferHandle:
    """Small picklable address of a shared output framebuffer.

    Shipping one of these through the pool initializer replaces
    shipping rendered pixels back per job: the handle is a few hundred
    bytes regardless of frame size, and each worker attaches exactly
    once per pool lifetime.

    Attributes
    ----------
    block:
        Shared-memory block name to attach.
    uid:
        Unique id of this framebuffer build (fresh per frame render).
    slots:
        Array table-of-contents: one float32 ``(H, W, 3)`` entry per
        (tile, eye) render job, keyed ``"col:row:eye"``.
    """

    block: str
    uid: str
    slots: tuple[ArraySpec, ...]

    def spec(self, col: int, row: int, eye: int) -> ArraySpec:
        """The TOC entry of one tile/eye slot (``KeyError`` if absent)."""
        key = _slot_key(col, row, eye)
        for s in self.slots:
            if s.key == key:
                return s
        raise KeyError(key)

    @property
    def frame_bytes(self) -> int:
        """Total pixel payload addressed by the handle — what the
        pickle ship-back transport would have copied per frame."""
        return sum(s.nbytes for s in self.slots)

    @property
    def handle_bytes(self) -> int:
        """Size of this handle itself on the wire."""
        return len(pickle.dumps(self))


class _SlotMapping:
    """Shared slot-view plumbing of the publisher and attach client."""

    def __init__(self, block: SharedBlock, handle: FramebufferHandle) -> None:
        self._block = block
        self.handle = handle

    def slot(self, col: int, row: int, eye: int, *, writable: bool = False) -> np.ndarray:
        """Zero-copy ``(H, W, 3)`` float32 view of one tile/eye slot.

        Defaults to read-only (assembly); a render job requests its own
        slot ``writable=True`` and must write every pixel of it.
        """
        return _map_array(self._block, self.handle.spec(col, row, eye), writable=writable)

    @property
    def closed(self) -> bool:
        """True once this process's mapping has been released."""
        return self._block.closed

    def close(self) -> bool:
        """Release this process's mapping (idempotent).  False while
        live slot views still pin the buffer — drop them and retry."""
        return self._block.close()


class SharedFrameBuffer(_SlotMapping):
    """The creating process's side of a shared output framebuffer.

    Build via :func:`create_framebuffer`; ship :attr:`handle` to pool
    workers through the initializer; tear down with :meth:`unlink` +
    :meth:`close` (or use as a context manager).  The creating process
    owns the block: render workers attach via
    :func:`attach_framebuffer` and can never unlink it.
    """

    def unlink(self) -> None:
        """Remove the block's name (creator only; idempotent)."""
        self._block.unlink()

    def __enter__(self) -> "SharedFrameBuffer":
        """Context-manage the frame's lifetime (unlink + close on exit)."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Unlink the name and release the mapping."""
        self.unlink()
        self.close()

    def __repr__(self) -> str:
        return (
            f"SharedFrameBuffer({self.handle.block!r}, "
            f"{len(self.handle.slots)} slots, {self.handle.frame_bytes}B)"
        )


class FrameBufferClient(_SlotMapping):
    """One worker's attachment to a shared output framebuffer.

    Holds the mapping open for the worker's lifetime (the pool
    initializer attaches once; every batch then writes through the same
    pages).  Closing drops only this process's mapping — the parent's
    block and other workers are unaffected.
    """

    def __enter__(self) -> "FrameBufferClient":
        """Context-manage the attachment (close on exit)."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Release the client's mapping."""
        self.close()

    def __repr__(self) -> str:
        return f"FrameBufferClient({self.handle.block!r}, {len(self.handle.slots)} slots)"


def create_framebuffer(
    slots: Iterable[tuple[int, int, int, int, int]],
) -> SharedFrameBuffer:
    """Create (and own) a shared framebuffer with one slot per job.

    Parameters
    ----------
    slots:
        One ``(col, row, eye, height, width)`` tuple per render job.
        Each becomes a 16-byte-aligned float32 ``(height, width, 3)``
        slot in the block; slot pixels start zero-filled and must be
        fully written by the job that owns the slot.
    """
    t0 = time.perf_counter()
    specs: list[ArraySpec] = []
    seen: set[str] = set()
    cursor = _HEADER.size
    for col, row, eye, height, width in slots:
        if height < 1 or width < 1:
            raise ValueError(
                f"slot ({col}, {row}, eye {eye}) must be positive, got {width}x{height}"
            )
        key = _slot_key(int(col), int(row), int(eye))
        if key in seen:
            raise ValueError(f"duplicate framebuffer slot {key!r}")
        seen.add(key)
        cursor = _aligned(cursor)
        specs.append(ArraySpec(key, _DTYPE, (int(height), int(width), 3), cursor))
        cursor += specs[-1].nbytes
    if not specs:
        raise ValueError("a shared framebuffer needs at least one slot")
    uid = uuid.uuid4().hex
    block = create_block(cursor, name=f"{BLOCK_PREFIX}fb_{uid[:12]}")
    _HEADER.pack_into(block.buf, 0, _MAGIC, uid.encode("ascii"))
    handle = FramebufferHandle(block=block.name, uid=uid, slots=tuple(specs))
    obs.observe("framebuf.create_seconds", time.perf_counter() - t0)
    obs.counter_add("framebuf.creates", 1)
    return SharedFrameBuffer(block, handle)


def attach_framebuffer(handle: FramebufferHandle) -> FrameBufferClient:
    """Attach to a shared framebuffer and verify the handle against the
    block header.

    Raises
    ------
    StaleHandleError
        The block no longer exists (the parent already unlinked it).
    StoreAttachError
        The block exists but is not this framebuffer (bad magic, uid
        mismatch, truncated).
    """
    block = attach_block(handle.block)
    try:
        if block.size < _HEADER.size:
            raise StoreAttachError(
                f"block {handle.block!r} too small to be a framebuffer ({block.size}B)"
            )
        magic, uid = _HEADER.unpack_from(block.buf, 0)
        if magic != _MAGIC:
            raise StoreAttachError(
                f"block {handle.block!r} is not a shared framebuffer (bad magic)"
            )
        if uid.decode("ascii") != handle.uid:
            raise StoreAttachError(
                f"handle uid {handle.uid[:8]} does not match block "
                f"uid {uid.decode('ascii')[:8]} — stale frame handle"
            )
        need = max((s.offset + s.nbytes for s in handle.slots), default=0)
        if block.size < need:
            raise StoreAttachError(
                f"block {handle.block!r} truncated: {block.size}B < {need}B"
            )
    except Exception:
        block.close()
        obs.counter_add("framebuf.attach.failures", 1)
        raise
    obs.counter_add("framebuf.attaches", 1)
    return FrameBufferClient(block, handle)
