"""Shared-memory data plane and multi-session serving.

The package splits the system the way encube (Vohl et al.) splits a
cluster-driven display wall and Dataopsy (Hoque & Elmqvist) splits
aggregate query serving: a **shared immutable data plane** — one
resident copy of the packed trajectory arrays and spatial-index tables,
published once into ``multiprocessing.shared_memory`` — and **cheap
per-consumer state** on top of it.

* :mod:`repro.store.shm` — block lifecycle (create/attach/close/unlink,
  atexit safety net, leak registry).
* :mod:`repro.store.arena` — :class:`SharedArenaStore` (publish),
  :class:`StoreHandle` (the small picklable address workers receive
  instead of a pickled dataset), :func:`attach` → :class:`StoreClient`
  (zero-copy dataset / index / engine rebuilds).
* :mod:`repro.store.framebuf` — the *output* plane's counterpart:
  :func:`create_framebuffer` publishes one shared block sized to a
  whole wall frame, pooled render workers attach via
  :func:`attach_framebuffer` and write their tile slots in place, and
  the parent assembles the frame with no result ship-back.
* :mod:`repro.store.snapshot` — :class:`EpochSnapshot` (one immutable
  published epoch: dataset + engine + index + store) and the GIL-atomic
  pin/retire refcounts under it.
* :mod:`repro.store.service` — :class:`DatasetService` (registry of
  epoch snapshots with an atomically-published *active* one, store
  registry/eviction, epoch lifecycle) and :class:`SessionView`
  (per-user canvas/window/layout/journal, pinned to one snapshot), so
  N concurrent sessions query one resident copy **without ever taking
  the service lock on the read path**.
* :mod:`repro.store.ingest` — :class:`IngestBuffer` (thread-safe
  staging for streaming trajectories) and :class:`RolloverCoordinator`
  (two-phase epoch rollover: stage → validate → atomic swap), so the
  arena keeps serving while it grows.
"""

from repro.store.arena import (
    ArraySpec,
    SharedArenaStore,
    StoreClient,
    StoreHandle,
    attach,
)
from repro.store.framebuf import (
    FrameBufferClient,
    FramebufferHandle,
    SharedFrameBuffer,
    attach_framebuffer,
    create_framebuffer,
)
from repro.store.ingest import (
    IngestBatch,
    IngestBuffer,
    RolloverCoordinator,
    RolloverResult,
)
from repro.store.service import DatasetService, SessionView, SharedQueryEngine
from repro.store.snapshot import AtomicCounter, AtomicRefCount, EpochSnapshot
from repro.store.shm import (
    HAVE_SHARED_MEMORY,
    SharedBlock,
    StaleHandleError,
    StoreAttachError,
    attach_block,
    create_block,
    live_blocks,
)

__all__ = [
    "ArraySpec",
    "SharedArenaStore",
    "StoreClient",
    "StoreHandle",
    "attach",
    "FrameBufferClient",
    "FramebufferHandle",
    "SharedFrameBuffer",
    "attach_framebuffer",
    "create_framebuffer",
    "IngestBatch",
    "IngestBuffer",
    "RolloverCoordinator",
    "RolloverResult",
    "DatasetService",
    "SessionView",
    "SharedQueryEngine",
    "AtomicCounter",
    "AtomicRefCount",
    "EpochSnapshot",
    "HAVE_SHARED_MEMORY",
    "SharedBlock",
    "StaleHandleError",
    "StoreAttachError",
    "attach_block",
    "create_block",
    "live_blocks",
]
