"""The shared-memory arena store: one resident copy of the data plane.

A :class:`SharedArenaStore` materializes everything the query and
render paths read — the per-trajectory sample arrays, the packed
columnar segment view (:class:`~repro.trajectory.dataset.PackedSegments`),
and optionally the :class:`~repro.core.spatial_index.UniformGridIndex`
cell tables — **once**, into a single ``multiprocessing.shared_memory``
block.  Consumers receive a :class:`StoreHandle`: a small picklable,
epoch-tagged address (block name + array table-of-contents) that costs
O(handle bytes) to ship, against the O(dataset bytes) pickling of the
trajectories themselves.  :func:`attach` maps the block and rebuilds a
fully functional :class:`~repro.trajectory.dataset.TrajectoryDataset`
(and index, and engine) whose arrays are zero-copy views into the
shared pages — the encube/Dataopsy "shared immutable data plane, cheap
per-consumer state" split.

Block layout::

    [ 64-byte header: magic | uid | epoch ]
    [ 16-byte-aligned arrays, per the handle's ArraySpec TOC ]
    [ JSON metadata blob: name, traj metas ]

Blocks are written once at publish time and never mutated; dataset
mutation means a *new* store (new uid, new epoch) and eventual eviction
of the old one — attaching through an outdated handle fails loudly with
:class:`~repro.store.shm.StaleHandleError` instead of silently serving
old segments.
"""

from __future__ import annotations

import json
import pickle
import struct
import time
import uuid
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import obs
from repro.store.shm import (
    SharedBlock,
    StaleHandleError,
    StoreAttachError,
    attach_block,
    create_block,
)
from repro.trajectory.dataset import PackedSegments, TrajectoryDataset
from repro.trajectory.model import Trajectory, TrajectoryMeta

if TYPE_CHECKING:
    from repro.core.engine import CoordinatedBrushingEngine
    from repro.core.spatial_index import UniformGridIndex

__all__ = ["ArraySpec", "StoreHandle", "SharedArenaStore", "StoreClient", "attach"]

_MAGIC = b"RSTORE1\n"
_HEADER = struct.Struct("<8s32sq16x")  # magic, uid hex, epoch, reserved
_ALIGN = 16


@dataclass(frozen=True)
class ArraySpec:
    """Table-of-contents entry addressing one array inside the block."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        """Byte length of the addressed array."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class StoreHandle:
    """Small picklable, epoch-tagged address of a published store.

    Shipping one of these to a worker replaces pickling the dataset:
    the handle is a few hundred bytes regardless of how many segments
    the arena holds.

    Attributes
    ----------
    block:
        Shared-memory block name to attach.
    uid:
        Unique id of this store build (changes on every publish).
    epoch:
        The dataset's mutation epoch at publish time.
    name:
        The published dataset's name.
    n_traj / n_samples / n_segments:
        Cardinalities, for sanity checks and reporting.
    index_res:
        Grid resolution of the materialized spatial index, or ``None``
        when the store was published without one.
    arrays:
        Array table-of-contents (key → dtype/shape/offset).
    meta_span:
        (offset, length) of the JSON metadata blob inside the block.
    pyramid_meta:
        ``(res, n_tbuckets, levels)`` of the materialized summary
        pyramid, or ``None`` when published without one.  The shapes of
        every ``pyr_*`` TOC entry derive from this triple, so the
        handle stays a few hundred bytes.
    """

    block: str
    uid: str
    epoch: int
    name: str
    n_traj: int
    n_samples: int
    n_segments: int
    index_res: int | None
    arrays: tuple[ArraySpec, ...]
    meta_span: tuple[int, int]
    pyramid_meta: tuple | None = None

    @property
    def store_token(self) -> tuple:
        """Identity embedded into query-plan cache keys for datasets
        served from this store (uid + epoch: a republished or mutated
        store can never collide with cached stage outputs)."""
        return ("shm", self.uid, self.epoch)

    @property
    def payload_bytes(self) -> int:
        """Total bytes of shared array + metadata payload the handle
        addresses (what pickle-shipping would have copied per worker)."""
        return sum(a.nbytes for a in self.arrays) + self.meta_span[1]

    @property
    def handle_bytes(self) -> int:
        """Size of this handle itself on the wire."""
        return len(pickle.dumps(self))

    def spec(self, key: str) -> ArraySpec:
        """The TOC entry for ``key`` (raises ``KeyError`` if absent)."""
        for a in self.arrays:
            if a.key == key:
                return a
        raise KeyError(key)

    def has_array(self, key: str) -> bool:
        """True when the store materialized an array under ``key``."""
        return any(a.key == key for a in self.arrays)


def _aligned(offset: int) -> int:
    """Round ``offset`` up to the array alignment boundary."""
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArenaStore:
    """One resident, immutable copy of a dataset's columnar arrays.

    Build via :meth:`publish`; hand :attr:`handle` to consumers; tear
    down with :meth:`close` / :meth:`unlink` (or use as a context
    manager).  The publishing process owns the block: closing an
    attached :class:`StoreClient` never affects other consumers,
    unlinking is publisher-only.
    """

    def __init__(self, block: SharedBlock, handle: StoreHandle) -> None:
        self._block = block
        self.handle = handle

    # Publication ---------------------------------------------------------
    @classmethod
    def publish(
        cls,
        dataset: TrajectoryDataset,
        *,
        include_index: bool = True,
        index: "object | None" = None,
        index_res: int = 64,
        pyramid: "object | None" = None,
    ) -> "SharedArenaStore":
        """Materialize ``dataset`` (and optionally its spatial index
        and summary pyramid) into one shared block and return the store.

        Parameters
        ----------
        dataset:
            The trajectory collection to publish (must be non-empty).
        include_index:
            Also materialize the uniform-grid cell tables so attachers
            skip the index build entirely.
        index:
            A prebuilt :class:`~repro.core.spatial_index.UniformGridIndex`
            over ``dataset.packed()`` to reuse (e.g. the service
            engine's); built fresh when omitted and ``include_index``.
        index_res:
            Resolution for a fresh index build.
        pyramid:
            A prebuilt :class:`~repro.core.aggregate.SummaryPyramid`
            over ``dataset.packed()`` to materialize alongside the
            segments, so attachers rebuild it zero-copy from the shared
            tables (no re-summarization).  Omitted → the store has no
            pyramid and attached engines take the legacy route.
        """
        if len(dataset) == 0:
            raise ValueError("cannot publish an empty dataset")
        packed = dataset.packed()

        if include_index and index is None:
            from repro.core.spatial_index import UniformGridIndex

            try:
                index = UniformGridIndex(packed, index_res)
            except Exception:
                index = None  # publish without; attachers brute-force
        if index is not None and index.packed is not packed:
            raise ValueError("index was not built over this dataset's packed view")
        if pyramid is not None and pyramid.packed is not packed:
            raise ValueError("pyramid was not built over this dataset's packed view")

        n_traj = len(dataset)
        sample_offsets = np.zeros(n_traj + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter((t.n_samples for t in dataset), dtype=np.int64, count=n_traj),
            out=sample_offsets[1:],
        )
        n_samples = int(sample_offsets[-1])
        traj_ids = np.fromiter((t.traj_id for t in dataset), dtype=np.int64, count=n_traj)

        metas_blob = json.dumps(
            [t.meta.to_dict() for t in dataset], separators=(",", ":")
        ).encode("utf-8")

        # --- lay out the TOC ------------------------------------------------
        plan: list[tuple[str, str, tuple[int, ...]]] = [
            ("pos", "<f8", (n_samples, 2)),
            ("times", "<f8", (n_samples,)),
            ("sample_offsets", "<i8", (n_traj + 1,)),
            ("traj_ids", "<i8", (n_traj,)),
            ("seg_a", "<f8", (packed.n_segments, 2)),
            ("seg_b", "<f8", (packed.n_segments, 2)),
            ("seg_t0", "<f8", (packed.n_segments,)),
            ("seg_t1", "<f8", (packed.n_segments,)),
            ("seg_owner", "<i4", (packed.n_segments,)),
            ("seg_offsets", "<i8", (n_traj + 1,)),
        ]
        if index is not None:
            plan += [
                ("idx_entries", "<i8", (index.n_entries,)),
                ("idx_offsets", "<i8", (index.res * index.res + 1,)),
                ("idx_lo", "<f8", (2,)),
                ("idx_cell_size", "<f8", (2,)),
            ]
        if pyramid is not None:
            plan += [
                ("pyr_node_of", "<i4", (packed.n_segments,)),
                ("pyr_entries", "<i8", (packed.n_segments,)),
                ("pyr_offsets", "<i8", (pyramid.n_nodes + 1,)),
                ("pyr_bbox", "<f8", (pyramid.n_nodes, 4)),
                ("pyr_tstats", "<f8", (pyramid.n_nodes, 8)),
                ("pyr_bits", "<u8", (pyramid.n_cells, pyramid.n_words)),
                ("pyr_level_bbox", "<f8", (len(pyramid.level_bbox), 4)),
                ("pyr_lo", "<f8", (2,)),
                ("pyr_cell_size", "<f8", (2,)),
                ("pyr_traj_start", "<f8", (n_traj,)),
                ("pyr_traj_dur", "<f8", (n_traj,)),
            ]
        specs: list[ArraySpec] = []
        cursor = _HEADER.size
        for key, dtype, shape in plan:
            cursor = _aligned(cursor)
            specs.append(ArraySpec(key, dtype, shape, cursor))
            cursor += specs[-1].nbytes
        meta_offset = _aligned(cursor)
        total = meta_offset + len(metas_blob)

        uid = uuid.uuid4().hex
        block = create_block(total, name=f"repro_store_{uid[:16]}")
        handle = StoreHandle(
            block=block.name,
            uid=uid,
            epoch=dataset.epoch,
            name=dataset.name,
            n_traj=n_traj,
            n_samples=n_samples,
            n_segments=packed.n_segments,
            index_res=None if index is None else index.res,
            arrays=tuple(specs),
            meta_span=(meta_offset, len(metas_blob)),
            pyramid_meta=None if pyramid is None else (
                pyramid.res, pyramid.n_tbuckets, pyramid.levels
            ),
        )

        # --- fill the block -------------------------------------------------
        _HEADER.pack_into(
            block.buf, 0, _MAGIC, uid.encode("ascii"), int(dataset.epoch)
        )
        views = {s.key: _map_array(block, s, writable=True) for s in specs}
        for i, traj in enumerate(dataset):
            lo, hi = sample_offsets[i], sample_offsets[i + 1]
            views["pos"][lo:hi] = traj.positions
            views["times"][lo:hi] = traj.times
        views["sample_offsets"][:] = sample_offsets
        views["traj_ids"][:] = traj_ids
        views["seg_a"][:] = packed.a
        views["seg_b"][:] = packed.b
        views["seg_t0"][:] = packed.t0
        views["seg_t1"][:] = packed.t1
        views["seg_owner"][:] = packed.owner
        views["seg_offsets"][:] = packed.offsets
        if index is not None:
            views["idx_entries"][:] = index._entries
            views["idx_offsets"][:] = index._offsets
            views["idx_lo"][:] = index.lo
            views["idx_cell_size"][:] = index.cell_size
        if pyramid is not None:
            views["pyr_node_of"][:] = pyramid.node_of
            views["pyr_entries"][:] = pyramid.entries
            views["pyr_offsets"][:] = pyramid.offsets
            views["pyr_bbox"][:] = pyramid.bbox
            views["pyr_tstats"][:] = pyramid.tstats
            views["pyr_bits"][:] = pyramid.bits
            views["pyr_level_bbox"][:] = pyramid.level_bbox
            views["pyr_lo"][:] = pyramid.lo
            views["pyr_cell_size"][:] = pyramid.cell_size
            views["pyr_traj_start"][:] = pyramid.traj_start
            views["pyr_traj_dur"][:] = pyramid.traj_dur
        block.buf[meta_offset : meta_offset + len(metas_blob)] = metas_blob
        del views  # drop rw views so close() can release the mapping
        return cls(block, handle)

    # Introspection -------------------------------------------------------
    @property
    def uid(self) -> str:
        """Unique id of this store build."""
        return self.handle.uid

    @property
    def epoch(self) -> int:
        """Dataset mutation epoch captured at publish time."""
        return self.handle.epoch

    @property
    def nbytes(self) -> int:
        """Total size of the shared block."""
        return self._block.size

    @property
    def closed(self) -> bool:
        """True once the publisher's mapping is released."""
        return self._block.closed

    def __repr__(self) -> str:
        return (
            f"SharedArenaStore(uid={self.uid[:8]}, epoch={self.epoch}, "
            f"{self.handle.n_segments} segs, {self.nbytes}B)"
        )

    def validate(self) -> None:
        """Verify the published block against its handle.

        The second phase of a rollover's two-phase commit
        (:mod:`repro.store.ingest`): after staging and before the
        atomic swap, the coordinator re-checks that the block it is
        about to publish is exactly what the handle advertises —
        header (magic, uid, epoch), TOC geometry (aligned,
        non-overlapping, in-bounds offsets), cardinality cross-links
        (sample/segment offset tables sum to the advertised counts),
        and a parseable metadata blob.  Raises
        :class:`~repro.store.shm.StoreAttachError` on any mismatch so
        a corrupt stage aborts the rollover instead of being swapped
        in; the old epoch keeps serving.
        """
        h = self.handle
        if self._block.closed:
            raise StoreAttachError(f"store {h.uid[:8]}: block already closed")

        def fail(msg: str) -> "StoreAttachError":
            obs.counter_add("store.validate.failures", 1)
            return StoreAttachError(f"store {h.uid[:8]}: {msg}")

        magic, uid_hex, epoch = _HEADER.unpack_from(self._block.buf, 0)
        if magic != _MAGIC:
            raise fail(f"bad magic {magic!r}")
        if uid_hex.decode("ascii", "replace") != h.uid:
            raise fail("header uid does not match handle")
        if epoch != h.epoch:
            raise fail(f"header epoch {epoch} != handle epoch {h.epoch}")

        cursor = _HEADER.size
        for spec in h.arrays:
            if spec.offset % _ALIGN:
                raise fail(f"array {spec.key!r} offset {spec.offset} unaligned")
            if spec.offset < cursor:
                raise fail(f"array {spec.key!r} overlaps its predecessor")
            cursor = spec.offset + spec.nbytes
        meta_offset, meta_len = h.meta_span
        if meta_offset < cursor or meta_offset + meta_len > self._block.size:
            raise fail("metadata blob outside the block")

        sample_offsets = _map_array(self._block, h.spec("sample_offsets"))
        seg_offsets = _map_array(self._block, h.spec("seg_offsets"))
        try:
            if len(sample_offsets) != h.n_traj + 1 or len(seg_offsets) != h.n_traj + 1:
                raise fail("offset tables sized for a different n_traj")
            if int(sample_offsets[-1]) != h.n_samples:
                raise fail(
                    f"sample offsets end at {int(sample_offsets[-1])}, "
                    f"handle says {h.n_samples} samples"
                )
            if int(seg_offsets[-1]) != h.n_segments:
                raise fail(
                    f"segment offsets end at {int(seg_offsets[-1])}, "
                    f"handle says {h.n_segments} segments"
                )
        finally:
            del sample_offsets, seg_offsets

        try:
            metas = json.loads(
                bytes(self._block.buf[meta_offset : meta_offset + meta_len])
            )
        except ValueError as exc:
            raise fail(f"metadata blob is not valid JSON: {exc}") from exc
        if len(metas) != h.n_traj:
            raise fail(
                f"metadata lists {len(metas)} trajectories, handle says {h.n_traj}"
            )
        obs.counter_add("store.validates", 1)

    # Lifecycle -----------------------------------------------------------
    def close(self) -> bool:
        """Release the publisher's local mapping (consumers unaffected)."""
        return self._block.close()

    def unlink(self) -> None:
        """Remove the shared block's name; outstanding attachments keep
        their mapping, new attaches fail with a stale-handle error."""
        self._block.unlink()

    def __enter__(self) -> "SharedArenaStore":
        """Context-manage publisher lifetime (unlink + close on exit)."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Unlink the name and release the mapping."""
        self.unlink()
        self.close()


def _map_array(block: SharedBlock, spec: ArraySpec, *, writable: bool = False) -> np.ndarray:
    """A numpy view over one TOC entry of a block (zero-copy).

    Must go through ``np.frombuffer`` — it registers a real buffer
    export on the mapping, so ``block.close()`` refuses (returns False)
    while views are alive.  ``np.ndarray(buffer=...)`` keeps only a raw
    pointer: close() would then unmap under live views and any later
    access is a use-after-free.
    """
    dtype = np.dtype(spec.dtype)
    count = int(np.prod(spec.shape, dtype=np.int64))
    arr = np.frombuffer(
        block.buf, dtype=dtype, count=count, offset=spec.offset
    ).reshape(spec.shape)
    if not writable:
        arr.setflags(write=False)
    return arr


class StoreClient:
    """One process's zero-copy attachment to a published store.

    Lazily rebuilds the dataset / spatial index / engine as views into
    the shared pages.  :meth:`close` drops the client's references and
    releases the mapping — arrays handed out remain valid only while
    some attachment (here or elsewhere) keeps the pages mapped, so drop
    derived objects before closing.
    """

    def __init__(self, handle: StoreHandle, block: SharedBlock) -> None:
        self.handle = handle
        self._block = block
        self._dataset: TrajectoryDataset | None = None
        self._index = None
        self._pyramid = None

    # Zero-copy rebuilds --------------------------------------------------
    @property
    def dataset(self) -> TrajectoryDataset:
        """The attached dataset; every array is a view into the block."""
        if self._dataset is None:
            h = self.handle
            pos = _map_array(self._block, h.spec("pos"))
            times = _map_array(self._block, h.spec("times"))
            sample_offsets = _map_array(self._block, h.spec("sample_offsets"))
            traj_ids = _map_array(self._block, h.spec("traj_ids"))
            mo, ml = h.meta_span
            metas = json.loads(bytes(self._block.buf[mo : mo + ml]).decode("utf-8"))
            if len(metas) != h.n_traj:
                raise StoreAttachError(
                    f"store metadata lists {len(metas)} trajectories, "
                    f"handle says {h.n_traj}"
                )
            # from_validated: publish() wrote validated arrays, so the
            # attach path must not re-scan them (that would fault in the
            # whole mapping per worker and defeat the O(handle) cost)
            trajs = [
                Trajectory.from_validated(
                    pos[sample_offsets[i] : sample_offsets[i + 1]],
                    times[sample_offsets[i] : sample_offsets[i + 1]],
                    TrajectoryMeta.from_dict(metas[i]),
                    traj_id=int(traj_ids[i]),
                )
                for i in range(h.n_traj)
            ]
            packed = PackedSegments.from_arrays(
                a=_map_array(self._block, h.spec("seg_a")),
                b=_map_array(self._block, h.spec("seg_b")),
                t0=_map_array(self._block, h.spec("seg_t0")),
                t1=_map_array(self._block, h.spec("seg_t1")),
                owner=_map_array(self._block, h.spec("seg_owner")),
                offsets=_map_array(self._block, h.spec("seg_offsets")),
            )
            self._dataset = TrajectoryDataset.from_attached(
                trajs,
                packed,
                name=h.name,
                epoch=h.epoch,
                store_token=h.store_token,
            )
        return self._dataset

    def index(self) -> "UniformGridIndex | None":
        """The attached :class:`UniformGridIndex` rebuilt from the
        shared cell tables, or ``None`` when the store has no index."""
        if self.handle.index_res is None:
            return None
        if self._index is None:
            from repro.core.spatial_index import UniformGridIndex

            h = self.handle
            self._index = UniformGridIndex.from_tables(
                self.dataset.packed(),
                res=h.index_res,
                lo=_map_array(self._block, h.spec("idx_lo")).copy(),
                cell_size=_map_array(self._block, h.spec("idx_cell_size")).copy(),
                entries=_map_array(self._block, h.spec("idx_entries")),
                offsets=_map_array(self._block, h.spec("idx_offsets")),
            )
        return self._index

    def pyramid(self) -> "object | None":
        """The attached :class:`~repro.core.aggregate.SummaryPyramid`
        rebuilt zero-copy from the shared tables, or ``None`` when the
        store was published without one."""
        if self.handle.pyramid_meta is None:
            return None
        if self._pyramid is None:
            from repro.core.aggregate.pyramid import SummaryPyramid

            h = self.handle
            res, n_tbuckets, levels = h.pyramid_meta
            self._pyramid = SummaryPyramid.from_tables(
                self.dataset.packed(),
                res=res,
                n_tbuckets=n_tbuckets,
                levels=tuple(levels),
                lo=_map_array(self._block, h.spec("pyr_lo")).copy(),
                cell_size=_map_array(self._block, h.spec("pyr_cell_size")).copy(),
                node_of=_map_array(self._block, h.spec("pyr_node_of")),
                entries=_map_array(self._block, h.spec("pyr_entries")),
                offsets=_map_array(self._block, h.spec("pyr_offsets")),
                bbox=_map_array(self._block, h.spec("pyr_bbox")),
                tstats=_map_array(self._block, h.spec("pyr_tstats")),
                bits=_map_array(self._block, h.spec("pyr_bits")),
                level_bbox=_map_array(self._block, h.spec("pyr_level_bbox")),
                traj_start=_map_array(self._block, h.spec("pyr_traj_start")),
                traj_dur=_map_array(self._block, h.spec("pyr_traj_dur")),
            )
        return self._pyramid

    def engine(self, **engine_kwargs: Any) -> "CoordinatedBrushingEngine":
        """A :class:`CoordinatedBrushingEngine` over the attached
        dataset, reusing the shared index and pyramid tables (no
        rebuild).  Stores published without a pyramid yield a
        legacy-route engine."""
        from repro.core.engine import CoordinatedBrushingEngine

        index = self.index()
        if index is not None:
            engine_kwargs.setdefault("index", index)
        else:
            engine_kwargs.setdefault("use_index", False)
        pyramid = self.pyramid()
        if pyramid is not None:
            engine_kwargs.setdefault("pyramid", pyramid)
        return CoordinatedBrushingEngine(self.dataset, **engine_kwargs)

    # Lifecycle -----------------------------------------------------------
    def close(self) -> bool:
        """Drop rebuilt objects and release the mapping.

        Returns False when arrays handed out earlier are still alive
        (the mapping then stays open and registered — visible to leak
        checks — until those references drop)."""
        self._dataset = None
        self._index = None
        self._pyramid = None
        return self._block.close()

    def __enter__(self) -> "StoreClient":
        """Context-manage the attachment (close on exit)."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Release the client's mapping."""
        self.close()

    def __repr__(self) -> str:
        return f"StoreClient({self.handle.block!r}, epoch={self.handle.epoch})"


def attach(handle: StoreHandle) -> StoreClient:
    """Attach to a published store and verify the handle against the
    block header.

    Raises
    ------
    StaleHandleError
        The block no longer exists (publisher evicted/unlinked it) or
        its header epoch/uid disagrees with the handle.
    StoreAttachError
        The block exists but is not a store (corrupt / foreign block).
    """
    t_attach = time.perf_counter()
    block = attach_block(handle.block)
    try:
        if block.size < _HEADER.size:
            raise StoreAttachError(
                f"block {handle.block!r} too small to be a store ({block.size}B)"
            )
        magic, uid, epoch = _HEADER.unpack_from(block.buf, 0)
        if magic != _MAGIC:
            raise StoreAttachError(
                f"block {handle.block!r} is not a SharedArenaStore (bad magic)"
            )
        if uid.decode("ascii") != handle.uid or epoch != handle.epoch:
            raise StaleHandleError(
                f"handle (uid={handle.uid[:8]}, epoch={handle.epoch}) does not "
                f"match block (uid={uid.decode('ascii')[:8]}, epoch={epoch}); "
                "the store was republished — fetch a fresh handle"
            )
        need = max(
            max((s.offset + s.nbytes for s in handle.arrays), default=0),
            handle.meta_span[0] + handle.meta_span[1],
        )
        if block.size < need:
            raise StoreAttachError(
                f"block {handle.block!r} truncated: {block.size}B < {need}B"
            )
    except Exception:
        block.close()
        obs.counter_add("store.attach.failures", 1)
        raise
    obs.observe("store.attach.seconds", time.perf_counter() - t_attach)
    obs.counter_add("store.attaches", 1)
    return StoreClient(handle, block)
