"""Process-wide dataset service and per-user session views.

The multi-session split of the former one-user application object:

* :class:`DatasetService` owns what is expensive and immutable-ish —
  **one** dataset, **one** packed segment view, **one** spatial index,
  **one** stage cache — plus a registry of published shared-memory
  stores (:class:`~repro.store.arena.SharedArenaStore`) with epoch
  validation and eviction.  Everything queryable sits behind a
  re-entrant lock so any number of threads can drive sessions
  concurrently.

* :class:`SessionView` is what is cheap and per-user — a brush canvas,
  a time window, a layout/paging state, an event journal — layered over
  the service's shared engine.  N concurrent views return exactly what
  N independent single-user engines would, while the process holds
  exactly one copy of the packed arrays (the encube render-node model:
  shared resident data, per-session query state).

Epoch lifecycle (streaming ingest, :mod:`repro.store.ingest`): the
service keeps one :class:`_EpochState` per live dataset epoch.  A
session *pins* the active epoch at creation and keeps querying that
epoch's dataset/engine even after a rollover republishes the arena
under a new epoch — its results stay exact, merely flagged
``stale-epoch`` on the :class:`DegradationReport` so callers know a
fresher epoch exists (call :meth:`SessionView.rebind` to move up).  An
epoch's shared-memory block is never unlinked while a session pins it;
the last detach (explicit :meth:`SessionView.close` or garbage
collection) retires the epoch and releases the block.  The swap itself
(:meth:`DatasetService._swap_active`) is the commit point of the
two-phase rollover and is only ever called by
:class:`~repro.store.ingest.RolloverCoordinator` (reprolint RL008).

Typical multi-session use::

    service = DatasetService(dataset)
    alice = service.session(viewport)
    bob = service.session(viewport, layout_key="2")
    alice.brush(stroke); bob.set_time_window(TimeWindow.end(0.25))
    r_a, r_b = alice.run_query("red"), bob.run_query("red")

and for worker processes::

    handle = service.publish_store()          # O(dataset) once
    pool ships `handle`                       # O(handle bytes) per worker
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro import obs
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.result import QueryResult
from repro.core.session import ExplorationSession
from repro.display.viewport import Viewport
from repro.resilience.health import DegradationReport
from repro.store.arena import SharedArenaStore, StoreHandle
from repro.store.shm import StaleHandleError
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["SharedQueryEngine", "DatasetService", "SessionView"]


class SharedQueryEngine(CoordinatedBrushingEngine):
    """An engine safe to share across concurrent sessions.

    Identical results to the base engine; every query, plan, and cache
    operation additionally runs under one re-entrant lock so N threads
    hammering the shared :class:`StageCache` never interleave a stage
    lookup with an insertion.  The lock is re-entrant: a locked
    ``query_all_colors`` calling ``query`` per color nests cleanly.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        *,
        lock: "threading.RLock | None" = None,
        **engine_kwargs: Any,
    ) -> None:
        super().__init__(dataset, **engine_kwargs)
        self._lock = lock if lock is not None else threading.RLock()

    def query(self, *args: Any, **kwargs: Any) -> Any:
        """Serialized :meth:`CoordinatedBrushingEngine.query`.

        The time this thread spent waiting for the shared lock is
        published as the ``service.lock.wait_seconds`` gauge — the
        first signal to watch when N sessions start queueing behind
        one hot engine.
        """
        t_wait = time.perf_counter()
        with self._lock:
            obs.gauge_set(
                "service.lock.wait_seconds", time.perf_counter() - t_wait
            )
            return super().query(*args, **kwargs)

    def query_all_colors(self, *args: Any, **kwargs: Any) -> Any:
        """Serialized multi-color evaluation (holds the lock across all
        colors so the shared temporal mask is computed exactly once)."""
        t_wait = time.perf_counter()
        with self._lock:
            obs.gauge_set(
                "service.lock.wait_seconds", time.perf_counter() - t_wait
            )
            return super().query_all_colors(*args, **kwargs)

    def plan(self, *args: Any, **kwargs: Any) -> Any:
        """Serialized plan construction (reads the live index token)."""
        with self._lock:
            return super().plan(*args, **kwargs)

    def cache_stats(self) -> dict[str, float]:
        """Serialized cache-counter snapshot."""
        with self._lock:
            return super().cache_stats()

    def invalidate_cache(self) -> None:
        """Serialized cache flush."""
        with self._lock:
            return super().invalidate_cache()


@dataclass
class _EpochState:
    """One live dataset epoch and everything a pinned session needs.

    ``sessions`` counts the views currently pinned to this epoch; the
    epoch (and its shared-memory ``store``, if a rollover published
    one) is retired only when the count reaches zero and the epoch is
    no longer active.  Mutated only under the service lock.
    """

    epoch: int
    dataset: TrajectoryDataset
    engine: SharedQueryEngine
    store: SharedArenaStore | None = None
    sessions: int = 0


class SessionView(ExplorationSession):
    """One user's lightweight state over a shared :class:`DatasetService`.

    Owns everything mutable per user — canvas, time window, layout,
    paging, groups, event log, optional on-disk journal — and nothing
    heavy: the dataset, packed arrays, spatial index, and stage cache
    all live in (and are shared through) the service.  Created via
    :meth:`DatasetService.session`.

    The view pins the service's *active epoch* at creation: rollovers
    never yank the dataset out from under it.  Queries issued after a
    rollover still answer exactly over the pinned epoch, flagged
    ``stale-epoch`` on their degradation report; :meth:`rebind` moves
    the view to the current epoch.  The pin is released by
    :meth:`close` or, failing that, by garbage collection.
    """

    def __init__(
        self,
        service: "DatasetService",
        viewport: Viewport,
        *,
        layout_key: str = "3",
        journal_path: str | Path | None = None,
    ) -> None:
        self.service = service
        self.session_id = service._next_session_id()
        state = service._pin_active()
        self.epoch = state.epoch
        # the pin outlives mistakes: explicit close() releases it, and a
        # view dropped without close() releases it at collection time
        self._pin = weakref.finalize(
            self, service._detach_session, state.epoch
        )
        super().__init__(
            state.dataset,
            viewport,
            layout_key=layout_key,
            journal_path=journal_path,
            engine=state.engine,
        )

    def run_query(
        self, color: str = "red", *, deadline_s: float | None = None
    ) -> QueryResult:
        """Session-attributed query over the view's pinned epoch.

        The shared engine does the work; this view adds its
        ``session.queries`` accounting and — when a rollover has moved
        the service past the pinned epoch — marks the (still exact)
        result degraded with a ``stale-epoch`` event instead of
        failing, so a query racing a rollover always completes.
        """
        result = super().run_query(color, deadline_s=deadline_s)
        obs.counter_add("session.queries", 1, session=self.session_id)
        active = self.service.active_epoch()
        if active != self.epoch:
            report = result.degradation or DegradationReport()
            report.record(
                "stale-epoch",
                scope="session",
                action="served-old-epoch",
                detail=(
                    f"session pinned epoch {self.epoch}, service rolled "
                    f"over to {active}; rebind() to move up"
                ),
            )
            result = replace(result, degraded=True, degradation=report)
            obs.counter_add("session.stale_queries", 1, session=self.session_id)
        return result

    def rebind(self) -> bool:
        """Re-pin this view to the service's current active epoch.

        Returns True when the view actually moved (a rollover had
        happened); False when it was already current.  Moving re-derives
        the layout assignment over the new dataset and releases the old
        epoch's pin — if this view was the last one holding the old
        epoch, its shared block is unlinked.
        """
        state = self.service._pin_active()
        if state.epoch == self.epoch:
            self.service._detach_session(state.epoch)
            return False
        old_epoch = self.epoch
        old_pin = self._pin
        self.dataset = state.dataset
        self.engine = state.engine
        self.epoch = state.epoch
        self._pin = weakref.finalize(
            self, self.service._detach_session, state.epoch
        )
        self._reassign()
        old_pin()  # release the old epoch (idempotent one-shot)
        obs.counter_add("session.rebinds", 1, session=self.session_id)
        self._log("rebind", from_epoch=old_epoch, epoch=state.epoch)
        return True

    def close(self) -> None:
        """Close the journal and release this view's epoch pin.

        Idempotent.  After close the view is unusable: its epoch may be
        retired (and its shared block unlinked) as soon as the pin is
        released.  The dataset/engine references are dropped *before*
        the pin — if this view is the last holder of a closed service's
        epoch, the deferred client release fires inside ``self._pin()``
        and the mapped block can only be closed once no numpy views
        (which these attributes transitively hold) remain.
        """
        super().close()
        self.dataset = None  # type: ignore[assignment]
        self.engine = None  # type: ignore[assignment]
        self._pin()

    def __repr__(self) -> str:
        name = self.dataset.name if self.dataset is not None else "<closed>"
        return (
            f"SessionView(#{self.session_id}, dataset={name!r}, "
            f"epoch={self.epoch}, {len(self.events)} events)"
        )


class DatasetService:
    """Process-wide owner of one dataset's heavy, shareable state.

    Parameters
    ----------
    dataset:
        The trajectory collection to serve (non-empty).
    use_index / index_res:
        Spatial-index construction knobs for the shared engine.
    cache_capacity:
        Shared stage-cache size; sized up from the single-user default
        because N sessions' stages compete for it.
    keep_stores:
        How many published shared-memory stores to retain; publishing
        beyond this evicts (closes + unlinks) the oldest, and handles
        to evicted stores fail to attach with a stale-handle error.
        A store pinned by live sessions is deregistered but its block
        survives until the last session detaches.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        *,
        use_index: bool = True,
        index_res: int = 64,
        cache_capacity: int = 512,
        keep_stores: int = 2,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("cannot serve an empty dataset")
        if keep_stores < 1:
            raise ValueError("keep_stores must be >= 1")
        self.dataset = dataset
        self._lock = threading.RLock()
        self.engine = SharedQueryEngine(
            dataset,
            lock=self._lock,
            use_index=use_index,
            index_res=index_res,
            cache_capacity=cache_capacity,
        )
        self.keep_stores = int(keep_stores)
        self._engine_opts: dict[str, Any] = {
            "use_index": use_index, "index_res": index_res
        }
        self._stores: "OrderedDict[str, SharedArenaStore]" = OrderedDict()
        self._n_sessions = 0
        self._closed = False
        self._client: Any = None
        state = _EpochState(dataset.epoch, dataset, self.engine)
        self._epochs: dict[int, _EpochState] = {state.epoch: state}
        self._active_epoch = state.epoch

    # Construction helpers -------------------------------------------------
    @classmethod
    def from_handle(cls, handle: StoreHandle, **service_kwargs: Any) -> "DatasetService":
        """A service over a store *another* process published.

        Attaches zero-copy and reuses the shared index tables, so a
        render/query node process reaches serving state in O(1) data
        movement.  The attachment stays open for the service's
        lifetime; :meth:`close` releases it — deferred, if sessions are
        still pinned, until the last one detaches (the mapping is what
        their arrays point into).
        """
        from repro.store.arena import attach

        client = attach(handle)
        service_kwargs.pop("use_index", None)
        index = client.index()
        service = cls.__new__(cls)
        service.dataset = client.dataset
        service._lock = threading.RLock()
        service.engine = SharedQueryEngine(
            client.dataset,
            lock=service._lock,
            index=index,
            use_index=index is not None,
            **service_kwargs,
        )
        service.keep_stores = 1
        service._engine_opts = {
            "use_index": index is not None,
            "index_res": handle.index_res or 64,
        }
        service._stores = OrderedDict()
        service._n_sessions = 0
        service._closed = False
        service._client = client
        state = _EpochState(client.dataset.epoch, client.dataset, service.engine)
        service._epochs = {state.epoch: state}
        service._active_epoch = state.epoch
        return service

    # Sessions -------------------------------------------------------------
    def session(
        self,
        viewport: Viewport | None = None,
        *,
        layout_key: str = "3",
        journal_path: str | Path | None = None,
    ) -> SessionView:
        """Open a new lightweight per-user session view.

        ``viewport`` defaults to the paper's 2/3-surface wall preset
        (the same default :class:`~repro.app.TrajectoryExplorer` uses).
        The view pins the current active epoch until closed/collected.
        """
        self._check_open()
        if viewport is None:
            from repro.display.presets import CYBER_COMMONS, paper_viewport

            viewport = paper_viewport(CYBER_COMMONS)
        view = SessionView(
            self, viewport, layout_key=layout_key, journal_path=journal_path
        )
        obs.counter_add("service.sessions.opened", 1)
        return view

    def _next_session_id(self) -> int:
        """Service-scoped session ids (1, 2, ...): two independent
        services number their sessions identically, so replaying a
        recorded session into a fresh explorer reproduces its state
        byte-for-byte (``status()`` includes the id)."""
        with self._lock:
            self._n_sessions += 1
            return self._n_sessions

    @property
    def n_sessions(self) -> int:
        """Number of session views opened over this service."""
        with self._lock:
            return self._n_sessions

    # Epoch lifecycle --------------------------------------------------------
    def active_epoch(self) -> int:
        """The epoch new sessions pin (bumped by each rollover swap)."""
        with self._lock:
            return self._active_epoch

    def _pin_active(self) -> _EpochState:
        """Atomically snapshot the active epoch state and pin it.

        The (dataset, engine, epoch) triple is read under the lock so a
        session can never observe a half-swapped service; the returned
        state's block cannot be unlinked until :meth:`_detach_session`
        balances this pin.
        """
        with self._lock:
            state = self._epochs[self._active_epoch]
            state.sessions += 1
            return state

    def _detach_session(self, epoch: int) -> None:
        """Release one session's pin on ``epoch``.

        The last pin out retires a non-active epoch (unlinking its
        store if it is no longer registered) and — when the service is
        closed — completes any deferred client release once no session
        anywhere still needs the mapping.
        """
        victims: list[SharedArenaStore] = []
        release_client: Any = None
        with self._lock:
            state = self._epochs.get(epoch)
            if state is not None:
                state.sessions = max(0, state.sessions - 1)
                if state.sessions == 0 and (
                    epoch != self._active_epoch or self._closed
                ):
                    victims = self._retire_locked(state)
            # drop the frame's ref before any client release below —
            # a live state would pin the mapping's buffer open
            del state
            if self._closed and self._client is not None and not any(
                s.sessions for s in self._epochs.values()
            ):
                release_client = self._client
                # drop every (now unpinned) epoch state too: their
                # datasets/engines hold numpy views into the mapping,
                # which would keep the block from closing
                self._epochs.clear()
                self.engine = None  # type: ignore[assignment]
                self.dataset = None  # type: ignore[assignment]
                self._client = None
        for store in victims:
            store.unlink()
            store.close()
        if release_client is not None:
            release_client.close()
            obs.counter_add("service.close.completed", 1)

    def _retire_locked(self, state: _EpochState) -> list[SharedArenaStore]:
        """Drop one epoch state; returns stores to unlink outside the
        lock (only a store no longer in the registry — registered
        stores are still attachable and fall to normal eviction)."""
        with self._lock:
            self._epochs.pop(state.epoch, None)
            store = state.store
            if store is not None and store.uid not in self._stores:
                return [store]
        return []

    def _store_pinned_locked(self, uid: str) -> bool:
        """Is some live session pinned to the epoch served by ``uid``?"""
        with self._lock:
            return any(
                st.sessions > 0
                and st.store is not None
                and st.store.uid == uid
                for st in self._epochs.values()
            )

    def _evict_overflow_locked(self) -> tuple[list[SharedArenaStore], int]:
        """Deregister stores beyond ``keep_stores`` (oldest first).

        Returns (victims to unlink outside the lock, count deferred):
        a store pinned by live sessions is deregistered — its handle
        stops validating — but its block survives, referenced by the
        pinning epoch state, until the last session detaches.
        """
        victims: list[SharedArenaStore] = []
        deferred = 0
        with self._lock:
            while len(self._stores) > self.keep_stores:
                uid, old = self._stores.popitem(last=False)
                if self._store_pinned_locked(uid):
                    deferred += 1
                else:
                    victims.append(old)
        return victims, deferred

    def _swap_active(
        self,
        dataset: TrajectoryDataset,
        engine: SharedQueryEngine,
        store: SharedArenaStore | None = None,
    ) -> int:
        """Commit point of a rollover: atomically publish a new epoch.

        **Only** :class:`~repro.store.ingest.RolloverCoordinator` may
        call this (reprolint RL008): the coordinator owns the staging
        and validation phases that make the swap safe.  Under the lock:
        the staged (dataset, engine, store) become the active epoch,
        zero-session old epochs retire, and the store registry evicts
        overflow — in-flight sessions keep their pinned epoch and
        finish there.  Slow work (unlinking) happens outside the lock.
        """
        t_swap = time.perf_counter()
        victims: list[SharedArenaStore] = []
        with self._lock:
            self._check_open()
            epoch = dataset.epoch
            if epoch <= self._active_epoch:
                raise ValueError(
                    f"rollover epoch {epoch} must exceed active epoch "
                    f"{self._active_epoch}"
                )
            self._epochs[epoch] = _EpochState(epoch, dataset, engine, store)
            if store is not None:
                self._stores[store.uid] = store
            self.dataset = dataset
            self.engine = engine
            self._active_epoch = epoch
            for old in [
                s
                for s in list(self._epochs.values())
                if s.epoch != epoch and s.sessions == 0
            ]:
                victims.extend(self._retire_locked(old))
            overflow, deferred = self._evict_overflow_locked()
            victims.extend(overflow)
        obs.observe("rollover.swap_seconds", time.perf_counter() - t_swap)
        if deferred:
            obs.counter_add("store.evict.deferred", deferred)
        for old_store in victims:
            old_store.unlink()
            old_store.close()
        return epoch

    def _engine_for_epoch(self, dataset: TrajectoryDataset) -> SharedQueryEngine:
        """Build a successor-epoch engine sharing this service's lock
        and stage cache (epoch-tagged keys keep entries disjoint).

        The expensive part — packing + index build — runs outside the
        lock; only the cache/options snapshot is serialized.
        """
        with self._lock:
            cache = self.engine.cache
            opts = dict(self._engine_opts)
        return SharedQueryEngine(dataset, lock=self._lock, cache=cache, **opts)

    # Store registry ---------------------------------------------------------
    def publish_store(self, *, include_index: bool = True) -> StoreHandle:
        """Publish (or reuse) a shared-memory store of the current
        dataset epoch and return its handle.

        Idempotent per epoch: repeated calls while the dataset is
        unchanged return the same handle.  After a mutation, a fresh
        store is materialized and old ones age out of the registry
        (evicted beyond ``keep_stores`` — their handles then fail to
        attach rather than serving stale segments).
        """
        self._check_open()
        victims: list[SharedArenaStore] = []
        deferred = 0
        with self._lock:
            epoch = self.dataset.epoch
            handle: StoreHandle | None = None
            for store in reversed(self._stores.values()):
                if store.epoch == epoch:
                    handle = store.handle
                    break
            if handle is None:
                index = self.engine.index if include_index else None
                if index is not None and index.packed is not self.dataset.packed():
                    # the dataset mutated since the engine bound its index;
                    # let publish() build a fresh one over the current epoch
                    index = None
                t_pub = time.perf_counter()
                store = SharedArenaStore.publish(
                    self.dataset,
                    include_index=include_index,
                    index=index,
                )
                obs.observe("store.publish.seconds", time.perf_counter() - t_pub)
                obs.counter_add("store.publishes", 1)
                self._stores[store.uid] = store
                handle = store.handle
                victims, deferred = self._evict_overflow_locked()
        for old in victims:
            old.unlink()
            old.close()
        if deferred:
            obs.counter_add("store.evict.deferred", deferred)
        return handle

    def stores(self) -> tuple[StoreHandle, ...]:
        """Handles of every store currently registered (oldest first)."""
        with self._lock:
            return tuple(s.handle for s in self._stores.values())

    def validate_handle(self, handle: StoreHandle) -> None:
        """Check a handle against the live registry and dataset epoch.

        Raises :class:`~repro.store.shm.StaleHandleError` when the
        handle's store was evicted or the dataset has mutated past the
        handle's epoch — callers should re-fetch via
        :meth:`publish_store`.
        """
        with self._lock:
            if handle.uid not in self._stores:
                raise StaleHandleError(
                    f"store {handle.uid[:8]} is not registered here "
                    "(evicted or foreign); re-publish"
                )
            if handle.epoch != self.dataset.epoch:
                raise StaleHandleError(
                    f"handle epoch {handle.epoch} != dataset epoch "
                    f"{self.dataset.epoch}: dataset mutated after publish"
                )

    def evict_store(
        self, uid: str, *, degradation: DegradationReport | None = None
    ) -> bool:
        """Explicitly unlink and drop one registered store by uid;
        returns True when something was evicted.

        Refuses (returns False, bumps ``store.evict.refused``, records
        on ``degradation`` when given) while live sessions are pinned
        to the store's epoch — evicting would unlink a block those
        sessions' epoch contract says stays attachable until they
        detach.
        """
        pinned = False
        with self._lock:
            store = self._stores.get(uid)
            if store is None:
                return False
            if self._store_pinned_locked(uid):
                pinned = True
            else:
                self._stores.pop(uid)
        if pinned:
            obs.counter_add("store.evict.refused", 1)
            if degradation is not None:
                degradation.record(
                    "evict-refused",
                    scope="session",
                    action="skipped",
                    detail=f"store {uid[:8]} pinned by live sessions",
                )
            return False
        store.unlink()
        store.close()
        return True

    # Introspection ----------------------------------------------------------
    def stats(self) -> dict:
        """Service health: sessions, shared-cache counters, stores."""
        with self._lock:
            return {
                "dataset": self.dataset.name,
                "n_traj": len(self.dataset),
                "epoch": self.dataset.epoch,
                "active_epoch": self._active_epoch,
                "epochs": {
                    e: s.sessions for e, s in sorted(self._epochs.items())
                },
                "sessions": self._n_sessions,
                "stores": [s.uid[:8] for s in self._stores.values()],
                "store_bytes": sum(s.nbytes for s in self._stores.values()),
                "cache": self.engine.cache_stats(),
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"DatasetService({self.dataset.name!r}, "
                f"sessions={self._n_sessions}, stores={len(self._stores)}, "
                f"epoch={self._active_epoch})"
            )

    # Lifecycle --------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("DatasetService is closed")

    def close(self) -> None:
        """Unlink and release every published store (idempotent); the
        in-process engine and existing sessions stay usable.

        Stores pinned by live sessions are deregistered now but
        unlinked only when their last session detaches; likewise a
        ``from_handle`` client mapping (the pages pinned sessions'
        arrays point into) is released on the final detach rather than
        yanked mid-query.
        """
        if self._closed:
            return
        self._closed = True
        victims: list[SharedArenaStore] = []
        deferred = 0
        release_client: Any = None
        with self._lock:
            doomed: "OrderedDict[str, SharedArenaStore]" = OrderedDict(self._stores)
            self._stores.clear()
            for e in [
                e for e, s in self._epochs.items() if s.sessions == 0
            ]:
                st = self._epochs.pop(e)
                if st.store is not None:
                    doomed.setdefault(st.store.uid, st.store)
                # drop the frame's ref: the state's shm-backed arrays
                # must be dead before the client mapping is released
                del st
            pinned_uids = {
                st.store.uid
                for st in self._epochs.values()
                if st.sessions > 0 and st.store is not None
            }
            victims = [s for uid, s in doomed.items() if uid not in pinned_uids]
            deferred = len(doomed) - len(victims)
            if self._client is not None and not any(
                s.sessions for s in self._epochs.values()
            ):
                release_client = self._client
                # epoch states hold shm-backed arrays; clearing them is
                # what lets the client's block actually close
                self._epochs.clear()
                self.engine = None  # type: ignore[assignment]
                self.dataset = None  # type: ignore[assignment]
                self._client = None
        for store in victims:
            store.unlink()
            store.close()
        if deferred:
            obs.counter_add("service.close.deferred", deferred)
        if release_client is not None:
            release_client.close()

    def __enter__(self) -> "DatasetService":
        """Context-manage the service (close on exit)."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Unlink published stores and release attachments."""
        self.close()
