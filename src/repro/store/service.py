"""Process-wide dataset service and per-user session views.

The multi-session split of the former one-user application object:

* :class:`DatasetService` owns what is expensive and immutable-ish —
  **one** dataset, **one** packed segment view, **one** spatial index,
  **one** sharded stage cache — published as immutable per-epoch
  :class:`~repro.store.snapshot.EpochSnapshot` objects, plus a registry
  of shared-memory stores (:class:`~repro.store.arena.SharedArenaStore`)
  with epoch validation and eviction.

* :class:`SessionView` is what is cheap and per-user — a brush canvas,
  a time window, a layout/paging state, an event journal — layered over
  a pinned epoch snapshot.  N concurrent views return exactly what N
  independent single-user engines would, while the process holds
  exactly one copy of the packed arrays (the encube render-node model:
  shared resident data, per-session query state).

Lock discipline (the multi-tenant tentpole).  **Queries never take the
service lock.**  Everything a query reads is epoch-immutable between
publishes — the dataset, the packed arrays, the spatial index, the
read-only arena views — so the read path is:

1. resolve the active snapshot with one atomic attribute read
   (``service._active``; sessions do this once, at pin time);
2. run the engine against it lock-free (per-call state on the stack,
   stage outputs through the thread-safe sharded
   :class:`~repro.core.plan.cache.ShardedStageCache`).

The service's re-entrant lock survives **only for mutations**: store
publish/evict, epoch rollover (the atomic snapshot swap), and session
lifecycle registry bookkeeping.  Pin/retire accounting itself is
lock-free (GIL-atomic refcounts, :mod:`repro.store.snapshot`), so even
session open/rebind touches the lock only to read the snapshot
registry.  Reprolint RL003 machine-checks both halves: the query-path
methods must not acquire the lock, and registry mutations must happen
under it.

Epoch lifecycle (streaming ingest, :mod:`repro.store.ingest`): a
session *pins* the active snapshot at creation and keeps querying that
epoch's dataset/engine even after a rollover republishes the arena
under a new epoch — its results stay exact, merely flagged
``stale-epoch`` on the :class:`DegradationReport` so callers know a
fresher epoch exists (call :meth:`SessionView.rebind` to move up).  An
epoch's shared-memory block is never unlinked while a session pins it;
the last unpin (explicit :meth:`SessionView.close` or garbage
collection) retires the snapshot — exactly once, via the sealed-zero
refcount — and releases the block.  The swap itself
(:meth:`DatasetService._swap_active`) is the commit point of the
two-phase rollover and is only ever called by
:class:`~repro.store.ingest.RolloverCoordinator` (reprolint RL008).

Typical multi-session use::

    service = DatasetService(dataset)
    alice = service.session(viewport)
    bob = service.session(viewport, layout_key="2")
    alice.brush(stroke); bob.set_time_window(TimeWindow.end(0.25))
    r_a, r_b = alice.run_query("red"), bob.run_query("red")

and for worker processes::

    handle = service.publish_store()          # O(dataset) once
    pool ships `handle`                       # O(handle bytes) per worker
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Any

from repro import obs
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.plan.cache import ShardedStageCache
from repro.core.result import QueryResult
from repro.core.session import ExplorationSession
from repro.display.viewport import Viewport
from repro.resilience.health import DegradationReport
from repro.store.arena import SharedArenaStore, StoreHandle
from repro.store.shm import StaleHandleError
from repro.store.snapshot import AtomicCounter, EpochSnapshot
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["SharedQueryEngine", "DatasetService", "SessionView"]


class SharedQueryEngine(CoordinatedBrushingEngine):
    """An engine safe to share across concurrent sessions — lock-free.

    Identical results to the base engine; the difference is purely the
    concurrency contract.  Queries take **no lock**: the dataset,
    packed arrays, and spatial index are immutable after construction,
    every per-query intermediate lives on the calling thread's stack,
    and stage outputs flow through a thread-safe
    :class:`~repro.core.plan.cache.ShardedStageCache` whose stripes are
    the only (micro, bounded) critical sections on the path.  N threads
    hammering one engine interleave freely and each observes exactly
    what a private engine would have computed.

    (Before the snapshot refactor this class serialized every query
    behind the service RLock — the ~24x 8-session wall-clock penalty
    BENCH_Q3 measured.  The ``service.lock.wait_seconds`` gauge that
    tracked that queueing is gone with the lock; the
    ``service.snapshot.*`` family replaces it.)

    Unlike the single-user base engine, the shared engine defaults to
    **aggregate-first** query planning (``use_aggregate=True``): the
    multi-tenant service is the production path where dataset scale
    dominates, and the summary pyramid's build cost amortizes over
    every session.  Pass ``use_aggregate=False`` to pin the legacy
    per-segment route (results are bit-identical either way).
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        *,
        cache: ShardedStageCache | None = None,
        cache_capacity: int = 512,
        cache_shards: int = 8,
        **engine_kwargs: Any,
    ) -> None:
        if cache is None:
            cache = ShardedStageCache(cache_capacity, shards=cache_shards)
        engine_kwargs.setdefault("use_aggregate", True)
        super().__init__(dataset, cache=cache, **engine_kwargs)


class SessionView(ExplorationSession):
    """One user's lightweight state over a shared :class:`DatasetService`.

    Owns everything mutable per user — canvas, time window, layout,
    paging, groups, event log, optional on-disk journal — and nothing
    heavy: the dataset, packed arrays, spatial index, and stage cache
    all live in (and are shared through) the pinned epoch snapshot.
    Created via :meth:`DatasetService.session`.

    The view pins the service's *active snapshot* at creation (one
    atomic reference read + one GIL-atomic refcount increment — no
    lock): rollovers never yank the dataset out from under it.  Queries
    issued after a rollover still answer exactly over the pinned epoch,
    flagged ``stale-epoch`` on their degradation report;
    :meth:`rebind` moves the view to the current snapshot.  The pin is
    released by :meth:`close` or, failing that, by garbage collection.
    """

    def __init__(
        self,
        service: "DatasetService",
        viewport: Viewport,
        *,
        layout_key: str = "3",
        journal_path: str | Path | None = None,
    ) -> None:
        self.service = service
        self.session_id = service._next_session_id()
        snapshot = service._pin_active()
        self._snapshot: EpochSnapshot | None = snapshot
        self.epoch = snapshot.epoch
        # the pin outlives mistakes: explicit close() releases it, and a
        # view dropped without close() releases it at collection time.
        # The finalizer carries only the epoch *number* — holding the
        # snapshot object there would pin its arrays (and a from_handle
        # client mapping) open past the release.
        self._pin = weakref.finalize(
            self, service._detach_session, snapshot.epoch
        )
        # journal_durable=False: the service-tier journal is an audit
        # trail, not the system of record, and replay tolerates a torn
        # tail — a per-query fsync on the lock-free path is the exact
        # blocking call RL009 exists to catch (the rule's allowlist on
        # SessionJournal.append documents this flag; see DESIGN.md §14)
        super().__init__(
            snapshot.dataset,
            viewport,
            layout_key=layout_key,
            journal_path=journal_path,
            journal_durable=False,
            engine=snapshot.engine,
        )

    def run_query(
        self, color: str = "red", *, deadline_s: float | None = None
    ) -> QueryResult:
        """Session-attributed query over the view's pinned snapshot.

        Entirely lock-free: the pinned snapshot's engine does the work,
        and the staleness probe is one atomic read of the service's
        active snapshot.  When a rollover has moved the service past
        the pinned epoch the (still exact) result is marked degraded
        with a ``stale-epoch`` event instead of failing, so a query
        racing a rollover always completes.
        """
        result = super().run_query(color, deadline_s=deadline_s)
        obs.counter_add("session.queries", 1, session=self.session_id)
        obs.counter_add("service.snapshot.queries", 1, epoch=self.epoch)
        active = self.service.active_epoch()
        if active != self.epoch:
            report = result.degradation or DegradationReport()
            report.record(
                "stale-epoch",
                scope="session",
                action="served-old-epoch",
                detail=(
                    f"session pinned epoch {self.epoch}, service rolled "
                    f"over to {active}; rebind() to move up"
                ),
            )
            result = replace(result, degraded=True, degradation=report)
            obs.counter_add("session.stale_queries", 1, session=self.session_id)
        return result

    def rebind(self) -> bool:
        """Re-pin this view to the service's current active snapshot.

        Returns True when the view actually moved (a rollover had
        happened); False when it was already current.  Moving re-derives
        the layout assignment over the new dataset and releases the old
        snapshot's pin — if this view was the last one holding the old
        epoch, its shared block is unlinked.
        """
        snapshot = self.service._pin_active()
        if snapshot.epoch == self.epoch:
            self.service._detach_session(snapshot.epoch)
            return False
        old_epoch = self.epoch
        old_pin = self._pin
        self._snapshot = snapshot
        self.dataset = snapshot.dataset
        self.engine = snapshot.engine
        self.epoch = snapshot.epoch
        self._pin = weakref.finalize(
            self, self.service._detach_session, snapshot.epoch
        )
        self._reassign()
        old_pin()  # release the old epoch (idempotent one-shot)
        obs.counter_add("session.rebinds", 1, session=self.session_id)
        self._log("rebind", from_epoch=old_epoch, epoch=snapshot.epoch)
        return True

    def close(self) -> None:
        """Close the journal and release this view's snapshot pin.

        Idempotent.  After close the view is unusable: its epoch may be
        retired (and its shared block unlinked) as soon as the pin is
        released.  The dataset/engine/snapshot references are dropped
        *before* the pin — if this view is the last holder of a closed
        service's epoch, the deferred client release fires inside
        ``self._pin()`` and the mapped block can only be closed once no
        numpy views (which these attributes transitively hold) remain.
        """
        super().close()
        self.dataset = None  # type: ignore[assignment]
        self.engine = None  # type: ignore[assignment]
        self._snapshot = None
        self._pin()

    def __repr__(self) -> str:
        name = self.dataset.name if self.dataset is not None else "<closed>"
        return (
            f"SessionView(#{self.session_id}, dataset={name!r}, "
            f"epoch={self.epoch}, {len(self.events)} events)"
        )


class DatasetService:
    """Process-wide owner of one dataset's heavy, shareable state.

    Parameters
    ----------
    dataset:
        The trajectory collection to serve (non-empty).
    use_index / index_res:
        Spatial-index construction knobs for the shared engine.
    cache_capacity:
        Shared stage-cache size; sized up from the single-user default
        because N sessions' stages compete for it.
    cache_shards:
        Stripe count of the shared :class:`ShardedStageCache`; more
        shards, less contention between concurrent sessions' stage
        lookups.
    keep_stores:
        How many published shared-memory stores to retain; publishing
        beyond this evicts (closes + unlinks) the oldest, and handles
        to evicted stores fail to attach with a stale-handle error.
        A store pinned by live sessions is deregistered but its block
        survives until the last session detaches.

    Attributes
    ----------
    dataset / engine:
        Read-only views of the *active snapshot's* dataset and engine.
        They cannot be assigned — retargeting the service goes through
        :meth:`_swap_active` (rollover) only, which is what keeps the
        active reference a single atomic publish (reprolint RL008).
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        *,
        use_index: bool = True,
        index_res: int = 64,
        cache_capacity: int = 512,
        cache_shards: int = 8,
        keep_stores: int = 2,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("cannot serve an empty dataset")
        if keep_stores < 1:
            raise ValueError("keep_stores must be >= 1")
        self._lock = threading.RLock()
        engine = SharedQueryEngine(
            dataset,
            use_index=use_index,
            index_res=index_res,
            cache_capacity=cache_capacity,
            cache_shards=cache_shards,
        )
        self.keep_stores = int(keep_stores)
        self._engine_opts: dict[str, Any] = {
            "use_index": use_index, "index_res": index_res
        }
        self._stores: "OrderedDict[str, SharedArenaStore]" = OrderedDict()
        self._n_sessions = 0
        self._closed = False
        self._client: Any = None
        self._pin_total = AtomicCounter()
        snapshot = EpochSnapshot(dataset.epoch, dataset, engine)
        self._snapshots: dict[int, EpochSnapshot] = {snapshot.epoch: snapshot}
        self._active: EpochSnapshot | None = snapshot
        obs.counter_add("service.snapshot.published", 1)
        obs.gauge_set("service.snapshot.active_epoch", float(snapshot.epoch))
        obs.gauge_set("service.snapshot.live", 1.0)

    # Construction helpers -------------------------------------------------
    @classmethod
    def from_handle(cls, handle: StoreHandle, **service_kwargs: Any) -> "DatasetService":
        """A service over a store *another* process published.

        Attaches zero-copy and reuses the shared index tables, so a
        render/query node process reaches serving state in O(1) data
        movement.  The attachment stays open for the service's
        lifetime; :meth:`close` releases it — deferred, if sessions are
        still pinned, until the last one detaches (the mapping is what
        their arrays point into).
        """
        from repro.store.arena import attach

        client = attach(handle)
        service_kwargs.pop("use_index", None)
        index = client.index()
        pyramid = client.pyramid()
        service = cls.__new__(cls)
        service._lock = threading.RLock()
        engine_kwargs: dict[str, Any] = dict(service_kwargs)
        if pyramid is not None:
            # zero-copy adoption of the published pyramid tables; stores
            # without one leave the engine to build (or skip) its own
            engine_kwargs.setdefault("pyramid", pyramid)
        engine = SharedQueryEngine(
            client.dataset,
            index=index,
            use_index=index is not None,
            **engine_kwargs,
        )
        service.keep_stores = 1
        service._engine_opts = {
            "use_index": index is not None,
            "index_res": handle.index_res or 64,
        }
        service._stores = OrderedDict()
        service._n_sessions = 0
        service._closed = False
        service._client = client
        service._pin_total = AtomicCounter()
        snapshot = EpochSnapshot(client.dataset.epoch, client.dataset, engine)
        service._snapshots = {snapshot.epoch: snapshot}
        service._active = snapshot
        obs.counter_add("service.snapshot.published", 1)
        obs.gauge_set("service.snapshot.active_epoch", float(snapshot.epoch))
        obs.gauge_set("service.snapshot.live", 1.0)
        return service

    # Active-snapshot views --------------------------------------------------
    @property
    def dataset(self) -> TrajectoryDataset:
        """The active snapshot's dataset (atomic read, never assignable)."""
        snapshot = self._active
        return snapshot.dataset if snapshot is not None else None  # type: ignore[return-value]

    @property
    def engine(self) -> SharedQueryEngine:
        """The active snapshot's engine (atomic read, never assignable)."""
        snapshot = self._active
        return snapshot.engine if snapshot is not None else None  # type: ignore[return-value]

    # Sessions -------------------------------------------------------------
    def session(
        self,
        viewport: Viewport | None = None,
        *,
        layout_key: str = "3",
        journal_path: str | Path | None = None,
    ) -> SessionView:
        """Open a new lightweight per-user session view.

        ``viewport`` defaults to the paper's 2/3-surface wall preset
        (the same default :class:`~repro.app.TrajectoryExplorer` uses).
        The view pins the current active snapshot until closed/collected.
        """
        self._check_open()
        if viewport is None:
            from repro.display.presets import CYBER_COMMONS, paper_viewport

            viewport = paper_viewport(CYBER_COMMONS)
        view = SessionView(
            self, viewport, layout_key=layout_key, journal_path=journal_path
        )
        obs.counter_add("service.sessions.opened", 1)
        return view

    def _next_session_id(self) -> int:
        """Service-scoped session ids (1, 2, ...): two independent
        services number their sessions identically, so replaying a
        recorded session into a fresh explorer reproduces its state
        byte-for-byte (``status()`` includes the id)."""
        with self._lock:
            self._n_sessions += 1
            return self._n_sessions

    @property
    def n_sessions(self) -> int:
        """Number of session views opened over this service."""
        with self._lock:
            return self._n_sessions

    # Epoch lifecycle --------------------------------------------------------
    def active_epoch(self) -> int:
        """The epoch new sessions pin (bumped by each rollover swap).

        Lock-free: one atomic read of the active snapshot reference —
        this sits on the per-query staleness probe, so it must never
        queue behind a publish.
        """
        snapshot = self._active
        if snapshot is None:
            raise RuntimeError("DatasetService is closed")
        return snapshot.epoch

    def _pin_active(self) -> EpochSnapshot:
        """Resolve and pin the active snapshot — no lock.

        One atomic reference read plus one GIL-atomic refcount
        increment.  The only retry is losing a race against the
        retirement of a *just-replaced* snapshot (the sealed-zero
        protocol in :mod:`repro.store.snapshot`): the loop then
        re-resolves and lands on the successor.
        """
        while True:
            snapshot = self._active
            if snapshot is None:
                raise RuntimeError("DatasetService is closed")
            if snapshot.try_pin():
                self._pin_total.incr()
                obs.counter_add("service.snapshot.pinned", 1)
                obs.gauge_set(
                    "service.snapshot.pins", float(self._pin_total.value)
                )
                return snapshot
            if self._closed:
                raise RuntimeError("DatasetService is closed")
            # lost the pin race to a retirement mid-rollover: re-resolve

    def _detach_session(self, epoch: int) -> None:
        """Release one session's pin on ``epoch``.

        The last pin out retires a non-active snapshot (unlinking its
        store if it is no longer registered) and — when the service is
        closed — completes any deferred client release once no session
        anywhere still needs the mapping.  Receives the epoch *number*
        (what the session finalizer holds): the snapshot object itself
        must not live in any frame here when the client mapping is
        released, or its arrays would pin the mapping open.
        """
        with self._lock:
            snapshot = self._snapshots.get(epoch)
        if snapshot is None:  # pragma: no cover - pins keep epochs registered
            return
        snapshot.unpin()
        self._pin_total.decr()
        obs.counter_add("service.snapshot.released", 1)
        obs.gauge_set("service.snapshot.pins", float(self._pin_total.value))
        victims = self._retire_if_idle(snapshot)
        # drop the frame's ref before any client release below — a live
        # snapshot would pin the mapping's buffer open
        del snapshot
        release_client = self._release_client_if_drained()
        for store in victims:
            store.unlink()
            store.close()
        if release_client is not None:
            release_client.close()
            obs.counter_add("service.close.completed", 1)

    def _retire_if_idle(self, snapshot: EpochSnapshot) -> list[SharedArenaStore]:
        """Retire one snapshot iff it is unpinned and non-active.

        Exactly-once: the sealed-zero refcount arbitrates racing
        retirers (and racing pins — see :mod:`repro.store.snapshot`).
        Returns stores to unlink *outside* any lock (only a store no
        longer in the registry — registered stores are still attachable
        and fall to normal eviction).
        """
        if snapshot.pins > 0:
            return []
        if snapshot is self._active and not self._closed:
            return []
        if not snapshot.refs.seal_if_idle():
            return []
        obs.counter_add("service.snapshot.retired", 1)
        with self._lock:
            self._snapshots.pop(snapshot.epoch, None)
            obs.gauge_set("service.snapshot.live", float(len(self._snapshots)))
            store = snapshot.store
            if store is not None and store.uid not in self._stores:
                return [store]
        return []

    def _release_client_if_drained(self) -> Any:
        """The deferred tail of closing a ``from_handle`` service.

        Once the service is closed and no session anywhere pins any
        snapshot, drop every epoch snapshot (their datasets/engines
        hold numpy views into the mapping) and hand the client back to
        the caller to close *outside* the lock.  Pinned snapshots are
        always in the registry — retirement requires zero pins — so the
        pin scan under the lock is exhaustive.
        """
        if self._client is None or not self._closed:
            return None
        with self._lock:
            if self._client is None:
                return None
            if any(s.pins > 0 for s in self._snapshots.values()):
                return None
            self._snapshots.clear()
            self._active = None
            obs.gauge_set("service.snapshot.live", 0.0)
            release_client = self._client
            self._client = None
        return release_client

    def _store_pinned_locked(self, uid: str) -> bool:
        """Is some live session pinned to the snapshot served by ``uid``?"""
        with self._lock:
            return any(
                s.pins > 0
                and s.store is not None
                and s.store.uid == uid
                for s in self._snapshots.values()
            )

    def _evict_overflow_locked(self) -> tuple[list[SharedArenaStore], int]:
        """Deregister stores beyond ``keep_stores`` (oldest first).

        Returns (victims to unlink outside the lock, count deferred):
        a store pinned by live sessions is deregistered — its handle
        stops validating — but its block survives, referenced by the
        pinning snapshot, until the last session detaches.
        """
        victims: list[SharedArenaStore] = []
        deferred = 0
        with self._lock:
            while len(self._stores) > self.keep_stores:
                uid, old = self._stores.popitem(last=False)
                if self._store_pinned_locked(uid):
                    deferred += 1
                else:
                    victims.append(old)
        return victims, deferred

    def _swap_active(
        self,
        dataset: TrajectoryDataset,
        engine: SharedQueryEngine,
        store: SharedArenaStore | None = None,
    ) -> int:
        """Commit point of a rollover: atomically publish a new snapshot.

        **Only** :class:`~repro.store.ingest.RolloverCoordinator` may
        call this (reprolint RL008): the coordinator owns the staging
        and validation phases that make the swap safe.  Under the lock:
        the staged (dataset, engine, store) are registered as a new
        :class:`EpochSnapshot` and the active reference is retargeted
        with a single atomic assignment — from that instant every new
        pin lands on the successor, while in-flight sessions keep their
        pinned snapshot and finish there.  Zero-pin old snapshots
        retire, the store registry evicts overflow, and slow work
        (unlinking) happens outside the lock.
        """
        t_swap = time.perf_counter()
        victims: list[SharedArenaStore] = []
        with self._lock:
            self._check_open()
            epoch = dataset.epoch
            active = self._active
            if active is None or epoch <= active.epoch:
                current = "<released>" if active is None else active.epoch
                raise ValueError(
                    f"rollover epoch {epoch} must exceed active epoch "
                    f"{current}"
                )
            snapshot = EpochSnapshot(epoch, dataset, engine, store)
            self._snapshots[epoch] = snapshot
            if store is not None:
                self._stores[store.uid] = store
            # the publish: one atomic reference assignment.  Readers
            # (_pin_active, active_epoch) see either the old snapshot
            # or this one, never anything in between.
            self._active = snapshot
            obs.counter_add("service.snapshot.published", 1)
            obs.gauge_set("service.snapshot.active_epoch", float(epoch))
            obs.gauge_set("service.snapshot.live", float(len(self._snapshots)))
            for old in [
                s for s in list(self._snapshots.values()) if s is not snapshot
            ]:
                victims.extend(self._retire_if_idle(old))
            overflow, deferred = self._evict_overflow_locked()
            victims.extend(overflow)
        obs.observe("rollover.swap_seconds", time.perf_counter() - t_swap)
        if deferred:
            obs.counter_add("store.evict.deferred", deferred)
        for old_store in victims:
            old_store.unlink()
            old_store.close()
        return epoch

    def _engine_for_epoch(self, dataset: TrajectoryDataset) -> SharedQueryEngine:
        """Build a successor-epoch engine sharing this service's sharded
        stage cache (epoch-tagged keys keep entries disjoint).

        The expensive part — packing + index build — runs outside the
        lock; only the cache/options snapshot is serialized.
        """
        with self._lock:
            cache = self.engine.cache
            opts = dict(self._engine_opts)
        assert isinstance(cache, ShardedStageCache)
        return SharedQueryEngine(dataset, cache=cache, **opts)

    # Store registry ---------------------------------------------------------
    def publish_store(self, *, include_index: bool = True) -> StoreHandle:
        """Publish (or reuse) a shared-memory store of the current
        dataset epoch and return its handle.

        Idempotent per epoch: repeated calls while the dataset is
        unchanged return the same handle.  After a mutation, a fresh
        store is materialized and old ones age out of the registry
        (evicted beyond ``keep_stores`` — their handles then fail to
        attach rather than serving stale segments).
        """
        self._check_open()
        victims: list[SharedArenaStore] = []
        deferred = 0
        with self._lock:
            epoch = self.dataset.epoch
            handle: StoreHandle | None = None
            for store in reversed(self._stores.values()):
                if store.epoch == epoch:
                    handle = store.handle
                    break
            if handle is None:
                index = self.engine.index if include_index else None
                if index is not None and index.packed is not self.dataset.packed():
                    # the dataset mutated since the engine bound its index;
                    # let publish() build a fresh one over the current epoch
                    index = None
                pyramid = self.engine.pyramid
                if pyramid is not None and pyramid.packed is not self.dataset.packed():
                    pyramid = None  # same staleness guard as the index
                t_pub = time.perf_counter()
                store = SharedArenaStore.publish(
                    self.dataset,
                    include_index=include_index,
                    index=index,
                    pyramid=pyramid,
                )
                obs.observe("store.publish.seconds", time.perf_counter() - t_pub)
                obs.counter_add("store.publishes", 1)
                self._stores[store.uid] = store
                handle = store.handle
                victims, deferred = self._evict_overflow_locked()
        for old in victims:
            old.unlink()
            old.close()
        if deferred:
            obs.counter_add("store.evict.deferred", deferred)
        return handle

    def stores(self) -> tuple[StoreHandle, ...]:
        """Handles of every store currently registered (oldest first)."""
        with self._lock:
            return tuple(s.handle for s in self._stores.values())

    def validate_handle(self, handle: StoreHandle) -> None:
        """Check a handle against the live registry and dataset epoch.

        Raises :class:`~repro.store.shm.StaleHandleError` when the
        handle's store was evicted or the dataset has mutated past the
        handle's epoch — callers should re-fetch via
        :meth:`publish_store`.
        """
        with self._lock:
            if handle.uid not in self._stores:
                raise StaleHandleError(
                    f"store {handle.uid[:8]} is not registered here "
                    "(evicted or foreign); re-publish"
                )
            if handle.epoch != self.dataset.epoch:
                raise StaleHandleError(
                    f"handle epoch {handle.epoch} != dataset epoch "
                    f"{self.dataset.epoch}: dataset mutated after publish"
                )

    def evict_store(
        self, uid: str, *, degradation: DegradationReport | None = None
    ) -> bool:
        """Explicitly unlink and drop one registered store by uid;
        returns True when something was evicted.

        Refuses (returns False, bumps ``store.evict.refused``, records
        on ``degradation`` when given) while live sessions are pinned
        to the store's epoch — evicting would unlink a block those
        sessions' epoch contract says stays attachable until they
        detach.
        """
        pinned = False
        with self._lock:
            store = self._stores.get(uid)
            if store is None:
                return False
            if self._store_pinned_locked(uid):
                pinned = True
            else:
                self._stores.pop(uid)
        if pinned:
            obs.counter_add("store.evict.refused", 1)
            if degradation is not None:
                degradation.record(
                    "evict-refused",
                    scope="session",
                    action="skipped",
                    detail=f"store {uid[:8]} pinned by live sessions",
                )
            return False
        store.unlink()
        store.close()
        return True

    # Introspection ----------------------------------------------------------
    def stats(self) -> dict:
        """Service health: sessions, snapshots, shared-cache counters."""
        with self._lock:
            return {
                "dataset": self.dataset.name,
                "n_traj": len(self.dataset),
                "epoch": self.dataset.epoch,
                "active_epoch": self.active_epoch(),
                "epochs": {
                    e: s.pins for e, s in sorted(self._snapshots.items())
                },
                "pins": self._pin_total.value,
                "sessions": self._n_sessions,
                "stores": [s.uid[:8] for s in self._stores.values()],
                "store_bytes": sum(s.nbytes for s in self._stores.values()),
                "cache": self.engine.cache_stats(),
            }

    def __repr__(self) -> str:
        with self._lock:
            name = self.dataset.name if self._active is not None else "<released>"
            epoch = self._active.epoch if self._active is not None else -1
            return (
                f"DatasetService({name!r}, "
                f"sessions={self._n_sessions}, stores={len(self._stores)}, "
                f"epoch={epoch})"
            )

    # Lifecycle --------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("DatasetService is closed")

    def close(self) -> None:
        """Unlink and release every published store (idempotent); the
        in-process engine and existing sessions stay usable.

        Stores pinned by live sessions are deregistered now but
        unlinked only when their last session detaches; likewise a
        ``from_handle`` client mapping (the pages pinned sessions'
        arrays point into) is released on the final detach rather than
        yanked mid-query.
        """
        if self._closed:
            return
        self._closed = True
        victims: list[SharedArenaStore] = []
        deferred = 0
        with self._lock:
            doomed: "OrderedDict[str, SharedArenaStore]" = OrderedDict(self._stores)
            self._stores.clear()
            for snapshot in list(self._snapshots.values()):
                for store in self._retire_if_idle(snapshot):
                    doomed.setdefault(store.uid, store)
                # drop the loop ref promptly: a retired snapshot's
                # shm-backed arrays must be dead before any client
                # mapping release below
                del snapshot
            pinned_uids = {
                s.store.uid
                for s in self._snapshots.values()
                if s.pins > 0 and s.store is not None
            }
            victims = [s for uid, s in doomed.items() if uid not in pinned_uids]
            deferred = len(doomed) - len(victims)
        release_client = self._release_client_if_drained()
        for store in victims:
            store.unlink()
            store.close()
        if deferred:
            obs.counter_add("service.close.deferred", deferred)
        if release_client is not None:
            release_client.close()

    def __enter__(self) -> "DatasetService":
        """Context-manage the service (close on exit)."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Unlink published stores and release attachments."""
        self.close()
