"""Process-wide dataset service and per-user session views.

The multi-session split of the former one-user application object:

* :class:`DatasetService` owns what is expensive and immutable-ish —
  **one** dataset, **one** packed segment view, **one** spatial index,
  **one** stage cache — plus a registry of published shared-memory
  stores (:class:`~repro.store.arena.SharedArenaStore`) with epoch
  validation and eviction.  Everything queryable sits behind a
  re-entrant lock so any number of threads can drive sessions
  concurrently.

* :class:`SessionView` is what is cheap and per-user — a brush canvas,
  a time window, a layout/paging state, an event journal — layered over
  the service's shared engine.  N concurrent views return exactly what
  N independent single-user engines would, while the process holds
  exactly one copy of the packed arrays (the encube render-node model:
  shared resident data, per-session query state).

Typical multi-session use::

    service = DatasetService(dataset)
    alice = service.session(viewport)
    bob = service.session(viewport, layout_key="2")
    alice.brush(stroke); bob.set_time_window(TimeWindow.end(0.25))
    r_a, r_b = alice.run_query("red"), bob.run_query("red")

and for worker processes::

    handle = service.publish_store()          # O(dataset) once
    pool ships `handle`                       # O(handle bytes) per worker
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro import obs
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.session import ExplorationSession
from repro.display.viewport import Viewport
from repro.store.arena import SharedArenaStore, StoreHandle
from repro.store.shm import StaleHandleError
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["SharedQueryEngine", "DatasetService", "SessionView"]


class SharedQueryEngine(CoordinatedBrushingEngine):
    """An engine safe to share across concurrent sessions.

    Identical results to the base engine; every query, plan, and cache
    operation additionally runs under one re-entrant lock so N threads
    hammering the shared :class:`StageCache` never interleave a stage
    lookup with an insertion.  The lock is re-entrant: a locked
    ``query_all_colors`` calling ``query`` per color nests cleanly.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        *,
        lock: "threading.RLock | None" = None,
        **engine_kwargs: Any,
    ) -> None:
        super().__init__(dataset, **engine_kwargs)
        self._lock = lock if lock is not None else threading.RLock()

    def query(self, *args: Any, **kwargs: Any) -> Any:
        """Serialized :meth:`CoordinatedBrushingEngine.query`.

        The time this thread spent waiting for the shared lock is
        published as the ``service.lock.wait_seconds`` gauge — the
        first signal to watch when N sessions start queueing behind
        one hot engine.
        """
        t_wait = time.perf_counter()
        with self._lock:
            obs.gauge_set(
                "service.lock.wait_seconds", time.perf_counter() - t_wait
            )
            return super().query(*args, **kwargs)

    def query_all_colors(self, *args: Any, **kwargs: Any) -> Any:
        """Serialized multi-color evaluation (holds the lock across all
        colors so the shared temporal mask is computed exactly once)."""
        t_wait = time.perf_counter()
        with self._lock:
            obs.gauge_set(
                "service.lock.wait_seconds", time.perf_counter() - t_wait
            )
            return super().query_all_colors(*args, **kwargs)

    def plan(self, *args: Any, **kwargs: Any) -> Any:
        """Serialized plan construction (reads the live index token)."""
        with self._lock:
            return super().plan(*args, **kwargs)

    def cache_stats(self) -> dict[str, float]:
        """Serialized cache-counter snapshot."""
        with self._lock:
            return super().cache_stats()

    def invalidate_cache(self) -> None:
        """Serialized cache flush."""
        with self._lock:
            return super().invalidate_cache()


class SessionView(ExplorationSession):
    """One user's lightweight state over a shared :class:`DatasetService`.

    Owns everything mutable per user — canvas, time window, layout,
    paging, groups, event log, optional on-disk journal — and nothing
    heavy: the dataset, packed arrays, spatial index, and stage cache
    all live in (and are shared through) the service.  Created via
    :meth:`DatasetService.session`.
    """

    def __init__(
        self,
        service: "DatasetService",
        viewport: Viewport,
        *,
        layout_key: str = "3",
        journal_path: str | Path | None = None,
    ) -> None:
        self.service = service
        self.session_id = service._next_session_id()
        super().__init__(
            service.dataset,
            viewport,
            layout_key=layout_key,
            journal_path=journal_path,
            engine=service.engine,
        )

    def run_query(self, color: str = "red") -> Any:
        """Session-attributed query: the shared engine does the work;
        this view adds its ``session.queries`` accounting so the
        telemetry plane can answer "which session is hammering us"."""
        result = super().run_query(color)
        obs.counter_add("session.queries", 1, session=self.session_id)
        return result

    def __repr__(self) -> str:
        return (
            f"SessionView(#{self.session_id}, dataset={self.dataset.name!r}, "
            f"{len(self.events)} events)"
        )


class DatasetService:
    """Process-wide owner of one dataset's heavy, shareable state.

    Parameters
    ----------
    dataset:
        The trajectory collection to serve (non-empty).
    use_index / index_res:
        Spatial-index construction knobs for the shared engine.
    cache_capacity:
        Shared stage-cache size; sized up from the single-user default
        because N sessions' stages compete for it.
    keep_stores:
        How many published shared-memory stores to retain; publishing
        beyond this evicts (closes + unlinks) the oldest, and handles
        to evicted stores fail to attach with a stale-handle error.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        *,
        use_index: bool = True,
        index_res: int = 64,
        cache_capacity: int = 512,
        keep_stores: int = 2,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("cannot serve an empty dataset")
        if keep_stores < 1:
            raise ValueError("keep_stores must be >= 1")
        self.dataset = dataset
        self._lock = threading.RLock()
        self.engine = SharedQueryEngine(
            dataset,
            lock=self._lock,
            use_index=use_index,
            index_res=index_res,
            cache_capacity=cache_capacity,
        )
        self.keep_stores = int(keep_stores)
        self._stores: "OrderedDict[str, SharedArenaStore]" = OrderedDict()
        self._n_sessions = 0
        self._closed = False

    # Construction helpers -------------------------------------------------
    @classmethod
    def from_handle(cls, handle: StoreHandle, **service_kwargs: Any) -> "DatasetService":
        """A service over a store *another* process published.

        Attaches zero-copy and reuses the shared index tables, so a
        render/query node process reaches serving state in O(1) data
        movement.  The attachment stays open for the service's
        lifetime; :meth:`close` releases it.
        """
        from repro.store.arena import attach

        client = attach(handle)
        service_kwargs.pop("use_index", None)
        index = client.index()
        service = cls.__new__(cls)
        service.dataset = client.dataset
        service._lock = threading.RLock()
        service.engine = SharedQueryEngine(
            client.dataset,
            lock=service._lock,
            index=index,
            use_index=index is not None,
            **service_kwargs,
        )
        service.keep_stores = 1
        service._stores = OrderedDict()
        service._n_sessions = 0
        service._closed = False
        service._client = client
        return service

    # Sessions -------------------------------------------------------------
    def session(
        self,
        viewport: Viewport | None = None,
        *,
        layout_key: str = "3",
        journal_path: str | Path | None = None,
    ) -> SessionView:
        """Open a new lightweight per-user session view.

        ``viewport`` defaults to the paper's 2/3-surface wall preset
        (the same default :class:`~repro.app.TrajectoryExplorer` uses).
        """
        self._check_open()
        if viewport is None:
            from repro.display.presets import CYBER_COMMONS, paper_viewport

            viewport = paper_viewport(CYBER_COMMONS)
        view = SessionView(
            self, viewport, layout_key=layout_key, journal_path=journal_path
        )
        obs.counter_add("service.sessions.opened", 1)
        return view

    def _next_session_id(self) -> int:
        """Service-scoped session ids (1, 2, ...): two independent
        services number their sessions identically, so replaying a
        recorded session into a fresh explorer reproduces its state
        byte-for-byte (``status()`` includes the id)."""
        with self._lock:
            self._n_sessions += 1
            return self._n_sessions

    @property
    def n_sessions(self) -> int:
        """Number of session views opened over this service."""
        with self._lock:
            return self._n_sessions

    # Store registry ---------------------------------------------------------
    def publish_store(self, *, include_index: bool = True) -> StoreHandle:
        """Publish (or reuse) a shared-memory store of the current
        dataset epoch and return its handle.

        Idempotent per epoch: repeated calls while the dataset is
        unchanged return the same handle.  After a mutation, a fresh
        store is materialized and old ones age out of the registry
        (evicted beyond ``keep_stores`` — their handles then fail to
        attach rather than serving stale segments).
        """
        self._check_open()
        with self._lock:
            epoch = self.dataset.epoch
            for store in reversed(self._stores.values()):
                if store.epoch == epoch:
                    return store.handle
            index = self.engine.index if include_index else None
            if index is not None and index.packed is not self.dataset.packed():
                # the dataset mutated since the engine bound its index;
                # let publish() build a fresh one over the current epoch
                index = None
            t_pub = time.perf_counter()
            store = SharedArenaStore.publish(
                self.dataset,
                include_index=include_index,
                index=index,
            )
            obs.observe("store.publish.seconds", time.perf_counter() - t_pub)
            obs.counter_add("store.publishes", 1)
            self._stores[store.uid] = store
            while len(self._stores) > self.keep_stores:
                _, old = self._stores.popitem(last=False)
                old.unlink()
                old.close()
            return store.handle

    def stores(self) -> tuple[StoreHandle, ...]:
        """Handles of every store currently registered (oldest first)."""
        with self._lock:
            return tuple(s.handle for s in self._stores.values())

    def validate_handle(self, handle: StoreHandle) -> None:
        """Check a handle against the live registry and dataset epoch.

        Raises :class:`~repro.store.shm.StaleHandleError` when the
        handle's store was evicted or the dataset has mutated past the
        handle's epoch — callers should re-fetch via
        :meth:`publish_store`.
        """
        with self._lock:
            if handle.uid not in self._stores:
                raise StaleHandleError(
                    f"store {handle.uid[:8]} is not registered here "
                    "(evicted or foreign); re-publish"
                )
            if handle.epoch != self.dataset.epoch:
                raise StaleHandleError(
                    f"handle epoch {handle.epoch} != dataset epoch "
                    f"{self.dataset.epoch}: dataset mutated after publish"
                )

    def evict_store(self, uid: str) -> bool:
        """Explicitly unlink and drop one registered store by uid;
        returns True when something was evicted."""
        with self._lock:
            store = self._stores.pop(uid, None)
        if store is None:
            return False
        store.unlink()
        store.close()
        return True

    # Introspection ----------------------------------------------------------
    def stats(self) -> dict:
        """Service health: sessions, shared-cache counters, stores."""
        with self._lock:
            return {
                "dataset": self.dataset.name,
                "n_traj": len(self.dataset),
                "epoch": self.dataset.epoch,
                "sessions": self._n_sessions,
                "stores": [s.uid[:8] for s in self._stores.values()],
                "store_bytes": sum(s.nbytes for s in self._stores.values()),
                "cache": self.engine.cache_stats(),
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"DatasetService({self.dataset.name!r}, "
                f"sessions={self._n_sessions}, stores={len(self._stores)})"
            )

    # Lifecycle --------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("DatasetService is closed")

    def close(self) -> None:
        """Unlink and release every published store (idempotent); the
        in-process engine and existing sessions stay usable."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            stores = list(self._stores.values())
            self._stores.clear()
        for store in stores:
            store.unlink()
            store.close()
        client = getattr(self, "_client", None)
        if client is not None:
            # drop engine/dataset refs first so the mapping can release
            self.engine = None  # type: ignore[assignment]
            self.dataset = None  # type: ignore[assignment]
            self._client = None
            client.close()

    def __enter__(self) -> "DatasetService":
        """Context-manage the service (close on exit)."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Unlink published stores and release attachments."""
        self.close()
