"""Session recording and replay.

The pilot study was "video and audio taped" and analyzed offline; the
headless equivalent records the raw input-event stream to JSON so any
session is exactly replayable (the analyst simulator and the
interaction tests both rely on this determinism).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable

from repro.interaction.events import InputEvent, event_from_dict
from repro.util.fileio import atomic_write_text

__all__ = ["SessionRecorder"]


class SessionRecorder:
    """Append-only, time-ordered input-event log with JSON round-trip."""

    def __init__(self) -> None:
        self._events: list[InputEvent] = []

    def record(self, event: InputEvent) -> None:
        """Append an event; must not move backward in time."""
        if self._events and event.t < self._events[-1].t:
            raise ValueError(
                f"events must be time-ordered; got t={event.t} after "
                f"t={self._events[-1].t}"
            )
        self._events.append(event)

    def record_all(self, events: Iterable[InputEvent]) -> None:
        """Append a sequence of events in order."""
        for e in events:
            self.record(e)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def duration_s(self) -> float:
        return self._events[-1].t if self._events else 0.0

    def replay(self, handler: Callable[[InputEvent], None]) -> int:
        """Feed every event to ``handler`` in order; returns the count."""
        for e in self._events:
            handler(e)
        return len(self._events)

    def save(self, path: str | Path) -> None:
        """Write the event stream to a JSON file (atomically)."""
        atomic_write_text(
            Path(path), json.dumps([e.to_dict() for e in self._events])
        )

    @classmethod
    def load(cls, path: str | Path) -> "SessionRecorder":
        rec = cls()
        for d in json.loads(Path(path).read_text()):
            rec.record(event_from_dict(d))
        return rec
