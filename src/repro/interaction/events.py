"""Input events.

Minimal, serializable event types: pointer (position in wall pixels,
button state, phase) and key presses.  Everything downstream — the
paintbrush, keypad layout switching, slider drags — consumes these.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["PointerPhase", "PointerEvent", "KeyEvent", "InputEvent"]


class PointerPhase(enum.Enum):
    """Lifecycle of a drag gesture."""

    DOWN = "down"
    MOVE = "move"
    UP = "up"


@dataclass(frozen=True)
class PointerEvent:
    """A pointer sample in wall pixel coordinates.

    Attributes
    ----------
    t:
        Session time in seconds.
    x, y:
        Wall pixel position (viewport pixel space; origin top-left).
    phase:
        Down / move / up.
    button:
        Mouse button index (0 = primary).
    """

    t: float
    x: float
    y: float
    phase: PointerPhase
    button: int = 0

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ValueError("event time must be >= 0")

    def to_dict(self) -> dict:
        """Serializable form for session recording."""
        return {
            "type": "pointer",
            "t": self.t,
            "x": self.x,
            "y": self.y,
            "phase": self.phase.value,
            "button": self.button,
        }


@dataclass(frozen=True)
class KeyEvent:
    """A key press.

    ``key`` is the character or symbolic name ('1', '2', 'b', 'g', ...).
    """

    t: float
    key: str

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ValueError("event time must be >= 0")
        if not self.key:
            raise ValueError("key must be non-empty")

    def to_dict(self) -> dict:
        """Serializable form for session recording."""
        return {"type": "key", "t": self.t, "key": self.key}


#: Union alias for annotations.
InputEvent = PointerEvent | KeyEvent


def event_from_dict(d: dict) -> InputEvent:
    """Inverse of ``to_dict`` for both event types."""
    if d.get("type") == "pointer":
        return PointerEvent(
            t=float(d["t"]),
            x=float(d["x"]),
            y=float(d["y"]),
            phase=PointerPhase(d["phase"]),
            button=int(d.get("button", 0)),
        )
    if d.get("type") == "key":
        return KeyEvent(t=float(d["t"]), key=d["key"])
    raise ValueError(f"unknown event record: {d!r}")
