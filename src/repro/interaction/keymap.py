"""Keypad bindings.

§IV-C.2: "The user can switch between a number of configurations by
pressing a number on the keypad: '1', '2', etc."  The keymap binds
digits to layout presets and letters to tool actions; it is data, so
sessions can rebind without code changes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KeyBinding", "KeyMap", "default_keymap"]


@dataclass(frozen=True)
class KeyBinding:
    """One binding: an action name plus an optional argument."""

    action: str
    arg: str = ""

    def __post_init__(self) -> None:
        if not self.action:
            raise ValueError("binding needs an action")


class KeyMap:
    """Key -> binding table with rebind support."""

    def __init__(self, bindings: dict[str, KeyBinding] | None = None) -> None:
        self._bindings: dict[str, KeyBinding] = dict(bindings or {})

    def bind(self, key: str, action: str, arg: str = "") -> None:
        """Bind (or rebind) a key to an action."""
        if not key:
            raise ValueError("key must be non-empty")
        self._bindings[key] = KeyBinding(action, arg)

    def unbind(self, key: str) -> None:
        """Remove a binding (idempotent)."""
        self._bindings.pop(key, None)

    def lookup(self, key: str) -> KeyBinding | None:
        """The binding for ``key``, or None."""
        return self._bindings.get(key)

    def keys_for(self, action: str) -> list[str]:
        """All keys bound to an action."""
        return sorted(k for k, b in self._bindings.items() if b.action == action)

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, key: str) -> bool:
        return key in self._bindings


def default_keymap() -> KeyMap:
    """The application's default bindings.

    Digits 1-3 switch layouts (the paper's presets); 'b' cycles brush
    color, 'e' erases, 'g' applies the Fig. 3 grouping, 't' resets the
    temporal filter, 'n'/'p' page every bin forward/back through its
    filtered population, '[' / ']' nudge the depth slider, '-' / '='
    the exaggeration slider.
    """
    km = KeyMap()
    for digit in ("1", "2", "3"):
        km.bind(digit, "layout", digit)
    km.bind("b", "cycle_brush_color")
    km.bind("e", "erase")
    km.bind("g", "group_fig3")
    km.bind("t", "reset_temporal")
    km.bind("n", "next_page")
    km.bind("p", "prev_page")
    km.bind("[", "depth_down")
    km.bind("]", "depth_up")
    km.bind("-", "exaggeration_down")
    km.bind("=", "exaggeration_up")
    return km
