"""Pointer routing and the paintbrush tool.

The decisive property of coordinated brushing is that a brush painted
in *one* cell is meaningful in *all* cells, because the pointer
position is resolved through the cell's coordinate mapper into shared
arena space.  :class:`PointerRouter` performs that resolution (viewport
pixels -> wall meters -> cell -> arena meters); :class:`PaintbrushTool`
is the drag state machine that turns pointer streams into
:class:`~repro.core.brush.BrushStroke` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.brush import BrushStroke, stroke_from_path
from repro.display.coords import CoordinateMapper
from repro.display.viewport import Viewport
from repro.interaction.events import PointerEvent, PointerPhase
from repro.layout.grid import BezelAwareGrid, Cell
from repro.synth.arena import Arena

__all__ = ["PointerRouter", "PaintbrushTool"]


class PointerRouter:
    """Resolves viewport pixel positions to cells and arena coordinates.

    Viewport pixel space is the application framebuffer: the
    concatenated active areas of the viewport's panels (bezels carry no
    pixels), origin at the viewport's top-left.
    """

    def __init__(self, viewport: Viewport, grid: BezelAwareGrid, arena: Arena) -> None:
        self.viewport = viewport
        self.grid = grid
        self.arena = arena

    def pixel_to_wall(self, x: float, y: float) -> tuple[float, float]:
        """Viewport pixel -> wall meters (continuous across bezels)."""
        wall = self.viewport.wall
        if not (0 <= x < self.viewport.px_width and 0 <= y < self.viewport.px_height):
            raise ValueError(
                f"pointer ({x}, {y}) outside viewport "
                f"{self.viewport.px_width}x{self.viewport.px_height}"
            )
        pcol = int(x // wall.panel_px_width)
        prow = int(y // wall.panel_px_height)
        in_x = x - pcol * wall.panel_px_width
        in_y = y - prow * wall.panel_px_height
        tile = wall.tile(self.viewport.col0 + pcol, self.viewport.row0 + prow)
        wx, wy = tile.pixel_to_wall(np.array([[in_x, in_y]]))[0]
        return float(wx), float(wy)

    def cell_at(self, x: float, y: float) -> Cell | None:
        """The grid cell under a viewport pixel position, if any."""
        wx, wy = self.pixel_to_wall(x, y)
        for cell in self.grid.cells():
            x0, y0, x1, y1 = cell.rect
            if x0 <= wx < x1 and y0 <= wy < y1:
                return cell
        return None

    def mapper_for(self, cell: Cell) -> CoordinateMapper:
        """The arena<->wall mapper of one cell."""
        return CoordinateMapper(self.arena, cell.rect)

    def pixel_to_arena(self, x: float, y: float) -> tuple[np.ndarray, Cell] | None:
        """Viewport pixel -> (arena meters, cell); None off-cell."""
        cell = self.cell_at(x, y)
        if cell is None:
            return None
        wx, wy = self.pixel_to_wall(x, y)
        mapper = self.mapper_for(cell)
        arena_pt = mapper.wall_to_arena(np.array([wx, wy]))
        return arena_pt, cell


@dataclass
class _DragState:
    cell: Cell
    path_arena: list  # list of (2,) arrays


class PaintbrushTool:
    """The circular paintbrush: pointer drags -> brush strokes.

    Parameters
    ----------
    router:
        Pointer resolution.
    radius_px:
        Brush radius in viewport pixels; converted to arena meters
        through the anchor cell's mapper when the stroke completes.
    color:
        Current brush color (settable between strokes).
    """

    def __init__(self, router: PointerRouter, *, radius_px: float = 12.0, color: str = "red") -> None:
        if radius_px <= 0:
            raise ValueError("radius_px must be positive")
        self.router = router
        self.radius_px = float(radius_px)
        self.color = color
        self._drag: _DragState | None = None

    @property
    def dragging(self) -> bool:
        return self._drag is not None

    def set_color(self, color: str) -> None:
        """Select the brush color for the next stroke."""
        if self.dragging:
            raise RuntimeError("cannot change color mid-stroke")
        self.color = color

    def handle(self, event: PointerEvent) -> BrushStroke | None:
        """Feed one pointer event; returns a stroke when one completes.

        The stroke is anchored to the cell where the drag started;
        samples that wander outside that cell still resolve through the
        anchor cell's mapper (the brush clips to the arena, as on the
        real wall).  Drags starting outside any cell are ignored.
        """
        if event.phase is PointerPhase.DOWN:
            resolved = self.router.pixel_to_arena(event.x, event.y)
            if resolved is None:
                self._drag = None
                return None
            arena_pt, cell = resolved
            self._drag = _DragState(cell=cell, path_arena=[arena_pt])
            return None
        if self._drag is None:
            return None
        mapper = self.router.mapper_for(self._drag.cell)
        wx, wy = self.router.pixel_to_wall(event.x, event.y)
        arena_pt = mapper.wall_to_arena(np.array([wx, wy]))
        if event.phase is PointerPhase.MOVE:
            self._drag.path_arena.append(arena_pt)
            return None
        # UP: finish the stroke
        self._drag.path_arena.append(arena_pt)
        path = np.asarray(self._drag.path_arena)
        # pixel radius -> arena meters through the anchor cell's scale
        wall_radius_m = self.radius_px / self.router.viewport.wall.panel_px_width * \
            self.router.viewport.wall.panel_width
        radius_arena = mapper.brush_radius_to_arena(wall_radius_m)
        self._drag = None
        return stroke_from_path(path, radius_arena, self.color)

    def cancel(self) -> None:
        """Abort the in-progress drag."""
        self._drag = None
