"""Input and interaction model.

The study's researcher drove the wall with a mouse and keyboard from a
desk ~3 m away (§IV-C).  This subpackage models that input layer
headlessly: pointer/key events, the paintbrush tool state machine
(pointer pixels -> cell -> shared arena coordinates -> brush stamps),
the range sliders (temporal window, depth, time exaggeration), the
keypad layout map, and a session recorder that can replay an input
stream deterministically.
"""

from repro.interaction.events import InputEvent, KeyEvent, PointerEvent
from repro.interaction.tools import PaintbrushTool, PointerRouter
from repro.interaction.sliders import RangeSlider, Slider
from repro.interaction.keymap import KeyMap, default_keymap
from repro.interaction.recorder import SessionRecorder

__all__ = [
    "InputEvent",
    "KeyEvent",
    "PointerEvent",
    "PaintbrushTool",
    "PointerRouter",
    "Slider",
    "RangeSlider",
    "KeyMap",
    "default_keymap",
    "SessionRecorder",
]
