"""Sliders.

The application exposes three continuous controls (§IV-C.2): the
temporal range slider, the depth-position slider, and the time-scale
(de)exaggeration slider.  :class:`Slider` is a clamped scalar control
with change callbacks; :class:`RangeSlider` a two-thumb interval
control that cannot invert.

:class:`IncrementalRequery` closes the loop the paper describes
("adjust the time slider, watch the highlight answer in seconds"): it
binds a :class:`RangeSlider` to an exploration session so every thumb
move updates the temporal window *and* re-runs the active queries.
Because a window move changes only the ``temporal_mask`` stage key,
the engine's stage cache turns each drag step into the cheap
``temporal_mask → combine → aggregate`` re-execution, reusing the
expensive brush hit-test outright.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.core.temporal import TimeWindow

if TYPE_CHECKING:
    from repro.core.result import QueryResult
    from repro.core.session import ExplorationSession

__all__ = ["Slider", "RangeSlider", "IncrementalRequery"]


class Slider:
    """A clamped scalar control.

    Parameters
    ----------
    lo, hi:
        Bounds.
    value:
        Initial value (clamped).
    on_change:
        Optional callback invoked with the new value after every
        effective change.
    """

    def __init__(
        self,
        lo: float,
        hi: float,
        value: float | None = None,
        on_change: Callable[[float], None] | None = None,
    ) -> None:
        if hi <= lo:
            raise ValueError(f"slider needs hi > lo, got [{lo}, {hi}]")
        self.lo = float(lo)
        self.hi = float(hi)
        self._value = self._clamp(value if value is not None else lo)
        self.on_change = on_change

    def _clamp(self, v: float) -> float:
        return min(self.hi, max(self.lo, float(v)))

    @property
    def value(self) -> float:
        return self._value

    def set(self, v: float) -> float:
        """Set (clamped); fires the callback if the value changed."""
        new = self._clamp(v)
        if new != self._value:
            self._value = new
            if self.on_change is not None:
                self.on_change(new)
        return self._value

    def step(self, delta: float) -> float:
        """Nudge by ``delta`` (keyboard arrows)."""
        return self.set(self._value + delta)

    @property
    def fraction(self) -> float:
        """Position as a fraction of the range."""
        return (self._value - self.lo) / (self.hi - self.lo)

    def set_fraction(self, f: float) -> float:
        """Set from a [0, 1] fraction (pointer drag)."""
        return self.set(self.lo + f * (self.hi - self.lo))


class RangeSlider:
    """A two-thumb interval control with a minimum gap.

    Thumbs clamp to the bounds and to each other — the selected
    interval can narrow to ``min_gap`` but never invert.
    """

    def __init__(
        self,
        lo: float,
        hi: float,
        *,
        low: float | None = None,
        high: float | None = None,
        min_gap: float = 0.0,
        on_change: Callable[[float, float], None] | None = None,
    ) -> None:
        if hi <= lo:
            raise ValueError(f"range slider needs hi > lo, got [{lo}, {hi}]")
        if min_gap < 0 or min_gap > hi - lo:
            raise ValueError("min_gap must be in [0, hi-lo]")
        self.lo = float(lo)
        self.hi = float(hi)
        self.min_gap = float(min_gap)
        self._low = float(lo if low is None else max(lo, low))
        self._high = float(hi if high is None else min(hi, high))
        if self._high - self._low < min_gap:
            raise ValueError("initial interval narrower than min_gap")
        self.on_change = on_change

    @property
    def interval(self) -> tuple[float, float]:
        return (self._low, self._high)

    def set_low(self, v: float) -> tuple[float, float]:
        """Move the lower thumb (clamped against bounds and the upper)."""
        new = min(max(float(v), self.lo), self._high - self.min_gap)
        if new != self._low:
            self._low = new
            self._fire()
        return self.interval

    def set_high(self, v: float) -> tuple[float, float]:
        """Move the upper thumb."""
        new = max(min(float(v), self.hi), self._low + self.min_gap)
        if new != self._high:
            self._high = new
            self._fire()
        return self.interval

    def set(self, low: float, high: float) -> tuple[float, float]:
        """Move both thumbs atomically."""
        low = max(self.lo, float(low))
        high = min(self.hi, float(high))
        if high - low < self.min_gap:
            raise ValueError(
                f"interval [{low}, {high}] narrower than min_gap {self.min_gap}"
            )
        changed = (low, high) != (self._low, self._high)
        self._low, self._high = low, high
        if changed:
            self._fire()
        return self.interval

    def _fire(self) -> None:
        if self.on_change is not None:
            self.on_change(self._low, self._high)

    @property
    def span_fraction(self) -> float:
        """Selected width as a fraction of the full range."""
        return (self._high - self._low) / (self.hi - self.lo)


class IncrementalRequery:
    """Drives incremental re-query from a temporal range slider.

    Takes over the slider's ``on_change``: every effective thumb move
    sets the session's fractional time window and — when the canvas
    has strokes — re-runs the query for each active color through the
    engine's stage cache.  Slider-only moves therefore re-execute just
    the temporal/combine/aggregate stages (see the traces collected in
    :attr:`last_traces`).

    Parameters
    ----------
    slider:
        The two-thumb temporal control (values in [0, 1] fractions).
    session:
        The exploration session whose window/engine the slider drives.
    colors:
        Colors to re-evaluate per move; default: every color painted
        on the canvas at move time.
    on_results:
        Optional callback receiving ``{color: QueryResult}`` after
        each re-query (the application uses it to refresh its render
        cache).
    """

    def __init__(
        self,
        slider: RangeSlider,
        session: "ExplorationSession",
        *,
        colors: list[str] | None = None,
        on_results: Callable[[dict[str, "QueryResult"]], None] | None = None,
    ) -> None:
        self.slider = slider
        self.session = session
        self.colors = colors
        self.on_results = on_results
        self.last_results: dict[str, QueryResult] = {}
        self.n_requeries = 0
        slider.on_change = self._moved

    @property
    def last_traces(self) -> dict[str, object]:
        """Per-color traces of the most recent re-query."""
        return {
            color: res.trace
            for color, res in self.last_results.items()
            if res.trace is not None
        }

    def _moved(self, lo: float, hi: float) -> None:
        self.session.set_time_window(TimeWindow.fraction(lo, hi))
        self.requery()

    def requery(self) -> dict[str, "QueryResult"]:
        """Re-evaluate the active colors under the current window.

        Each effective move lands in the telemetry plane
        (``interaction.requery.count`` / ``.seconds``) — the
        end-to-end latency the researcher actually feels while
        scrubbing, as opposed to the per-stage numbers the query
        trace reports.
        """
        t_move = time.perf_counter()
        colors = self.colors or self.session.canvas.colors()
        results = {color: self.session.run_query(color) for color in colors}
        if results:
            self.last_results = results
            self.n_requeries += 1
            obs.counter_add("interaction.requery.count", 1)
            obs.observe("interaction.requery.seconds", time.perf_counter() - t_move)
            if self.on_results is not None:
                self.on_results(results)
        return results
