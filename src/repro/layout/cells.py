"""Cell assignment: which trajectory renders in which cell.

Given a dataset, a grid and a group scheme, assignment fills each
group's cells (row-major within the group's rectangle) with the
trajectories matching the group's filter, in dataset order, leaving
surplus cells empty and surplus trajectories off-screen — exactly the
paged small-multiple behaviour the paper describes.  A ``page`` offset
scrolls each group through its filtered population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.layout.grid import BezelAwareGrid, Cell
from repro.layout.groups import TrajectoryGroups
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["CellAssignment", "assign_groups_to_cells"]


@dataclass(frozen=True)
class CellAssignment:
    """The result of laying a dataset out on a grid.

    Attributes
    ----------
    grid:
        The grid assigned over.
    cell_to_traj:
        (n_cells,) int array: dataset index shown in each cell, or -1
        for empty cells.
    traj_to_cell:
        Mapping from dataset index to cell index for displayed
        trajectories.
    group_of_cell:
        (n_cells,) int array: index of the owning group per cell
        (-1 for cells outside every group).
    groups:
        The group scheme used.
    """

    grid: BezelAwareGrid
    cell_to_traj: np.ndarray
    traj_to_cell: dict[int, int]
    group_of_cell: np.ndarray
    groups: TrajectoryGroups | None = None

    @property
    def n_displayed(self) -> int:
        """How many trajectories are on screen."""
        return int((self.cell_to_traj >= 0).sum())

    def displayed_indices(self) -> np.ndarray:
        """Sorted dataset indices of displayed trajectories."""
        shown = self.cell_to_traj[self.cell_to_traj >= 0]
        return np.sort(shown)

    def coverage(self, dataset_size: int) -> float:
        """Fraction of the dataset visible at once."""
        if dataset_size <= 0:
            return 0.0
        return self.n_displayed / dataset_size

    def cell_of(self, traj_index: int) -> Cell | None:
        """The cell showing dataset index ``traj_index``, if any."""
        ci = self.traj_to_cell.get(int(traj_index))
        return None if ci is None else self.grid.cell(ci)

    def group_name_of_traj(self, traj_index: int) -> str | None:
        """Name of the group containing a displayed trajectory."""
        ci = self.traj_to_cell.get(int(traj_index))
        if ci is None or self.groups is None:
            return None
        gi = int(self.group_of_cell[ci])
        if gi < 0:
            return None
        return list(self.groups)[gi].name


def assign_groups_to_cells(
    dataset: TrajectoryDataset,
    grid: BezelAwareGrid,
    groups: TrajectoryGroups,
    *,
    page: int = 0,
) -> CellAssignment:
    """Fill each group's cells with its filtered trajectories.

    ``page`` scrolls every group forward by ``page * capacity``
    trajectories within its filtered population (clamped; a page past
    the end leaves the group empty).
    """
    if page < 0:
        raise ValueError("page must be >= 0")
    n_cells = grid.n_cells
    cell_to_traj = np.full(n_cells, -1, dtype=np.int64)
    group_of_cell = np.full(n_cells, -1, dtype=np.int64)
    traj_to_cell: dict[int, int] = {}

    for gi, spec in enumerate(groups):
        cells = spec.cell_indices(grid)
        group_of_cell[cells] = gi
        matching = dataset.indices_where(spec.filter)
        start = page * len(cells)
        chunk = matching[start : start + len(cells)]
        for slot, ds_index in zip(cells, chunk):
            cell_to_traj[slot] = ds_index
            traj_to_cell[int(ds_index)] = int(slot)
    return CellAssignment(
        grid=grid,
        cell_to_traj=cell_to_traj,
        traj_to_cell=traj_to_cell,
        group_of_cell=group_of_cell,
        groups=groups,
    )


def assign_sequential(
    dataset: TrajectoryDataset, grid: BezelAwareGrid, *, page: int = 0
) -> CellAssignment:
    """Ungrouped assignment: dataset order, row-major across the grid."""
    if page < 0:
        raise ValueError("page must be >= 0")
    n_cells = grid.n_cells
    cell_to_traj = np.full(n_cells, -1, dtype=np.int64)
    traj_to_cell: dict[int, int] = {}
    start = page * n_cells
    for slot, ds_index in enumerate(range(start, min(start + n_cells, len(dataset)))):
        cell_to_traj[slot] = ds_index
        traj_to_cell[ds_index] = slot
    return CellAssignment(
        grid=grid,
        cell_to_traj=cell_to_traj,
        traj_to_cell=traj_to_cell,
        group_of_cell=np.full(n_cells, -1, dtype=np.int64),
        groups=None,
    )
