"""Trajectory grouping — the rectangular data bins of §IV-C.2.

"The user can define rectangular groups that encompass a contiguous
subset of trajectories.  A set of filters can be associated with each
group ...  Groups can be given different background colors."

A :class:`GroupSpec` is a rectangle in *grid cell coordinates* plus a
metadata filter and a background color; :class:`TrajectoryGroups`
manages a non-overlapping collection of them over one grid, including
the paper's five-zone scheme of Fig. 3 (on/west/east/north/south of the
foraging trail).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.layout.grid import BezelAwareGrid
from repro.trajectory.filters import CaptureZoneFilter, MetaFilter, TrueFilter

__all__ = ["GroupSpec", "TrajectoryGroups", "FIG3_GROUP_COLORS"]

#: Fig. 3's background colors: on=blue, west=red, east=yellow,
#: north=gray, south=green (RGB in [0, 1]).
FIG3_GROUP_COLORS: dict[str, tuple[float, float, float]] = {
    "on": (0.20, 0.35, 0.80),
    "west": (0.85, 0.25, 0.20),
    "east": (0.90, 0.80, 0.20),
    "north": (0.55, 0.55, 0.55),
    "south": (0.25, 0.70, 0.30),
}


@dataclass(frozen=True)
class GroupSpec:
    """A rectangular group bin.

    Attributes
    ----------
    name:
        Display label.
    gcol0, grow0:
        Top-left grid cell (inclusive).
    gcols, grows:
        Extent in grid cells.
    filter:
        Metadata filter selecting which trajectories may fill the bin.
    color:
        Background RGB in [0, 1].
    """

    name: str
    gcol0: int
    grow0: int
    gcols: int
    grows: int
    filter: MetaFilter = field(default_factory=TrueFilter)
    color: tuple[float, float, float] = (0.15, 0.15, 0.18)

    def __post_init__(self) -> None:
        if self.gcols < 1 or self.grows < 1:
            raise ValueError("group must span at least one cell")
        if self.gcol0 < 0 or self.grow0 < 0:
            raise ValueError("group origin must be non-negative")
        if not all(0.0 <= c <= 1.0 for c in self.color):
            raise ValueError("color channels must be in [0, 1]")

    @property
    def capacity(self) -> int:
        """Number of cells (trajectory slots) in the bin."""
        return self.gcols * self.grows

    def cell_indices(self, grid: BezelAwareGrid) -> np.ndarray:
        """Row-major grid cell indices covered by this group."""
        if self.gcol0 + self.gcols > grid.n_cols or self.grow0 + self.grows > grid.n_rows:
            raise ValueError(
                f"group {self.name!r} ({self.gcol0}+{self.gcols} x {self.grow0}+{self.grows}) "
                f"exceeds the {grid.n_cols}x{grid.n_rows} grid"
            )
        cols = np.arange(self.gcol0, self.gcol0 + self.gcols)
        rows = np.arange(self.grow0, self.grow0 + self.grows)
        return (rows[:, None] * grid.n_cols + cols[None, :]).ravel()

    def overlaps(self, other: "GroupSpec") -> bool:
        """Whether two bins share any cell."""
        return not (
            self.gcol0 + self.gcols <= other.gcol0
            or other.gcol0 + other.gcols <= self.gcol0
            or self.grow0 + self.grows <= other.grow0
            or other.grow0 + other.grows <= self.grow0
        )


class TrajectoryGroups:
    """A validated, non-overlapping collection of group bins on a grid."""

    def __init__(self, grid: BezelAwareGrid, groups: list[GroupSpec] | None = None) -> None:
        self.grid = grid
        self._groups: list[GroupSpec] = []
        for g in groups or []:
            self.add(g)

    def add(self, group: GroupSpec) -> None:
        """Add a bin; rejects grid overflow and overlap with existing bins."""
        group.cell_indices(self.grid)  # validates bounds
        for existing in self._groups:
            if group.overlaps(existing):
                raise ValueError(
                    f"group {group.name!r} overlaps existing group {existing.name!r}"
                )
        self._groups.append(group)

    def __iter__(self):
        return iter(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    def __getitem__(self, name: str) -> GroupSpec:
        for g in self._groups:
            if g.name == name:
                return g
        raise KeyError(f"no group named {name!r}")

    @property
    def total_capacity(self) -> int:
        return sum(g.capacity for g in self._groups)

    def names(self) -> list[str]:
        """Group names in definition order."""
        return [g.name for g in self._groups]

    @classmethod
    def fig3_scheme(cls, grid: BezelAwareGrid) -> "TrajectoryGroups":
        """The five-zone grouping of Fig. 3.

        Grid columns are split into five vertical bands — on, west,
        east, north, south — each filtered to its capture zone and
        painted with its Fig. 3 background color.  Bands divide the
        columns as evenly as possible.
        """
        zones = ["on", "west", "east", "north", "south"]
        n = len(zones)
        base, extra = divmod(grid.n_cols, n)
        if base == 0:
            raise ValueError(
                f"grid has only {grid.n_cols} columns; needs >= {n} for the Fig. 3 scheme"
            )
        groups = []
        col = 0
        for i, zone in enumerate(zones):
            w = base + (1 if i < extra else 0)
            groups.append(
                GroupSpec(
                    name=zone,
                    gcol0=col,
                    grow0=0,
                    gcols=w,
                    grows=grid.n_rows,
                    filter=CaptureZoneFilter(zone),
                    color=FIG3_GROUP_COLORS[zone],
                )
            )
            col += w
        return cls(grid, groups)
