"""Layout presets.

§IV-C.2: "The user can switch between a number of configurations by
pressing a number on the keypad: '1', '2', etc...  Some of the
pre-configured layouts provided include a 15x4, 24x6, and 36x12."

The presets below bind those grids to keypad keys.  The 36x12 grid
yields 432 simultaneous cells — the paper's "it was possible to
simultaneously visualize 432 trajectories ... 85% of the data" with
the ~500-trace study dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.display.viewport import Viewport
from repro.layout.grid import BezelAwareGrid

__all__ = ["LayoutConfig", "LAYOUT_PRESETS", "preset"]


@dataclass(frozen=True)
class LayoutConfig:
    """A named small-multiple grid configuration."""

    key: str
    n_cols: int
    n_rows: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_cols < 1 or self.n_rows < 1:
            raise ValueError("layout must be at least 1x1")

    @property
    def n_cells(self) -> int:
        return self.n_cols * self.n_rows

    def build(self, viewport: Viewport) -> BezelAwareGrid:
        """Instantiate the grid on a viewport."""
        return BezelAwareGrid(viewport, self.n_cols, self.n_rows)

    def coverage(self, dataset_size: int) -> float:
        """Fraction of a dataset visible at once under this layout."""
        if dataset_size <= 0:
            return 0.0
        return min(1.0, self.n_cells / dataset_size)


#: The paper's keypad presets ('1', '2', '3').
LAYOUT_PRESETS: dict[str, LayoutConfig] = {
    "1": LayoutConfig("1", 15, 4, "coarse (60 cells)"),
    "2": LayoutConfig("2", 24, 6, "medium (144 cells)"),
    "3": LayoutConfig("3", 36, 12, "fine (432 cells)"),
}


def preset(key: str) -> LayoutConfig:
    """Look up a keypad preset ('1', '2', '3')."""
    try:
        return LAYOUT_PRESETS[key]
    except KeyError:
        raise KeyError(
            f"no layout preset bound to key {key!r}; available: {sorted(LAYOUT_PRESETS)}"
        ) from None
