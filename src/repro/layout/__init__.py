"""Small-multiple layout engine.

Places hundreds of trajectory cells on the wall viewport (§IV-C.2):
bezel-aware grids (cells never straddle a mullion — the paper's
pre-configured 15x4, 24x6 and 36x12 layouts were "chosen to avoid a
trajectory overlapping with a bezel"), a naive uniform grid for the
bezel ablation (A1), rectangular group bins with per-group filters and
background colors, and the keypad-switchable layout presets.
"""

from repro.layout.grid import BezelAwareGrid, Cell, NaiveGrid
from repro.layout.configs import LAYOUT_PRESETS, LayoutConfig, preset
from repro.layout.groups import GroupSpec, TrajectoryGroups
from repro.layout.cells import CellAssignment, assign_groups_to_cells, assign_sequential

__all__ = [
    "Cell",
    "BezelAwareGrid",
    "NaiveGrid",
    "LayoutConfig",
    "LAYOUT_PRESETS",
    "preset",
    "GroupSpec",
    "TrajectoryGroups",
    "CellAssignment",
    "assign_groups_to_cells",
    "assign_sequential",
]
