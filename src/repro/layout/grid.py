"""Small-multiple grid construction.

Two strategies over the same interface:

* :class:`BezelAwareGrid` — the paper's approach: grid columns are
  distributed among panel columns (and rows among panel rows) so every
  cell lies entirely inside one panel's active area.  When the grid
  does not divide the panel grid evenly (e.g. 15 columns over 6
  panels), panels receive 2 or 3 columns each and cell widths differ
  slightly per panel; no cell ever straddles a mullion.
* :class:`NaiveGrid` — uniform division of the viewport's physical
  rectangle, ignoring bezels.  Cells may straddle mullions; used by
  ablation A1 to quantify what bezel-awareness buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.display.viewport import Viewport

__all__ = ["Cell", "BezelAwareGrid", "NaiveGrid"]


@dataclass(frozen=True)
class Cell:
    """One small-multiple cell.

    Attributes
    ----------
    index:
        Row-major cell index within the grid.
    gcol, grow:
        Grid column/row of the cell.
    rect:
        (x0, y0, x1, y1) wall-meter rectangle of the cell.
    """

    index: int
    gcol: int
    grow: int
    rect: tuple[float, float, float, float]

    @property
    def width(self) -> float:
        return self.rect[2] - self.rect[0]

    @property
    def height(self) -> float:
        return self.rect[3] - self.rect[1]

    @property
    def center(self) -> tuple[float, float]:
        return ((self.rect[0] + self.rect[2]) / 2.0, (self.rect[1] + self.rect[3]) / 2.0)

    def area_px(self, px_per_m_x: float, px_per_m_y: float) -> float:
        """Approximate pixel area given panel pixel densities."""
        return self.width * px_per_m_x * self.height * px_per_m_y


def _distribute(n_items: int, n_bins: int) -> np.ndarray:
    """Split ``n_items`` into ``n_bins`` near-equal integer parts.

    The first ``n_items % n_bins`` bins get the extra item, so the
    result is deterministic and as balanced as possible.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    base, extra = divmod(n_items, n_bins)
    out = np.full(n_bins, base, dtype=np.int64)
    out[:extra] += 1
    return out


class BezelAwareGrid:
    """A bezel-avoiding ``n_cols`` x ``n_rows`` grid over a viewport.

    Raises ``ValueError`` if the grid is too sparse to give every panel
    column/row at least... cells are allowed to be zero in a panel only
    when the grid has fewer columns than panels; the distribution then
    simply leaves trailing panels empty, which still never straddles.
    """

    def __init__(self, viewport: Viewport, n_cols: int, n_rows: int) -> None:
        if n_cols < 1 or n_rows < 1:
            raise ValueError("grid must be at least 1x1")
        self.viewport = viewport
        self.n_cols = int(n_cols)
        self.n_rows = int(n_rows)
        self._cells = self._build()

    def _build(self) -> list[Cell]:
        vp = self.viewport
        wall = vp.wall
        cols_per_panel = _distribute(self.n_cols, vp.cols)
        rows_per_panel = _distribute(self.n_rows, vp.rows)
        # Grid-column -> (panel col, x0, x1) assignments.
        x_edges: list[tuple[float, float]] = []
        for pc, k in enumerate(cols_per_panel):
            if k == 0:
                continue
            panel_x0 = (vp.col0 + pc) * wall.pitch_x
            widths = np.full(k, wall.panel_width / k)
            edges = panel_x0 + np.concatenate([[0.0], np.cumsum(widths)])
            x_edges.extend(zip(edges[:-1], edges[1:]))
        y_edges: list[tuple[float, float]] = []
        for pr, k in enumerate(rows_per_panel):
            if k == 0:
                continue
            panel_y0 = (vp.row0 + pr) * wall.pitch_y
            heights = np.full(k, wall.panel_height / k)
            edges = panel_y0 + np.concatenate([[0.0], np.cumsum(heights)])
            y_edges.extend(zip(edges[:-1], edges[1:]))
        cells: list[Cell] = []
        index = 0
        for grow, (y0, y1) in enumerate(y_edges):
            for gcol, (x0, x1) in enumerate(x_edges):
                cells.append(Cell(index, gcol, grow, (x0, y0, x1, y1)))
                index += 1
        return cells

    # Shared grid interface ----------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self._cells)

    def cells(self) -> list[Cell]:
        """All cells, row-major."""
        return list(self._cells)

    def cell(self, index: int) -> Cell:
        """Cell by row-major index."""
        return self._cells[index]

    def cell_at(self, gcol: int, grow: int) -> Cell:
        """Cell by grid column/row."""
        if not (0 <= gcol < self.n_cols and 0 <= grow < self.n_rows):
            raise IndexError(f"cell ({gcol}, {grow}) outside {self.n_cols}x{self.n_rows} grid")
        return self._cells[grow * self.n_cols + gcol]

    def rects(self) -> np.ndarray:
        """(N, 4) array of all cell rectangles (wall meters)."""
        return np.asarray([c.rect for c in self._cells], dtype=np.float64)

    def straddle_count(self) -> int:
        """Number of cells whose rect crosses a mullion (0 by design)."""
        return int(self.viewport.wall.rects_straddle_bezel(self.rects()).sum())

    def mean_cell_pixels(self) -> float:
        """Mean pixels per cell (cells lie inside single panels)."""
        wall = self.viewport.wall
        sx = wall.panel_px_width / wall.panel_width
        sy = wall.panel_px_height / wall.panel_height
        areas = [c.area_px(sx, sy) for c in self._cells]
        return float(np.mean(areas)) if areas else 0.0


class NaiveGrid(BezelAwareGrid):
    """Uniform grid ignoring bezels (ablation A1).

    Divides the viewport's full physical rectangle — mullions included —
    into equal cells, exactly what a bezel-unaware port of a desktop
    small-multiple view would do.
    """

    def _build(self) -> list[Cell]:
        vp = self.viewport
        x0, y0, x1, y1 = vp.rect_m
        xs = np.linspace(x0, x1, self.n_cols + 1)
        ys = np.linspace(y0, y1, self.n_rows + 1)
        cells: list[Cell] = []
        index = 0
        for grow in range(self.n_rows):
            for gcol in range(self.n_cols):
                rect = (float(xs[gcol]), float(ys[grow]), float(xs[gcol + 1]), float(ys[grow + 1]))
                cells.append(Cell(index, gcol, grow, rect))
                index += 1
        return cells
