"""Batch self-organizing map.

A from-scratch, fully vectorized batch SOM.  The lattice is a 2D grid
of units that doubles as a small-multiple layout: after training, unit
(i, j) of the SOM occupies cell (i, j) of the wall grid, so
neighbouring cells show similar movement patterns — the property that
makes cluster-level small multiples browsable.

Batch formulation per epoch:

1. BMU assignment: nearest unit per sample (one GEMM-based distance
   matrix via :func:`repro.util.geometry.pairwise_distances`, chunked).
2. Neighbourhood-weighted update: every unit moves to the
   weighted mean of all samples, weights being the Gaussian lattice
   distance between the unit and each sample's BMU — computed as
   ``H @ S`` where ``H`` is the (units x units) neighbourhood matrix
   and ``S`` the per-unit sample sums, i.e. two small GEMMs regardless
   of dataset size.

The neighbourhood radius anneals from half the lattice diagonal to
sub-unit width.  Quantization error is logged per epoch; the batch
update provably does not increase it at zero radius, and the property
tests assert monotone non-increase in the annealed tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.geometry import pairwise_distances

__all__ = ["SelfOrganizingMap", "SomTrainLog"]


@dataclass
class SomTrainLog:
    """Per-epoch training diagnostics."""

    quantization_error: list[float] = field(default_factory=list)
    radius: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.quantization_error)


class SelfOrganizingMap:
    """A ``rows`` x ``cols`` batch SOM.

    Parameters
    ----------
    rows, cols:
        Lattice dimensions (match the wall layout you intend to show).
    dim:
        Feature dimensionality.
    seed:
        Weight-initialization seed.
    """

    def __init__(self, rows: int, cols: int, dim: int, *, seed: int = 0) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("lattice must be at least 1x1")
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.rows = int(rows)
        self.cols = int(cols)
        self.dim = int(dim)
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0.0, 0.1, size=(rows * cols, dim))
        # lattice coordinates of each unit, for neighbourhood distances
        r, c = np.divmod(np.arange(rows * cols), cols)
        self._lattice = np.stack([r, c], axis=1).astype(np.float64)
        self._lattice_d2 = pairwise_distances(self._lattice, self._lattice) ** 2

    @property
    def n_units(self) -> int:
        return self.rows * self.cols

    def unit_position(self, unit: int) -> tuple[int, int]:
        """(row, col) lattice position of a unit index."""
        if not 0 <= unit < self.n_units:
            raise IndexError(f"unit {unit} outside lattice of {self.n_units}")
        return divmod(unit, self.cols)

    # Assignment ------------------------------------------------------------
    def bmu(self, data: np.ndarray, *, chunk: int = 8192) -> np.ndarray:
        """(N,) best-matching-unit index per sample, chunked GEMM."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != self.dim:
            raise ValueError(f"data must be (N, {self.dim}), got {data.shape}")
        out = np.empty(len(data), dtype=np.int64)
        for lo in range(0, len(data), chunk):
            hi = min(lo + chunk, len(data))
            d = pairwise_distances(data[lo:hi], self.weights)
            out[lo:hi] = np.argmin(d, axis=1)
        return out

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean distance from samples to their BMU weights."""
        data = np.asarray(data, dtype=np.float64)
        bmus = self.bmu(data)
        return float(np.linalg.norm(data - self.weights[bmus], axis=1).mean())

    # Training ------------------------------------------------------------------
    def fit(
        self,
        data: np.ndarray,
        *,
        epochs: int = 20,
        radius_start: float | None = None,
        radius_end: float = 0.5,
    ) -> SomTrainLog:
        """Batch-train on (N, dim) data; returns the per-epoch log."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != self.dim:
            raise ValueError(f"data must be (N, {self.dim}), got {data.shape}")
        if len(data) == 0:
            raise ValueError("cannot fit on empty data")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if radius_start is None:
            radius_start = max(self.rows, self.cols) / 2.0
        if radius_end <= 0 or radius_start < radius_end:
            raise ValueError("need radius_start >= radius_end > 0")
        log = SomTrainLog()
        decay = (radius_end / radius_start) ** (1.0 / max(1, epochs - 1))
        radius = radius_start
        for _ in range(epochs):
            bmus = self.bmu(data)
            # per-unit sample sums & counts via bincount on BMU labels
            counts = np.bincount(bmus, minlength=self.n_units).astype(np.float64)
            sums = np.zeros((self.n_units, self.dim))
            np.add.at(sums, bmus, data)
            # neighbourhood smoothing: H (units x units) Gaussian kernel
            h = np.exp(-self._lattice_d2 / (2.0 * radius * radius))
            denom = h @ counts
            numer = h @ sums
            nonempty = denom > 1e-12
            self.weights[nonempty] = numer[nonempty] / denom[nonempty, None]
            log.quantization_error.append(self.quantization_error(data))
            log.radius.append(radius)
            radius = max(radius * decay, radius_end)
        return log

    # Topology diagnostics ---------------------------------------------------
    def topographic_error(self, data: np.ndarray) -> float:
        """Fraction of samples whose two best units are not lattice
        neighbours — the standard SOM topology-preservation measure."""
        data = np.asarray(data, dtype=np.float64)
        errs = 0
        chunk = 4096
        for lo in range(0, len(data), chunk):
            hi = min(lo + chunk, len(data))
            d = pairwise_distances(data[lo:hi], self.weights)
            order = np.argpartition(d, 1, axis=1)[:, :2]
            # ensure column 0 is the true argmin of the pair
            swap = d[np.arange(hi - lo), order[:, 0]] > d[np.arange(hi - lo), order[:, 1]]
            order[swap] = order[swap][:, ::-1]
            p0 = self._lattice[order[:, 0]]
            p1 = self._lattice[order[:, 1]]
            lat_d = np.abs(p0 - p1).max(axis=1)  # Chebyshev adjacency
            errs += int((lat_d > 1.0).sum())
        return errs / max(1, len(data))
