"""Cluster-average trajectories.

§VI-C: "The small-multiple layout would be adapted to visualize and
juxtapose cluster averages instead of showing individual trajectories."
A cluster average is itself a :class:`~repro.trajectory.model.Trajectory`
(mean resampled polyline on a mean time base), so the ordinary layout,
render and query machinery applies to it unchanged — including
coordinated brushing at the cluster level.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory, TrajectoryMeta
from repro.trajectory.resample import resample_by_count

__all__ = ["cluster_average_trajectory", "cluster_average_dataset"]


def cluster_average_trajectory(
    members: list[Trajectory], n_points: int = 64, cluster_id: int = -1
) -> Trajectory:
    """Mean trajectory of a cluster.

    Each member is resampled to ``n_points`` equal-time samples; the
    average takes the pointwise mean of positions and of (relative)
    timestamps.  Metadata records the member count and the majority
    capture zone so cluster cells can still be group-binned.
    """
    if not members:
        raise ValueError("cannot average an empty cluster")
    if n_points < 2:
        raise ValueError("n_points must be >= 2")
    pos = np.zeros((n_points, 2))
    t = np.zeros(n_points)
    zones: dict[str, int] = {}
    for m in members:
        rs = resample_by_count(m, n_points)
        pos += rs.positions
        t += rs.times - rs.times[0]
        zones[m.meta.capture_zone] = zones.get(m.meta.capture_zone, 0) + 1
    pos /= len(members)
    t /= len(members)
    # guard: mean timestamps are strictly increasing because each
    # member's are, but enforce against float ties on tiny clusters
    eps = 1e-9 * max(1.0, t[-1])
    t = np.maximum.accumulate(t + eps * np.arange(n_points))
    majority_zone = max(zones, key=zones.get)
    meta = TrajectoryMeta(
        capture_zone=majority_zone,
        direction="outbound",
        extra={"cluster_size": len(members), "zone_histogram": zones},
    )
    return Trajectory(pos, t, meta, traj_id=cluster_id)


def cluster_average_dataset(
    dataset: TrajectoryDataset,
    labels: np.ndarray,
    n_clusters: int,
    *,
    n_points: int = 64,
) -> TrajectoryDataset:
    """One average trajectory per non-empty cluster, id = cluster index.

    Empty clusters are skipped (their wall cell renders empty); the
    returned dataset is ordered by cluster index.
    """
    labels = np.asarray(labels)
    if len(labels) != len(dataset):
        raise ValueError("labels must match the dataset length")
    out = TrajectoryDataset(name=f"{dataset.name}|cluster-averages")
    for c in range(n_clusters):
        member_idx = np.flatnonzero(labels == c)
        if len(member_idx) == 0:
            continue
        members = [dataset[int(i)] for i in member_idx]
        out.append(cluster_average_trajectory(members, n_points, cluster_id=c))
    return out
