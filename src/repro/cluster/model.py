"""The fitted cluster model the multi-scale explorer drills through.

A :class:`ClusterModel` packages a trained SOM (or any labeling), the
source dataset, labels, and the cluster-average dataset; it answers
"which trajectories are in cluster c?" (the zoom-in of §VI-C) and
exposes the averages as an ordinary dataset for layout/query/render.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.averages import cluster_average_dataset
from repro.cluster.features import FeatureSpec, dataset_features
from repro.cluster.som import SelfOrganizingMap, SomTrainLog
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["ClusterModel", "fit_som_clusters"]


@dataclass(frozen=True)
class ClusterModel:
    """A clustering of a trajectory dataset.

    Attributes
    ----------
    source:
        The full-resolution dataset.
    labels:
        (T,) cluster index per trajectory.
    n_clusters:
        Number of cluster slots (SOM units); some may be empty.
    averages:
        Cluster-average dataset (one entry per non-empty cluster;
        ``traj_id`` is the cluster index).
    som:
        The trained SOM, when SOM-fitted (None for external labelings).
    train_log:
        SOM training log, when available.
    """

    source: TrajectoryDataset
    labels: np.ndarray
    n_clusters: int
    averages: TrajectoryDataset
    som: SelfOrganizingMap | None = None
    train_log: SomTrainLog | None = None

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.source):
            raise ValueError("labels must match the source dataset length")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if len(self.labels) and (self.labels.min() < 0 or self.labels.max() >= self.n_clusters):
            raise ValueError("labels out of range")

    def members_of(self, cluster: int) -> np.ndarray:
        """Source dataset indices belonging to a cluster."""
        if not 0 <= cluster < self.n_clusters:
            raise IndexError(f"cluster {cluster} outside [0, {self.n_clusters})")
        return np.flatnonzero(self.labels == cluster)

    def member_dataset(self, cluster: int) -> TrajectoryDataset:
        """The zoom-in dataset of one cluster (§VI-C drill-down)."""
        idx = self.members_of(cluster)
        out = TrajectoryDataset(name=f"{self.source.name}|cluster{cluster}")
        for i in idx:
            out.append(self.source[int(i)])
        return out

    def cluster_sizes(self) -> np.ndarray:
        """(n_clusters,) member counts."""
        return np.bincount(self.labels, minlength=self.n_clusters)

    @property
    def n_nonempty(self) -> int:
        return int((self.cluster_sizes() > 0).sum())

    def compression_ratio(self) -> float:
        """Source trajectories per displayed cluster cell."""
        return len(self.source) / max(1, self.n_nonempty)


def fit_som_clusters(
    dataset: TrajectoryDataset,
    rows: int,
    cols: int,
    *,
    spec: FeatureSpec | None = None,
    epochs: int = 20,
    seed: int = 0,
    average_points: int = 64,
) -> ClusterModel:
    """Featurize, train a ``rows x cols`` SOM, and build the model.

    The lattice dimensions should match the wall layout that will show
    the averages, so lattice neighbourhoods land in adjacent cells.
    """
    feats, spec = dataset_features(dataset, spec)
    som = SelfOrganizingMap(rows, cols, feats.shape[1], seed=seed)
    log = som.fit(feats, epochs=epochs)
    labels = som.bmu(feats)
    averages = cluster_average_dataset(
        dataset, labels, som.n_units, n_points=average_points
    )
    return ClusterModel(
        source=dataset,
        labels=labels,
        n_clusters=som.n_units,
        averages=averages,
        som=som,
        train_log=log,
    )
