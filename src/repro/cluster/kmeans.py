"""Lloyd's k-means, the clustering comparison baseline.

The SOM buys lattice topology (neighbouring wall cells show similar
clusters); k-means is the topology-free reference point.  E9 reports
quantization error of both at equal unit counts so the cost of the
SOM's topology constraint is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.geometry import pairwise_distances

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Fitted k-means model."""

    centers: np.ndarray      # (K, D)
    labels: np.ndarray       # (N,)
    inertia: float           # mean distance to assigned center
    n_iter: int
    converged: bool


def _assign(data: np.ndarray, centers: np.ndarray, chunk: int = 8192) -> np.ndarray:
    labels = np.empty(len(data), dtype=np.int64)
    for lo in range(0, len(data), chunk):
        hi = min(lo + chunk, len(data))
        labels[lo:hi] = np.argmin(pairwise_distances(data[lo:hi], centers), axis=1)
    return labels


def kmeans(
    data: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> KMeansResult:
    """Lloyd iterations with k-means++ initialization.

    Empty clusters are re-seeded to the farthest point from its current
    center, the standard fix keeping ``k`` effective clusters.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    n = len(data)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)

    # k-means++ seeding
    centers = np.empty((k, data.shape[1]))
    centers[0] = data[rng.integers(n)]
    closest_d2 = np.sum((data - centers[0]) ** 2, axis=1)
    for j in range(1, k):
        probs = closest_d2 / max(closest_d2.sum(), 1e-300)
        centers[j] = data[rng.choice(n, p=probs)]
        d2 = np.sum((data - centers[j]) ** 2, axis=1)
        np.minimum(closest_d2, d2, out=closest_d2)

    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        labels = _assign(data, centers)
        new_centers = np.zeros_like(centers)
        counts = np.bincount(labels, minlength=k).astype(np.float64)
        np.add.at(new_centers, labels, data)
        nonempty = counts > 0
        new_centers[nonempty] /= counts[nonempty, None]
        if np.any(~nonempty):
            # re-seed empty clusters at the worst-fit points
            d = np.linalg.norm(data - new_centers[labels], axis=1)
            far = np.argsort(d)[::-1]
            for j, slot in enumerate(np.flatnonzero(~nonempty)):
                new_centers[slot] = data[far[j % n]]
        shift = float(np.linalg.norm(new_centers - centers, axis=1).max())
        centers = new_centers
        if shift < tol:
            converged = True
            break
    labels = _assign(data, centers)
    inertia = float(np.linalg.norm(data - centers[labels], axis=1).mean())
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iter=it, converged=converged)
