"""Trajectory clustering for multi-scale exploration (§VI-C).

The paper's scalability proposal: "Instead of showing individual
trajectories, we can cluster those trajectories based on feature
similarity by employing self-organizing maps ... The unit of
exploration becomes a cluster of trajectories ... The small-multiple
layout would be adapted to visualize and juxtapose cluster averages ...
a user can interactively 'zoom in' on a particular cluster of interest
and query the cluster at the individual-trajectory level."

This subpackage implements that path from scratch: fixed-length
trajectory feature vectors, a vectorized batch self-organizing map
whose lattice *is* a small-multiple grid, cluster-average trajectories
renderable in the ordinary pipeline, a k-means comparison baseline, and
the :class:`ClusterModel` the multi-scale explorer drills through.
"""

from repro.cluster.features import FeatureSpec, trajectory_features, dataset_features
from repro.cluster.som import SelfOrganizingMap, SomTrainLog
from repro.cluster.kmeans import kmeans
from repro.cluster.averages import cluster_average_trajectory, cluster_average_dataset
from repro.cluster.model import ClusterModel, fit_som_clusters

__all__ = [
    "FeatureSpec",
    "trajectory_features",
    "dataset_features",
    "SelfOrganizingMap",
    "SomTrainLog",
    "kmeans",
    "cluster_average_trajectory",
    "cluster_average_dataset",
    "ClusterModel",
    "fit_som_clusters",
]
