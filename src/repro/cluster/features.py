"""Trajectory feature extraction.

Clustering needs fixed-length vectors.  Following the trajectory-SOM
literature the paper cites (Schreck et al.), each trajectory is
resampled to ``n_points`` equal-time samples; the feature vector
concatenates the normalized XY polyline with optional global shape
descriptors (straightness, sinuosity, duration, net displacement),
each z-scored across the dataset so no component dominates the
Euclidean metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.metrics import (
    net_displacement,
    sinuosity,
    straightness_index,
)
from repro.trajectory.model import Trajectory
from repro.trajectory.resample import resample_by_count

__all__ = ["FeatureSpec", "trajectory_features", "dataset_features"]


@dataclass(frozen=True)
class FeatureSpec:
    """Configuration of the feature map.

    Attributes
    ----------
    n_points:
        Resampled polyline length (each contributes x and y).
    scale:
        Spatial normalization divisor (arena radius, typically) so
        coordinates land in [-1, 1].
    include_shape:
        Append the 4 global shape descriptors.
    shape_weight:
        Relative weight of the shape block vs. the polyline block.
    """

    n_points: int = 32
    scale: float = 0.5
    include_shape: bool = True
    shape_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.n_points < 2:
            raise ValueError("n_points must be >= 2")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.shape_weight < 0:
            raise ValueError("shape_weight must be >= 0")

    @property
    def dim(self) -> int:
        return 2 * self.n_points + (4 if self.include_shape else 0)


def trajectory_features(traj: Trajectory, spec: FeatureSpec) -> np.ndarray:
    """Raw (un-standardized) feature vector of one trajectory."""
    rs = resample_by_count(traj, spec.n_points)
    poly = (rs.positions / spec.scale).ravel()
    if not spec.include_shape:
        return poly
    shape = np.array(
        [
            straightness_index(traj),
            sinuosity(traj),
            traj.duration,
            net_displacement(traj) / spec.scale,
        ],
        dtype=np.float64,
    )
    return np.concatenate([poly, shape])


def dataset_features(
    dataset: TrajectoryDataset, spec: FeatureSpec | None = None
) -> tuple[np.ndarray, FeatureSpec]:
    """(T, D) standardized feature matrix for a dataset.

    The shape block (when present) is z-scored per column and weighted
    by ``spec.shape_weight``; the polyline block is already normalized
    by the arena scale.  Returns the matrix and the spec used.
    """
    spec = spec or FeatureSpec()
    if len(dataset) == 0:
        raise ValueError("cannot featurize an empty dataset")
    feats = np.empty((len(dataset), spec.dim), dtype=np.float64)
    for i, traj in enumerate(dataset):
        feats[i] = trajectory_features(traj, spec)
    if spec.include_shape:
        block = feats[:, 2 * spec.n_points :]
        mean = block.mean(axis=0)
        std = block.std(axis=0)
        std[std == 0] = 1.0
        block -= mean
        block /= std
        block *= spec.shape_weight
    return feats, spec
