"""Shared low-level utilities: seeded RNG streams, geometry kernels,
argument validation, and physical units.

These modules contain no domain logic; everything here is a small,
heavily-tested building block used by the trajectory, display, stereo,
layout, render and query subsystems.
"""

from repro.util.fileio import atomic_write, atomic_write_bytes, atomic_write_text
from repro.util.rng import RngStream, derive_rng, spawn_streams
from repro.util.units import (
    CM_PER_INCH,
    Degrees,
    Meters,
    Pixels,
    Seconds,
    deg_to_rad,
    mm_to_m,
    rad_to_deg,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_shape,
)
from repro.util.geometry import (
    circle_segment_intersections,
    clip_segments_to_circle,
    pairwise_distances,
    point_segment_distance,
    points_in_circle,
    points_in_rect,
    polyline_length,
    rotate2d,
    segment_circle_overlap_mask,
    unit_vector,
)

__all__ = [
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "RngStream",
    "derive_rng",
    "spawn_streams",
    "CM_PER_INCH",
    "Degrees",
    "Meters",
    "Pixels",
    "Seconds",
    "deg_to_rad",
    "mm_to_m",
    "rad_to_deg",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_shape",
    "circle_segment_intersections",
    "clip_segments_to_circle",
    "pairwise_distances",
    "point_segment_distance",
    "points_in_circle",
    "points_in_rect",
    "polyline_length",
    "rotate2d",
    "segment_circle_overlap_mask",
    "unit_vector",
]
