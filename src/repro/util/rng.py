"""Deterministic random-number streams.

Every stochastic component in the reproduction (ant behaviour
simulation, SOM initialisation, synthetic workload generation) draws
from a named, seeded stream so that experiments are bit-reproducible
across runs and machines.  Streams are derived from a root seed with
``numpy.random.SeedSequence`` spawning, which guarantees statistical
independence between streams regardless of how many are created.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["RngStream", "derive_rng", "spawn_streams"]

#: Shape argument accepted by the NumPy generator draw methods.
SizeLike = int | tuple[int, ...] | None

#: Root seed used by the benchmark harness when none is supplied.
DEFAULT_ROOT_SEED = 20120101  # SC 2012


def derive_rng(root_seed: int, *keys: int | str) -> np.random.Generator:
    """Return a Generator deterministically derived from ``root_seed``
    and a sequence of integer or string keys.

    String keys are hashed into the seed entropy via their UTF-8 bytes,
    so ``derive_rng(7, "antsim", 3)`` always names the same stream.

    Parameters
    ----------
    root_seed:
        The experiment's root seed.
    *keys:
        Sub-stream identifiers (e.g. subsystem name, trajectory index).
    """
    entropy: list[int] = [int(root_seed) & 0xFFFFFFFF]
    for key in keys:
        if isinstance(key, str):
            entropy.extend(key.encode("utf-8"))
        else:
            entropy.append(int(key) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_streams(root_seed: int, n: int, *keys: int | str) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators under a named sub-stream.

    Used to give each simulated ant its own generator so trajectories
    are individually reproducible and order-independent (generating
    trajectory *i* never consumes randomness destined for *j*).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return [derive_rng(root_seed, *keys, i) for i in range(n)]


@dataclass
class RngStream:
    """A named, restartable random stream.

    Wraps a root seed plus key path, letting callers both draw from the
    stream and cheaply ``reset()`` it — useful in tests and in the
    analyst simulator, which replays recorded sessions.
    """

    root_seed: int
    keys: tuple[int | str, ...] = ()
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = derive_rng(self.root_seed, *self.keys)

    @property
    def rng(self) -> np.random.Generator:
        """The underlying NumPy generator."""
        return self._rng

    def reset(self) -> None:
        """Rewind the stream to its initial state."""
        self._rng = derive_rng(self.root_seed, *self.keys)

    def child(self, *keys: int | str) -> "RngStream":
        """Derive a named child stream."""
        return RngStream(self.root_seed, self.keys + keys)

    # Convenience draws (delegate to the generator) -------------------
    def uniform(
        self, low: float = 0.0, high: float = 1.0, size: SizeLike = None
    ) -> Any:
        """Uniform draw (delegates to the generator)."""
        return self._rng.uniform(low, high, size)

    def normal(
        self, loc: float = 0.0, scale: float = 1.0, size: SizeLike = None
    ) -> Any:
        """Gaussian draw (delegates to the generator)."""
        return self._rng.normal(loc, scale, size)

    def integers(
        self, low: int, high: int | None = None, size: SizeLike = None
    ) -> Any:
        """Integer draw (delegates to the generator)."""
        return self._rng.integers(low, high, size)

    def choice(
        self,
        a: Any,
        size: SizeLike = None,
        replace: bool = True,
        p: Any = None,
    ) -> Any:
        """Choice draw (delegates to the generator)."""
        return self._rng.choice(a, size=size, replace=replace, p=p)
