"""Crash-safe file writing.

A process dying mid-``write`` leaves a torn file — a corrupt ``.npz``
archive or half a JSON document — which is how an analyst loses a
session.  Every save path in the repository therefore funnels through
:func:`atomic_write`: the payload is written to a temporary file *in
the same directory* (same filesystem, so the final rename cannot cross
devices), flushed and fsynced, then :func:`os.replace`-d over the
destination.  Readers observe either the complete old file or the
complete new one, never a partial write.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import IO, Callable

__all__ = ["atomic_write", "atomic_write_text", "atomic_write_bytes", "append_text"]


def atomic_write(
    path: str | Path,
    write_fn: Callable[[IO[bytes]], None],
    *,
    mode: str = "wb",
) -> Path:
    """Write a file atomically via a same-directory temp file.

    ``write_fn`` receives the open temp-file handle and writes the
    payload; on success the temp file replaces ``path`` in one atomic
    rename.  On any error the temp file is removed and ``path`` is left
    exactly as it was.
    """
    path = Path(path)
    try:
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
        )
    except FileNotFoundError as exc:
        raise FileNotFoundError(
            f"cannot write {path}: directory {path.parent or Path('.')} does not exist"
        ) from exc
    try:
        with os.fdopen(fd, mode) as fh:
            write_fn(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str | Path, text: str, *, encoding: str = "utf-8") -> Path:
    """Atomically write a text file."""
    return atomic_write(path, lambda fh: fh.write(text.encode(encoding)))


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically write a binary file."""
    return atomic_write(path, lambda fh: fh.write(data))


def append_text(
    path: str | Path, text: str, *, encoding: str = "utf-8", fsync: bool = False
) -> Path:
    """Append ``text`` to a file (created if missing), flushed on return.

    Appending is the sanctioned durability mechanism for line-oriented
    logs (session journals, telemetry JSONL): a crash mid-append tears
    at most the final line, which log readers already tolerate —
    unlike a truncating rewrite, which can lose the whole file.  Pass
    ``fsync=True`` when each record must survive power loss, at the
    cost of one disk sync per call.
    """
    path = Path(path)
    with path.open("a", encoding=encoding) as fh:
        fh.write(text)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    return path
