"""Argument-validation helpers.

Public API entry points validate their inputs eagerly with these
helpers so that misuse fails with a precise message at the boundary
rather than as a shape error deep inside a vectorized kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["check_finite", "check_positive", "check_in_range", "check_shape"]


def check_finite(name: str, value: object) -> np.ndarray:
    """Coerce to ndarray and require all entries finite."""
    arr = np.asarray(value, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite; got non-finite entries")
    return arr


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Require a (strictly) positive scalar."""
    v = float(value)
    if strict and v <= 0:
        raise ValueError(f"{name} must be > 0, got {v}")
    if not strict and v < 0:
        raise ValueError(f"{name} must be >= 0, got {v}")
    return v


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Require ``low <= value <= high`` (or strict if not inclusive)."""
    v = float(value)
    ok = (low <= v <= high) if inclusive else (low < v < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {v}"
        )
    return v


def check_shape(name: str, arr: np.ndarray, shape: Sequence[int | None]) -> np.ndarray:
    """Require an exact shape; ``None`` entries match any extent.

    >>> check_shape("pts", np.zeros((7, 2)), (None, 2)).shape
    (7, 2)
    """
    arr = np.asarray(arr)
    if arr.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got {arr.ndim}"
        )
    for axis, want in enumerate(shape):
        if want is not None and arr.shape[axis] != want:
            raise ValueError(
                f"{name} axis {axis} must have extent {want}, "
                f"got {arr.shape[axis]} (full shape {arr.shape})"
            )
    return arr
