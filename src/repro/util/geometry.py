"""Vectorized 2D geometry kernels.

All functions operate on NumPy arrays of points/segments at once — the
coordinated-brushing engine calls these over every segment of every
displayed trajectory per query, so the kernels are written
allocation-lean and loop-free per the HPC guide idioms (broadcasting,
in-place masks, contiguous float64 arrays).
"""

from __future__ import annotations

import numpy as np

#: Anything coercible to a 2-vector / point array via ``np.asarray``.
ArrayLike = np.ndarray | tuple[float, float] | list[float]

__all__ = [
    "unit_vector",
    "rotate2d",
    "polyline_length",
    "pairwise_distances",
    "points_in_circle",
    "points_in_rect",
    "point_segment_distance",
    "segment_circle_overlap_mask",
    "circle_segment_intersections",
    "clip_segments_to_circle",
]


def unit_vector(v: np.ndarray) -> np.ndarray:
    """Normalize vectors along the last axis; zero vectors stay zero."""
    v = np.asarray(v, dtype=np.float64)
    norm = np.linalg.norm(v, axis=-1, keepdims=True)
    out = np.zeros_like(v)
    np.divide(v, norm, out=out, where=norm > 0)
    return out


def rotate2d(points: np.ndarray, angle_rad: float) -> np.ndarray:
    """Rotate (N, 2) points about the origin by ``angle_rad``."""
    points = np.asarray(points, dtype=np.float64)
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    rot = np.array([[c, -s], [s, c]])
    return points @ rot.T


def polyline_length(points: np.ndarray) -> float:
    """Total arc length of an (N, 2) or (N, 3) polyline."""
    points = np.asarray(points, dtype=np.float64)
    if len(points) < 2:
        return 0.0
    return float(np.linalg.norm(np.diff(points, axis=0), axis=1).sum())


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between (N, D) and (M, D) point sets.

    Uses the ``|a|^2 + |b|^2 - 2ab`` expansion (one GEMM) rather than a
    broadcasted difference tensor, keeping peak memory at N*M floats.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    aa = np.einsum("ij,ij->i", a, a)
    bb = np.einsum("ij,ij->i", b, b)
    d2 = aa[:, None] + bb[None, :] - 2.0 * (a @ b.T)
    np.maximum(d2, 0.0, out=d2)  # clamp tiny negatives from cancellation
    return np.sqrt(d2, out=d2)


def points_in_circle(points: np.ndarray, center: ArrayLike, radius: float) -> np.ndarray:
    """Boolean mask of (N, 2) points inside (or on) a circle."""
    points = np.asarray(points, dtype=np.float64)
    center = np.asarray(center, dtype=np.float64)
    d = points - center
    return np.einsum("ij,ij->i", d, d) <= radius * radius


def points_in_rect(points: np.ndarray, lo: ArrayLike, hi: ArrayLike) -> np.ndarray:
    """Boolean mask of (N, 2) points inside the axis-aligned box [lo, hi]."""
    points = np.asarray(points, dtype=np.float64)
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    return np.all((points >= lo) & (points <= hi), axis=1)


def point_segment_distance(p: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Distance from points ``p`` (broadcastable (..., 2)) to segments a->b.

    ``a`` and ``b`` are (..., 2) and broadcast against ``p``.  Degenerate
    segments (a == b) reduce to point distance.
    """
    p = np.asarray(p, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    ab = b - a
    ap = p - a
    denom = np.einsum("...i,...i->...", ab, ab)
    t = np.einsum("...i,...i->...", ap, ab)
    t = np.divide(t, denom, out=np.zeros_like(t), where=denom > 0)
    np.clip(t, 0.0, 1.0, out=t)
    closest = a + t[..., None] * ab
    return np.linalg.norm(p - closest, axis=-1)


def segment_circle_overlap_mask(
    seg_a: np.ndarray, seg_b: np.ndarray, center: ArrayLike, radius: float
) -> np.ndarray:
    """Boolean mask over (N, 2) segment endpoints arrays: True where the
    segment a[i]->b[i] comes within ``radius`` of ``center``.

    This is the inner kernel of circular-brush hit testing: a segment is
    highlighted iff any point on it lies inside the brush disc, i.e. the
    point-to-segment distance from the disc center is <= radius.
    """
    center = np.asarray(center, dtype=np.float64)
    return point_segment_distance(center, seg_a, seg_b) <= radius


def circle_segment_intersections(
    a: np.ndarray, b: np.ndarray, center: ArrayLike, radius: float
) -> np.ndarray:
    """Parametric entry/exit of segments a[i]->b[i] through a circle.

    Returns an (N, 2) array of clamped parameters (t_in, t_out) in
    [0, 1]; rows where the segment misses the circle have t_in > t_out
    (conventionally (1, 0)).  Used to clip highlighted sub-segments
    exactly to the brush footprint for rendering.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    center = np.asarray(center, dtype=np.float64)
    d = b - a
    f = a - center
    A = np.einsum("ij,ij->i", d, d)
    B = 2.0 * np.einsum("ij,ij->i", f, d)
    C = np.einsum("ij,ij->i", f, f) - radius * radius

    out = np.empty((len(a), 2), dtype=np.float64)
    out[:, 0] = 1.0
    out[:, 1] = 0.0

    disc = B * B - 4.0 * A * C
    # Degenerate (zero-length) segments: inside iff C <= 0.
    degen = A <= 0
    inside_pt = degen & (C <= 0.0)
    out[inside_pt] = (0.0, 1.0)

    ok = (~degen) & (disc >= 0.0)
    if np.any(ok):
        sq = np.sqrt(disc[ok])
        t1 = (-B[ok] - sq) / (2.0 * A[ok])
        t2 = (-B[ok] + sq) / (2.0 * A[ok])
        t_in = np.clip(t1, 0.0, 1.0)
        t_out = np.clip(t2, 0.0, 1.0)
        hit = t_out > t_in
        # Also count tangential grazes where the clamped span collapses
        # but the segment genuinely touches inside [0, 1].
        rows = np.flatnonzero(ok)[hit]
        out[rows, 0] = t_in[hit]
        out[rows, 1] = t_out[hit]
    return out


def clip_segments_to_circle(
    a: np.ndarray, b: np.ndarray, center: ArrayLike, radius: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Clip segments to a circle; return (clipped_a, clipped_b, index).

    ``index[k]`` is the row in the input arrays that produced clipped
    segment ``k``.  Segments entirely outside are dropped.
    """
    t = circle_segment_intersections(a, b, center, radius)
    keep = t[:, 1] > t[:, 0]
    idx = np.flatnonzero(keep)
    a = np.asarray(a, dtype=np.float64)[idx]
    b = np.asarray(b, dtype=np.float64)[idx]
    d = b - a
    t_in = t[idx, 0][:, None]
    t_out = t[idx, 1][:, None]
    return a + t_in * d, a + t_out * d, idx
