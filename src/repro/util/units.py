"""Physical units and conversions.

The display-wall model mixes three coordinate systems — physical meters
on the wall surface, device pixels, and normalized arena coordinates —
and the stereo model additionally reasons in visual degrees.  Type
aliases make signatures self-documenting; conversion helpers keep the
constants in one place.
"""

from __future__ import annotations

import math

__all__ = [
    "Meters",
    "Pixels",
    "Seconds",
    "Degrees",
    "CM_PER_INCH",
    "mm_to_m",
    "m_to_mm",
    "deg_to_rad",
    "rad_to_deg",
    "visual_angle_deg",
]

# Type aliases used purely for documentation value in signatures.
Meters = float
Pixels = float
Seconds = float
Degrees = float

CM_PER_INCH = 2.54


def mm_to_m(mm: float) -> Meters:
    """Millimeters to meters."""
    return mm * 1e-3


def m_to_mm(m: Meters) -> float:
    """Meters to millimeters."""
    return m * 1e3


def deg_to_rad(deg: Degrees) -> float:
    """Degrees to radians."""
    return deg * math.pi / 180.0


def rad_to_deg(rad: float) -> Degrees:
    """Radians to degrees."""
    return rad * 180.0 / math.pi


def visual_angle_deg(extent_m: Meters, distance_m: Meters) -> Degrees:
    """Visual angle subtended by ``extent_m`` seen from ``distance_m``.

    Used by the stereo comfort model: the on-screen binocular parallax
    (a physical extent on the display plane) is converted to a visual
    angle at the viewer's position, which is the quantity the
    stereoscopic-comfort literature bounds (~1 degree; Lambooij et al.).
    """
    if distance_m <= 0:
        raise ValueError(f"distance must be positive, got {distance_m}")
    return rad_to_deg(2.0 * math.atan2(extent_m / 2.0, distance_m))
