"""The trajectory exploration application.

:class:`TrajectoryExplorer` is the headless equivalent of the
application in Fig. 3: it wires a trajectory dataset, the arena, a wall
viewport, the small-multiple layout with grouping, the coordinated-
brushing query engine, the temporal filter, the stereo projection with
its ergonomic controls, the paintbrush/pointer interaction layer, and
the renderer into one object with the operations the researcher
performed.  Examples and the analyst simulator build on it.

Since the shared-data-plane refactor the explorer no longer owns the
heavy state itself: it sits on a :class:`repro.store.DatasetService`
(one resident dataset + spatial index + stage cache) and holds a
per-user :class:`repro.store.SessionView`.  Constructing an explorer
from a dataset transparently creates a private service; passing
``service=`` lets any number of explorers — one per user at the wall —
share a single resident copy of the packed arrays.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import obs
from repro.core.brush import BrushStroke
from repro.core.hypothesis import Hypothesis, Verdict
from repro.core.result import QueryResult
from repro.core.temporal import TimeWindow
from repro.display.presets import CYBER_COMMONS, paper_viewport
from repro.display.viewport import Viewport
from repro.interaction.events import InputEvent, KeyEvent, PointerEvent
from repro.interaction.keymap import default_keymap
from repro.interaction.recorder import SessionRecorder
from repro.interaction.sliders import IncrementalRequery, RangeSlider
from repro.interaction.tools import PaintbrushTool, PointerRouter
from repro.render.color import HIGHLIGHT_COLORS
from repro.render.compose import anaglyph, compose_wall, stereo_pair_side_by_side
from repro.render.image_io import write_ppm
from repro.render.pipeline import WallRenderer
from repro.sensemaking.provenance import InsightRecord, ProvenanceLog
from repro.stereo.camera import Eye
from repro.stereo.controls import ErgonomicControls
from repro.store.service import DatasetService
from repro.synth.arena import Arena
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["TrajectoryExplorer"]


class TrajectoryExplorer:
    """The full application.

    Parameters
    ----------
    dataset:
        The trajectory collection to explore (omit when ``service`` is
        given).
    service:
        An existing :class:`~repro.store.DatasetService` to share —
        this explorer becomes one more session over its resident
        dataset, index, and stage cache.  When omitted, a private
        service is created around ``dataset``.
    arena:
        The shared experimental arena (defaults to the study's).
    viewport:
        The wall viewport; defaults to the paper's 2/3-surface,
        8192 x 1536 region of the 6 x 3 wall.
    layout_key:
        Initial keypad layout ('1' | '2' | '3').
    """

    def __init__(
        self,
        dataset: TrajectoryDataset | None = None,
        *,
        service: DatasetService | None = None,
        arena: Arena | None = None,
        viewport: Viewport | None = None,
        layout_key: str = "3",
        use_index: bool = True,
    ) -> None:
        if service is None:
            if dataset is None:
                raise ValueError("provide a dataset or a DatasetService")
            service = DatasetService(dataset, use_index=use_index)
        elif dataset is not None and dataset is not service.dataset:
            raise ValueError("dataset conflicts with the service's dataset")
        self.service = service
        self.arena = arena or Arena()
        self.viewport = viewport or paper_viewport(CYBER_COMMONS)
        self.session = service.session(self.viewport, layout_key=layout_key)
        self.controls = ErgonomicControls()
        # fit the stereo depth budget to the longest displayed trajectory
        max_dur = max((t.duration for t in service.dataset), default=60.0)
        self.controls.fit_to_comfort(max_dur, center=False)
        self.keymap = default_keymap()
        self.recorder = SessionRecorder()
        self.provenance = ProvenanceLog()
        # the §IV-C.2 temporal range slider, in per-trajectory fractions;
        # dragging a thumb immediately updates the session's window AND
        # incrementally re-queries every painted color — only the
        # temporal/combine/aggregate stages re-execute (the brush
        # hit-test is served from the engine's stage cache), which is
        # what keeps slider scrubbing at interactive rates
        self.temporal_slider = RangeSlider(0.0, 1.0, min_gap=0.01)
        self._brush_color_idx = 0
        self._router: PointerRouter | None = None
        self._paintbrush: PaintbrushTool | None = None
        self._rebuild_tools()
        self._last_results: dict[str, QueryResult] = {}
        self.temporal_requery = IncrementalRequery(
            self.temporal_slider,
            self.session,
            on_results=self._last_results.update,
        )

    # Internal wiring -----------------------------------------------------
    def _rebuild_tools(self) -> None:
        self._router = PointerRouter(self.viewport, self.session.grid, self.arena)
        color = HIGHLIGHT_COLORS[self._brush_color_idx % len(HIGHLIGHT_COLORS)]
        self._paintbrush = PaintbrushTool(self._router, color=color)

    @property
    def dataset(self) -> TrajectoryDataset:
        return self.session.dataset

    @property
    def brush_color(self) -> str:
        return HIGHLIGHT_COLORS[self._brush_color_idx % len(HIGHLIGHT_COLORS)]

    # High-level operations (what the researcher did) -------------------------
    def switch_layout(self, key: str) -> None:
        """Keypad layout switch; rebuilds pointer routing."""
        self.session.switch_layout(key)
        self._rebuild_tools()

    def group_by_capture_zone(self) -> None:
        """Apply the Fig. 3 five-zone grouping."""
        self.session.enable_fig3_groups()

    def brush(self, stroke: BrushStroke) -> None:
        """Paint a stroke programmatically."""
        self.session.brush(stroke)

    def erase(self, color: str | None = None) -> None:
        """Clear the brush canvas (one color or all) and cached results."""
        self.session.erase(color)
        self._last_results.clear()

    def set_time_window(self, window: TimeWindow) -> None:
        """Apply a temporal filter window to subsequent queries."""
        self.session.set_time_window(window)

    def query(self, color: str | None = None) -> QueryResult:
        """Run the current visual query; caches the result for rendering."""
        color = color or self.brush_color
        result = self.session.run_query(color)
        self._last_results[color] = result
        return result

    def test_hypothesis(
        self, hypothesis: Hypothesis, *, insight: str | None = None,
        parents: tuple[int, ...] = (),
    ) -> Verdict:
        """Evaluate a hypothesis and record its insight provenance.

        Every evaluation appends an :class:`InsightRecord` chaining the
        hypothesis, its full query spec, and the verdict — the
        evidence/insight-provenance integration §VII lists as future
        work.  ``insight`` overrides the auto-generated conclusion
        text; ``parents`` links to earlier insights this one builds on.
        Returns the verdict; the record's index is
        ``len(app.provenance) - 1``.
        """
        verdict = self.session.test_hypothesis(hypothesis)
        self._last_results[hypothesis.color] = verdict.result
        stamps = sum(s.n_stamps for s in hypothesis.strokes)
        self.provenance.add(
            InsightRecord(
                insight=insight
                or f"{hypothesis.statement}: {verdict.kind.value} "
                f"({verdict.support:.0%} support)",
                hypothesis=hypothesis.statement,
                query_spec={
                    "color": hypothesis.color,
                    "stamps": stamps,
                    "window": hypothesis.window.describe(),
                    "target_group": hypothesis.target_group,
                    "threshold": hypothesis.threshold,
                    "contrast": hypothesis.contrast,
                },
                verdict={
                    "kind": verdict.kind.value,
                    "support": verdict.support,
                    "comparison_support": verdict.comparison_support,
                },
                parents=parents,
            )
        )
        return verdict

    # Event-driven interface (recorded input streams) ---------------------------
    def handle_event(self, event: InputEvent) -> None:
        """Feed one input event (pointer or key); records it."""
        self.recorder.record(event)
        if isinstance(event, PointerEvent):
            assert self._paintbrush is not None
            stroke = self._paintbrush.handle(event)
            if stroke is not None:
                self.session.brush(stroke)
        elif isinstance(event, KeyEvent):
            binding = self.keymap.lookup(event.key)
            if binding is None:
                return
            if binding.action == "layout":
                self.switch_layout(binding.arg)
            elif binding.action == "cycle_brush_color":
                self._brush_color_idx += 1
                assert self._paintbrush is not None
                self._paintbrush.set_color(self.brush_color)
            elif binding.action == "erase":
                self.erase()
            elif binding.action == "group_fig3":
                self.group_by_capture_zone()
            elif binding.action == "reset_temporal":
                self.set_time_window(TimeWindow.all())
            elif binding.action == "next_page":
                self.session.next_page()
            elif binding.action == "prev_page":
                self.session.prev_page()
            elif binding.action == "depth_down":
                self.controls.set_depth(self.controls.depth_offset - 0.01)
            elif binding.action == "depth_up":
                self.controls.set_depth(self.controls.depth_offset + 0.01)
            elif binding.action == "exaggeration_down":
                self.controls.set_exaggeration(max(0.0, self.controls.time_scale * 0.8))
            elif binding.action == "exaggeration_up":
                self.controls.set_exaggeration(self.controls.time_scale * 1.25)

    # Rendering --------------------------------------------------------------------
    def renderer(self) -> WallRenderer:
        """A renderer bound to the current projection state."""
        return WallRenderer(
            self.dataset, self.arena, self.viewport, self.controls.projection()
        )

    def render_frame(
        self,
        *,
        eyes: tuple[Eye, ...] = (Eye.LEFT, Eye.RIGHT),
        scale: float = 0.25,
        mode: str = "left",
    ) -> np.ndarray:
        """Render and compose a whole-wall frame.

        ``mode``: ``left`` / ``right`` (one eye), ``pair`` (side by
        side), or ``anaglyph``.
        """
        frames = self.renderer().render_viewport(
            self.session.assignment,
            eyes=eyes,
            canvas=self.session.canvas,
            results=self._last_results or None,
        )
        wall = self.viewport.wall

        def composed(eye: Eye) -> np.ndarray:
            return compose_wall(wall, frames[eye], scale=scale)

        if mode == "left":
            return composed(Eye.LEFT)
        if mode == "right":
            return composed(Eye.RIGHT)
        if mode == "pair":
            return stereo_pair_side_by_side(composed(Eye.LEFT), composed(Eye.RIGHT))
        if mode == "anaglyph":
            return anaglyph(composed(Eye.LEFT), composed(Eye.RIGHT))
        raise ValueError(f"unknown mode {mode!r}")

    def save_frame(self, path: str | Path, **kwargs) -> None:
        """Render and write a PPM frame."""
        write_ppm(self.render_frame(**kwargs), path)

    # Introspection ------------------------------------------------------------------
    def status(self) -> dict:
        """One-glance application state."""
        return {
            "dataset": len(self.dataset),
            "layout": f"{self.session.layout.n_cols}x{self.session.layout.n_rows}",
            "displayed": self.session.assignment.n_displayed,
            "coverage": round(self.session.assignment.coverage(len(self.dataset)), 3),
            "groups": self.session.groups.names() if self.session.groups else None,
            "brush_strokes": self.session.canvas.n_strokes,
            "window": self.session.window.describe(),
            "time_scale": self.controls.time_scale,
            "depth_offset": self.controls.depth_offset,
            "query_cache": self.session.engine.cache_stats(),
            "session_id": self.session.session_id,
            "service_sessions": self.service.n_sessions,
        }

    def telemetry(self) -> dict:
        """The process telemetry plane, read back as plain data.

        Returns ``{"enabled": bool, "counters": ..., "gauges": ...,
        "histograms": ...}`` — the counters/gauges/histograms maps are
        empty while telemetry is disabled (the default).  Enable with
        ``repro.obs.enable()``; render a scrape-ready exposition with
        ``repro.obs.render_prometheus(repro.obs.telemetry_snapshot())``.
        """
        snapshot = obs.telemetry_snapshot()
        return {"enabled": obs.enabled(), **snapshot.as_dict()}

    def last_trace(self, color: str | None = None):
        """Per-stage trace of the most recent query for ``color``
        (default: the active brush color); ``None`` if never queried."""
        result = self._last_results.get(color or self.brush_color)
        return None if result is None else result.trace
