"""Viewport carving.

The paper's application used 2/3 of the wall surface at 8192 x 1536
(§IV-C) — i.e. a pixel-space viewport carved out of the full wall.  A
:class:`Viewport` is an axis-aligned region in *wall pixel space* (the
concatenation of panel pixels, bezels excluded) with the physical
rectangle it covers, plus helpers to map normalized viewport
coordinates to wall meters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.display.wall import DisplayWall

__all__ = ["Viewport"]


@dataclass(frozen=True)
class Viewport:
    """A rectangular application viewport on a wall.

    Attributes
    ----------
    wall:
        The hosting wall.
    col0, row0:
        Top-left panel (inclusive) of the viewport.
    cols, rows:
        Panel extent of the viewport.
    """

    wall: DisplayWall
    col0: int = 0
    row0: int = 0
    cols: int | None = None
    rows: int | None = None

    def __post_init__(self) -> None:
        cols = self.cols if self.cols is not None else self.wall.cols - self.col0
        rows = self.rows if self.rows is not None else self.wall.rows - self.row0
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "rows", rows)
        if not (0 <= self.col0 and self.col0 + cols <= self.wall.cols):
            raise ValueError("viewport columns exceed the wall")
        if not (0 <= self.row0 and self.row0 + rows <= self.wall.rows):
            raise ValueError("viewport rows exceed the wall")
        if cols < 1 or rows < 1:
            raise ValueError("viewport must cover at least one panel")

    # Pixel properties --------------------------------------------------
    @property
    def px_width(self) -> int:
        """Addressable pixel width (active areas only)."""
        return self.cols * self.wall.panel_px_width

    @property
    def px_height(self) -> int:
        return self.rows * self.wall.panel_px_height

    @property
    def pixels(self) -> int:
        return self.px_width * self.px_height

    @property
    def megapixels(self) -> float:
        return self.pixels / 1e6

    # Physical properties ------------------------------------------------
    @property
    def x0(self) -> float:
        """Left edge in wall meters."""
        return self.col0 * self.wall.pitch_x

    @property
    def y0(self) -> float:
        return self.row0 * self.wall.pitch_y

    @property
    def width_m(self) -> float:
        """Physical width including interior mullions."""
        return self.cols * self.wall.panel_width + (self.cols - 1) * self.wall.bezel.horizontal_mullion

    @property
    def height_m(self) -> float:
        return self.rows * self.wall.panel_height + (self.rows - 1) * self.wall.bezel.vertical_mullion

    @property
    def rect_m(self) -> tuple[float, float, float, float]:
        """(x0, y0, x1, y1) in wall meters."""
        return (self.x0, self.y0, self.x0 + self.width_m, self.y0 + self.height_m)

    def surface_fraction(self) -> float:
        """Fraction of the wall's panels this viewport occupies."""
        return (self.cols * self.rows) / self.wall.n_tiles

    # Mapping ------------------------------------------------------------
    def norm_to_wall(self, points01: np.ndarray) -> np.ndarray:
        """Normalized viewport coordinates [0,1]^2 -> wall meters.

        (0, 0) is the viewport's top-left, (1, 1) bottom-right; the
        mapping spans mullions (they are part of physical space).
        """
        points01 = np.asarray(points01, dtype=np.float64)
        out = np.empty_like(points01)
        out[..., 0] = self.x0 + points01[..., 0] * self.width_m
        out[..., 1] = self.y0 + points01[..., 1] * self.height_m
        return out

    def wall_to_norm(self, points_m: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`norm_to_wall`."""
        points_m = np.asarray(points_m, dtype=np.float64)
        out = np.empty_like(points_m)
        out[..., 0] = (points_m[..., 0] - self.x0) / self.width_m
        out[..., 1] = (points_m[..., 1] - self.y0) / self.height_m
        return out

    def tiles(self):
        """The panels covered by this viewport, row-major."""
        return [
            self.wall.tile(c, r)
            for r in range(self.row0, self.row0 + self.rows)
            for c in range(self.col0, self.col0 + self.cols)
        ]

    def summary(self) -> dict:
        """Headline numbers (panels, pixels, physical size)."""
        return {
            "panels": f"{self.cols}x{self.rows}",
            "px": f"{self.px_width}x{self.px_height}",
            "megapixels": round(self.megapixels, 2),
            "surface_fraction": round(self.surface_fraction(), 3),
            "size_m": (round(self.width_m, 2), round(self.height_m, 2)),
        }
