"""Bezel (mullion) geometry.

Tiled LCD walls have physical borders between panels.  The paper's
design deliberately avoids placing any trajectory across a bezel —
stereo content straddling a bezel causes viewer discomfort, and bezels
double as natural group dividers (§IV-C.2).  The layout engine
therefore needs exact bezel rectangles and straddle predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BezelSpec"]


@dataclass(frozen=True)
class BezelSpec:
    """Physical bezel widths of one panel, in meters.

    A mullion between two adjacent panels is the sum of the facing
    bezels.  The paper's panels had mullions under 1 cm, so the default
    is 4 mm per edge (8 mm mullion).
    """

    left: float = 0.004
    right: float = 0.004
    top: float = 0.004
    bottom: float = 0.004

    def __post_init__(self) -> None:
        for name in ("left", "right", "top", "bottom"):
            if getattr(self, name) < 0:
                raise ValueError(f"bezel {name} must be >= 0")

    @property
    def horizontal_mullion(self) -> float:
        """Width of the vertical gap between horizontally adjacent panels."""
        return self.left + self.right

    @property
    def vertical_mullion(self) -> float:
        """Height of the horizontal gap between vertically adjacent panels."""
        return self.top + self.bottom

    def mullion_rects_x(self, cols: int, panel_w: float) -> np.ndarray:
        """X-intervals (meters from wall left edge) of the vertical
        mullions of a ``cols``-wide grid, shape (cols-1, 2).

        Panel pitch is ``panel_w`` (active area) + horizontal mullion.
        """
        pitch = panel_w + self.horizontal_mullion
        starts = panel_w + pitch * np.arange(cols - 1, dtype=np.float64)
        return np.stack([starts, starts + self.horizontal_mullion], axis=1)

    def mullion_rects_y(self, rows: int, panel_h: float) -> np.ndarray:
        """Y-intervals of the horizontal mullions, shape (rows-1, 2)."""
        pitch = panel_h + self.vertical_mullion
        starts = panel_h + pitch * np.arange(rows - 1, dtype=np.float64)
        return np.stack([starts, starts + self.vertical_mullion], axis=1)
