"""Tiled display-wall model.

Parametric model of a large, high-resolution tiled LCD wall: panel
grid, bezel (mullion) geometry, pixel <-> physical-meter coordinate
mapping, and viewport carving.  The preset
:data:`repro.display.presets.CYBER_COMMONS` reproduces the wall the
paper used: a 6 x 3 arrangement, roughly 7 x 3 meters, ~19 Mpixel
stereoscopic, with sub-centimeter bezels; the application occupied 2/3
of the surface at 8192 x 1536 (§IV-C).
"""

from repro.display.tile import Tile
from repro.display.bezel import BezelSpec
from repro.display.wall import DisplayWall
from repro.display.viewport import Viewport
from repro.display.coords import CoordinateMapper
from repro.display.presets import (
    CYBER_COMMONS,
    DESKTOP_24INCH,
    cyber_commons_wall,
    desktop_display,
)

__all__ = [
    "Tile",
    "BezelSpec",
    "DisplayWall",
    "Viewport",
    "CoordinateMapper",
    "CYBER_COMMONS",
    "DESKTOP_24INCH",
    "cyber_commons_wall",
    "desktop_display",
]
