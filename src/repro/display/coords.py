"""Coordinate mapping between arena space and display space.

Three coordinate systems cooperate:

* **arena meters** — trajectory data space (origin at release point);
* **cell-normalized [0,1]^2** — position within one small-multiple cell;
* **wall meters / wall pixels** — physical and device space.

A :class:`CoordinateMapper` binds an arena to a rectangular region of
the wall (one layout cell) and provides vectorized transforms in both
directions.  The same mapper underlies rendering (arena -> pixels) and
brushing (pointer pixels -> arena), so a brush painted in one cell is
*exactly* invertible into the shared arena space that all trajectories
are queried in — the property coordinated brushing relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.arena import Arena

__all__ = ["CoordinateMapper"]


@dataclass(frozen=True)
class CoordinateMapper:
    """Affine arena <-> wall mapping for one display cell.

    The arena's bounding square ([-R, R]^2, plus a margin) is fitted
    into the cell rectangle with uniform scale (aspect preserved) and
    centered.  Wall coordinates are meters, +y down; arena +y is north
    (up), so the vertical axis flips.

    Attributes
    ----------
    arena:
        The arena whose square is being mapped.
    cell_rect:
        (x0, y0, x1, y1) cell rectangle in wall meters.
    margin:
        Fractional padding inside the cell (default 5 %).
    """

    arena: Arena
    cell_rect: tuple[float, float, float, float]
    margin: float = 0.05

    def __post_init__(self) -> None:
        x0, y0, x1, y1 = self.cell_rect
        if x1 <= x0 or y1 <= y0:
            raise ValueError(f"degenerate cell rect {self.cell_rect}")
        if not 0.0 <= self.margin < 0.5:
            raise ValueError(f"margin must be in [0, 0.5), got {self.margin}")

    @property
    def _params(self) -> tuple[float, float, float]:
        """(scale, cx, cy): wall meters per arena meter and cell center."""
        x0, y0, x1, y1 = self.cell_rect
        usable_w = (x1 - x0) * (1.0 - 2.0 * self.margin)
        usable_h = (y1 - y0) * (1.0 - 2.0 * self.margin)
        scale = min(usable_w, usable_h) / (2.0 * self.arena.radius)
        return scale, (x0 + x1) / 2.0, (y0 + y1) / 2.0

    @property
    def scale(self) -> float:
        """Wall meters per arena meter."""
        return self._params[0]

    def arena_to_wall(self, points: np.ndarray) -> np.ndarray:
        """Arena meters -> wall meters (vectorized over (..., 2))."""
        points = np.asarray(points, dtype=np.float64)
        s, cx, cy = self._params
        out = np.empty_like(points)
        out[..., 0] = cx + points[..., 0] * s
        out[..., 1] = cy - points[..., 1] * s  # north is up; wall +y is down
        return out

    def wall_to_arena(self, points_m: np.ndarray) -> np.ndarray:
        """Wall meters -> arena meters; exact inverse of
        :meth:`arena_to_wall` (round-trip property-tested)."""
        points_m = np.asarray(points_m, dtype=np.float64)
        s, cx, cy = self._params
        out = np.empty_like(points_m)
        out[..., 0] = (points_m[..., 0] - cx) / s
        out[..., 1] = (cy - points_m[..., 1]) / s
        return out

    def brush_radius_to_arena(self, radius_wall_m: float) -> float:
        """Convert a paintbrush radius from wall meters to arena meters."""
        if radius_wall_m < 0:
            raise ValueError("radius must be >= 0")
        return radius_wall_m / self.scale
