"""Tiled display wall.

A :class:`DisplayWall` is a grid of :class:`~repro.display.tile.Tile`
panels separated by mullions.  Wall coordinates are physical meters
with the origin at the top-left corner of the top-left panel's active
area and +y pointing down (screen convention).  The wall exposes the
geometric predicates the layout engine needs: which rectangles straddle
a mullion, which tile a point falls on, and total pixel counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.display.bezel import BezelSpec
from repro.display.tile import Tile

__all__ = ["DisplayWall"]


@dataclass(frozen=True)
class DisplayWall:
    """A ``cols`` x ``rows`` tiled display wall.

    Attributes
    ----------
    cols, rows:
        Panel grid arrangement (the paper: 6 x 3).
    panel_width, panel_height:
        Active-area size of each panel in meters.
    panel_px_width, panel_px_height:
        Pixel resolution of each panel.
    bezel:
        Per-panel bezel widths.
    stereo:
        Whether the wall is stereoscopic (the paper's wall was;
        doubles the rendered view count, not the pixel count).
    """

    cols: int = 6
    rows: int = 3
    panel_width: float = 1.16
    panel_height: float = 1.16 * 768 / 1366  # square pixels at the default resolution
    panel_px_width: int = 1366
    panel_px_height: int = 768
    bezel: BezelSpec = field(default_factory=BezelSpec)
    stereo: bool = True
    name: str = "wall"

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise ValueError("wall must have at least one panel")
        if self.panel_width <= 0 or self.panel_height <= 0:
            raise ValueError("panel physical size must be positive")
        if self.panel_px_width < 1 or self.panel_px_height < 1:
            raise ValueError("panel pixel size must be positive")

    # Geometry ----------------------------------------------------------
    @property
    def pitch_x(self) -> float:
        """Horizontal panel pitch: active width + mullion."""
        return self.panel_width + self.bezel.horizontal_mullion

    @property
    def pitch_y(self) -> float:
        """Vertical panel pitch: active height + mullion."""
        return self.panel_height + self.bezel.vertical_mullion

    @property
    def width(self) -> float:
        """Total wall width in meters (active areas + interior mullions)."""
        return self.cols * self.panel_width + (self.cols - 1) * self.bezel.horizontal_mullion

    @property
    def height(self) -> float:
        """Total wall height in meters."""
        return self.rows * self.panel_height + (self.rows - 1) * self.bezel.vertical_mullion

    @property
    def n_tiles(self) -> int:
        return self.cols * self.rows

    @property
    def total_pixels(self) -> int:
        """Total addressable pixels (per eye on stereo walls)."""
        return self.n_tiles * self.panel_px_width * self.panel_px_height

    @property
    def megapixels(self) -> float:
        return self.total_pixels / 1e6

    def tile(self, col: int, row: int) -> Tile:
        """The panel at grid position (col, row)."""
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise IndexError(f"tile ({col}, {row}) outside {self.cols}x{self.rows} wall")
        return Tile(
            col=col,
            row=row,
            x=col * self.pitch_x,
            y=row * self.pitch_y,
            width=self.panel_width,
            height=self.panel_height,
            px_width=self.panel_px_width,
            px_height=self.panel_px_height,
        )

    def tiles(self) -> list[Tile]:
        """All panels, row-major."""
        return [self.tile(c, r) for r in range(self.rows) for c in range(self.cols)]

    # Bezel predicates ---------------------------------------------------
    def mullions_x(self) -> np.ndarray:
        """(cols-1, 2) x-intervals of the vertical mullions."""
        return self.bezel.mullion_rects_x(self.cols, self.panel_width)

    def mullions_y(self) -> np.ndarray:
        """(rows-1, 2) y-intervals of the horizontal mullions."""
        return self.bezel.mullion_rects_y(self.rows, self.panel_height)

    def _interval_straddles(self, lo: np.ndarray, hi: np.ndarray, mullions: np.ndarray) -> np.ndarray:
        """Which [lo, hi] intervals overlap any mullion interval."""
        if len(mullions) == 0:
            return np.zeros(len(lo), dtype=bool)
        # drop zero-width mullions (bezel-less walls cannot be straddled)
        mullions = mullions[mullions[:, 1] > mullions[:, 0]]
        if len(mullions) == 0:
            return np.zeros(len(lo), dtype=bool)
        # interval [lo, hi] overlaps mullion [m0, m1] iff lo < m1 and hi > m0
        overlap = (lo[:, None] < mullions[None, :, 1]) & (hi[:, None] > mullions[None, :, 0])
        return overlap.any(axis=1)

    def rects_straddle_bezel(self, rects: np.ndarray) -> np.ndarray:
        """Mask over (N, 4) wall-space rectangles (x0, y0, x1, y1):
        True where a rectangle's interior crosses a mullion.

        This is the layout engine's core feasibility check — the
        paper's pre-configured grids (15x4, 24x6, 36x12) were "chosen
        to avoid a trajectory overlapping with a bezel".
        """
        rects = np.asarray(rects, dtype=np.float64)
        if rects.ndim != 2 or rects.shape[1] != 4:
            raise ValueError(f"rects must be (N, 4), got {rects.shape}")
        sx = self._interval_straddles(rects[:, 0], rects[:, 2], self.mullions_x())
        sy = self._interval_straddles(rects[:, 1], rects[:, 3], self.mullions_y())
        return sx | sy

    def point_on_bezel(self, points_m: np.ndarray) -> np.ndarray:
        """Mask of (N, 2) wall points landing in a mullion gap."""
        points_m = np.asarray(points_m, dtype=np.float64)
        fx = np.mod(points_m[:, 0], self.pitch_x)
        fy = np.mod(points_m[:, 1], self.pitch_y)
        in_gap_x = fx >= self.panel_width
        in_gap_y = fy >= self.panel_height
        inside = (
            (points_m[:, 0] >= 0)
            & (points_m[:, 0] <= self.width)
            & (points_m[:, 1] >= 0)
            & (points_m[:, 1] <= self.height)
        )
        return inside & (in_gap_x | in_gap_y)

    def tile_of(self, points_m: np.ndarray) -> np.ndarray:
        """(N, 2) int array of (col, row) per point; -1 for points off
        the wall or on a bezel."""
        points_m = np.asarray(points_m, dtype=np.float64)
        col = np.floor_divide(points_m[:, 0], self.pitch_x).astype(np.int64)
        row = np.floor_divide(points_m[:, 1], self.pitch_y).astype(np.int64)
        bad = (
            self.point_on_bezel(points_m)
            | (points_m[:, 0] < 0)
            | (points_m[:, 0] > self.width)
            | (points_m[:, 1] < 0)
            | (points_m[:, 1] > self.height)
            | (col >= self.cols)
            | (row >= self.rows)
        )
        out = np.stack([col, row], axis=1)
        out[bad] = -1
        return out

    def summary(self) -> dict:
        """Headline numbers (compared against the paper's in E1/E6)."""
        return {
            "name": self.name,
            "arrangement": f"{self.cols}x{self.rows}",
            "width_m": round(self.width, 3),
            "height_m": round(self.height, 3),
            "total_pixels": self.total_pixels,
            "megapixels": round(self.megapixels, 2),
            "stereo": self.stereo,
        }
