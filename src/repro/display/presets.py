"""Display presets.

:data:`CYBER_COMMONS` models the wall the paper used (EVL's
Cyber-Commons-class tiled 3D wall): 6 x 3 panels of 1366 x 768 each
(~18.9 "19" Mpixels), roughly 7 x 3 meters, thin (<1 cm) mullions,
stereoscopic.  The application viewport covered 2/3 of the surface —
the full 6-panel width by 2 of the 3 rows — i.e. ~8192 x 1536
(~12.5 Mpixels), exactly the numbers of §IV-C.

:data:`DESKTOP_24INCH` models the "traditional desktop screen" the
paper argues against, used as the comparison substrate in E5/E6.
"""

from __future__ import annotations

from repro.display.bezel import BezelSpec
from repro.display.viewport import Viewport
from repro.display.wall import DisplayWall

__all__ = [
    "CYBER_COMMONS",
    "DESKTOP_24INCH",
    "cyber_commons_wall",
    "desktop_display",
    "paper_viewport",
]


def cyber_commons_wall() -> DisplayWall:
    """The paper's 6 x 3, ~19 Mpixel stereoscopic wall.

    The paper quotes "7 x 3 meters (approximately 23 x 10 feet)" and
    ~19 Mpixels from 6 x 3 panels; at the stated 1366 x 768-class panel
    resolution those numbers cannot all hold with square pixels (a
    16:9 panel grid 6 x 3 has aspect 3.56:1, not 7:3).  We preserve the
    *load-bearing* quantities — the 6 x 3 arrangement, per-panel
    resolution (hence the 8192 x 1536 viewport and 19 Mpixel total),
    and the ~7 m width — and derive the panel height from square
    pixels (wall height ~1.97 m).  All layout/bezel/parallax behaviour
    depends on ratios that this preserves.
    """
    return DisplayWall(
        cols=6,
        rows=3,
        panel_width=1.16,
        panel_height=1.16 * 768 / 1366,  # square pixels
        panel_px_width=1366,
        panel_px_height=768,
        bezel=BezelSpec(left=0.004, right=0.004, top=0.004, bottom=0.004),
        stereo=True,
        name="cyber-commons-6x3",
    )


def desktop_display() -> DisplayWall:
    """A single 24-inch 1920 x 1200 desktop monitor (the baseline)."""
    return DisplayWall(
        cols=1,
        rows=1,
        panel_width=0.518,
        panel_height=0.324,
        panel_px_width=1920,
        panel_px_height=1200,
        bezel=BezelSpec(0.0, 0.0, 0.0, 0.0),
        stereo=False,
        name="desktop-24in",
    )


#: Singleton presets (walls are frozen dataclasses; safe to share).
CYBER_COMMONS = cyber_commons_wall()
DESKTOP_24INCH = desktop_display()


def paper_viewport(wall: DisplayWall | None = None) -> Viewport:
    """The application viewport of §IV-C: 2/3 of the wall surface —
    full width by the top two panel rows, ~8192 x 1536 pixels."""
    wall = wall or CYBER_COMMONS
    rows = max(1, (2 * wall.rows) // 3)
    return Viewport(wall, col0=0, row0=0, cols=wall.cols, rows=rows)
