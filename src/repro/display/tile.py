"""Single display tile (panel).

A tile is one LCD panel of the wall: its grid position, active-area
physical rectangle, and pixel resolution.  Tiles know how to convert
between their local pixel space and wall physical space; the renderer
assigns each tile its own framebuffer so tiles can be rasterized in
parallel worker processes (see :mod:`repro.parallel.tilerender`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Tile"]


@dataclass(frozen=True)
class Tile:
    """One panel of a tiled wall.

    Attributes
    ----------
    col, row:
        Grid indices (column 0 is the wall's left edge, row 0 the top).
    x, y:
        Physical position (meters) of the panel's active-area top-left
        corner in wall coordinates (origin: wall top-left, +y down).
    width, height:
        Active-area physical size in meters.
    px_width, px_height:
        Pixel resolution of the active area.
    """

    col: int
    row: int
    x: float
    y: float
    width: float
    height: float
    px_width: int
    px_height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("tile physical size must be positive")
        if self.px_width <= 0 or self.px_height <= 0:
            raise ValueError("tile pixel size must be positive")

    @property
    def rect(self) -> tuple[float, float, float, float]:
        """(x0, y0, x1, y1) active-area rectangle in wall meters."""
        return (self.x, self.y, self.x + self.width, self.y + self.height)

    @property
    def pixels(self) -> int:
        return self.px_width * self.px_height

    @property
    def pixels_per_meter(self) -> tuple[float, float]:
        """(horizontal, vertical) pixel density."""
        return (self.px_width / self.width, self.px_height / self.height)

    def contains(self, points_m: np.ndarray) -> np.ndarray:
        """Mask of wall-space (N, 2) points falling on this panel's
        active area (bezel gaps excluded by construction)."""
        points_m = np.asarray(points_m, dtype=np.float64)
        x0, y0, x1, y1 = self.rect
        return (
            (points_m[:, 0] >= x0)
            & (points_m[:, 0] < x1)
            & (points_m[:, 1] >= y0)
            & (points_m[:, 1] < y1)
        )

    def wall_to_pixel(self, points_m: np.ndarray) -> np.ndarray:
        """Wall meters -> this tile's local pixel coordinates (float)."""
        points_m = np.asarray(points_m, dtype=np.float64)
        sx, sy = self.pixels_per_meter
        out = np.empty_like(points_m)
        out[:, 0] = (points_m[:, 0] - self.x) * sx
        out[:, 1] = (points_m[:, 1] - self.y) * sy
        return out

    def pixel_to_wall(self, points_px: np.ndarray) -> np.ndarray:
        """Local pixel coordinates -> wall meters (pixel centers)."""
        points_px = np.asarray(points_px, dtype=np.float64)
        sx, sy = self.pixels_per_meter
        out = np.empty_like(points_px)
        out[:, 0] = self.x + points_px[:, 0] / sx
        out[:, 1] = self.y + points_px[:, 1] / sy
        return out
