"""Trajectory resampling.

The tracker sampled ant positions at ~3 mm spatial resolution with an
irregular clock; analytics and clustering want either a uniform time
step or a fixed sample count (feature vectors for the SOM need equal
lengths).  Both resamplers interpolate linearly in time and preserve
the first and last samples exactly.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.model import Trajectory

__all__ = ["resample_uniform_dt", "resample_by_count"]


def _interp_positions(traj: Trajectory, new_times: np.ndarray) -> np.ndarray:
    out = np.empty((len(new_times), 2), dtype=np.float64)
    out[:, 0] = np.interp(new_times, traj.times, traj.positions[:, 0])
    out[:, 1] = np.interp(new_times, traj.times, traj.positions[:, 1])
    return out


def resample_uniform_dt(traj: Trajectory, dt: float) -> Trajectory:
    """Resample to a uniform time step ``dt`` seconds.

    The final sample is pinned to the trajectory's true end time even
    when the duration is not a multiple of ``dt``, so endpoints (and
    therefore exit-side classification) are preserved exactly.
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    t_start, t_end = float(traj.times[0]), float(traj.times[-1])
    n_steps = max(1, int(np.floor((t_end - t_start) / dt)))
    new_times = t_start + dt * np.arange(n_steps + 1, dtype=np.float64)
    if t_end - new_times[-1] > 1e-9 * max(1.0, abs(t_end)):
        new_times = np.append(new_times, t_end)
    else:
        new_times[-1] = t_end
    return Trajectory(_interp_positions(traj, new_times), new_times, traj.meta, traj.traj_id)


def resample_by_count(traj: Trajectory, n: int) -> Trajectory:
    """Resample to exactly ``n`` samples, uniformly spaced in time.

    Used by :mod:`repro.cluster.features` to build fixed-length feature
    vectors.  ``n`` must be at least 2; endpoints are exact.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    new_times = np.linspace(float(traj.times[0]), float(traj.times[-1]), n)
    return Trajectory(_interp_positions(traj, new_times), new_times, traj.meta, traj.traj_id)
